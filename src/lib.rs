//! **adaptive-gossip** — a Rust reproduction of *Adaptive Gossip-Based
//! Broadcast* (Rodrigues, Handurukande, Pereira, Guerraoui, Kermarrec;
//! IEEE DSN 2003).
//!
//! Gossip-based broadcast scales beautifully, but its probabilistic
//! reliability rests on every node having enough buffer space to keep
//! forwarding events until they have disseminated. The paper adds a fully
//! decentralized feedback loop: nodes discover the group's smallest buffer
//! by piggybacking it on normal gossip, estimate congestion locally from
//! the *age* at which events would be evicted at that most constrained
//! node, and throttle their senders with a randomized
//! multiplicative-increase/decrease controller — no extra messages, no
//! global knowledge.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`core`] | `agb-core` | lpbcast (Fig. 1), token bucket (Fig. 3), the adaptive mechanism (Fig. 5), §6 extensions |
//! | [`membership`] | `agb-membership` | full & partial (lpbcast) peer sampling, join/leave/eviction dynamics |
//! | [`recovery`] | `agb-recovery` | pull-based anti-entropy: `IHave` digests, `Graft` pulls, bounded retransmission cache |
//! | [`topology`] | `agb-topology` | GOSSIP3-style probabilistic forwarding over structured overlays (with locality-biased sampling from [`membership`]) |
//! | [`chaos`] | `agb-chaos` | scripted churn & fault injection: crash/restart/join/leave, partitions, link faults, burst storms |
//! | [`maelstrom`] | `agb-maelstrom` | Maelstrom line protocol, node adapter, deterministic workload harness + checker |
//! | [`sim`] | `agb-sim` | deterministic discrete-event network simulator |
//! | [`workload`] | `agb-workload` | sender models, cluster builder, pub/sub scenarios, schedules |
//! | [`runtime`] | `agb-runtime` | threaded UDP/channel runtime (the paper's 60-workstation prototype) |
//! | [`metrics`] | `agb-metrics` | delivery/atomicity/rate/drop-age measurement |
//! | [`trace`] | `agb-trace` | deterministic causal dissemination tracing: typed events, histograms, per-event trees |
//! | [`telemetry`] | `agb-telemetry` | live wall-clock metrics: lock-free registry, Prometheus-text exposition, scrape + cluster-wide merge |
//! | [`profile`] | `agb-profile` | engine cost attribution: phase timers, shard load balance, per-subsystem memory, collapsed stacks |
//! | [`experiments`] | `agb-experiments` | one harness per paper figure |
//! | [`types`] | `agb-types` | ids, virtual time, RNG streams, stats primitives |
//!
//! # Quickstart
//!
//! Simulate a 60-node adaptive group for a minute of virtual time:
//!
//! ```
//! use adaptive_gossip::types::TimeMs;
//! use adaptive_gossip::workload::{Algorithm, ClusterConfig, GossipCluster};
//!
//! let mut config = ClusterConfig::new(60, 42);
//! config.algorithm = Algorithm::Adaptive;
//! config.n_senders = 10;
//! config.offered_rate = 20.0; // msgs/s, aggregate
//! let mut cluster = GossipCluster::build(config);
//! cluster.run_until(TimeMs::from_secs(60));
//!
//! let metrics = cluster.metrics();
//! // Measure messages admitted before t=50s; later ones are still in flight.
//! let window = Some((TimeMs::ZERO, TimeMs::from_secs(50)));
//! let report = metrics.deliveries().atomicity(0.95, window);
//! assert!(report.avg_receiver_fraction > 0.95);
//! ```
//!
//! # Recovery
//!
//! Push-only gossip loses atomicity when events are purged before full
//! dissemination (aggressive age caps, small buffers, message loss). The
//! [`recovery`] layer adds the retransmission-request path lpbcast assumes:
//! set [`ClusterConfig::recovery`](workload::ClusterConfig) to
//! `Some(RecoveryConfig::default())` and every node piggybacks `IHave`
//! digests, pulls missing events with `Graft` requests, and serves them
//! from a bounded retransmission cache. The repair cost is reported by
//! `metrics().recovery()` and the `recovery_overhead` series:
//!
//! ```
//! use adaptive_gossip::recovery::RecoveryConfig;
//! use adaptive_gossip::types::TimeMs;
//! use adaptive_gossip::workload::{Algorithm, ClusterConfig, GossipCluster};
//!
//! let mut config = ClusterConfig::lossy(20, 42, 0.2); // 20% message loss
//! config.n_senders = 2;
//! config.offered_rate = 4.0;
//! config.gossip.age_cap = 3; // aggressive purging
//! config.recovery = Some(RecoveryConfig::default());
//! let mut cluster = GossipCluster::build(config);
//! cluster.run_until(TimeMs::from_secs(30));
//! let metrics = cluster.metrics();
//! assert!(metrics.recovery().recovered() > 0);
//! assert!(metrics.recovery_overhead_ratio() < 1.0);
//! ```
//!
//! Run the full loss × buffer sweep with `repro recovery`, or the
//! two-run comparison in `examples/lossy_recovery.rs`
//! (`cargo run --release --example lossy_recovery`).
//!
//! # Churn & fault injection
//!
//! The [`chaos`] subsystem scripts the perturbations the adaptive
//! mechanism exists for: seed-deterministic schedules of crashes,
//! restarts with state loss, protocol-level joins and graceful leaves,
//! failure-detector evictions, partitions, link-level latency/loss
//! episodes and sender burst storms — executed against the simulator
//! (`ChaosCluster`) or the threaded runtime (`run_runtime_schedule`).
//! Delivery is then measured **among correct nodes**
//! ([`metrics`]' `MembershipTimeline`), alongside post-rejoin catch-up
//! latency and membership re-convergence:
//!
//! ```
//! use adaptive_gossip::chaos::{ChaosCluster, ChaosSchedule};
//! use adaptive_gossip::membership::PartialViewConfig;
//! use adaptive_gossip::types::{DurationMs, NodeId, TimeMs};
//! use adaptive_gossip::workload::{ClusterConfig, MembershipKind};
//!
//! let mut schedule = ChaosSchedule::new();
//! schedule
//!     .crash(TimeMs::from_secs(10), NodeId::new(7))
//!     .restart(TimeMs::from_secs(20), NodeId::new(7));
//! let mut config = ClusterConfig::new(20, 42);
//! config.membership = MembershipKind::Partial(PartialViewConfig::default());
//! config.n_senders = 2;
//! config.offered_rate = 4.0;
//! let mut chaos = ChaosCluster::new(config, &schedule);
//! chaos.run_until(TimeMs::from_secs(45));
//! let summary = chaos.summary(
//!     (TimeMs::from_secs(2), TimeMs::from_secs(35)),
//!     DurationMs::from_secs(10),
//! );
//! assert!(summary.correct.avg_receiver_fraction > 0.9);
//! ```
//!
//! Run the churn-rate sweep with `repro churn`, or the scripted scenario
//! in `examples/churn_chaos.rs`
//! (`cargo run --release --example churn_chaos`).
//!
//! # External harness: Maelstrom workloads
//!
//! The [`maelstrom`] subsystem speaks the Maelstrom JSON line protocol —
//! the de-facto standard harness interface for distributed-systems
//! workloads — so any external checker can drive this system. It ships
//! a sans-IO node adapter ([`maelstrom::MaelstromNode`]) that bridges
//! `init`/`topology`/`broadcast`/`add`/`generate`/`read` onto any
//! gossip stack (lpbcast / adaptive / adaptive+recovery), a real
//! stdin/stdout binary (`maelstrom_node`) runnable under the Maelstrom
//! jar, and a deterministic in-process harness that scripts the
//! standard workloads over seeded loss/latency/partition windows and
//! checks their properties:
//!
//! ```
//! use adaptive_gossip::maelstrom::{HarnessConfig, WorkloadKind, run_workload};
//!
//! let mut config = HarnessConfig::new(WorkloadKind::GCounter, 10, 42);
//! config.n_ops = 12;
//! let report = run_workload(&config);
//! assert!(report.passed(), "{:?}", report.properties);
//! ```
//!
//! Run the checked three-workload suite with `repro maelstrom`
//! (stable summary digest, `MAELSTROM.json` report), or the scripted
//! scenario in `examples/maelstrom_broadcast.rs`.
//!
//! # Topology-aware gossip
//!
//! The paper's evaluation assumes a flat group where every peer is
//! equally cheap to reach. The [`topology`] subsystem drops that
//! assumption: a deterministic [`types::Topology`] (ring / grid /
//! bridged cliques) gives every node an overlay neighbour list and a
//! region label; the [`membership`] layer's `LocalitySampler` biases
//! peer sampling toward those neighbours (with a tunable uniform
//! escape so the group stays connected end to end); and
//! [`topology::RoutingNode`] replaces lpbcast's reship-the-buffer
//! forwarding with GOSSIP3-style probabilistic relay — always forward
//! young rumors, forward older ones with probability `p`, always
//! forward on low-degree nodes — which cuts relayed copies per
//! delivery by ~3× at equal atomicity (`repro topology`):
//!
//! ```
//! use adaptive_gossip::topology::RoutingConfig;
//! use adaptive_gossip::types::{TimeMs, Topology};
//! use adaptive_gossip::workload::{Algorithm, ClusterConfig, GossipCluster};
//!
//! let grid = Topology::grid(4, 5);
//! let mut config = ClusterConfig::new(grid.len(), 42);
//! config.algorithm = Algorithm::Routing(RoutingConfig::default());
//! config.topology = Some(grid); // also feeds cross-region accounting
//! config.locality_escape = Some(0.1); // 10% of samples stay uniform
//! config.n_senders = 2;
//! config.offered_rate = 4.0;
//! let mut cluster = GossipCluster::build(config);
//! cluster.run_until(TimeMs::from_secs(30));
//!
//! let metrics = cluster.metrics();
//! let window = Some((TimeMs::ZERO, TimeMs::from_secs(20)));
//! let report = metrics.deliveries().atomicity(0.95, window);
//! assert!(report.avg_receiver_fraction > 0.9);
//! ```
//!
//! Run the shape × flavor comparison with `repro topology` (uniform vs
//! locality-biased vs probabilistic forwarding on grid and clustered
//! overlays, stable digest, `TOPOLOGY.json`).
//!
//! # Observability
//!
//! Three complementary planes, one engine:
//!
//! * **Deterministic simulation tracing** ([`trace`]) — replayable
//!   records with simulated timestamps, for explaining *why* a run
//!   behaved as it did after the fact.
//! * **Live wall-clock telemetry** ([`telemetry`]) — always-on atomic
//!   counters/gauges/histograms on the threaded runtime, exposed as
//!   Prometheus text per node, for watching a *real* cluster right now.
//! * **Cost profiling** ([`profile`]) — opt-in phase timers, shard
//!   load-balance stats, and deterministic memory attribution, for
//!   knowing where a round's wall-clock and bytes go.
//!
//! ## Simulation tracing
//!
//! The [`trace`] subsystem records *why* dissemination behaved the way
//! it did, not just the end-state metrics: every publish/relay/deliver/
//! duplicate, the full drop taxonomy (age, buffer size, congestion),
//! recovery repair traffic, and per-event causal dissemination trees
//! (who infected whom, at what depth). Aggregates land in fixed-bucket
//! histograms — delivery latency in rounds, hops, buffer occupancy,
//! recovery RTT — and the whole trace carries a stable FNV digest that
//! is bit-identical across runs and `AGB_THREADS` settings. Tracing is
//! a pure observer: engine checksums are unchanged whether it is on or
//! off.
//!
//! ```
//! use adaptive_gossip::trace::TraceConfig;
//! use adaptive_gossip::types::TimeMs;
//! use adaptive_gossip::workload::{Algorithm, ClusterConfig, GossipCluster};
//!
//! let mut config = ClusterConfig::lossy(20, 42, 0.1);
//! config.algorithm = Algorithm::Adaptive;
//! config.n_senders = 2;
//! config.offered_rate = 6.0;
//! config.trace = TraceConfig::enabled();
//! let mut cluster = GossipCluster::build(config);
//! cluster.run_until(TimeMs::from_secs(30));
//!
//! let summary = cluster.trace_summary("adaptive").unwrap();
//! assert!(summary.counts.delivers > 0);
//! assert!(summary.tree.events > 0); // causal trees were reconstructed
//! let p99_rounds = summary.latency.quantile(0.99);
//! assert!(p99_rounds.is_some());
//! ```
//!
//! Run the full observability report with `repro trace` (three-protocol
//! dashboard under loss + partition, stable digest, `TRACE.json`), or
//! the redundancy comparison in `examples/trace_dissemination.rs`.
//!
//! ## Wall-clock telemetry
//!
//! The [`telemetry`] subsystem instruments the threaded runtime with
//! lock-free metrics (relaxed atomics on the hot path), renders them in
//! Prometheus text exposition format with stable names
//! ([`telemetry::names`]), serves them per node over a tiny std-only
//! TCP responder, and parses scrapes back into typed snapshots whose
//! log-bucketed histograms merge exactly — cluster-wide p99 latency
//! straight off the summed buckets. The same vocabulary is fed by
//! deterministic simulations through
//! [`telemetry::fold_trace_counts`], so dashboards read identically
//! whichever surface produced the numbers:
//!
//! ```
//! use adaptive_gossip::telemetry::{latency_seconds_bounds, parse_text, Registry};
//!
//! let registry = Registry::new();
//! registry
//!     .counter("agb_deliveries_total", "First deliveries", &[("node", "0")])
//!     .add(3);
//! registry
//!     .histogram(
//!         "agb_delivery_latency_seconds",
//!         "Publish to delivery",
//!         &[("node", "0")],
//!         &latency_seconds_bounds(),
//!     )
//!     .observe(0.012);
//!
//! let text = registry.render(); // what `GET /metrics` serves
//! assert!(text.contains("agb_deliveries_total{node=\"0\"} 3"));
//! let snapshot = parse_text(&text); // what a scraper reconstructs
//! assert_eq!(snapshot.counter_sum("agb_deliveries_total"), 3);
//! ```
//!
//! Run the live plane end to end with `repro telemetry` (lossy UDP
//! cluster, mid-run scrapes, SLO quantiles, `TELEMETRY.json`), or the
//! one-node scrape loop in `examples/telemetry_scrape.rs`.
//!
//! ## Cost profiling
//!
//! The [`profile`] subsystem answers *where does the round go*: opt-in
//! RAII phase timers around the engine's hot phases (batch lift,
//! sharded handler execution, canonical merge-back, routing and codec
//! work), per-shard busy-time balance, and a per-subsystem memory
//! table computed from entry counts — deterministic, so it is
//! bit-identical at any `AGB_THREADS` and safe to commit
//! (`PROFILE.json`). Profiling only reads clocks: engine checksums are
//! unchanged whether it is on or off.
//!
//! ```
//! use adaptive_gossip::profile::{Phase, ProfileConfig};
//! use adaptive_gossip::recovery::RecoveryConfig;
//! use adaptive_gossip::types::TimeMs;
//! use adaptive_gossip::workload::{Algorithm, ClusterConfig, GossipCluster};
//!
//! let mut config = ClusterConfig::new(30, 42);
//! config.algorithm = Algorithm::Adaptive;
//! config.n_senders = 3;
//! config.offered_rate = 9.0;
//! config.recovery = Some(RecoveryConfig::default());
//! config.profile = ProfileConfig::enabled();
//! let mut cluster = GossipCluster::build(config);
//! cluster.run_until(TimeMs::from_secs(20));
//!
//! let snapshot = cluster.profiler_snapshot().unwrap();
//! assert!(snapshot.phase(Phase::ShardExec).total_ns > 0);
//! let mem = cluster.mem_table(); // resident bytes by subsystem
//! assert!(mem.bytes_per_node() > 0);
//! println!("{}", snapshot.collapsed()); // inferno-ready stacks
//! ```
//!
//! Run the attribution report with `repro profile` (phase table, shard
//! balance, memory table, `PROFILE.json` + optional collapsed-stack
//! file), or the single-round walkthrough in
//! `examples/profile_round.rs`.
//!
//! See `examples/` for runnable scenarios and `docs/ARCHITECTURE.md`
//! for the architecture handbook (crate map, data flow, the engine's
//! determinism invariants, and the new-protocol-flavor recipe).

#![forbid(unsafe_code)]

pub use agb_chaos as chaos;
pub use agb_core as core;
pub use agb_experiments as experiments;
pub use agb_maelstrom as maelstrom;
pub use agb_membership as membership;
pub use agb_metrics as metrics;
pub use agb_perf as perf;
pub use agb_profile as profile;
pub use agb_recovery as recovery;
pub use agb_runtime as runtime;
pub use agb_sim as sim;
pub use agb_telemetry as telemetry;
pub use agb_topology as topology;
pub use agb_trace as trace;
pub use agb_types as types;
pub use agb_workload as workload;
