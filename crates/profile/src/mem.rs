//! Memory attribution: resident-byte estimates per subsystem.
//!
//! Estimates are *deterministic* — computed from entry counts and
//! `size_of` arithmetic over end-of-run data structures, never from
//! allocator introspection — so they are identical at any thread
//! count and safe to include in reproducibility digests.

/// Estimated resident footprint of one structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemUsage {
    /// Estimated resident bytes (container slots + owned payloads).
    pub bytes: u64,
    /// Logical entries held (events, ids, view slots, records).
    pub entries: u64,
}

impl MemUsage {
    /// A usage record.
    pub fn new(bytes: u64, entries: u64) -> Self {
        Self { bytes, entries }
    }

    /// Accumulates another usage into this one.
    pub fn add(&mut self, other: MemUsage) {
        self.bytes += other.bytes;
        self.entries += other.entries;
    }
}

/// Implemented by big resident structures (event queues, protocol
/// buffers, retransmission caches, membership views, trace rings) to
/// report an estimated footprint.
pub trait MemReport {
    /// Estimated resident bytes and entry count right now.
    fn mem_usage(&self) -> MemUsage;
}

/// Per-subsystem aggregation across all nodes of a cluster.
///
/// Rows merge by label and iterate in sorted label order, so the
/// table is deterministic regardless of node-visit order.
#[derive(Clone, Debug, Default)]
pub struct MemTable {
    rows: Vec<(String, MemUsage)>,
    nodes: u64,
}

impl MemTable {
    /// An empty table for a cluster of `nodes` nodes (the divisor for
    /// per-node figures; pass 1 for single-structure tables).
    pub fn new(nodes: u64) -> Self {
        Self {
            rows: Vec::new(),
            nodes: nodes.max(1),
        }
    }

    /// Number of nodes the per-node figures divide by.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Adds `usage` under `label`, merging with an existing row.
    pub fn record(&mut self, label: &str, usage: MemUsage) {
        match self.rows.binary_search_by(|(l, _)| l.as_str().cmp(label)) {
            Ok(i) => self.rows[i].1.add(usage),
            Err(i) => self.rows.insert(i, (label.to_string(), usage)),
        }
    }

    /// Rows in sorted label order.
    pub fn rows(&self) -> &[(String, MemUsage)] {
        &self.rows
    }

    /// Sum over all rows.
    pub fn total(&self) -> MemUsage {
        let mut t = MemUsage::default();
        for (_, u) in &self.rows {
            t.add(*u);
        }
        t
    }

    /// Total estimated resident bytes divided by the node count.
    pub fn bytes_per_node(&self) -> u64 {
        self.total().bytes / self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_merge_by_label_and_sort() {
        let mut t = MemTable::new(10);
        t.record("queue", MemUsage::new(100, 2));
        t.record("buffer", MemUsage::new(50, 1));
        t.record("queue", MemUsage::new(20, 1));
        let labels: Vec<_> = t.rows().iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["buffer", "queue"]);
        assert_eq!(t.rows()[1].1, MemUsage::new(120, 3));
        assert_eq!(t.total(), MemUsage::new(170, 4));
        assert_eq!(t.bytes_per_node(), 17);
    }

    #[test]
    fn zero_nodes_clamps_to_one() {
        let mut t = MemTable::new(0);
        t.record("x", MemUsage::new(7, 1));
        assert_eq!(t.bytes_per_node(), 7);
    }
}
