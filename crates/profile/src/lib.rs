//! agb-profile: the profiling plane — engine phase timers, shard
//! load-balance stats, memory attribution, and collapsed-stack flame
//! output.
//!
//! The repo has three observability planes with strictly separated
//! determinism contracts:
//!
//! | plane | crate | answers | deterministic? |
//! |---|---|---|---|
//! | trace | agb-trace | *why* did an event reach a node (causality) | yes — in the digest |
//! | telemetry | agb-telemetry | *how is it doing right now* (live ops) | no — wall clock |
//! | profile | agb-profile | *where do rounds and bytes go* (cost) | split — timings no, memory yes |
//!
//! Phase timings ([`Profiler`]) are wall-clock and excluded from every
//! determinism digest; memory attribution ([`MemReport`] / [`MemTable`])
//! is computed from deterministic end-of-run state and *is* digestable.
//! A profiler attached to the engine only reads clocks and accumulates
//! counters — it never perturbs RNG streams or effect ordering, so
//! engine checksums stay bit-identical profiler-on vs profiler-off.
//!
//! ```
//! use agb_profile::{MemTable, MemUsage, Phase, Profiler};
//!
//! let mut profiler = Profiler::new();
//! {
//!     let mut scope = profiler.scope(Phase::Merge);
//!     scope.set_items(42); // merged 42 effects
//! }
//! let snapshot = profiler.snapshot();
//! assert_eq!(snapshot.phase(Phase::Merge).items, 42);
//!
//! let mut mem = MemTable::new(1000);
//! mem.record("event_buffer", MemUsage::new(64_000, 500));
//! assert_eq!(mem.bytes_per_node(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mem;
mod phase;
mod profiler;

pub use mem::{MemReport, MemTable, MemUsage};
pub use phase::{Phase, PHASES};
pub use profiler::{PhaseStat, PhaseToken, ProfileConfig, Profiler, ProfilerSnapshot, ScopedTimer};

/// Schema identifier stamped into PROFILE.json.
pub const PROFILE_SCHEMA: &str = "agb-profile/v1";
