//! Phase accumulators, scoped timers, and shard load-balance stats.
//!
//! All data recorded here is wall-clock (and allocator-count) noise:
//! it varies run to run and thread count to thread count, and must
//! never feed a determinism digest. The engine only *reads* clocks
//! through this module — recording never touches RNG streams, effect
//! ordering, or control flow, which is what keeps engine checksums
//! bit-identical profiler-on vs profiler-off.

use std::time::Instant;

use crate::phase::{Phase, PHASES};

/// Number of log2 nanosecond buckets per phase histogram (covers
/// 1 ns .. ~4 s in powers of two).
const NS_BUCKETS: usize = 32;

/// Whether profiling is requested for a run.
///
/// A plain on/off toggle kept as a struct so future knobs (sampling
/// rates, phase masks) extend it without breaking call sites.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Attach a [`Profiler`] to the engine / runtime when true.
    pub enabled: bool,
}

impl ProfileConfig {
    /// Profiling off (the default — zero overhead).
    pub fn disabled() -> Self {
        Self { enabled: false }
    }

    /// Profiling on.
    pub fn enabled() -> Self {
        Self { enabled: true }
    }
}

/// Per-phase monotonic accumulator.
#[derive(Clone, Debug, Default)]
struct PhaseAcc {
    total_ns: u64,
    count: u64,
    items: u64,
    allocs: u64,
    buckets: [u64; NS_BUCKETS],
}

impl PhaseAcc {
    fn record(&mut self, ns: u64, items: u64, allocs: u64) {
        self.total_ns += ns;
        self.count += 1;
        self.items += items;
        self.allocs += allocs;
        let b = (u64::BITS - ns.leading_zeros()) as usize;
        self.buckets[b.min(NS_BUCKETS - 1)] += 1;
    }
}

/// An open phase scope returned by [`Profiler::enter`].
///
/// The engine uses explicit enter/exit tokens because its hot loops
/// split borrows in ways that make a lifetime-carrying guard awkward;
/// [`ScopedTimer`] wraps the same pair for RAII call sites.
#[derive(Debug)]
pub struct PhaseToken {
    phase: Phase,
    start: Instant,
    allocs0: u64,
}

/// Engine-side profiler: owned by the simulation (or runtime node)
/// while enabled, absent otherwise.
#[derive(Debug)]
pub struct Profiler {
    phases: Vec<PhaseAcc>,
    /// Cumulative busy-ns per shard slot across parallel batches.
    shard_busy_ns: Vec<u64>,
    /// Parallel batches recorded (k >= 2 shards actually used).
    parallel_batches: u64,
    /// Sum of per-batch max/min busy ratios (for the mean).
    ratio_sum: f64,
    /// Worst per-batch max/min busy ratio seen.
    worst_ratio: f64,
    /// Optional allocation counter (wired to the agb-perf counting
    /// allocator by binaries that install it) sampled at phase
    /// boundaries for allocations-per-phase attribution.
    alloc_counter: Option<fn() -> u64>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// A fresh profiler with empty accumulators.
    pub fn new() -> Self {
        Self {
            phases: vec![PhaseAcc::default(); PHASES.len()],
            shard_busy_ns: Vec::new(),
            parallel_batches: 0,
            ratio_sum: 0.0,
            worst_ratio: 0.0,
            alloc_counter: None,
        }
    }

    /// Installs an allocation counter (e.g. agb-perf's
    /// `allocation_count`) sampled at phase boundaries. A plain `fn`
    /// pointer keeps this crate dependency-free.
    pub fn set_alloc_counter(&mut self, counter: fn() -> u64) {
        self.alloc_counter = Some(counter);
    }

    /// Opens a phase scope; close it with [`Profiler::exit`].
    pub fn enter(&self, phase: Phase) -> PhaseToken {
        PhaseToken {
            phase,
            start: Instant::now(),
            allocs0: self.alloc_counter.map_or(0, |f| f()),
        }
    }

    /// Closes a phase scope, attributing elapsed wall time,
    /// allocations since [`Profiler::enter`], and `items` units of
    /// work (events, targets, frames — phase-dependent).
    pub fn exit(&mut self, token: PhaseToken, items: u64) {
        let ns = token.start.elapsed().as_nanos() as u64;
        let allocs = self
            .alloc_counter
            .map_or(0, |f| f().saturating_sub(token.allocs0));
        self.phases[token.phase.index()].record(ns, items, allocs);
    }

    /// RAII scope: records the phase when the guard drops (1 item).
    pub fn scope(&mut self, phase: Phase) -> ScopedTimer<'_> {
        let token = self.enter(phase);
        ScopedTimer {
            profiler: self,
            token: Some(token),
            items: 1,
        }
    }

    /// Attributes externally measured nanoseconds to a phase (used to
    /// harvest routing / codec time accumulated in per-shard effect
    /// buffers, where the profiler itself is not reachable).
    pub fn add_ns(&mut self, phase: Phase, ns: u64, items: u64) {
        if ns > 0 || items > 0 {
            self.phases[phase.index()].record(ns, items, 0);
        }
    }

    /// Records one parallel batch's per-shard busy times, updating
    /// cumulative shard load and the max/min imbalance ratio.
    pub fn record_parallel_batch(&mut self, busy_ns: &[u64]) {
        if busy_ns.len() < 2 {
            return;
        }
        if self.shard_busy_ns.len() < busy_ns.len() {
            self.shard_busy_ns.resize(busy_ns.len(), 0);
        }
        let mut max = 0u64;
        let mut min = u64::MAX;
        for (slot, &ns) in self.shard_busy_ns.iter_mut().zip(busy_ns) {
            *slot += ns;
            max = max.max(ns);
            min = min.min(ns);
        }
        let ratio = max as f64 / min.max(1) as f64;
        self.parallel_batches += 1;
        self.ratio_sum += ratio;
        if ratio > self.worst_ratio {
            self.worst_ratio = ratio;
        }
    }

    /// Immutable snapshot of everything accumulated so far.
    pub fn snapshot(&self) -> ProfilerSnapshot {
        ProfilerSnapshot {
            phases: PHASES
                .iter()
                .map(|&p| {
                    let acc = &self.phases[p.index()];
                    PhaseStat {
                        phase: p,
                        total_ns: acc.total_ns,
                        count: acc.count,
                        items: acc.items,
                        allocs: acc.allocs,
                        buckets: acc.buckets.to_vec(),
                    }
                })
                .collect(),
            shard_busy_ns: self.shard_busy_ns.clone(),
            parallel_batches: self.parallel_batches,
            mean_balance_ratio: if self.parallel_batches == 0 {
                None
            } else {
                Some(self.ratio_sum / self.parallel_batches as f64)
            },
            worst_balance_ratio: if self.parallel_batches == 0 {
                None
            } else {
                Some(self.worst_ratio)
            },
        }
    }
}

/// RAII phase guard from [`Profiler::scope`].
#[derive(Debug)]
pub struct ScopedTimer<'a> {
    profiler: &'a mut Profiler,
    token: Option<PhaseToken>,
    items: u64,
}

impl ScopedTimer<'_> {
    /// Overrides the item count attributed when the scope closes
    /// (defaults to 1).
    pub fn set_items(&mut self, items: u64) {
        self.items = items;
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.profiler.exit(token, self.items);
        }
    }
}

/// Frozen per-phase statistics from [`Profiler::snapshot`].
#[derive(Clone, Debug)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: Phase,
    /// Total wall nanoseconds attributed.
    pub total_ns: u64,
    /// Scope closures recorded.
    pub count: u64,
    /// Work items attributed (events / targets / frames).
    pub items: u64,
    /// Allocations attributed (0 unless an alloc counter is wired).
    pub allocs: u64,
    /// log2-nanosecond duration histogram.
    pub buckets: Vec<u64>,
}

/// Frozen profiler state: phase totals plus shard balance.
#[derive(Clone, Debug)]
pub struct ProfilerSnapshot {
    /// Per-phase stats in [`PHASES`] order.
    pub phases: Vec<PhaseStat>,
    /// Cumulative busy-ns per shard slot (empty if never parallel).
    pub shard_busy_ns: Vec<u64>,
    /// Parallel batches recorded.
    pub parallel_batches: u64,
    /// Mean per-batch max/min shard busy ratio (None if never parallel).
    pub mean_balance_ratio: Option<f64>,
    /// Worst per-batch max/min shard busy ratio (None if never parallel).
    pub worst_balance_ratio: Option<f64>,
}

impl ProfilerSnapshot {
    /// Total nanoseconds across top-level (non-nested) phases — the
    /// denominator for "where does the round go" percentages.
    pub fn top_level_total_ns(&self) -> u64 {
        self.phases
            .iter()
            .filter(|s| !s.phase.nested())
            .map(|s| s.total_ns)
            .sum()
    }

    /// Stats for one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseStat {
        &self.phases[phase.index()]
    }

    /// Inferno-compatible collapsed-stack text (`frame;frame count`),
    /// one line per phase with nonzero time, counts in microseconds so
    /// flamegraph renderers get sane magnitudes. Nested phases render
    /// under `engine;shard_exec`.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        let mut exec_self_us = self.phase(Phase::ShardExec).total_ns / 1_000;
        for stat in &self.phases {
            let us = stat.total_ns / 1_000;
            if us == 0 {
                continue;
            }
            if stat.phase.nested() {
                exec_self_us = exec_self_us.saturating_sub(us);
                out.push_str(&format!(
                    "engine;shard_exec;{} {}\n",
                    stat.phase.label(),
                    us
                ));
            } else if stat.phase != Phase::ShardExec {
                out.push_str(&format!("engine;{} {}\n", stat.phase.label(), us));
            }
        }
        if exec_self_us > 0 {
            out.push_str(&format!("engine;shard_exec {}\n", exec_self_us));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_accumulates() {
        let mut p = Profiler::new();
        let t = p.enter(Phase::Merge);
        p.exit(t, 7);
        let snap = p.snapshot();
        let merge = snap.phase(Phase::Merge);
        assert_eq!(merge.count, 1);
        assert_eq!(merge.items, 7);
        assert_eq!(merge.buckets.iter().sum::<u64>(), 1);
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let mut p = Profiler::new();
        {
            let mut s = p.scope(Phase::Encode);
            s.set_items(3);
        }
        let snap = p.snapshot();
        assert_eq!(snap.phase(Phase::Encode).count, 1);
        assert_eq!(snap.phase(Phase::Encode).items, 3);
    }

    #[test]
    fn balance_ratio_tracks_max_over_min() {
        let mut p = Profiler::new();
        p.record_parallel_batch(&[100, 400]);
        p.record_parallel_batch(&[200, 200]);
        let snap = p.snapshot();
        assert_eq!(snap.parallel_batches, 2);
        assert_eq!(snap.shard_busy_ns, vec![300, 600]);
        assert_eq!(snap.worst_balance_ratio, Some(4.0));
        assert!((snap.mean_balance_ratio.unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn single_shard_batches_are_ignored_for_balance() {
        let mut p = Profiler::new();
        p.record_parallel_batch(&[500]);
        assert_eq!(p.snapshot().parallel_batches, 0);
        assert_eq!(p.snapshot().mean_balance_ratio, None);
    }

    #[test]
    fn collapsed_nests_subphases_under_shard_exec() {
        let mut p = Profiler::new();
        p.add_ns(Phase::ShardExec, 10_000_000, 5);
        p.add_ns(Phase::Route, 2_000_000, 9);
        p.add_ns(Phase::Merge, 1_000_000, 5);
        let text = p.snapshot().collapsed();
        assert!(text.contains("engine;shard_exec;route 2000"));
        assert!(text.contains("engine;shard_exec 8000"));
        assert!(text.contains("engine;merge 1000"));
        // Every line is `frames space count`.
        for line in text.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            count.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn top_level_total_excludes_nested() {
        let mut p = Profiler::new();
        p.add_ns(Phase::ShardExec, 100, 1);
        p.add_ns(Phase::Route, 40, 1);
        p.add_ns(Phase::Control, 10, 1);
        assert_eq!(p.snapshot().top_level_total_ns(), 110);
    }

    #[test]
    fn alloc_counter_deltas_are_attributed() {
        fn fake_counter() -> u64 {
            use std::sync::atomic::{AtomicU64, Ordering};
            static N: AtomicU64 = AtomicU64::new(0);
            N.fetch_add(5, Ordering::Relaxed)
        }
        let mut p = Profiler::new();
        p.set_alloc_counter(fake_counter);
        let t = p.enter(Phase::Control);
        p.exit(t, 1);
        assert_eq!(p.snapshot().phase(Phase::Control).allocs, 5);
    }
}
