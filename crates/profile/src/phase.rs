//! Engine phase taxonomy.

/// A hot phase of the engine round, identified for cost attribution.
///
/// Phases partition where an engine instant's wall-clock time goes:
/// lifting the event batch off the queue, executing handlers (serially
/// or across shards), merging buffered effects back in canonical order,
/// executing control events, and the cross-cutting routing / codec work
/// accumulated inside handler execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Popping the maximal Deliver/Timer run off the event queue.
    BatchLift,
    /// Handler execution for a batch (all shards; wall time of the
    /// parallel section when sharded).
    ShardExec,
    /// Canonical merge-back of buffered effects (pushes, stat mixes,
    /// trace records, post-event hooks).
    Merge,
    /// Control-event execution (membership churn, partitions, restarts).
    Control,
    /// Network routing + per-send RNG draws inside handler execution
    /// (sub-phase of [`Phase::ShardExec`], measured via effect buffers).
    Route,
    /// Frame encoding (wire serialization).
    Encode,
    /// Frame decoding (wire deserialization).
    Decode,
}

/// All phases, in reporting order.
pub const PHASES: [Phase; 7] = [
    Phase::BatchLift,
    Phase::ShardExec,
    Phase::Merge,
    Phase::Control,
    Phase::Route,
    Phase::Encode,
    Phase::Decode,
];

impl Phase {
    /// Stable snake_case label used in reports, JSON, and collapsed
    /// stacks.
    pub fn label(self) -> &'static str {
        match self {
            Phase::BatchLift => "batch_lift",
            Phase::ShardExec => "shard_exec",
            Phase::Merge => "merge",
            Phase::Control => "control",
            Phase::Route => "route",
            Phase::Encode => "encode",
            Phase::Decode => "decode",
        }
    }

    /// Dense index into per-phase accumulator arrays.
    pub(crate) fn index(self) -> usize {
        match self {
            Phase::BatchLift => 0,
            Phase::ShardExec => 1,
            Phase::Merge => 2,
            Phase::Control => 3,
            Phase::Route => 4,
            Phase::Encode => 5,
            Phase::Decode => 6,
        }
    }

    /// Whether this phase is a sub-phase nested inside
    /// [`Phase::ShardExec`] (affects collapsed-stack frames and keeps
    /// phase percentages from double-counting).
    pub fn nested(self) -> bool {
        matches!(self, Phase::Route | Phase::Encode | Phase::Decode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_indices_dense() {
        let mut seen = std::collections::HashSet::new();
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(seen.insert(p.label()));
        }
    }

    #[test]
    fn nested_phases_are_the_handler_subphases() {
        assert!(Phase::Route.nested());
        assert!(Phase::Encode.nested());
        assert!(Phase::Decode.nested());
        assert!(!Phase::ShardExec.nested());
        assert!(!Phase::Merge.nested());
    }
}
