//! Property-based tests of the metrics layer.

use agb_metrics::{DeliveryTracker, RateMeter, TimeSeries};
use agb_types::{DurationMs, EventId, NodeId, TimeMs};
use proptest::prelude::*;

proptest! {
    /// Receiver fractions are always within [0, 1] and atomicity never
    /// exceeds the average-fraction-derived bound.
    #[test]
    fn delivery_tracker_fractions_are_sane(
        n_nodes in 1usize..16,
        deliveries in proptest::collection::vec((0u64..8, 0u32..16, 0u32..10), 0..200),
    ) {
        let mut t = DeliveryTracker::new(n_nodes);
        for (msg, node, age) in deliveries {
            t.on_delivered(
                NodeId::new(node % n_nodes as u32),
                EventId::new(NodeId::new(0), msg),
                age,
                TimeMs::ZERO,
            );
        }
        let r = t.atomicity(0.95, None);
        prop_assert!((0.0..=1.0).contains(&r.avg_receiver_fraction));
        prop_assert!((0.0..=1.0).contains(&r.atomic_fraction));
        for (_, rec) in t.iter() {
            prop_assert!(rec.receiver_count() <= n_nodes);
        }
    }

    /// A message delivered to every node is always atomic; one delivered
    /// to none never is.
    #[test]
    fn atomicity_extremes(n_nodes in 2usize..20, threshold in 0.0f64..0.99) {
        let mut t = DeliveryTracker::new(n_nodes);
        for node in 0..n_nodes {
            t.on_delivered(
                NodeId::new(node as u32),
                EventId::new(NodeId::new(0), 0),
                1,
                TimeMs::ZERO,
            );
        }
        let r = t.atomicity(threshold, None);
        prop_assert_eq!(r.atomic_fraction, 1.0);
        prop_assert_eq!(r.avg_receiver_fraction, 1.0);
    }

    /// RateMeter's total equals the sum over its series bins, and the
    /// windowed rate reproduces the total over the full span.
    #[test]
    fn rate_meter_conservation(
        bin_ms in 1u64..5_000,
        events in proptest::collection::vec(0u64..100_000, 0..200),
    ) {
        let mut m = RateMeter::new(DurationMs::from_millis(bin_ms));
        for &t in &events {
            m.record(TimeMs::from_millis(t));
        }
        prop_assert_eq!(m.total(), events.len() as u64);
        let series = m.series();
        let from_series: f64 = series
            .iter()
            .map(|&(_, rate)| rate * bin_ms as f64 / 1000.0)
            .sum();
        prop_assert!((from_series - events.len() as f64).abs() < 1e-6);
    }

    /// TimeSeries per-bin means lie within the range of their samples.
    #[test]
    fn time_series_means_in_range(
        bin_ms in 1u64..5_000,
        samples in proptest::collection::vec((0u64..50_000, -1e3f64..1e3), 1..100),
    ) {
        let mut s = TimeSeries::new(DurationMs::from_millis(bin_ms));
        for &(t, v) in &samples {
            s.push(TimeMs::from_millis(t), v);
        }
        prop_assert_eq!(s.sample_count(), samples.len() as u64);
        let (lo, hi) = samples.iter().fold(
            (f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), &(_, v)| (lo.min(v), hi.max(v)),
        );
        for (_, mean) in s.bins() {
            prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        }
    }
}
