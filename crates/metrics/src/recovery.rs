//! Aggregates of the pull-based recovery layer (`agb-recovery`).

use agb_types::{DurationMs, TimeMs};

use crate::rates::RateMeter;

/// Counters and overhead series for the recovery control plane, fed from
/// the `ProtocolEvent::Recovery*` events.
///
/// "Overhead" counts recovery *control messages* (graft requests sent plus
/// retransmissions served): the traffic the pull layer adds on top of
/// regular gossip. [`overhead_ratio`](RecoveryStats::overhead_ratio)
/// normalizes it against deliveries so experiments can report repair cost
/// per useful delivery.
#[derive(Debug, Clone)]
pub struct RecoveryStats {
    requests: u64,
    requested_ids: u64,
    serves: u64,
    served_events: u64,
    cache_misses: u64,
    recovered: u64,
    duplicates: u64,
    abandoned: u64,
    /// Frames actually put on the wire (grafts + non-empty serves);
    /// empty-handed serves send nothing and count nothing here.
    control_messages: u64,
    overhead: RateMeter,
}

impl RecoveryStats {
    /// Creates empty stats with the given time-bin width for the overhead
    /// series.
    pub fn new(bin: DurationMs) -> Self {
        RecoveryStats {
            requests: 0,
            requested_ids: 0,
            serves: 0,
            served_events: 0,
            cache_misses: 0,
            recovered: 0,
            duplicates: 0,
            abandoned: 0,
            control_messages: 0,
            overhead: RateMeter::new(bin),
        }
    }

    /// Records a sent graft request carrying `ids` missing ids.
    pub fn on_requested(&mut self, ids: usize, at: TimeMs) {
        self.requests += 1;
        self.requested_ids += ids as u64;
        self.control_messages += 1;
        self.overhead.record(at);
    }

    /// Records a served graft: `events` retransmitted, `missed` ids not in
    /// cache.
    pub fn on_served(&mut self, events: usize, missed: usize, at: TimeMs) {
        self.serves += 1;
        self.served_events += events as u64;
        self.cache_misses += missed as u64;
        if events > 0 {
            self.control_messages += 1;
            self.overhead.record(at);
        }
    }

    /// Records a recovered (previously missing, now delivered) event.
    pub fn on_recovered(&mut self) {
        self.recovered += 1;
    }

    /// Records a redundant retransmitted event.
    pub fn on_duplicate(&mut self) {
        self.duplicates += 1;
    }

    /// Records an abandoned recovery.
    pub fn on_abandoned(&mut self) {
        self.abandoned += 1;
    }

    /// Graft request frames sent.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Missing ids requested across all grafts.
    pub fn requested_ids(&self) -> u64 {
        self.requested_ids
    }

    /// Graft requests answered (including empty-handed).
    pub fn serves(&self) -> u64 {
        self.serves
    }

    /// Events retransmitted from caches.
    pub fn served_events(&self) -> u64 {
        self.served_events
    }

    /// Requested ids that had already left the responder's cache.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Events delivered through retransmission that were tracked missing.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Retransmitted events that were already delivered (wasted repair
    /// bandwidth).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Missing ids given up on after the retry budget.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// The `recovery_overhead` series: recovery control messages per
    /// second, binned.
    pub fn overhead_series(&self) -> Vec<(TimeMs, f64)> {
        self.overhead.series()
    }

    /// Recovery control messages per second within `[from, to)`.
    pub fn overhead_rate_in(&self, from: TimeMs, to: TimeMs) -> f64 {
        self.overhead.rate_in(from, to)
    }

    /// Recovery control frames actually sent (grafts + non-empty
    /// retransmissions).
    pub fn control_messages(&self) -> u64 {
        self.control_messages
    }

    /// Recovery control messages per delivered message — the headline
    /// repair-cost number (`deliveries` from the collector's meter).
    /// Consistent with [`overhead_series`](RecoveryStats::overhead_series):
    /// empty-handed serves send no frame and cost nothing.
    pub fn overhead_ratio(&self, deliveries: u64) -> f64 {
        if deliveries == 0 {
            return 0.0;
        }
        self.control_messages as f64 / deliveries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = RecoveryStats::new(DurationMs::from_secs(1));
        s.on_requested(3, TimeMs::ZERO);
        s.on_requested(2, TimeMs::from_millis(100));
        s.on_served(2, 1, TimeMs::from_millis(200));
        s.on_served(0, 2, TimeMs::from_millis(300));
        s.on_recovered();
        s.on_duplicate();
        s.on_abandoned();
        assert_eq!(s.requests(), 2);
        assert_eq!(s.requested_ids(), 5);
        assert_eq!(s.serves(), 2);
        assert_eq!(s.served_events(), 2);
        assert_eq!(s.cache_misses(), 3);
        assert_eq!(s.recovered(), 1);
        assert_eq!(s.duplicates(), 1);
        assert_eq!(s.abandoned(), 1);
    }

    #[test]
    fn overhead_counts_control_messages() {
        let mut s = RecoveryStats::new(DurationMs::from_secs(1));
        s.on_requested(1, TimeMs::from_millis(100));
        s.on_served(1, 0, TimeMs::from_millis(200));
        // Empty-handed serves send no frame, so they add no overhead.
        s.on_served(0, 1, TimeMs::from_millis(300));
        let series = s.overhead_series();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].1, 2.0);
        assert_eq!(s.overhead_rate_in(TimeMs::ZERO, TimeMs::from_secs(1)), 2.0);
        // The ratio counts on-wire frames only (1 graft + 1 non-empty
        // serve), matching the series.
        assert_eq!(s.control_messages(), 2);
        assert_eq!(s.overhead_ratio(4), 0.5);
    }

    #[test]
    fn ratio_handles_zero_deliveries() {
        let s = RecoveryStats::new(DurationMs::from_secs(1));
        assert_eq!(s.overhead_ratio(0), 0.0);
    }
}
