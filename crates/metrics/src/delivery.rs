//! Per-message delivery tracking and atomicity.

use std::collections::HashMap;

use agb_types::{EventId, FastHashMap, NodeId, TimeMs};

/// A dense set of node ids, stored as a lazily grown bitset.
///
/// Delivery tracking inserts one entry per (message, receiver) pair —
/// the single highest-volume metrics operation at large scale — so
/// membership is a bit test instead of a hash probe, and a full group's
/// receiver set costs `n/8` bytes instead of a hash table.
///
/// # Example
///
/// ```
/// use agb_metrics::NodeSet;
/// use agb_types::NodeId;
///
/// let mut s = NodeSet::default();
/// assert!(s.insert(NodeId::new(70)));
/// assert!(!s.insert(NodeId::new(70)));
/// assert!(s.contains(NodeId::new(70)));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// Adds `node`; returns whether it was newly inserted.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (word, bit) = (node.index() / 64, node.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.words[word] & mask != 0 {
            return false;
        }
        self.words[word] |= mask;
        self.len += 1;
        true
    }

    /// Whether `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        let (word, bit) = (node.index() / 64, node.index() % 64);
        self.words.get(word).is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Everything known about one broadcast message.
#[derive(Debug, Clone)]
pub struct MessageRecord {
    /// When the origin admitted it (None if only deliveries were seen).
    pub admitted_at: Option<TimeMs>,
    /// Nodes that delivered it (each counted once).
    pub receivers: NodeSet,
    /// Time of the first delivery.
    pub first_delivery: Option<TimeMs>,
    /// Time of the last delivery.
    pub last_delivery: Option<TimeMs>,
    /// Sum of delivery ages (hops), for mean hop-count reporting.
    pub age_sum: u64,
}

impl MessageRecord {
    fn new() -> Self {
        MessageRecord {
            admitted_at: None,
            receivers: NodeSet::default(),
            first_delivery: None,
            last_delivery: None,
            age_sum: 0,
        }
    }

    /// Number of distinct receivers.
    pub fn receiver_count(&self) -> usize {
        self.receivers.len()
    }

    /// Mean age (hops) over this message's deliveries.
    pub fn mean_delivery_age(&self) -> f64 {
        if self.receivers.is_empty() {
            0.0
        } else {
            self.age_sum as f64 / self.receivers.len() as f64
        }
    }
}

/// Aggregate answer to "how reliable was the broadcast?".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomicityReport {
    /// Messages considered (after windowing).
    pub messages: usize,
    /// Mean fraction of the group reached, in `[0, 1]` (Fig. 8(a)).
    pub avg_receiver_fraction: f64,
    /// Fraction of messages delivered to more than `threshold` of the
    /// group (Fig. 8(b): threshold 0.95).
    pub atomic_fraction: f64,
}

/// Tracks deliveries of every message across a fixed group of `n` nodes.
///
/// # Example
///
/// ```
/// use agb_metrics::DeliveryTracker;
/// use agb_types::{EventId, NodeId, TimeMs};
///
/// let mut t = DeliveryTracker::new(4);
/// let id = EventId::new(NodeId::new(0), 0);
/// t.on_admitted(id, TimeMs::ZERO);
/// for n in 0..3 {
///     t.on_delivered(NodeId::new(n), id, 2, TimeMs::from_secs(1));
/// }
/// let report = t.atomicity(0.5, None);
/// assert_eq!(report.messages, 1);
/// assert_eq!(report.avg_receiver_fraction, 0.75);
/// assert_eq!(report.atomic_fraction, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct DeliveryTracker {
    n_nodes: usize,
    records: FastHashMap<EventId, MessageRecord>,
}

impl DeliveryTracker {
    /// Creates a tracker for a group of `n_nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes == 0`.
    pub fn new(n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "group must have at least one node");
        DeliveryTracker {
            n_nodes,
            records: FastHashMap::default(),
        }
    }

    /// Group size.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Records the admission of a message at its origin (keeps the earliest
    /// admission time if called twice).
    pub fn on_admitted(&mut self, id: EventId, at: TimeMs) {
        let rec = self.records.entry(id).or_insert_with(MessageRecord::new);
        rec.admitted_at = Some(rec.admitted_at.map_or(at, |t| if at < t { at } else { t }));
    }

    /// Records a delivery. Duplicate deliveries at the same node are
    /// counted once.
    pub fn on_delivered(&mut self, node: NodeId, id: EventId, age: u32, at: TimeMs) {
        let rec = self.records.entry(id).or_insert_with(MessageRecord::new);
        if rec.receivers.insert(node) {
            rec.age_sum += u64::from(age);
            rec.first_delivery = Some(
                rec.first_delivery
                    .map_or(at, |t| if at < t { at } else { t }),
            );
            rec.last_delivery = Some(
                rec.last_delivery
                    .map_or(at, |t| if at > t { at } else { t }),
            );
        }
    }

    /// Number of tracked messages.
    pub fn message_count(&self) -> usize {
        self.records.len()
    }

    /// The record for one message, if tracked.
    pub fn record(&self, id: EventId) -> Option<&MessageRecord> {
        self.records.get(&id)
    }

    /// Iterates over `(id, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&EventId, &MessageRecord)> {
        self.records.iter()
    }

    /// Windowed records in a deterministic (id-sorted) order, so
    /// float aggregation over them is reproducible regardless of hash-map
    /// iteration order.
    fn windowed(&self, window: Option<(TimeMs, TimeMs)>) -> impl Iterator<Item = &MessageRecord> {
        let mut selected: Vec<(&EventId, &MessageRecord)> = self
            .records
            .iter()
            .filter(move |(_, r)| match window {
                None => true,
                Some((from, to)) => match r.admitted_at.or(r.first_delivery) {
                    Some(t) => t >= from && t < to,
                    None => false,
                },
            })
            .collect();
        selected.sort_by_key(|&(id, _)| *id);
        selected.into_iter().map(|(_, r)| r)
    }

    /// Atomicity over messages admitted within `window` (or all).
    ///
    /// `threshold` is the fraction of the group that must deliver a message
    /// for it to count as atomic; the paper uses 0.95 ("messages to >95% of
    /// receivers").
    pub fn atomicity(&self, threshold: f64, window: Option<(TimeMs, TimeMs)>) -> AtomicityReport {
        let mut messages = 0usize;
        let mut fraction_sum = 0.0f64;
        let mut atomic = 0usize;
        for rec in self.windowed(window) {
            messages += 1;
            let frac = rec.receiver_count() as f64 / self.n_nodes as f64;
            fraction_sum += frac;
            if frac > threshold {
                atomic += 1;
            }
        }
        AtomicityReport {
            messages,
            avg_receiver_fraction: if messages == 0 {
                0.0
            } else {
                fraction_sum / messages as f64
            },
            atomic_fraction: if messages == 0 {
                0.0
            } else {
                atomic as f64 / messages as f64
            },
        }
    }

    /// Per-time-bin atomicity (the Fig. 9(b) time series): messages are
    /// bucketed by admission time; returns `(bin_start, report)` pairs in
    /// time order. Bins with no messages are omitted.
    pub fn atomicity_series(
        &self,
        threshold: f64,
        bin: agb_types::DurationMs,
    ) -> Vec<(TimeMs, AtomicityReport)> {
        let bin_ms = bin.as_millis().max(1);
        let mut bins: HashMap<u64, (usize, f64, usize)> = HashMap::new();
        for rec in self.records.values() {
            let Some(t) = rec.admitted_at.or(rec.first_delivery) else {
                continue;
            };
            let b = t.as_millis() / bin_ms;
            let frac = rec.receiver_count() as f64 / self.n_nodes as f64;
            let entry = bins.entry(b).or_insert((0, 0.0, 0));
            entry.0 += 1;
            entry.1 += frac;
            if frac > threshold {
                entry.2 += 1;
            }
        }
        let mut out: Vec<(TimeMs, AtomicityReport)> = bins
            .into_iter()
            .map(|(b, (messages, frac_sum, atomic))| {
                (
                    TimeMs::from_millis(b * bin_ms),
                    AtomicityReport {
                        messages,
                        avg_receiver_fraction: frac_sum / messages as f64,
                        atomic_fraction: atomic as f64 / messages as f64,
                    },
                )
            })
            .collect();
        out.sort_by_key(|&(t, _)| t);
        out
    }

    /// Atomicity measured **among correct nodes**: for each message, the
    /// eligible receiver set is the nodes that stayed up throughout
    /// `[admission, admission + horizon]` according to `timeline`; the
    /// delivery fraction and the `threshold` criterion are computed against
    /// that set instead of the nominal group size.
    ///
    /// This is the churn experiments' headline metric: a crashed node
    /// cannot be expected to deliver, so it must not count against the
    /// protocol — while a node that stayed up and still missed the message
    /// must.
    ///
    /// Messages whose eligible set is empty (everyone churned) are skipped.
    pub fn correct_atomicity(
        &self,
        threshold: f64,
        window: Option<(TimeMs, TimeMs)>,
        timeline: &crate::MembershipTimeline,
        horizon: agb_types::DurationMs,
    ) -> AtomicityReport {
        let mut messages = 0usize;
        let mut fraction_sum = 0.0f64;
        let mut atomic = 0usize;
        for rec in self.windowed(window) {
            let Some(t0) = rec.admitted_at.or(rec.first_delivery) else {
                continue;
            };
            let eligible = timeline.correct_nodes(t0, t0 + horizon);
            if eligible.is_empty() {
                continue;
            }
            let reached = eligible
                .iter()
                .filter(|&&n| rec.receivers.contains(n))
                .count();
            messages += 1;
            let frac = reached as f64 / eligible.len() as f64;
            fraction_sum += frac;
            if frac > threshold {
                atomic += 1;
            }
        }
        AtomicityReport {
            messages,
            avg_receiver_fraction: if messages == 0 {
                0.0
            } else {
                fraction_sum / messages as f64
            },
            atomic_fraction: if messages == 0 {
                0.0
            } else {
                atomic as f64 / messages as f64
            },
        }
    }

    /// Mean delivery age (hops) across all windowed messages' deliveries.
    pub fn mean_delivery_age(&self, window: Option<(TimeMs, TimeMs)>) -> f64 {
        let mut ages = 0u64;
        let mut count = 0u64;
        for rec in self.windowed(window) {
            ages += rec.age_sum;
            count += rec.receivers.len() as u64;
        }
        if count == 0 {
            0.0
        } else {
            ages as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_types::DurationMs;

    fn id(n: u32, s: u64) -> EventId {
        EventId::new(NodeId::new(n), s)
    }

    #[test]
    fn counts_receivers_once() {
        let mut t = DeliveryTracker::new(10);
        let m = id(0, 0);
        t.on_delivered(NodeId::new(1), m, 1, TimeMs::ZERO);
        t.on_delivered(NodeId::new(1), m, 3, TimeMs::from_secs(1));
        assert_eq!(t.record(m).unwrap().receiver_count(), 1);
        assert_eq!(t.record(m).unwrap().age_sum, 1);
    }

    #[test]
    fn atomicity_thresholds() {
        let mut t = DeliveryTracker::new(10);
        // Message A reaches all 10, message B reaches 5.
        for n in 0..10 {
            t.on_delivered(NodeId::new(n), id(0, 0), 1, TimeMs::ZERO);
        }
        for n in 0..5 {
            t.on_delivered(NodeId::new(n), id(0, 1), 1, TimeMs::ZERO);
        }
        let r = t.atomicity(0.95, None);
        assert_eq!(r.messages, 2);
        assert!((r.avg_receiver_fraction - 0.75).abs() < 1e-12);
        assert_eq!(r.atomic_fraction, 0.5);
    }

    #[test]
    fn threshold_is_strictly_greater() {
        let mut t = DeliveryTracker::new(10);
        for n in 0..5 {
            t.on_delivered(NodeId::new(n), id(0, 0), 1, TimeMs::ZERO);
        }
        // Exactly 50%: NOT ">50%".
        assert_eq!(t.atomicity(0.5, None).atomic_fraction, 0.0);
        assert_eq!(t.atomicity(0.49, None).atomic_fraction, 1.0);
    }

    #[test]
    fn windowing_filters_by_admission_time() {
        let mut t = DeliveryTracker::new(2);
        t.on_admitted(id(0, 0), TimeMs::from_secs(1));
        t.on_delivered(NodeId::new(0), id(0, 0), 0, TimeMs::from_secs(1));
        t.on_admitted(id(0, 1), TimeMs::from_secs(10));
        t.on_delivered(NodeId::new(0), id(0, 1), 0, TimeMs::from_secs(10));
        t.on_delivered(NodeId::new(1), id(0, 1), 1, TimeMs::from_secs(11));
        let early = t.atomicity(0.95, Some((TimeMs::ZERO, TimeMs::from_secs(5))));
        assert_eq!(early.messages, 1);
        assert!((early.avg_receiver_fraction - 0.5).abs() < 1e-12);
        let late = t.atomicity(0.95, Some((TimeMs::from_secs(5), TimeMs::from_secs(20))));
        assert_eq!(late.messages, 1);
        assert_eq!(late.avg_receiver_fraction, 1.0);
    }

    #[test]
    fn series_bins_by_admission() {
        let mut t = DeliveryTracker::new(2);
        for (seq, sec) in [(0, 0), (1, 1), (2, 10)] {
            t.on_admitted(id(0, seq), TimeMs::from_secs(sec));
            t.on_delivered(NodeId::new(0), id(0, seq), 0, TimeMs::from_secs(sec));
            t.on_delivered(NodeId::new(1), id(0, seq), 1, TimeMs::from_secs(sec));
        }
        let series = t.atomicity_series(0.95, DurationMs::from_secs(5));
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, TimeMs::ZERO);
        assert_eq!(series[0].1.messages, 2);
        assert_eq!(series[1].0, TimeMs::from_secs(10));
        assert_eq!(series[1].1.messages, 1);
        assert_eq!(series[1].1.atomic_fraction, 1.0);
    }

    #[test]
    fn mean_delivery_age_weights_by_delivery() {
        let mut t = DeliveryTracker::new(4);
        t.on_delivered(NodeId::new(0), id(0, 0), 2, TimeMs::ZERO);
        t.on_delivered(NodeId::new(1), id(0, 0), 4, TimeMs::ZERO);
        t.on_delivered(NodeId::new(0), id(0, 1), 6, TimeMs::ZERO);
        assert!((t.mean_delivery_age(None) - 4.0).abs() < 1e-12);
        assert!((t.record(id(0, 0)).unwrap().mean_delivery_age() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn correct_atomicity_excludes_churned_nodes() {
        use crate::MembershipTimeline;
        let mut t = DeliveryTracker::new(4);
        let mut tl = MembershipTimeline::new(4);
        // Node 3 is down for the whole dissemination window of message 0.
        tl.record(NodeId::new(3), TimeMs::from_secs(1), false);
        tl.record(NodeId::new(3), TimeMs::from_secs(60), true);
        t.on_admitted(id(0, 0), TimeMs::from_secs(5));
        for n in 0..3 {
            t.on_delivered(NodeId::new(n), id(0, 0), 1, TimeMs::from_secs(6));
        }
        // Raw atomicity counts node 3 as a miss...
        let raw = t.atomicity(0.95, None);
        assert!((raw.avg_receiver_fraction - 0.75).abs() < 1e-12);
        assert_eq!(raw.atomic_fraction, 0.0);
        // ...the correct-node report does not.
        let correct = t.correct_atomicity(0.95, None, &tl, agb_types::DurationMs::from_secs(10));
        assert_eq!(correct.messages, 1);
        assert_eq!(correct.avg_receiver_fraction, 1.0);
        assert_eq!(correct.atomic_fraction, 1.0);
    }

    #[test]
    fn correct_atomicity_still_counts_up_nodes_that_missed() {
        use crate::MembershipTimeline;
        let mut t = DeliveryTracker::new(4);
        let tl = MembershipTimeline::new(4);
        t.on_admitted(id(0, 0), TimeMs::from_secs(5));
        for n in 0..3 {
            t.on_delivered(NodeId::new(n), id(0, 0), 1, TimeMs::from_secs(6));
        }
        // All four nodes stayed up: node 3's miss is a real miss.
        let correct = t.correct_atomicity(0.95, None, &tl, agb_types::DurationMs::from_secs(10));
        assert!((correct.avg_receiver_fraction - 0.75).abs() < 1e-12);
        assert_eq!(correct.atomic_fraction, 0.0);
    }

    #[test]
    fn empty_tracker_reports_zeroes() {
        let t = DeliveryTracker::new(3);
        let r = t.atomicity(0.95, None);
        assert_eq!(r.messages, 0);
        assert_eq!(r.avg_receiver_fraction, 0.0);
        assert_eq!(r.atomic_fraction, 0.0);
        assert_eq!(t.mean_delivery_age(None), 0.0);
        assert_eq!(t.message_count(), 0);
        assert_eq!(t.n_nodes(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = DeliveryTracker::new(0);
    }
}
