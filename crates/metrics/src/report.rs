//! Plain-text tables for the benchmark harness, formatted like the paper's
//! figures (one row per x-axis point, one column per series).

use std::fmt;

/// Formats a float compactly: integers without decimals, otherwise two
/// decimal places.
///
/// # Example
///
/// ```
/// use agb_metrics::format_f64;
/// assert_eq!(format_f64(30.0), "30");
/// assert_eq!(format_f64(5.333), "5.33");
/// ```
pub fn format_f64(v: f64) -> String {
    if v.is_finite() && (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

/// A column-aligned plain-text table.
///
/// # Example
///
/// ```
/// use agb_metrics::Table;
///
/// let mut t = Table::new("Figure 4: maximum input rate", &["buffer", "max rate (msg/s)"]);
/// t.row(&["30".into(), "7.5".into()]);
/// t.row(&["60".into(), "15".into()]);
/// let text = t.to_string();
/// assert!(text.contains("Figure 4"));
/// assert!(text.contains("buffer"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of floats, formatted with [`format_f64`].
    pub fn row_f64(&mut self, cells: &[f64]) {
        let cells: Vec<String> = cells.iter().map(|&v| format_f64(v)).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "# {}", self.title)?;
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
            .collect();
        writeln!(f, "  {}", header_line.join("  "))?;
        let rule_len = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(rule_len))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "  {}", line.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_aligned_columns() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.row(&["1".into(), "10".into()]);
        t.row_f64(&[2.0, 123.456]);
        let s = t.to_string();
        assert!(s.contains("# demo"));
        assert!(s.contains("123.46"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_f64(0.0), "0");
        assert_eq!(format_f64(-2.0), "-2");
        assert_eq!(format_f64(0.126), "0.13");
        assert_eq!(format_f64(f64::NAN), "NaN");
    }
}
