//! Plain-text tables for the benchmark harness, formatted like the paper's
//! figures (one row per x-axis point, one column per series).

use std::fmt;

/// Formats a float compactly: integers without decimals, otherwise two
/// decimal places. Non-finite values render as `NaN` / `inf` / `-inf`
/// rather than relying on the default float formatter.
///
/// # Example
///
/// ```
/// use agb_metrics::format_f64;
/// assert_eq!(format_f64(30.0), "30");
/// assert_eq!(format_f64(5.333), "5.33");
/// assert_eq!(format_f64(f64::INFINITY), "inf");
/// ```
pub fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "inf" } else { "-inf" }.to_string()
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

/// A column-aligned plain-text table.
///
/// # Example
///
/// ```
/// use agb_metrics::Table;
///
/// let mut t = Table::new("Figure 4: maximum input rate", &["buffer", "max rate (msg/s)"]);
/// t.row(&["30".into(), "7.5".into()]);
/// t.row(&["60".into(), "15".into()]);
/// let text = t.to_string();
/// assert!(text.contains("Figure 4"));
/// assert!(text.contains("buffer"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of floats, formatted with [`format_f64`].
    pub fn row_f64(&mut self, cells: &[f64]) {
        let cells: Vec<String> = cells.iter().map(|&v| format_f64(v)).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Whether a rendered cell reads as a number ([`format_f64`] output,
/// integers, percentages): decides column alignment.
fn looks_numeric(cell: &str) -> bool {
    let cell = cell.strip_suffix('%').unwrap_or(cell);
    matches!(cell, "" | "NaN" | "inf" | "-inf") || cell.parse::<f64>().is_ok()
}

/// Renders one line of cells padded to `widths`, right-aligning numeric
/// columns and left-aligning text columns (trailing spaces trimmed).
fn render_line(cells: &[String], widths: &[usize], numeric: &[bool]) -> String {
    let line: Vec<String> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if numeric[i] {
                format!("{:>w$}", c, w = widths[i])
            } else {
                format!("{:<w$}", c, w = widths[i])
            }
        })
        .collect();
    line.join("  ").trim_end().to_string()
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        // A column is numeric (right-aligned) when every data cell in it
        // reads as a number; headers don't vote, and an empty column
        // defaults to numeric like the all-numeric tables of old.
        let mut numeric = vec![true; self.headers.len()];
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
                numeric[i] = numeric[i] && looks_numeric(cell);
            }
        }
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "  {}", render_line(&self.headers, &widths, &numeric))?;
        let rule_len = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(rule_len))?;
        for row in &self.rows {
            writeln!(f, "  {}", render_line(row, &widths, &numeric))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_aligned_columns() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.row(&["1".into(), "10".into()]);
        t.row_f64(&[2.0, 123.456]);
        let s = t.to_string();
        assert!(s.contains("# demo"));
        assert!(s.contains("123.46"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_f64(0.0), "0");
        assert_eq!(format_f64(-2.0), "-2");
        assert_eq!(format_f64(0.126), "0.13");
        assert_eq!(format_f64(f64::NAN), "NaN");
        assert_eq!(format_f64(f64::INFINITY), "inf");
        assert_eq!(format_f64(f64::NEG_INFINITY), "-inf");
    }

    #[test]
    fn numeric_columns_right_align_and_text_columns_left_align() {
        let mut t = Table::new("mixed", &["bucket", "count"]);
        t.row(&["<= 1".into(), "7".into()]);
        t.row(&["> 16".into(), "1234".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        // Text column pads on the right, numeric column on the left.
        assert_eq!(lines[3], "  <= 1        7");
        assert_eq!(lines[4], "  > 16     1234");
        // Header of a text column is left-aligned with its cells.
        assert!(lines[1].starts_with("  bucket"));
    }

    #[test]
    fn all_numeric_rows_stay_right_aligned() {
        let mut t = Table::new("nums", &["x", "longer"]);
        t.row_f64(&[1.0, 2.0]);
        t.row_f64(&[10.0, f64::NAN]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[3], "   1       2");
        assert_eq!(lines[4], "  10     NaN");
    }
}
