//! The one-stop collector wired between the protocol nodes and the figure
//! harnesses.

use agb_core::ProtocolEvent;
use agb_types::{DurationMs, NodeId, TimeMs};

use crate::churn::{CatchUpTracker, MembershipTimeline};
use crate::delivery::{AtomicityReport, DeliveryTracker};
use crate::drop_age::DropAgeStats;
use crate::rates::{AllowedRateTracker, RateMeter};
use crate::recovery::RecoveryStats;

/// Consumes every [`ProtocolEvent`] from every node and maintains all the
/// aggregates the paper's figures need.
///
/// # Example
///
/// ```
/// use agb_core::ProtocolEvent;
/// use agb_metrics::MetricsCollector;
/// use agb_types::{DurationMs, EventId, NodeId, TimeMs};
///
/// let mut m = MetricsCollector::new(10, DurationMs::from_secs(1));
/// let id = EventId::new(NodeId::new(0), 0);
/// m.on_event(NodeId::new(0), &ProtocolEvent::Admitted { id, at: TimeMs::ZERO });
/// assert_eq!(m.admitted().total(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    n_nodes: usize,
    deliveries: DeliveryTracker,
    drop_ages: DropAgeStats,
    admitted: RateMeter,
    delivered: RateMeter,
    allowed: AllowedRateTracker,
    recovery: RecoveryStats,
    timeline: MembershipTimeline,
    catch_up: CatchUpTracker,
}

impl MetricsCollector {
    /// Creates a collector for an `n_nodes` group with the given time-bin
    /// width for rate/series queries.
    pub fn new(n_nodes: usize, bin: DurationMs) -> Self {
        MetricsCollector {
            n_nodes,
            deliveries: DeliveryTracker::new(n_nodes),
            drop_ages: DropAgeStats::new(bin),
            admitted: RateMeter::new(bin),
            delivered: RateMeter::new(bin),
            allowed: AllowedRateTracker::new(),
            recovery: RecoveryStats::new(bin),
            timeline: MembershipTimeline::new(n_nodes),
            catch_up: CatchUpTracker::default(),
        }
    }

    /// Group size.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Registers a node's initial allowed rate (adaptive senders).
    pub fn set_initial_rate(&mut self, node: NodeId, rate: f64) {
        self.allowed.set_initial(node, rate);
    }

    /// Dispatches one protocol event observed at `node`.
    pub fn on_event(&mut self, node: NodeId, event: &ProtocolEvent) {
        match event {
            ProtocolEvent::Admitted { id, at } => {
                self.deliveries.on_admitted(*id, *at);
                self.admitted.record(*at);
            }
            ProtocolEvent::Delivered { event, from: _, at } => {
                self.deliveries
                    .on_delivered(node, event.id(), event.age(), *at);
                self.delivered.record(*at);
                self.catch_up.on_delivery(node, *at);
            }
            ProtocolEvent::Dropped {
                id: _,
                age,
                reason,
                at,
            } => {
                self.drop_ages.record(*age, *reason, *at);
            }
            ProtocolEvent::RateChanged { new, at, .. } => {
                self.allowed.on_change(node, *new, *at);
            }
            ProtocolEvent::PeriodRollover { .. } => {}
            ProtocolEvent::RecoveryRequested { ids, at, .. } => {
                self.recovery.on_requested(*ids, *at);
            }
            ProtocolEvent::RecoveryServed {
                events, missed, at, ..
            } => {
                self.recovery.on_served(*events, *missed, *at);
            }
            ProtocolEvent::Recovered { at, .. } => {
                self.recovery.on_recovered();
                self.catch_up.on_recovered(node, *at);
            }
            ProtocolEvent::RecoveryDuplicate { .. } => {
                self.recovery.on_duplicate();
            }
            ProtocolEvent::RecoveryAbandoned { .. } => {
                self.recovery.on_abandoned();
            }
        }
    }

    /// Dispatches a batch of events observed at `node`.
    pub fn on_events<'a>(
        &mut self,
        node: NodeId,
        events: impl IntoIterator<Item = &'a ProtocolEvent>,
    ) {
        for e in events {
            self.on_event(node, e);
        }
    }

    /// The delivery tracker.
    pub fn deliveries(&self) -> &DeliveryTracker {
        &self.deliveries
    }

    /// Drop-age statistics.
    pub fn drop_ages(&self) -> &DropAgeStats {
        &self.drop_ages
    }

    /// Admissions (system input) meter.
    pub fn admitted(&self) -> &RateMeter {
        &self.admitted
    }

    /// Deliveries meter (all nodes).
    pub fn delivered(&self) -> &RateMeter {
        &self.delivered
    }

    /// The allowed-rate step tracker.
    pub fn allowed(&self) -> &AllowedRateTracker {
        &self.allowed
    }

    /// Recovery-layer aggregates (zeros when recovery is disabled).
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Records a membership transition (node up/down) at `at` — called by
    /// the scenario driver as it schedules churn.
    pub fn record_membership(&mut self, node: NodeId, at: TimeMs, up: bool) {
        self.timeline.record(node, at, up);
        if up {
            self.catch_up.mark_restart(node, at);
        }
    }

    /// Marks a node absent from the start of the run (late joiner).
    pub fn mark_absent_from_start(&mut self, node: NodeId) {
        self.timeline.set_absent_from_start(node);
    }

    /// The recorded up/down timeline.
    pub fn membership_timeline(&self) -> &MembershipTimeline {
        &self.timeline
    }

    /// Post-rejoin catch-up measurements.
    pub fn catch_up(&self) -> &CatchUpTracker {
        &self.catch_up
    }

    /// Convenience: atomicity among correct nodes (threshold 0.95) over an
    /// admission-time window, with `horizon` as the per-message
    /// dissemination allowance.
    pub fn correct_atomicity_95(
        &self,
        window: Option<(TimeMs, TimeMs)>,
        horizon: DurationMs,
    ) -> AtomicityReport {
        self.deliveries
            .correct_atomicity(0.95, window, &self.timeline, horizon)
    }

    /// Convenience: recovery control messages per delivered message.
    pub fn recovery_overhead_ratio(&self) -> f64 {
        self.recovery.overhead_ratio(self.delivered.total())
    }

    /// Convenience: atomicity (threshold 0.95, the paper's criterion) over
    /// an admission-time window.
    pub fn atomicity_95(&self, window: Option<(TimeMs, TimeMs)>) -> AtomicityReport {
        self.deliveries.atomicity(0.95, window)
    }

    /// Convenience: system input rate (admissions/s) in a window.
    pub fn input_rate(&self, from: TimeMs, to: TimeMs) -> f64 {
        self.admitted.rate_in(from, to)
    }

    /// Convenience: per-receiver goodput (deliveries / node / s) in a
    /// window — the paper's Fig. 7(b) "output rate".
    pub fn output_rate(&self, from: TimeMs, to: TimeMs) -> f64 {
        self.delivered.rate_in(from, to) / self.n_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_core::{Event, PurgeReason};
    use agb_types::{EventId, Payload};

    fn id(s: u64) -> EventId {
        EventId::new(NodeId::new(0), s)
    }

    fn collector() -> MetricsCollector {
        MetricsCollector::new(4, DurationMs::from_secs(1))
    }

    #[test]
    fn routes_admissions_and_deliveries() {
        let mut m = collector();
        m.on_event(
            NodeId::new(0),
            &ProtocolEvent::Admitted {
                id: id(0),
                at: TimeMs::ZERO,
            },
        );
        for n in 0..4 {
            m.on_event(
                NodeId::new(n),
                &ProtocolEvent::Delivered {
                    event: Event::with_age(id(0), 2, Payload::new()),
                    from: NodeId::new(0),
                    at: TimeMs::from_millis(500),
                },
            );
        }
        assert_eq!(m.admitted().total(), 1);
        assert_eq!(m.delivered().total(), 4);
        let report = m.atomicity_95(None);
        assert_eq!(report.messages, 1);
        assert_eq!(report.avg_receiver_fraction, 1.0);
        assert_eq!(report.atomic_fraction, 1.0);
        // Input 1 msg in 1 s; output 4 deliveries / 4 nodes / 1 s.
        assert_eq!(m.input_rate(TimeMs::ZERO, TimeMs::from_secs(1)), 1.0);
        assert_eq!(m.output_rate(TimeMs::ZERO, TimeMs::from_secs(1)), 1.0);
    }

    #[test]
    fn routes_drops_by_reason() {
        let mut m = collector();
        m.on_event(
            NodeId::new(1),
            &ProtocolEvent::Dropped {
                id: id(0),
                age: 3,
                reason: PurgeReason::Overflow,
                at: TimeMs::ZERO,
            },
        );
        m.on_event(
            NodeId::new(1),
            &ProtocolEvent::Dropped {
                id: id(1),
                age: 11,
                reason: PurgeReason::AgeCap,
                at: TimeMs::ZERO,
            },
        );
        assert_eq!(m.drop_ages().mean_overflow_age(), Some(3.0));
        assert_eq!(m.drop_ages().mean_age_cap_age(), Some(11.0));
    }

    #[test]
    fn routes_rate_changes() {
        let mut m = collector();
        m.set_initial_rate(NodeId::new(2), 4.0);
        m.on_event(
            NodeId::new(2),
            &ProtocolEvent::RateChanged {
                old: 4.0,
                new: 3.0,
                reason: agb_core::RateChangeReason::Congestion,
                at: TimeMs::from_secs(5),
            },
        );
        assert_eq!(
            m.allowed().rate_at(NodeId::new(2), TimeMs::from_secs(1)),
            4.0
        );
        assert_eq!(
            m.allowed().rate_at(NodeId::new(2), TimeMs::from_secs(6)),
            3.0
        );
    }

    #[test]
    fn batch_dispatch() {
        let mut m = collector();
        let events = vec![
            ProtocolEvent::Admitted {
                id: id(0),
                at: TimeMs::ZERO,
            },
            ProtocolEvent::PeriodRollover {
                period: 1,
                estimate: 90,
                at: TimeMs::ZERO,
            },
        ];
        m.on_events(NodeId::new(0), &events);
        assert_eq!(m.admitted().total(), 1);
        assert_eq!(m.n_nodes(), 4);
    }
}
