//! Drop-age statistics: the congestion signal, measured.

use agb_types::FastHashMap;

use agb_core::PurgeReason;
use agb_types::{DurationMs, RunningStats, TimeMs};

/// Accumulates the ages of purged events, split by purge reason, globally
/// and per time bin.
///
/// The paper's §2.3 observation — the average overflow-drop age at the
/// congestion knee is a buffer-size-independent constant — is checked by
/// feeding this collector and comparing [`DropAgeStats::mean_overflow_age`]
/// across configurations.
///
/// # Example
///
/// ```
/// use agb_metrics::DropAgeStats;
/// use agb_core::PurgeReason;
/// use agb_types::{DurationMs, TimeMs};
///
/// let mut d = DropAgeStats::new(DurationMs::from_secs(10));
/// d.record(5, PurgeReason::Overflow, TimeMs::from_secs(1));
/// d.record(7, PurgeReason::Overflow, TimeMs::from_secs(2));
/// d.record(11, PurgeReason::AgeCap, TimeMs::from_secs(3));
/// assert_eq!(d.mean_overflow_age(), Some(6.0));
/// assert_eq!(d.overflow_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DropAgeStats {
    bin: DurationMs,
    overflow: RunningStats,
    age_cap: RunningStats,
    overflow_bins: FastHashMap<u64, RunningStats>,
}

impl DropAgeStats {
    /// Creates a collector with the given time-bin width for series
    /// queries.
    pub fn new(bin: DurationMs) -> Self {
        DropAgeStats {
            bin,
            overflow: RunningStats::new(),
            age_cap: RunningStats::new(),
            overflow_bins: FastHashMap::default(),
        }
    }

    /// Records one purge.
    pub fn record(&mut self, age: u32, reason: PurgeReason, at: TimeMs) {
        match reason {
            PurgeReason::Overflow => {
                self.overflow.push(f64::from(age));
                let b = at.as_millis() / self.bin.as_millis().max(1);
                self.overflow_bins
                    .entry(b)
                    .or_default()
                    .push(f64::from(age));
            }
            PurgeReason::AgeCap => self.age_cap.push(f64::from(age)),
        }
    }

    /// Mean age of overflow (congestion) drops, `None` if none occurred.
    pub fn mean_overflow_age(&self) -> Option<f64> {
        (self.overflow.count() > 0).then(|| self.overflow.mean())
    }

    /// Mean age of age-cap (end-of-life) removals, `None` if none occurred.
    pub fn mean_age_cap_age(&self) -> Option<f64> {
        (self.age_cap.count() > 0).then(|| self.age_cap.mean())
    }

    /// Number of overflow drops.
    pub fn overflow_count(&self) -> u64 {
        self.overflow.count()
    }

    /// Number of age-cap removals.
    pub fn age_cap_count(&self) -> u64 {
        self.age_cap.count()
    }

    /// Mean overflow drop age over bins starting within `[from, to)`.
    pub fn mean_overflow_age_in(&self, from: TimeMs, to: TimeMs) -> Option<f64> {
        let bin_ms = self.bin.as_millis().max(1);
        let mut acc = RunningStats::new();
        for (&b, s) in &self.overflow_bins {
            let start = b * bin_ms;
            if start >= from.as_millis() && start < to.as_millis() {
                acc.merge(s);
            }
        }
        (acc.count() > 0).then(|| acc.mean())
    }

    /// Per-bin mean overflow drop age, in time order.
    pub fn overflow_series(&self) -> Vec<(TimeMs, f64)> {
        let bin_ms = self.bin.as_millis().max(1);
        let mut out: Vec<(TimeMs, f64)> = self
            .overflow_bins
            .iter()
            .map(|(&b, s)| (TimeMs::from_millis(b * bin_ms), s.mean()))
            .collect();
        out.sort_by_key(|&(t, _)| t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_reasons() {
        let mut d = DropAgeStats::new(DurationMs::from_secs(1));
        d.record(4, PurgeReason::Overflow, TimeMs::ZERO);
        d.record(10, PurgeReason::AgeCap, TimeMs::ZERO);
        assert_eq!(d.mean_overflow_age(), Some(4.0));
        assert_eq!(d.mean_age_cap_age(), Some(10.0));
        assert_eq!(d.overflow_count(), 1);
        assert_eq!(d.age_cap_count(), 1);
    }

    #[test]
    fn empty_means_are_none() {
        let d = DropAgeStats::new(DurationMs::from_secs(1));
        assert_eq!(d.mean_overflow_age(), None);
        assert_eq!(d.mean_age_cap_age(), None);
        assert!(d.overflow_series().is_empty());
    }

    #[test]
    fn series_bins_in_time_order() {
        let mut d = DropAgeStats::new(DurationMs::from_secs(10));
        d.record(2, PurgeReason::Overflow, TimeMs::from_secs(25));
        d.record(4, PurgeReason::Overflow, TimeMs::from_secs(26));
        d.record(8, PurgeReason::Overflow, TimeMs::from_secs(5));
        let series = d.overflow_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (TimeMs::ZERO, 8.0));
        assert_eq!(series[1], (TimeMs::from_secs(20), 3.0));
    }
}
