//! Churn-aware measurement: who was *correct* when, and how fast rejoiners
//! catch back up.
//!
//! Under churn, raw atomicity is misleading: a message admitted while a
//! third of the group is crashed can never reach 100% of the nominal
//! membership, yet the broadcast may be perfectly reliable *among the
//! correct nodes*. [`MembershipTimeline`] records every node's up/down
//! intervals so [`DeliveryTracker`](crate::DeliveryTracker) can compute
//! delivery ratios against the per-message set of eligible receivers, and
//! [`CatchUpTracker`] measures how quickly a restarted node resumes
//! delivering (and, with the recovery layer, repairing) events.

use std::collections::HashMap;

use agb_types::{DurationMs, NodeId, TimeMs};

/// Per-node up/down intervals over a run.
///
/// Transitions are recorded by the scenario driver (the chaos engine knows
/// its schedule up front); queries answer "was `node` up at `t`" and "was
/// `node` up throughout `[from, to]`".
///
/// # Example
///
/// ```
/// use agb_metrics::MembershipTimeline;
/// use agb_types::{NodeId, TimeMs};
///
/// let mut tl = MembershipTimeline::new(3);
/// tl.record(NodeId::new(1), TimeMs::from_secs(10), false); // crash
/// tl.record(NodeId::new(1), TimeMs::from_secs(20), true); // restart
/// assert!(tl.up_at(NodeId::new(1), TimeMs::from_secs(5)));
/// assert!(!tl.up_at(NodeId::new(1), TimeMs::from_secs(15)));
/// assert!(!tl.up_during(NodeId::new(1), TimeMs::from_secs(5), TimeMs::from_secs(25)));
/// assert!(tl.up_during(NodeId::new(0), TimeMs::from_secs(5), TimeMs::from_secs(25)));
/// ```
#[derive(Debug, Clone)]
pub struct MembershipTimeline {
    n_nodes: usize,
    /// Transition lists per node, time-ordered: `(at, up)`. Nodes with no
    /// entry are up for the whole run.
    transitions: HashMap<NodeId, Vec<(TimeMs, bool)>>,
}

impl MembershipTimeline {
    /// A timeline for `n_nodes`, all up from time zero.
    pub fn new(n_nodes: usize) -> Self {
        MembershipTimeline {
            n_nodes,
            transitions: HashMap::new(),
        }
    }

    /// Group size.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Marks `node` as absent from time zero (a late joiner).
    pub fn set_absent_from_start(&mut self, node: NodeId) {
        self.record(node, TimeMs::ZERO, false);
    }

    /// Records a transition of `node` to up (`true`) or down (`false`) at
    /// `at`. Transitions may be recorded out of order; they are kept
    /// sorted.
    pub fn record(&mut self, node: NodeId, at: TimeMs, up: bool) {
        let list = self.transitions.entry(node).or_default();
        let pos = list.partition_point(|&(t, _)| t <= at);
        list.insert(pos, (at, up));
    }

    /// Whether `node` was up at `t`.
    pub fn up_at(&self, node: NodeId, t: TimeMs) -> bool {
        match self.transitions.get(&node) {
            None => true,
            Some(list) => list
                .iter()
                .rev()
                .find(|&&(at, _)| at <= t)
                .is_none_or(|&(_, up)| up),
        }
    }

    /// Whether `node` was up throughout the whole closed interval
    /// `[from, to]` — the "correct during this message's dissemination"
    /// criterion.
    pub fn up_during(&self, node: NodeId, from: TimeMs, to: TimeMs) -> bool {
        if !self.up_at(node, from) {
            return false;
        }
        match self.transitions.get(&node) {
            None => true,
            Some(list) => !list.iter().any(|&(at, up)| !up && at > from && at <= to),
        }
    }

    /// The nodes up throughout `[from, to]`.
    pub fn correct_nodes(&self, from: TimeMs, to: TimeMs) -> Vec<NodeId> {
        (0..self.n_nodes as u32)
            .map(NodeId::new)
            .filter(|&n| self.up_during(n, from, to))
            .collect()
    }

    /// Whether any transition was recorded (false = static membership).
    pub fn has_churn(&self) -> bool {
        !self.transitions.is_empty()
    }
}

/// One restart being tracked for catch-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatchUpRecord {
    /// The restarted node.
    pub node: NodeId,
    /// When it came back up.
    pub restarted_at: TimeMs,
    /// First post-restart application delivery, if any.
    pub first_delivery: Option<TimeMs>,
    /// First post-restart recovery-layer repair, if any.
    pub first_recovered: Option<TimeMs>,
}

impl CatchUpRecord {
    /// Latency from restart to the first delivery.
    pub fn delivery_latency(&self) -> Option<DurationMs> {
        self.first_delivery.map(|t| t.since(self.restarted_at))
    }
}

/// Measures post-rejoin catch-up: for every marked restart, the time until
/// the node delivers again (gossip has re-included it) and until the
/// recovery layer repairs its first gap (it is pulling missed history).
#[derive(Debug, Clone, Default)]
pub struct CatchUpTracker {
    records: Vec<CatchUpRecord>,
}

impl CatchUpTracker {
    /// Marks a restart of `node` at `at`.
    pub fn mark_restart(&mut self, node: NodeId, at: TimeMs) {
        self.records.push(CatchUpRecord {
            node,
            restarted_at: at,
            first_delivery: None,
            first_recovered: None,
        });
    }

    /// Feeds a delivery observed at `node`.
    pub fn on_delivery(&mut self, node: NodeId, at: TimeMs) {
        for r in self.records.iter_mut().rev() {
            if r.node == node && at >= r.restarted_at {
                if r.first_delivery.is_none() {
                    r.first_delivery = Some(at);
                }
                break;
            }
        }
    }

    /// Feeds a recovery-layer repair observed at `node`.
    pub fn on_recovered(&mut self, node: NodeId, at: TimeMs) {
        for r in self.records.iter_mut().rev() {
            if r.node == node && at >= r.restarted_at {
                if r.first_recovered.is_none() {
                    r.first_recovered = Some(at);
                }
                break;
            }
        }
    }

    /// All tracked restarts.
    pub fn records(&self) -> &[CatchUpRecord] {
        &self.records
    }

    /// Mean restart→first-delivery latency in ms over restarts that caught
    /// up.
    pub fn mean_delivery_latency_ms(&self) -> Option<f64> {
        let latencies: Vec<u64> = self
            .records
            .iter()
            .filter_map(|r| r.delivery_latency().map(|d| d.as_millis()))
            .collect();
        if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().sum::<u64>() as f64 / latencies.len() as f64)
        }
    }

    /// Restarts that never delivered again (measurement horizon reached
    /// first).
    pub fn stragglers(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.first_delivery.is_none())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_node_is_always_up() {
        let tl = MembershipTimeline::new(2);
        assert!(tl.up_at(NodeId::new(0), TimeMs::from_secs(100)));
        assert!(tl.up_during(NodeId::new(0), TimeMs::ZERO, TimeMs::from_secs(100)));
        assert!(!tl.has_churn());
        assert_eq!(tl.n_nodes(), 2);
    }

    #[test]
    fn crash_and_restart_intervals() {
        let mut tl = MembershipTimeline::new(3);
        tl.record(NodeId::new(1), TimeMs::from_secs(10), false);
        tl.record(NodeId::new(1), TimeMs::from_secs(20), true);
        assert!(tl.up_at(NodeId::new(1), TimeMs::from_secs(9)));
        assert!(!tl.up_at(NodeId::new(1), TimeMs::from_secs(10)));
        assert!(tl.up_at(NodeId::new(1), TimeMs::from_secs(20)));
        // Interval queries.
        assert!(tl.up_during(NodeId::new(1), TimeMs::ZERO, TimeMs::from_secs(9)));
        assert!(!tl.up_during(NodeId::new(1), TimeMs::ZERO, TimeMs::from_secs(10)));
        assert!(tl.up_during(NodeId::new(1), TimeMs::from_secs(20), TimeMs::from_secs(30)));
        assert!(tl.has_churn());
    }

    #[test]
    fn absent_from_start_until_joined() {
        let mut tl = MembershipTimeline::new(2);
        tl.set_absent_from_start(NodeId::new(1));
        tl.record(NodeId::new(1), TimeMs::from_secs(30), true);
        assert!(!tl.up_at(NodeId::new(1), TimeMs::from_secs(1)));
        assert!(tl.up_at(NodeId::new(1), TimeMs::from_secs(31)));
        assert_eq!(
            tl.correct_nodes(TimeMs::from_secs(40), TimeMs::from_secs(50)),
            vec![NodeId::new(0), NodeId::new(1)]
        );
        assert_eq!(
            tl.correct_nodes(TimeMs::ZERO, TimeMs::from_secs(50)),
            vec![NodeId::new(0)]
        );
    }

    #[test]
    fn out_of_order_records_are_sorted() {
        let mut tl = MembershipTimeline::new(1);
        tl.record(NodeId::new(0), TimeMs::from_secs(20), true);
        tl.record(NodeId::new(0), TimeMs::from_secs(10), false);
        assert!(!tl.up_at(NodeId::new(0), TimeMs::from_secs(15)));
        assert!(tl.up_at(NodeId::new(0), TimeMs::from_secs(25)));
    }

    #[test]
    fn catch_up_latency_per_restart() {
        let mut c = CatchUpTracker::default();
        c.mark_restart(NodeId::new(3), TimeMs::from_secs(10));
        // Deliveries before the restart don't count.
        c.on_delivery(NodeId::new(3), TimeMs::from_secs(5));
        assert_eq!(c.records()[0].first_delivery, None);
        c.on_delivery(NodeId::new(3), TimeMs::from_secs(12));
        c.on_delivery(NodeId::new(3), TimeMs::from_secs(14));
        c.on_recovered(NodeId::new(3), TimeMs::from_secs(13));
        let r = c.records()[0];
        assert_eq!(r.first_delivery, Some(TimeMs::from_secs(12)));
        assert_eq!(r.first_recovered, Some(TimeMs::from_secs(13)));
        assert_eq!(r.delivery_latency(), Some(DurationMs::from_secs(2)));
        assert_eq!(c.mean_delivery_latency_ms(), Some(2000.0));
        assert_eq!(c.stragglers(), 0);
    }

    #[test]
    fn second_restart_gets_its_own_record() {
        let mut c = CatchUpTracker::default();
        c.mark_restart(NodeId::new(0), TimeMs::from_secs(10));
        c.on_delivery(NodeId::new(0), TimeMs::from_secs(11));
        c.mark_restart(NodeId::new(0), TimeMs::from_secs(20));
        c.on_delivery(NodeId::new(0), TimeMs::from_secs(24));
        let rs = c.records();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].first_delivery, Some(TimeMs::from_secs(11)));
        assert_eq!(rs[1].first_delivery, Some(TimeMs::from_secs(24)));
        assert_eq!(c.mean_delivery_latency_ms(), Some(2500.0));
    }

    #[test]
    fn straggler_counted_when_no_delivery_follows() {
        let mut c = CatchUpTracker::default();
        c.mark_restart(NodeId::new(0), TimeMs::from_secs(10));
        assert_eq!(c.stragglers(), 1);
        assert_eq!(c.mean_delivery_latency_ms(), None);
    }
}
