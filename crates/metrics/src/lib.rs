//! Metrics for gossip broadcast experiments.
//!
//! Every figure in the paper's evaluation is a function of four measurement
//! families, which this crate implements:
//!
//! * **delivery tracking** ([`DeliveryTracker`]) — which nodes delivered
//!   which message, yielding *average % of receivers* (Fig. 8(a)) and
//!   *atomicity*, the fraction of messages reaching more than 95% of the
//!   group (Fig. 2, 8(b), 9(b));
//! * **drop ages** ([`DropAgeStats`]) — the average age of messages purged
//!   by buffer overflow, the congestion signal itself (Fig. 7(c), §2.3);
//! * **rates** ([`RateMeter`], [`AllowedRateTracker`]) — admitted input,
//!   delivered output and the adaptive controller's allowed rate over time
//!   (Fig. 6, 7(a,b), 9(a));
//! * **time series** ([`TimeSeries`]) — binned aggregation for the
//!   time-axis plots;
//! * **recovery** ([`RecoveryStats`]) — graft/retransmission counters and
//!   the `recovery_overhead` series of the pull-based repair layer
//!   (`agb-recovery`);
//! * **churn** ([`MembershipTimeline`], [`CatchUpTracker`]) — per-node
//!   up/down intervals, delivery ratios among *correct* nodes, and
//!   post-rejoin catch-up latency for the fault-injection scenarios
//!   (`agb-chaos`).
//!
//! [`MetricsCollector`] glues them together: feed it every
//! [`ProtocolEvent`](agb_core::ProtocolEvent) drained from every node and
//! query the figure-ready aggregates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod collector;
mod delivery;
mod drop_age;
mod rates;
mod recovery;
mod report;
mod series;

pub use churn::{CatchUpRecord, CatchUpTracker, MembershipTimeline};
pub use collector::MetricsCollector;
pub use delivery::{AtomicityReport, DeliveryTracker, MessageRecord, NodeSet};
pub use drop_age::DropAgeStats;
pub use rates::{AllowedRateTracker, RateMeter};
pub use recovery::RecoveryStats;
pub use report::{format_f64, Table};
pub use series::TimeSeries;
