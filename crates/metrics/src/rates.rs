//! Throughput meters and the allowed-rate step tracker.

use std::collections::HashMap;

use agb_types::{DurationMs, FastHashMap, NodeId, TimeMs};

/// Counts discrete occurrences (admissions, deliveries) into time bins and
/// reports them as rates.
///
/// # Example
///
/// ```
/// use agb_metrics::RateMeter;
/// use agb_types::{DurationMs, TimeMs};
///
/// let mut m = RateMeter::new(DurationMs::from_secs(1));
/// for ms in [100, 200, 1500] {
///     m.record(TimeMs::from_millis(ms));
/// }
/// assert_eq!(m.total(), 3);
/// // 2 events in [0,1s), 1 in [1s,2s).
/// let series = m.series();
/// assert_eq!(series[0].1, 2.0);
/// assert_eq!(series[1].1, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct RateMeter {
    bin: DurationMs,
    bins: FastHashMap<u64, u64>,
    total: u64,
}

impl RateMeter {
    /// Creates a meter with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn new(bin: DurationMs) -> Self {
        assert!(!bin.is_zero(), "bin width must be non-zero");
        RateMeter {
            bin,
            bins: FastHashMap::default(),
            total: 0,
        }
    }

    /// Records one occurrence at `at`.
    pub fn record(&mut self, at: TimeMs) {
        self.record_n(at, 1);
    }

    /// Records `n` occurrences at `at`.
    pub fn record_n(&mut self, at: TimeMs, n: u64) {
        let b = at.as_millis() / self.bin.as_millis();
        *self.bins.entry(b).or_default() += n;
        self.total += n;
    }

    /// Total occurrences recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Occurrences within `[from, to)` as a rate per second.
    pub fn rate_in(&self, from: TimeMs, to: TimeMs) -> f64 {
        if to <= from {
            return 0.0;
        }
        let bin_ms = self.bin.as_millis();
        let count: u64 = self
            .bins
            .iter()
            .filter(|(&b, _)| {
                let start = b * bin_ms;
                start >= from.as_millis() && start < to.as_millis()
            })
            .map(|(_, &c)| c)
            .sum();
        count as f64 / to.since(from).as_secs_f64()
    }

    /// `(bin_start, rate per second)` series in time order; empty bins
    /// between occupied ones are reported as zero.
    pub fn series(&self) -> Vec<(TimeMs, f64)> {
        if self.bins.is_empty() {
            return Vec::new();
        }
        let bin_ms = self.bin.as_millis();
        let lo = *self.bins.keys().min().expect("non-empty");
        let hi = *self.bins.keys().max().expect("non-empty");
        (lo..=hi)
            .map(|b| {
                let count = self.bins.get(&b).copied().unwrap_or(0);
                (
                    TimeMs::from_millis(b * bin_ms),
                    count as f64 / self.bin.as_secs_f64(),
                )
            })
            .collect()
    }
}

/// Tracks the adaptive controller's allowed rate per node as a step
/// function, and aggregates the group-wide allowed rate over time
/// (Fig. 9(a)).
///
/// # Example
///
/// ```
/// use agb_metrics::AllowedRateTracker;
/// use agb_types::{NodeId, TimeMs};
///
/// let mut t = AllowedRateTracker::new();
/// t.set_initial(NodeId::new(0), 5.0);
/// t.on_change(NodeId::new(0), 10.0, TimeMs::from_secs(2));
/// assert_eq!(t.aggregate_at(TimeMs::from_secs(1)), 5.0);
/// assert_eq!(t.aggregate_at(TimeMs::from_secs(3)), 10.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AllowedRateTracker {
    // Per node: change points (time, new rate), kept sorted by insertion
    // (events arrive in time order from the harness).
    steps: HashMap<NodeId, Vec<(TimeMs, f64)>>,
}

impl AllowedRateTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a node's rate at time zero, registering it for tracking.
    pub fn set_initial(&mut self, node: NodeId, rate: f64) {
        self.steps
            .entry(node)
            .or_default()
            .insert(0, (TimeMs::ZERO, rate));
    }

    /// Records a rate change. Changes from nodes never registered with
    /// [`AllowedRateTracker::set_initial`] are ignored, so the aggregate
    /// covers exactly the sender population of interest (non-sender nodes
    /// also run controllers, but their idle allowances are not load).
    pub fn on_change(&mut self, node: NodeId, new_rate: f64, at: TimeMs) {
        if let Some(steps) = self.steps.get_mut(&node) {
            steps.push((at, new_rate));
        }
    }

    /// The rate of `node` in effect at `t` (0 if unknown).
    pub fn rate_at(&self, node: NodeId, t: TimeMs) -> f64 {
        let Some(steps) = self.steps.get(&node) else {
            return 0.0;
        };
        steps
            .iter()
            .take_while(|&&(at, _)| at <= t)
            .last()
            .map_or(0.0, |&(_, r)| r)
    }

    /// Sum of all nodes' rates in effect at `t`.
    pub fn aggregate_at(&self, t: TimeMs) -> f64 {
        self.steps.keys().map(|&n| self.rate_at(n, t)).sum()
    }

    /// Aggregate allowed rate sampled at `bin` intervals over `[0, until]`.
    pub fn aggregate_series(&self, bin: DurationMs, until: TimeMs) -> Vec<(TimeMs, f64)> {
        let bin_ms = bin.as_millis().max(1);
        let mut out = Vec::new();
        let mut t = 0u64;
        while t <= until.as_millis() {
            let at = TimeMs::from_millis(t);
            out.push((at, self.aggregate_at(at)));
            t += bin_ms;
        }
        out
    }

    /// Nodes with at least one recorded rate.
    pub fn node_count(&self) -> usize {
        self.steps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_meter_bins_and_rates() {
        let mut m = RateMeter::new(DurationMs::from_secs(2));
        for s in [0u64, 1, 2, 3, 3] {
            m.record(TimeMs::from_secs(s));
        }
        // Bin [0,2s): 2 events -> 1/s. Bin [2s,4s): 3 events -> 1.5/s.
        let series = m.series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1, 1.0);
        assert_eq!(series[1].1, 1.5);
        assert_eq!(m.total(), 5);
        assert_eq!(m.rate_in(TimeMs::ZERO, TimeMs::from_secs(4)), 1.25);
    }

    #[test]
    fn rate_meter_fills_gaps_with_zero() {
        let mut m = RateMeter::new(DurationMs::from_secs(1));
        m.record(TimeMs::ZERO);
        m.record(TimeMs::from_secs(3));
        let series = m.series();
        assert_eq!(series.len(), 4);
        assert_eq!(series[1].1, 0.0);
        assert_eq!(series[2].1, 0.0);
    }

    #[test]
    fn rate_in_degenerate_window() {
        let m = RateMeter::new(DurationMs::from_secs(1));
        assert_eq!(m.rate_in(TimeMs::from_secs(2), TimeMs::from_secs(2)), 0.0);
        assert_eq!(m.rate_in(TimeMs::from_secs(3), TimeMs::from_secs(1)), 0.0);
    }

    #[test]
    fn allowed_rate_steps_aggregate() {
        let mut t = AllowedRateTracker::new();
        t.set_initial(NodeId::new(0), 3.0);
        t.set_initial(NodeId::new(1), 3.0);
        t.on_change(NodeId::new(0), 1.5, TimeMs::from_secs(10));
        assert_eq!(t.aggregate_at(TimeMs::from_secs(5)), 6.0);
        assert_eq!(t.aggregate_at(TimeMs::from_secs(10)), 4.5);
        assert_eq!(t.node_count(), 2);
        let series = t.aggregate_series(DurationMs::from_secs(5), TimeMs::from_secs(10));
        assert_eq!(
            series,
            vec![
                (TimeMs::ZERO, 6.0),
                (TimeMs::from_secs(5), 6.0),
                (TimeMs::from_secs(10), 4.5),
            ]
        );
    }

    #[test]
    fn unknown_node_rate_is_zero() {
        let t = AllowedRateTracker::new();
        assert_eq!(t.rate_at(NodeId::new(9), TimeMs::ZERO), 0.0);
        assert_eq!(t.aggregate_at(TimeMs::ZERO), 0.0);
    }
}
