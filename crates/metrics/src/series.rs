//! Binned time series of continuous samples.

use std::collections::HashMap;

use agb_types::{DurationMs, RunningStats, TimeMs};

/// Aggregates `(time, value)` samples into fixed-width bins, reporting the
/// per-bin mean — the shape behind all of the paper's time-axis plots.
///
/// # Example
///
/// ```
/// use agb_metrics::TimeSeries;
/// use agb_types::{DurationMs, TimeMs};
///
/// let mut s = TimeSeries::new(DurationMs::from_secs(10));
/// s.push(TimeMs::from_secs(1), 4.0);
/// s.push(TimeMs::from_secs(2), 6.0);
/// s.push(TimeMs::from_secs(15), 10.0);
/// let bins = s.bins();
/// assert_eq!(bins[0], (TimeMs::ZERO, 5.0));
/// assert_eq!(bins[1], (TimeMs::from_secs(10), 10.0));
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bin: DurationMs,
    bins: HashMap<u64, RunningStats>,
}

impl TimeSeries {
    /// Creates a series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn new(bin: DurationMs) -> Self {
        assert!(!bin.is_zero(), "bin width must be non-zero");
        TimeSeries {
            bin,
            bins: HashMap::new(),
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, at: TimeMs, value: f64) {
        let b = at.as_millis() / self.bin.as_millis();
        self.bins.entry(b).or_default().push(value);
    }

    /// `(bin_start, mean)` pairs in time order (occupied bins only).
    pub fn bins(&self) -> Vec<(TimeMs, f64)> {
        let bin_ms = self.bin.as_millis();
        let mut out: Vec<(TimeMs, f64)> = self
            .bins
            .iter()
            .map(|(&b, s)| (TimeMs::from_millis(b * bin_ms), s.mean()))
            .collect();
        out.sort_by_key(|&(t, _)| t);
        out
    }

    /// The mean over all samples in `[from, to)`.
    pub fn mean_in(&self, from: TimeMs, to: TimeMs) -> Option<f64> {
        let bin_ms = self.bin.as_millis();
        let mut acc = RunningStats::new();
        for (&b, s) in &self.bins {
            let start = b * bin_ms;
            if start >= from.as_millis() && start < to.as_millis() {
                acc.merge(s);
            }
        }
        (acc.count() > 0).then(|| acc.mean())
    }

    /// Number of samples across all bins.
    pub fn sample_count(&self) -> u64 {
        self.bins.values().map(RunningStats::count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_compute_means() {
        let mut s = TimeSeries::new(DurationMs::from_secs(1));
        s.push(TimeMs::from_millis(100), 1.0);
        s.push(TimeMs::from_millis(900), 3.0);
        s.push(TimeMs::from_millis(1100), 10.0);
        let bins = s.bins();
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].1, 2.0);
        assert_eq!(bins[1].1, 10.0);
        assert_eq!(s.sample_count(), 3);
    }

    #[test]
    fn mean_in_window() {
        let mut s = TimeSeries::new(DurationMs::from_secs(1));
        for sec in 0..10u64 {
            s.push(TimeMs::from_secs(sec), sec as f64);
        }
        let m = s
            .mean_in(TimeMs::from_secs(2), TimeMs::from_secs(5))
            .unwrap();
        assert_eq!(m, 3.0); // mean of 2, 3, 4
        assert!(s
            .mean_in(TimeMs::from_secs(100), TimeMs::from_secs(200))
            .is_none());
    }
}
