//! The simulation engine: virtual clock, node registry, timer service and
//! message routing through the network model.
//!
//! # Execution model
//!
//! The future event list is processed one virtual *instant* at a time.
//! Within an instant, consecutive `Deliver`/`Timer` events form a
//! *batch*: they are lifted out of the queue together, executed against
//! per-node state with all effects buffered, and the effects are merged
//! back in canonical order (pop order; each event's effects in
//! generation order). Scheduled control actions (crashes, restarts,
//! network mutations, scenario closures) act as barriers: they split
//! batches and always run on the calling thread.
//!
//! Because the merge order is canonical, a batch may be executed by one
//! thread or sharded across `K` worker threads
//! ([`Simulation::run_until_sharded`], `K` from
//! [`SimulationBuilder::threads`] / [`threads_from_env`]) with
//! bit-identical results: same delivery order, same RNG draws (network
//! randomness is a stream per sending node), same
//! [`NetStats::checksum`]. The single-threaded path is the oracle the
//! sharded path is tested against.

use agb_profile::{MemUsage, Phase, ProfileConfig, Profiler, ProfilerSnapshot};
use agb_types::{DetRng, DurationMs, NodeId, SeedSequence, ShardMap, TimeMs};

use crate::network::{NetworkConfig, NetworkModel};
use crate::queue::EventQueue;
use crate::shard::{
    exec_events, invoke_on, BatchEvent, DeferredPush, EffectCursor, Lane, LaneScratch, TimerSlots,
};
use crate::trace::Tracer;

/// Protocol-defined timer identifier.
///
/// Protocols may run several concurrent timers per node (gossip round,
/// sample-period rollover, workload ticks); the id distinguishes them in
/// [`SimNode::on_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u32);

/// A node (actor) hosted by the simulator.
///
/// All methods receive a [`SimCtx`] through which the node sends messages
/// and manages timers; nodes must not hold any other channel to the outside
/// world, which is what makes runs reproducible (and, when the node type is
/// `Send`, lets the sharded engine execute handlers on worker threads).
pub trait SimNode {
    /// The message type exchanged between nodes. `Clone` lets the
    /// network's byte adversary deliver duplicated copies.
    type Msg: Clone;

    /// Called once at simulation start (virtual time 0).
    fn on_start(&mut self, ctx: &mut SimCtx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a timer previously set through the context fires.
    fn on_timer(&mut self, timer: TimerId, ctx: &mut SimCtx<'_, Self::Msg>) {
        let _ = (timer, ctx);
    }

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut SimCtx<'_, Self::Msg>) {
        let _ = (from, msg, ctx);
    }
}

#[derive(Debug)]
pub(crate) enum TimerKind {
    Once,
    Periodic(DurationMs),
}

#[derive(Debug)]
pub(crate) enum TimerRequest {
    Set {
        timer: TimerId,
        first_after: DurationMs,
        kind: TimerKind,
    },
    Cancel(TimerId),
}

/// Armed state of one timer id.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TimerSlot {
    pub(crate) gen: u64,
    pub(crate) period: Option<DurationMs>,
}

/// The node's window onto the simulated world.
///
/// Collects sends and timer requests during a handler invocation; the engine
/// applies them (routing messages through the network model) when the
/// handler returns.
#[derive(Debug)]
pub struct SimCtx<'a, M> {
    now: TimeMs,
    self_id: NodeId,
    outbox: &'a mut Vec<(NodeId, M)>,
    timer_reqs: &'a mut Vec<TimerRequest>,
}

impl<'a, M> SimCtx<'a, M> {
    pub(crate) fn new(
        now: TimeMs,
        self_id: NodeId,
        outbox: &'a mut Vec<(NodeId, M)>,
        timer_reqs: &'a mut Vec<TimerRequest>,
    ) -> Self {
        SimCtx {
            now,
            self_id,
            outbox,
            timer_reqs,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> TimeMs {
        self.now
    }

    /// The identity of the node being invoked.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to` through the simulated network.
    ///
    /// Delivery is not guaranteed: the network model may drop the message.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Arms a one-shot timer that fires `after` from now.
    ///
    /// Re-arming an already armed timer id replaces it.
    pub fn set_timer(&mut self, timer: TimerId, after: DurationMs) {
        self.timer_reqs.push(TimerRequest::Set {
            timer,
            first_after: after,
            kind: TimerKind::Once,
        });
    }

    /// Arms a periodic timer: first fire after `first_after`, then every
    /// `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (a zero period would livelock the engine).
    pub fn set_periodic_timer(
        &mut self,
        timer: TimerId,
        first_after: DurationMs,
        period: DurationMs,
    ) {
        assert!(!period.is_zero(), "periodic timer period must be non-zero");
        self.timer_reqs.push(TimerRequest::Set {
            timer,
            first_after,
            kind: TimerKind::Periodic(period),
        });
    }

    /// Cancels a timer; pending fires are suppressed.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.timer_reqs.push(TimerRequest::Cancel(timer));
    }
}

/// A scheduled control action against one node.
type NodeControlFn<N> = Box<dyn FnOnce(&mut N, TimeMs)>;
/// A scheduled control action against the whole node slice.
type GlobalControlFn<N> = Box<dyn FnOnce(&mut [N], TimeMs)>;
/// A scheduled action against one node *with network access* (may send
/// messages and manage timers through the context).
type NodeActionFn<N, M> = Box<dyn FnOnce(&mut N, &mut SimCtx<'_, M>)>;
/// A scheduled mutation of the live network configuration.
type NetControlFn = Box<dyn FnOnce(&mut crate::network::NetworkConfig, TimeMs)>;
/// A callback run after every node-handler invocation (see
/// [`Simulation::set_post_event_hook`]).
type PostEventHook<N> = Box<dyn FnMut(&mut N)>;

enum EventKind<N: SimNode> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: N::Msg,
    },
    Timer {
        node: NodeId,
        timer: TimerId,
        gen: u64,
    },
    NodeControl {
        node: NodeId,
        f: NodeControlFn<N>,
    },
    GlobalControl {
        f: GlobalControlFn<N>,
    },
    NodeAction {
        node: NodeId,
        f: NodeActionFn<N, N::Msg>,
    },
    NetControl {
        f: NetControlFn,
    },
    SetDown {
        node: NodeId,
        down: bool,
    },
    Restart {
        node: NodeId,
        f: NodeControlFn<N>,
    },
}

/// Aggregate engine statistics, including an order-sensitive checksum of all
/// engine events — two runs of the same seeded experiment are identical iff
/// their checksums agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Messages handed to the network by nodes.
    pub sends: u64,
    /// Messages delivered to their destination.
    pub deliveries: u64,
    /// Messages dropped by the network (loss, partition or downed node).
    pub drops: u64,
    /// Timer fires dispatched to nodes.
    pub timer_fires: u64,
    /// Frames destroyed by the byte adversary (subset of `drops`).
    pub corrupted: u64,
    /// Order-sensitive checksum of the full event stream.
    pub checksum: u64,
}

impl NetStats {
    fn mix(&mut self, parts: [u64; 4]) {
        for p in parts {
            self.checksum ^= p;
            self.checksum = self.checksum.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// The number of worker threads selected by the `AGB_THREADS`
/// environment variable (clamped to `1..=64`; unset or malformed reads
/// as 1, i.e. single-threaded).
pub fn threads_from_env() -> usize {
    clamp_threads(agb_types::env_usize("AGB_THREADS"))
}

/// The clamp rule behind [`threads_from_env`]: unset/malformed → 1,
/// `0` → 1, anything above 64 → 64.
fn clamp_threads(parsed: Option<usize>) -> usize {
    parsed.map_or(1, |v| v.clamp(1, 64))
}

/// Default smallest batch worth fanning out to worker threads; smaller
/// batches run inline on the calling thread (identical results either
/// way — this is purely a spawn-overhead tradeoff).
const DEFAULT_PARALLEL_THRESHOLD: usize = 128;

/// Builder for [`Simulation`].
///
/// # Example
///
/// ```
/// use agb_sim::{SimulationBuilder, NetworkConfig};
/// use agb_types::DurationMs;
///
/// let builder = SimulationBuilder::new(7)
///     .network(NetworkConfig::perfect(DurationMs::from_millis(10)))
///     .threads(4);
/// # let _ = builder;
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    seed: u64,
    network: NetworkConfig,
    initially_down: Vec<NodeId>,
    threads: usize,
    profile: ProfileConfig,
}

impl SimulationBuilder {
    /// Starts a builder with the given experiment seed and a default
    /// LAN-like network.
    pub fn new(seed: u64) -> Self {
        SimulationBuilder {
            seed,
            network: NetworkConfig::default(),
            initially_down: Vec::new(),
            threads: 1,
            profile: ProfileConfig::disabled(),
        }
    }

    /// Sets the network configuration.
    pub fn network(mut self, config: NetworkConfig) -> Self {
        self.network = config;
        self
    }

    /// Sets the shard/worker-thread count used by
    /// [`Simulation::run_until_sharded`] (clamped to at least 1).
    ///
    /// The thread count never affects results — only wall-clock time.
    pub fn threads(mut self, k: usize) -> Self {
        self.threads = k.max(1);
        self
    }

    /// Attaches an engine profiler ([`agb_profile::Profiler`]) when
    /// `profile.enabled`: phase timings, shard load-balance stats and
    /// routing time are recorded as the simulation runs.
    ///
    /// Profiling reads clocks and accumulates counters only — it never
    /// touches RNG streams or effect ordering, so all engine results
    /// (checksums included) are bit-identical with and without it.
    pub fn profile(mut self, profile: ProfileConfig) -> Self {
        self.profile = profile;
        self
    }

    /// Marks nodes that start *down*: their `on_start` does not run at
    /// time zero, they receive no messages and fire no timers until a
    /// scheduled [`Simulation::schedule_restart`] brings them up.
    ///
    /// This is how churn scenarios host late joiners: the node slot exists
    /// from the beginning (ids are stable), but the node only enters the
    /// system when its join is scheduled.
    pub fn initially_down(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.initially_down.extend(nodes);
        self
    }

    /// Builds the simulation over the given nodes.
    ///
    /// `nodes[i]` is addressed as `NodeId::new(i)`. Each node's `on_start`
    /// runs at virtual time zero during the first call to a `run_*` method.
    pub fn build<N: SimNode>(self, nodes: Vec<N>) -> Simulation<N> {
        let seeds = SeedSequence::new(self.seed);
        let net_rng: DetRng = seeds.rng_for("network", 0);
        let n = nodes.len();
        let mut down = vec![false; n];
        for id in &self.initially_down {
            down[id.index()] = true;
        }
        let mut net = NetworkModel::new(self.network, net_rng);
        net.ensure_streams(n);
        Simulation {
            nodes,
            queue: EventQueue::new(),
            now: TimeMs::ZERO,
            net,
            timers: (0..n).map(|_| Vec::new()).collect(),
            timer_gen: vec![0; n],
            down,
            stats: NetStats::default(),
            tracer: None,
            started: false,
            events_processed: 0,
            threads: self.threads,
            par_threshold: DEFAULT_PARALLEL_THRESHOLD,
            hook: None,
            scratch: EngineScratch::default(),
            worker_scratch: Vec::new(),
            profiler: self.profile.enabled.then(|| Box::new(Profiler::new())),
        }
    }
}

/// Reusable engine-owned buffers for batch collection and inline
/// execution.
struct EngineScratch<M> {
    /// Single-lane scratch for inline execution and one-off invocations.
    inline: LaneScratch<M>,
    /// The current instant's collected batch.
    batch_events: Vec<BatchEvent<M>>,
    /// Target node of each batch event, in pop order.
    targets: Vec<NodeId>,
    /// Executing shard of each batch event (parallel batches only).
    shard_of: Vec<u32>,
    /// Per-shard merge cursors, reused across batches.
    cursors: Vec<EffectCursor>,
}

impl<M> Default for EngineScratch<M> {
    fn default() -> Self {
        EngineScratch {
            inline: LaneScratch::default(),
            batch_events: Vec::new(),
            targets: Vec::new(),
            shard_of: Vec::new(),
            cursors: Vec::new(),
        }
    }
}

/// The discrete-event simulation: owns the nodes, the clock, the future
/// event list and the network model.
pub struct Simulation<N: SimNode> {
    nodes: Vec<N>,
    queue: EventQueue<EventKind<N>>,
    now: TimeMs,
    net: NetworkModel,
    /// Per-node armed timers. Nodes run a handful of timers at most, so a
    /// small vec with linear lookup beats hashing on the per-fire path.
    timers: Vec<TimerSlots>,
    /// Monotonic per-node timer generation: survives timer-map clears on
    /// restart, so stale queued fires can never collide with re-armed
    /// timers.
    timer_gen: Vec<u64>,
    down: Vec<bool>,
    stats: NetStats,
    tracer: Option<Box<dyn Tracer>>,
    started: bool,
    events_processed: u64,
    /// Shard/worker count for `run_until_sharded`.
    threads: usize,
    /// Smallest batch worth fanning out to workers.
    par_threshold: usize,
    /// Post-invocation callback (metrics flushing and the like).
    hook: Option<PostEventHook<N>>,
    scratch: EngineScratch<N::Msg>,
    /// Per-worker scratch, index-aligned with shard indices.
    worker_scratch: Vec<LaneScratch<N::Msg>>,
    /// Attached profiler (phase timers, shard balance), absent by
    /// default. Never influences results.
    profiler: Option<Box<Profiler>>,
}

impl<N: SimNode> Simulation<N> {
    /// Current virtual time.
    pub fn now(&self) -> TimeMs {
        self.now
    }

    /// Number of hosted nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the simulation hosts no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (for inspection/configuration between runs).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Engine statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Messages dropped by the network model (loss, partitions, link
    /// faults or adversary destruction — excludes drops at downed nodes).
    pub fn network_drops(&self) -> u64 {
        self.net.dropped()
    }

    /// Frames destroyed by the byte adversary so far.
    pub fn network_corrupted(&self) -> u64 {
        self.net.corrupted()
    }

    /// Installs a tracer receiving every engine event.
    ///
    /// Tracing works at any thread count: trace records are buffered with
    /// the other execution effects and replayed in canonical order.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Installs a callback invoked after every node-handler invocation
    /// (message delivery, timer fire, node action, restart/start), with
    /// the invoked node, in canonical event order, always on the calling
    /// thread.
    ///
    /// This is the bridge for state that nodes must publish to a shared,
    /// non-`Send` sink (e.g. the workload cluster's metrics collector):
    /// nodes buffer locally during handler execution and the hook flushes
    /// at the merge barrier, preserving the exact single-threaded
    /// ordering.
    pub fn set_post_event_hook(&mut self, hook: Box<dyn FnMut(&mut N)>) {
        self.hook = Some(hook);
    }

    /// Attaches a fresh profiler from this point on (no-op if one is
    /// already attached). Results never depend on profiling.
    pub fn enable_profiler(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Box::new(Profiler::new()));
        }
    }

    /// Mutable access to the attached profiler, if any (e.g. to wire
    /// an allocation counter or record extra phases).
    pub fn profiler_mut(&mut self) -> Option<&mut Profiler> {
        self.profiler.as_deref_mut()
    }

    /// Snapshot of the attached profiler's accumulated phase timings
    /// and shard balance, if profiling is enabled.
    pub fn profiler_snapshot(&self) -> Option<ProfilerSnapshot> {
        self.profiler.as_deref().map(Profiler::snapshot)
    }

    /// Estimated resident footprint of the future event list (queued
    /// events + bucket overhead). Deterministic `size_of` arithmetic.
    pub fn queue_mem(&self) -> MemUsage {
        MemUsage::new(self.queue.estimated_bytes(), self.queue.len() as u64)
    }

    /// The configured shard/worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Reconfigures the shard/worker-thread count (clamped to at least 1).
    ///
    /// Results never depend on this value.
    pub fn set_threads(&mut self, k: usize) {
        self.threads = k.max(1);
    }

    /// Lowers/raises the smallest batch that is fanned out to worker
    /// threads (default 128). Intended for tests that want tiny clusters
    /// to exercise the worker path; results never depend on this value.
    pub fn set_parallel_threshold(&mut self, min_batch: usize) {
        self.par_threshold = min_batch.max(1);
    }

    /// Replaces the network configuration from this point in virtual time.
    pub fn set_network(&mut self, config: NetworkConfig) {
        self.net.set_config(config);
    }

    /// Schedules a closure to run against one node at virtual time `at`.
    ///
    /// Used by scenario schedules (e.g. "at t₁, shrink the buffers of nodes
    /// 0..12"). Closures scheduled at the same instant run in scheduling
    /// order.
    pub fn schedule_node_control(
        &mut self,
        at: TimeMs,
        node: NodeId,
        f: impl FnOnce(&mut N, TimeMs) + 'static,
    ) {
        self.queue.push(
            at,
            EventKind::NodeControl {
                node,
                f: Box::new(f),
            },
        );
    }

    /// Schedules a closure to run against all nodes at virtual time `at`.
    pub fn schedule_control(&mut self, at: TimeMs, f: impl FnOnce(&mut [N], TimeMs) + 'static) {
        self.queue
            .push(at, EventKind::GlobalControl { f: Box::new(f) });
    }

    /// Schedules a crash: from `at` on, the node receives no messages and
    /// its timers do not fire (periodic timers keep rescheduling silently so
    /// they resume on recovery).
    pub fn schedule_crash(&mut self, at: TimeMs, node: NodeId) {
        self.queue.push(at, EventKind::SetDown { node, down: true });
    }

    /// Schedules a recovery from a previous crash.
    pub fn schedule_recover(&mut self, at: TimeMs, node: NodeId) {
        self.queue
            .push(at, EventKind::SetDown { node, down: false });
    }

    /// Schedules a *restart with state loss* (or the first spawn of an
    /// [`initially_down`](SimulationBuilder::initially_down) node): at `at`
    /// the node's pending timers are cleared, `f` runs to replace/reset its
    /// state, the node is marked up, and its `on_start` is invoked so it
    /// re-enters the system through its own bootstrap path.
    pub fn schedule_restart(
        &mut self,
        at: TimeMs,
        node: NodeId,
        f: impl FnOnce(&mut N, TimeMs) + 'static,
    ) {
        self.queue.push(
            at,
            EventKind::Restart {
                node,
                f: Box::new(f),
            },
        );
    }

    /// Schedules a closure that runs against one node *with network
    /// access*: unlike [`schedule_node_control`](Self::schedule_node_control),
    /// the closure receives a [`SimCtx`] and may send messages and manage
    /// timers (e.g. a graceful leave emitting farewell messages, or a
    /// sender burst storm).
    pub fn schedule_node_action(
        &mut self,
        at: TimeMs,
        node: NodeId,
        f: impl FnOnce(&mut N, &mut SimCtx<'_, N::Msg>) + 'static,
    ) {
        self.queue.push(
            at,
            EventKind::NodeAction {
                node,
                f: Box::new(f),
            },
        );
    }

    /// Schedules a mutation of the live network configuration (partitions
    /// forming/healing, link faults flapping, loss spikes) at virtual time
    /// `at`.
    pub fn schedule_network_control(
        &mut self,
        at: TimeMs,
        f: impl FnOnce(&mut NetworkConfig, TimeMs) + 'static,
    ) {
        self.queue
            .push(at, EventKind::NetControl { f: Box::new(f) });
    }

    /// Whether `node` is currently down (crashed or not yet spawned).
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.index()]
    }

    /// Runs the simulation until virtual time `t` (inclusive), then sets the
    /// clock to `t`.
    ///
    /// Always executes on the calling thread; see
    /// [`run_until_sharded`](Self::run_until_sharded) for the
    /// multi-threaded path (identical results).
    pub fn run_until(&mut self, t: TimeMs) {
        self.ensure_started();
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.process_instant_inline(next);
        }
        self.now = self.now.max(t);
    }

    /// Runs for a further `d` of virtual time.
    pub fn run_for(&mut self, d: DurationMs) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Processes a single event, returning its virtual time, or `None` if
    /// the future event list is empty.
    pub fn step(&mut self) -> Option<TimeMs> {
        self.ensure_started();
        if self.queue.is_empty() {
            return None;
        }
        self.step_one();
        Some(self.now)
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events currently waiting in the future event list.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the future event list since the start of the
    /// run (or the last [`reset_peak_pending_events`](Self::reset_peak_pending_events)).
    pub fn peak_pending_events(&self) -> usize {
        self.queue.peak_len()
    }

    /// Restarts peak tracking of the future event list from its current
    /// length — the perf harness calls this at the warmup/measure
    /// boundary so the reported peak covers measured rounds only.
    pub fn reset_peak_pending_events(&mut self) {
        self.queue.reset_peak();
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            // Initially-down nodes (late joiners) bootstrap through their
            // scheduled restart instead.
            if self.down[i] {
                continue;
            }
            self.invoke_with(NodeId::new(i as u32), |n, ctx| n.on_start(ctx));
        }
    }

    /// Processes every event at instant `t` on the calling thread.
    fn process_instant_inline(&mut self, t: TimeMs) {
        self.now = self.now.max(t);
        loop {
            self.collect_run(t);
            if !self.scratch.batch_events.is_empty() {
                self.exec_batch_inline();
                continue;
            }
            match self.queue.peek_time() {
                Some(at) if at == t => {
                    let scheduled = self.queue.pop().expect("peeked event");
                    self.events_processed += 1;
                    self.exec_control(scheduled.item);
                }
                _ => break,
            }
        }
    }

    /// Pops the maximal run of consecutive `Deliver`/`Timer` events at
    /// instant `t` into the batch scratch, stopping at the first control
    /// event (a barrier) or time change.
    fn collect_run(&mut self, t: TimeMs) {
        debug_assert!(self.scratch.batch_events.is_empty());
        let token = self.profiler.as_ref().map(|p| p.enter(Phase::BatchLift));
        while let Some((at, item)) = self.queue.peek() {
            if at != t || !matches!(item, EventKind::Deliver { .. } | EventKind::Timer { .. }) {
                break;
            }
            let scheduled = self.queue.pop().expect("peeked event");
            let ev = match scheduled.item {
                EventKind::Deliver { from, to, msg } => BatchEvent::Deliver { from, to, msg },
                EventKind::Timer { node, timer, gen } => BatchEvent::Timer { node, timer, gen },
                _ => unreachable!("peek said batchable"),
            };
            self.scratch.targets.push(ev.target());
            self.scratch.batch_events.push(ev);
        }
        if let Some(token) = token {
            let items = self.scratch.batch_events.len() as u64;
            self.profiler
                .as_mut()
                .expect("token implies profiler")
                .exit(token, items);
        }
    }

    /// Executes the collected batch on the calling thread and merges its
    /// effects.
    fn exec_batch_inline(&mut self) {
        let mut inline = std::mem::take(&mut self.scratch.inline);
        let mut targets = std::mem::take(&mut self.scratch.targets);
        std::mem::swap(&mut self.scratch.batch_events, &mut inline.events);
        let token = self.profiler.as_ref().map(|p| p.enter(Phase::ShardExec));
        {
            let n = self.nodes.len();
            let (config, rngs) = self.net.lanes(n);
            let mut lane = Lane {
                base: 0,
                nodes: &mut self.nodes,
                timers: &mut self.timers,
                timer_gen: &mut self.timer_gen,
                rngs,
                down: &self.down,
                config,
                now: self.now,
                n_total: n,
                tracing: self.tracer.is_some(),
                profiling: self.profiler.is_some(),
            };
            exec_events(
                &mut lane,
                &mut inline.events,
                &mut inline.outbox,
                &mut inline.timer_reqs,
                &mut inline.buf,
            );
        }
        if let Some(token) = token {
            let items = targets.len() as u64;
            self.profiler
                .as_mut()
                .expect("token implies profiler")
                .exit(token, items);
        }
        self.events_processed += targets.len() as u64;
        self.apply_run(std::slice::from_mut(&mut inline), &targets, &[]);
        targets.clear();
        self.scratch.targets = targets;
        self.scratch.inline = inline;
    }

    /// Merges buffered effects into the queue/stats/tracer in canonical
    /// order: event `i`'s effects before event `i+1`'s, each event's
    /// effects in generation order, the post-event hook after each
    /// invoked event.
    fn apply_run(
        &mut self,
        lanes: &mut [LaneScratch<N::Msg>],
        targets: &[NodeId],
        shard_of: &[u32],
    ) {
        let token = self.profiler.as_ref().map(|p| p.enter(Phase::Merge));
        let mut cursors = std::mem::take(&mut self.scratch.cursors);
        cursors.clear();
        cursors.resize(lanes.len(), EffectCursor::default());
        for (i, &target) in targets.iter().enumerate() {
            let s = shard_of.get(i).map_or(0, |&s| s as usize);
            let buf = &mut lanes[s].buf;
            let cur = &mut cursors[s];
            let mark = buf.marks[cur.marks];
            cur.marks += 1;
            while cur.pushes < mark.pushes as usize {
                let push = std::mem::replace(&mut buf.pushes[cur.pushes], DeferredPush::consumed());
                cur.pushes += 1;
                match push {
                    DeferredPush::Deliver { at, from, to, msg } => {
                        self.queue.push(at, EventKind::Deliver { from, to, msg });
                    }
                    DeferredPush::Timer {
                        at,
                        node,
                        timer,
                        gen,
                    } => {
                        self.queue.push(at, EventKind::Timer { node, timer, gen });
                    }
                }
            }
            while cur.mixes < mark.mixes as usize {
                self.stats.mix(buf.mixes[cur.mixes]);
                cur.mixes += 1;
            }
            while cur.traces < mark.traces as usize {
                if let Some(tracer) = self.tracer.as_deref_mut() {
                    tracer.record(buf.traces[cur.traces]);
                }
                cur.traces += 1;
            }
            if mark.invoked {
                if let Some(hook) = self.hook.as_mut() {
                    hook(&mut self.nodes[target.index()]);
                }
            }
        }
        let mut route_ns = 0u64;
        let mut route_sends = 0u64;
        for lane in lanes.iter_mut() {
            let c = lane.buf.counts;
            self.stats.sends += c.sends;
            self.stats.deliveries += c.deliveries;
            self.stats.drops += c.drops;
            self.stats.timer_fires += c.timer_fires;
            self.stats.corrupted += c.corrupted;
            self.net.add_counts(c.sends, c.net_dropped, c.corrupted);
            route_ns += lane.buf.route_ns;
            route_sends += c.sends;
            lane.buf.clear();
        }
        self.scratch.cursors = cursors;
        if let Some(token) = token {
            let profiler = self.profiler.as_mut().expect("token implies profiler");
            // Routing time was spent inside handler execution but is
            // only harvestable here, once the per-shard effect buffers
            // are back on the calling thread.
            profiler.add_ns(Phase::Route, route_ns, route_sends);
            profiler.exit(token, targets.len() as u64);
        }
    }

    /// Executes one control (barrier) event on the calling thread.
    fn exec_control(&mut self, item: EventKind<N>) {
        let token = self.profiler.as_ref().map(|p| p.enter(Phase::Control));
        self.exec_control_inner(item);
        if let Some(token) = token {
            self.profiler
                .as_mut()
                .expect("token implies profiler")
                .exit(token, 1);
        }
    }

    fn exec_control_inner(&mut self, item: EventKind<N>) {
        match item {
            EventKind::Deliver { .. } | EventKind::Timer { .. } => {
                unreachable!("batch events are collected into runs, not dispatched as controls")
            }
            EventKind::NodeControl { node, f } => {
                f(&mut self.nodes[node.index()], self.now);
                self.run_hook(node);
            }
            EventKind::GlobalControl { f } => {
                f(&mut self.nodes, self.now);
                self.run_hook_all();
            }
            EventKind::NodeAction { node, f } => {
                self.invoke_with(node, |n, ctx| f(n, ctx));
            }
            EventKind::NetControl { f } => {
                f(self.net.config_mut(), self.now);
            }
            EventKind::SetDown { node, down } => {
                self.down[node.index()] = down;
            }
            EventKind::Restart { node, f } => {
                self.timers[node.index()].clear();
                self.down[node.index()] = false;
                f(&mut self.nodes[node.index()], self.now);
                self.invoke_with(node, |n, ctx| n.on_start(ctx));
            }
        }
    }

    /// Invokes one handler outside a batch (start, restart, node action)
    /// and applies its effects immediately, including the post-event
    /// hook.
    fn invoke_with(&mut self, id: NodeId, g: impl FnOnce(&mut N, &mut SimCtx<'_, N::Msg>)) {
        let mut inline = std::mem::take(&mut self.scratch.inline);
        {
            let n = self.nodes.len();
            let (config, rngs) = self.net.lanes(n);
            let mut lane = Lane {
                base: 0,
                nodes: &mut self.nodes,
                timers: &mut self.timers,
                timer_gen: &mut self.timer_gen,
                rngs,
                down: &self.down,
                config,
                now: self.now,
                n_total: n,
                tracing: self.tracer.is_some(),
                profiling: self.profiler.is_some(),
            };
            invoke_on(
                &mut lane,
                id,
                g,
                &mut inline.outbox,
                &mut inline.timer_reqs,
                &mut inline.buf,
            );
            inline.buf.mark_event(true);
        }
        self.apply_run(std::slice::from_mut(&mut inline), &[id], &[]);
        self.scratch.inline = inline;
    }

    fn run_hook(&mut self, node: NodeId) {
        if let Some(hook) = self.hook.as_mut() {
            hook(&mut self.nodes[node.index()]);
        }
    }

    fn run_hook_all(&mut self) {
        if let Some(hook) = self.hook.as_mut() {
            for n in self.nodes.iter_mut() {
                hook(n);
            }
        }
    }

    fn step_one(&mut self) {
        let Some(scheduled) = self.queue.pop() else {
            return;
        };
        self.now = self.now.max(scheduled.at);
        match scheduled.item {
            EventKind::Deliver { from, to, msg } => {
                self.scratch.targets.push(to);
                self.scratch
                    .batch_events
                    .push(BatchEvent::Deliver { from, to, msg });
                self.exec_batch_inline();
            }
            EventKind::Timer { node, timer, gen } => {
                self.scratch.targets.push(node);
                self.scratch
                    .batch_events
                    .push(BatchEvent::Timer { node, timer, gen });
                self.exec_batch_inline();
            }
            other => {
                self.events_processed += 1;
                self.exec_control(other);
            }
        }
    }
}

impl<N> Simulation<N>
where
    N: SimNode + Send,
    N::Msg: Send,
{
    /// Runs the simulation until virtual time `t` (inclusive) using the
    /// configured shard count ([`SimulationBuilder::threads`] /
    /// [`Simulation::set_threads`]).
    ///
    /// Produces results bit-identical to [`run_until`](Self::run_until)
    /// at every thread count: batches are merged in canonical order and
    /// network randomness is a stream per sending node, so neither
    /// delivery order nor RNG draws depend on `K`.
    pub fn run_until_sharded(&mut self, t: TimeMs) {
        if self.threads <= 1 {
            self.run_until(t);
            return;
        }
        self.ensure_started();
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.process_instant_sharded(next);
        }
        self.now = self.now.max(t);
    }

    /// Runs for a further `d` of virtual time, sharded (see
    /// [`run_until_sharded`](Self::run_until_sharded)).
    pub fn run_for_sharded(&mut self, d: DurationMs) {
        let target = self.now + d;
        self.run_until_sharded(target);
    }

    /// Processes every event at instant `t`, fanning large batches out
    /// to worker threads.
    fn process_instant_sharded(&mut self, t: TimeMs) {
        self.now = self.now.max(t);
        loop {
            self.collect_run(t);
            if !self.scratch.batch_events.is_empty() {
                if self.scratch.batch_events.len() >= self.par_threshold && self.nodes.len() >= 2 {
                    self.exec_batch_parallel();
                } else {
                    self.exec_batch_inline();
                }
                continue;
            }
            match self.queue.peek_time() {
                Some(at) if at == t => {
                    let scheduled = self.queue.pop().expect("peeked event");
                    self.events_processed += 1;
                    self.exec_control(scheduled.item);
                }
                _ => break,
            }
        }
    }

    /// Executes the collected batch across shard workers and merges the
    /// effects in canonical order.
    ///
    /// Workers are scoped threads spawned per batch; measured overhead
    /// is ~1-2% of round time at the default threshold (sub-threshold
    /// batches stay inline). A persistent parked pool would shave that
    /// residue without changing results, at the cost of owning worker
    /// lifecycle — worth revisiting if profile data ever shows spawn
    /// cost mattering at scale.
    fn exec_batch_parallel(&mut self) {
        let n = self.nodes.len();
        let map = ShardMap::new(n, self.threads);
        let k = map.shards();
        if k <= 1 {
            self.exec_batch_inline();
            return;
        }

        let mut workers = std::mem::take(&mut self.worker_scratch);
        if workers.len() < k {
            workers.resize_with(k, LaneScratch::default);
        }
        let mut targets = std::mem::take(&mut self.scratch.targets);
        let mut shard_of = std::mem::take(&mut self.scratch.shard_of);
        for ev in self.scratch.batch_events.drain(..) {
            let s = map.shard_of(ev.target().index());
            shard_of.push(s as u32);
            workers[s].events.push(ev);
        }

        let now = self.now;
        let tracing = self.tracer.is_some();
        let profiling = self.profiler.is_some();
        let exec_token = self.profiler.as_ref().map(|p| p.enter(Phase::ShardExec));
        {
            let (config, rngs_all) = self.net.lanes(n);
            let down: &[bool] = &self.down;
            let mut nodes_rest: &mut [N] = &mut self.nodes;
            let mut timers_rest: &mut [TimerSlots] = &mut self.timers;
            let mut gens_rest: &mut [u64] = &mut self.timer_gen;
            let mut rngs_rest: &mut [DetRng] = rngs_all;
            let mut lanes: Vec<Lane<'_, N>> = Vec::with_capacity(k);
            for s in 0..k {
                let range = map.range(s);
                let (nodes, rest) = nodes_rest.split_at_mut(range.len());
                nodes_rest = rest;
                let (timers, rest) = timers_rest.split_at_mut(range.len());
                timers_rest = rest;
                let (timer_gen, rest) = gens_rest.split_at_mut(range.len());
                gens_rest = rest;
                let (rngs, rest) = rngs_rest.split_at_mut(range.len());
                rngs_rest = rest;
                lanes.push(Lane {
                    base: range.start,
                    nodes,
                    timers,
                    timer_gen,
                    rngs,
                    down,
                    config,
                    now,
                    n_total: n,
                    tracing,
                    profiling,
                });
            }

            let outcome = crossbeam::thread::scope(|scope| {
                let mut pairs = lanes.into_iter().zip(workers.iter_mut().take(k));
                let first = pairs.next();
                let mut handles = Vec::with_capacity(k - 1);
                for (mut lane, worker) in pairs {
                    handles.push(scope.spawn(move |_| {
                        let t0 = profiling.then(std::time::Instant::now);
                        exec_events(
                            &mut lane,
                            &mut worker.events,
                            &mut worker.outbox,
                            &mut worker.timer_reqs,
                            &mut worker.buf,
                        );
                        if let Some(t0) = t0 {
                            worker.busy_ns = t0.elapsed().as_nanos() as u64;
                        }
                    }));
                }
                // Shard 0 executes on the calling thread while the
                // workers run.
                if let Some((mut lane, worker)) = first {
                    let t0 = profiling.then(std::time::Instant::now);
                    exec_events(
                        &mut lane,
                        &mut worker.events,
                        &mut worker.outbox,
                        &mut worker.timer_reqs,
                        &mut worker.buf,
                    );
                    if let Some(t0) = t0 {
                        worker.busy_ns = t0.elapsed().as_nanos() as u64;
                    }
                }
                for handle in handles {
                    if let Err(payload) = handle.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
            });
            if let Err(payload) = outcome {
                std::panic::resume_unwind(payload);
            }
        }

        if let Some(token) = exec_token {
            let profiler = self.profiler.as_mut().expect("token implies profiler");
            profiler.exit(token, targets.len() as u64);
            let busy: Vec<u64> = workers[..k].iter().map(|w| w.busy_ns).collect();
            profiler.record_parallel_batch(&busy);
        }
        self.events_processed += targets.len() as u64;
        self.apply_run(&mut workers[..k], &targets, &shard_of);
        targets.clear();
        shard_of.clear();
        self.scratch.targets = targets;
        self.scratch.shard_of = shard_of;
        self.worker_scratch = workers;
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LatencyModel;

    /// Counts timer fires and echoes received numbers back to the sender.
    struct Echo {
        fires: u32,
        received: Vec<(NodeId, u64)>,
        period: DurationMs,
    }

    impl Echo {
        fn new(period_ms: u64) -> Self {
            Echo {
                fires: 0,
                received: Vec::new(),
                period: DurationMs::from_millis(period_ms),
            }
        }
    }

    const TICK: TimerId = TimerId(1);

    impl SimNode for Echo {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut SimCtx<'_, u64>) {
            ctx.set_periodic_timer(TICK, self.period, self.period);
        }

        fn on_timer(&mut self, timer: TimerId, ctx: &mut SimCtx<'_, u64>) {
            assert_eq!(timer, TICK);
            self.fires += 1;
            if ctx.self_id() == NodeId::new(0) {
                ctx.send(NodeId::new(1), u64::from(self.fires));
            }
        }

        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut SimCtx<'_, u64>) {
            self.received.push((from, msg));
            if msg.is_multiple_of(2) && ctx.self_id() == NodeId::new(1) {
                ctx.send(from, msg * 10);
            }
        }
    }

    fn build(seed: u64) -> Simulation<Echo> {
        SimulationBuilder::new(seed)
            .network(NetworkConfig::perfect(DurationMs::from_millis(5)))
            .build(vec![Echo::new(100), Echo::new(100)])
    }

    #[test]
    fn periodic_timers_fire_expected_number_of_times() {
        let mut sim = build(1);
        sim.run_until(TimeMs::from_millis(1000));
        // Fires at 100, 200, ..., 1000 => 10 fires.
        assert_eq!(sim.node(NodeId::new(0)).fires, 10);
        assert_eq!(sim.node(NodeId::new(1)).fires, 10);
    }

    #[test]
    fn messages_flow_with_latency() {
        let mut sim = build(1);
        sim.run_until(TimeMs::from_millis(210));
        // Node 0 sent 1 at t=100 and 2 at t=200; both delivered at +5ms.
        let received = &sim.node(NodeId::new(1)).received;
        assert_eq!(received, &[(NodeId::new(0), 1), (NodeId::new(0), 2)]);
        // Echo of "2" arrives at node 0 at t=210.
        assert_eq!(
            sim.node(NodeId::new(0)).received,
            vec![(NodeId::new(1), 20)]
        );
    }

    #[test]
    fn run_until_is_inclusive_and_monotonic() {
        let mut sim = build(1);
        sim.run_until(TimeMs::from_millis(100));
        assert_eq!(sim.node(NodeId::new(0)).fires, 1);
        assert_eq!(sim.now(), TimeMs::from_millis(100));
        sim.run_for(DurationMs::from_millis(50));
        assert_eq!(sim.now(), TimeMs::from_millis(150));
    }

    #[test]
    fn same_seed_same_checksum() {
        let mut a = build(77);
        let mut b = build(77);
        a.run_until(TimeMs::from_secs(5));
        b.run_until(TimeMs::from_secs(5));
        assert_eq!(a.stats(), b.stats());
        assert_ne!(a.stats().checksum, 0);
    }

    #[test]
    fn different_network_seeds_diverge_with_jitter() {
        let make = |seed| {
            SimulationBuilder::new(seed)
                .network(NetworkConfig {
                    latency: LatencyModel::Uniform {
                        min: DurationMs::from_millis(1),
                        max: DurationMs::from_millis(50),
                    },
                    loss: 0.0,
                    partitions: vec![],
                    link_faults: vec![],
                    adversaries: vec![],
                })
                .build(vec![Echo::new(100), Echo::new(100)])
        };
        let mut a = make(1);
        let mut b = make(2);
        a.run_until(TimeMs::from_secs(5));
        b.run_until(TimeMs::from_secs(5));
        assert_ne!(a.stats().checksum, b.stats().checksum);
    }

    #[test]
    fn crash_suppresses_delivery_and_timers_until_recovery() {
        let mut sim = build(3);
        sim.schedule_crash(TimeMs::from_millis(150), NodeId::new(1));
        sim.schedule_recover(TimeMs::from_millis(450), NodeId::new(1));
        sim.run_until(TimeMs::from_millis(1000));
        let n1 = sim.node(NodeId::new(1));
        // Fires at 100 (up), 200..400 suppressed, 500..1000 (up) => 1 + 6.
        assert_eq!(n1.fires, 7);
        // Messages sent at 200,300,400 (+5ms latency) were dropped.
        let got: Vec<u64> = n1.received.iter().map(|&(_, m)| m).collect();
        assert!(got.contains(&1));
        assert!(!got.contains(&2));
        assert!(!got.contains(&3));
        assert!(got.contains(&5));
    }

    #[test]
    fn node_control_runs_at_scheduled_time() {
        let mut sim = build(5);
        sim.schedule_node_control(TimeMs::from_millis(250), NodeId::new(0), |node, now| {
            assert_eq!(now, TimeMs::from_millis(250));
            node.fires = 1000;
        });
        sim.run_until(TimeMs::from_millis(300));
        // 1000 set at t=250, then one more fire at t=300.
        assert_eq!(sim.node(NodeId::new(0)).fires, 1001);
    }

    #[test]
    fn restart_clears_timers_and_reruns_on_start() {
        let mut sim = build(3);
        sim.schedule_crash(TimeMs::from_millis(150), NodeId::new(1));
        // Restart with state loss at t=450: fires counter reset, on_start
        // re-arms the periodic timer from t=450.
        sim.schedule_restart(TimeMs::from_millis(450), NodeId::new(1), |node, _| {
            *node = Echo::new(100);
        });
        sim.run_until(TimeMs::from_millis(1000));
        // Fresh timer fires at 550..1000 => 5 fires on the fresh state.
        assert_eq!(sim.node(NodeId::new(1)).fires, 5);
        assert!(!sim.is_down(NodeId::new(1)));
    }

    #[test]
    fn initially_down_node_spawns_on_restart() {
        let mut sim = SimulationBuilder::new(9)
            .network(NetworkConfig::perfect(DurationMs::from_millis(5)))
            .initially_down([NodeId::new(1)])
            .build(vec![Echo::new(100), Echo::new(100)]);
        sim.schedule_restart(TimeMs::from_millis(500), NodeId::new(1), |_, _| {});
        sim.run_until(TimeMs::from_millis(1000));
        // Node 0 ran the whole time; node 1 only from t=500.
        assert_eq!(sim.node(NodeId::new(0)).fires, 10);
        assert_eq!(sim.node(NodeId::new(1)).fires, 5);
        // Messages sent while node 1 was down were dropped.
        assert!(sim.stats().drops > 0);
    }

    #[test]
    fn node_action_can_send_messages() {
        let mut sim = build(5);
        sim.schedule_node_action(TimeMs::from_millis(250), NodeId::new(0), |_, ctx| {
            assert_eq!(ctx.self_id(), NodeId::new(0));
            ctx.send(NodeId::new(1), 999);
        });
        sim.run_until(TimeMs::from_millis(300));
        let got: Vec<u64> = sim
            .node(NodeId::new(1))
            .received
            .iter()
            .map(|&(_, m)| m)
            .collect();
        assert!(got.contains(&999), "action-sent message delivered: {got:?}");
    }

    #[test]
    fn network_control_mutates_live_config() {
        let mut sim = build(7);
        sim.schedule_network_control(TimeMs::from_millis(150), |config, now| {
            assert_eq!(now, TimeMs::from_millis(150));
            config.loss = 1.0;
        });
        sim.run_until(TimeMs::from_secs(1));
        let stats = sim.stats();
        // The first send (t=100) got through; everything after t=150 drops.
        assert!(stats.deliveries >= 1);
        assert!(stats.drops > 0);
        assert_eq!(stats.deliveries + stats.drops, stats.sends);
    }

    #[test]
    fn global_control_sees_all_nodes() {
        let mut sim = build(5);
        sim.schedule_control(TimeMs::from_millis(50), |nodes, _| {
            for n in nodes.iter_mut() {
                n.fires += 100;
            }
        });
        sim.run_until(TimeMs::from_millis(50));
        assert_eq!(sim.node(NodeId::new(0)).fires, 100);
        assert_eq!(sim.node(NodeId::new(1)).fires, 100);
    }

    #[test]
    fn one_shot_timer_fires_once_and_cancel_works() {
        struct OneShot {
            fired: u32,
        }
        impl SimNode for OneShot {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut SimCtx<'_, ()>) {
                ctx.set_timer(TimerId(1), DurationMs::from_millis(10));
                ctx.set_timer(TimerId(2), DurationMs::from_millis(20));
            }
            fn on_timer(&mut self, timer: TimerId, ctx: &mut SimCtx<'_, ()>) {
                self.fired += timer.0;
                if timer == TimerId(1) {
                    ctx.cancel_timer(TimerId(2));
                }
            }
        }
        let mut sim = SimulationBuilder::new(1).build(vec![OneShot { fired: 0 }]);
        sim.run_until(TimeMs::from_secs(1));
        // Timer 2 cancelled by timer 1; only timer 1 fired.
        assert_eq!(sim.node(NodeId::new(0)).fired, 1);
    }

    #[test]
    fn rearming_replaces_pending_timer() {
        struct Rearm {
            fired_at: Vec<TimeMs>,
        }
        impl SimNode for Rearm {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut SimCtx<'_, ()>) {
                ctx.set_timer(TimerId(1), DurationMs::from_millis(100));
                // Immediately re-arm with a different deadline.
                ctx.set_timer(TimerId(1), DurationMs::from_millis(40));
            }
            fn on_timer(&mut self, _t: TimerId, ctx: &mut SimCtx<'_, ()>) {
                self.fired_at.push(ctx.now());
            }
        }
        let mut sim = SimulationBuilder::new(1).build(vec![Rearm { fired_at: vec![] }]);
        sim.run_until(TimeMs::from_secs(1));
        assert_eq!(
            sim.node(NodeId::new(0)).fired_at,
            vec![TimeMs::from_millis(40)]
        );
    }

    #[test]
    fn step_processes_single_event() {
        let mut sim = build(9);
        let t = sim.step();
        assert_eq!(t, Some(TimeMs::from_millis(100)));
        assert!(sim.events_processed() >= 1);
    }

    #[test]
    fn stats_count_sends_and_deliveries() {
        let mut sim = build(11);
        sim.run_until(TimeMs::from_secs(1));
        let stats = sim.stats();
        // Node 0 sends 10 msgs (t=100..1000). The 10th is still in flight at
        // the horizon, so node 1 echoes only the even ones among 1..9: 4.
        assert_eq!(stats.sends, 14);
        // Delivered: 9 from node 0, plus the 4 echoes.
        assert_eq!(stats.deliveries, 13);
        assert_eq!(stats.drops, 0);
        assert_eq!(stats.timer_fires, 20);
    }

    #[test]
    fn lossy_network_counts_drops() {
        let mut sim = SimulationBuilder::new(13)
            .network(NetworkConfig {
                latency: LatencyModel::Constant(DurationMs::from_millis(1)),
                loss: 1.0,
                partitions: vec![],
                link_faults: vec![],
                adversaries: vec![],
            })
            .build(vec![Echo::new(50), Echo::new(50)]);
        sim.run_until(TimeMs::from_secs(1));
        let stats = sim.stats();
        assert_eq!(stats.deliveries, 0);
        assert_eq!(stats.drops, stats.sends);
        assert!(stats.sends > 0);
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;
    use crate::network::LatencyModel;
    use crate::trace::CountingTracer;

    /// A chatty node: every tick it fans messages out to a deterministic
    /// set of peers; receipts are folded into a running digest so any
    /// reordering or divergence changes observable state.
    struct Chatty {
        digest: u64,
        fires: u64,
        n: u32,
        period: DurationMs,
    }

    const TICK: TimerId = TimerId(1);

    impl SimNode for Chatty {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut SimCtx<'_, u64>) {
            let phase = DurationMs::from_millis(1 + u64::from(ctx.self_id().as_u32()) % 7);
            ctx.set_periodic_timer(TICK, phase, self.period);
        }

        fn on_timer(&mut self, _t: TimerId, ctx: &mut SimCtx<'_, u64>) {
            self.fires += 1;
            let me = ctx.self_id().as_u32();
            for i in 1..=3u32 {
                let to = (me + i * 7 + self.fires as u32) % self.n;
                if to != me {
                    ctx.send(NodeId::new(to), u64::from(me) << 32 | self.fires);
                }
            }
        }

        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut SimCtx<'_, u64>) {
            self.digest = self
                .digest
                .wrapping_mul(0x100000001B3)
                .wrapping_add(msg ^ u64::from(from.as_u32()) ^ ctx.now().as_millis());
        }
    }

    fn chatty_sim(seed: u64, n: u32, threads: usize, lossy: bool) -> Simulation<Chatty> {
        let network = if lossy {
            NetworkConfig {
                latency: LatencyModel::Uniform {
                    min: DurationMs::from_millis(1),
                    max: DurationMs::from_millis(9),
                },
                loss: 0.15,
                partitions: vec![],
                link_faults: vec![],
                adversaries: vec![],
            }
        } else {
            NetworkConfig::perfect(DurationMs::from_millis(3))
        };
        let nodes = (0..n)
            .map(|_| Chatty {
                digest: 0,
                fires: 0,
                n,
                period: DurationMs::from_millis(10),
            })
            .collect();
        let mut sim = SimulationBuilder::new(seed)
            .network(network)
            .threads(threads)
            .build(nodes);
        // Tiny threshold so small test populations exercise the worker
        // path for real.
        sim.set_parallel_threshold(2);
        sim
    }

    fn fingerprint(sim: &Simulation<Chatty>) -> (NetStats, u64, u64, usize) {
        let digest = sim
            .nodes()
            .fold(0u64, |acc, n| acc.wrapping_mul(31).wrapping_add(n.digest));
        (
            sim.stats(),
            digest,
            sim.events_processed(),
            sim.peak_pending_events(),
        )
    }

    #[test]
    fn sharded_matches_inline_oracle_across_thread_counts() {
        for lossy in [false, true] {
            let mut oracle = chatty_sim(11, 37, 1, lossy);
            oracle.run_until_sharded(TimeMs::from_millis(500));
            let expected = fingerprint(&oracle);
            assert!(expected.0.deliveries > 0);
            for k in [2usize, 3, 4, 8] {
                let mut sim = chatty_sim(11, 37, k, lossy);
                sim.run_until_sharded(TimeMs::from_millis(500));
                assert_eq!(
                    fingerprint(&sim),
                    expected,
                    "K={k} lossy={lossy} diverged from the K=1 oracle"
                );
            }
        }
    }

    #[test]
    fn sharded_matches_plain_run_until() {
        let mut a = chatty_sim(5, 20, 4, true);
        a.run_until_sharded(TimeMs::from_millis(300));
        let mut b = chatty_sim(5, 20, 4, true);
        b.run_until(TimeMs::from_millis(300));
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn sharded_run_respects_control_barriers() {
        let run = |k: usize| {
            let mut sim = chatty_sim(13, 24, k, false);
            sim.schedule_crash(TimeMs::from_millis(40), NodeId::new(3));
            sim.schedule_recover(TimeMs::from_millis(120), NodeId::new(3));
            sim.schedule_restart(TimeMs::from_millis(200), NodeId::new(7), |node, _| {
                node.digest = 0;
                node.fires = 0;
            });
            sim.schedule_node_action(TimeMs::from_millis(250), NodeId::new(1), |_, ctx| {
                ctx.send(NodeId::new(2), 0xDEAD);
            });
            sim.schedule_network_control(TimeMs::from_millis(300), |config, _| {
                config.loss = 0.3;
            });
            sim.run_until_sharded(TimeMs::from_millis(450));
            fingerprint(&sim)
        };
        let expected = run(1);
        for k in [2usize, 4, 8] {
            assert_eq!(run(k), expected, "K={k} diverged under control barriers");
        }
    }

    #[test]
    fn sharded_tracing_replays_in_canonical_order() {
        let run = |k: usize| {
            let mut sim = chatty_sim(3, 16, k, false);
            sim.set_tracer(Box::new(CountingTracer::default()));
            sim.run_until_sharded(TimeMs::from_millis(200));
            sim.stats()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn post_event_hook_sees_canonical_order_at_any_thread_count() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let run = |k: usize| {
            let mut sim = chatty_sim(9, 18, k, false);
            let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::default();
            let sink = Rc::clone(&log);
            sim.set_post_event_hook(Box::new(move |node: &mut Chatty| {
                sink.borrow_mut().push((node.n, node.digest));
            }));
            sim.run_until_sharded(TimeMs::from_millis(120));
            drop(sim); // releases the hook's clone of the log
            Rc::try_unwrap(log).map(RefCell::into_inner).unwrap()
        };
        let expected = run(1);
        assert!(!expected.is_empty());
        assert_eq!(run(4), expected);
    }

    #[test]
    fn profiler_never_changes_results_and_records_phases() {
        use agb_profile::{Phase, ProfileConfig};
        let profiled = |k: usize| {
            let network = NetworkConfig::perfect(DurationMs::from_millis(3));
            let nodes = (0..24)
                .map(|_| Chatty {
                    digest: 0,
                    fires: 0,
                    n: 24,
                    period: DurationMs::from_millis(10),
                })
                .collect();
            let mut sim = SimulationBuilder::new(21)
                .network(network)
                .threads(k)
                .profile(ProfileConfig::enabled())
                .build(nodes);
            sim.set_parallel_threshold(2);
            sim.run_until_sharded(TimeMs::from_millis(300));
            sim
        };
        let mut plain = chatty_sim(21, 24, 1, false);
        plain.run_until_sharded(TimeMs::from_millis(300));
        assert!(plain.profiler_snapshot().is_none());

        for k in [1usize, 4] {
            let sim = profiled(k);
            assert_eq!(
                fingerprint(&sim),
                fingerprint(&plain),
                "profiler perturbed results at K={k}"
            );
            let snap = sim.profiler_snapshot().expect("profiler attached");
            assert!(snap.phase(Phase::ShardExec).count > 0);
            assert!(snap.phase(Phase::Merge).items > 0);
            assert!(snap.phase(Phase::Route).items > 0, "route sends attributed");
            if k > 1 {
                assert!(snap.parallel_batches > 0, "K=4 must hit the worker path");
                assert!(snap.worst_balance_ratio.unwrap() >= 1.0);
            } else {
                assert_eq!(snap.parallel_batches, 0);
            }
            let mem = sim.queue_mem();
            assert_eq!(mem.entries, sim.pending_events() as u64);
        }
    }

    #[test]
    fn thread_count_clamp_rule() {
        // The pure rule behind threads_from_env (the env var itself is
        // not mutated here: tests run concurrently and cluster builders
        // read AGB_THREADS).
        assert_eq!(super::clamp_threads(None), 1, "unset/malformed → 1");
        assert_eq!(super::clamp_threads(Some(0)), 1, "zero clamps up");
        assert_eq!(super::clamp_threads(Some(5)), 5);
        assert_eq!(super::clamp_threads(Some(64)), 64);
        assert_eq!(super::clamp_threads(Some(10_000)), 64, "cap at 64");
        std::env::set_var("AGB_THREADS_TEST_PROBE", "5");
        assert_eq!(
            agb_types::env_usize("AGB_THREADS_TEST_PROBE"),
            Some(5),
            "env_usize is the parser threads_from_env builds on"
        );
        assert!(threads_from_env() >= 1);
    }
}
