//! The simulation engine: virtual clock, node registry, timer service and
//! message routing through the network model.

use agb_types::{DetRng, DurationMs, NodeId, SeedSequence, TimeMs};

use crate::network::{NetworkConfig, NetworkModel};
use crate::queue::EventQueue;
use crate::trace::{TraceEvent, Tracer};

/// Protocol-defined timer identifier.
///
/// Protocols may run several concurrent timers per node (gossip round,
/// sample-period rollover, workload ticks); the id distinguishes them in
/// [`SimNode::on_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u32);

/// A node (actor) hosted by the simulator.
///
/// All methods receive a [`SimCtx`] through which the node sends messages
/// and manages timers; nodes must not hold any other channel to the outside
/// world, which is what makes runs reproducible.
pub trait SimNode {
    /// The message type exchanged between nodes.
    type Msg;

    /// Called once at simulation start (virtual time 0).
    fn on_start(&mut self, ctx: &mut SimCtx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a timer previously set through the context fires.
    fn on_timer(&mut self, timer: TimerId, ctx: &mut SimCtx<'_, Self::Msg>) {
        let _ = (timer, ctx);
    }

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut SimCtx<'_, Self::Msg>) {
        let _ = (from, msg, ctx);
    }
}

#[derive(Debug)]
enum TimerKind {
    Once,
    Periodic(DurationMs),
}

#[derive(Debug)]
enum TimerRequest {
    Set {
        timer: TimerId,
        first_after: DurationMs,
        kind: TimerKind,
    },
    Cancel(TimerId),
}

/// The node's window onto the simulated world.
///
/// Collects sends and timer requests during a handler invocation; the engine
/// applies them (routing messages through the network model) when the
/// handler returns.
#[derive(Debug)]
pub struct SimCtx<'a, M> {
    now: TimeMs,
    self_id: NodeId,
    outbox: &'a mut Vec<(NodeId, M)>,
    timer_reqs: &'a mut Vec<TimerRequest>,
}

impl<'a, M> SimCtx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> TimeMs {
        self.now
    }

    /// The identity of the node being invoked.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to` through the simulated network.
    ///
    /// Delivery is not guaranteed: the network model may drop the message.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Arms a one-shot timer that fires `after` from now.
    ///
    /// Re-arming an already armed timer id replaces it.
    pub fn set_timer(&mut self, timer: TimerId, after: DurationMs) {
        self.timer_reqs.push(TimerRequest::Set {
            timer,
            first_after: after,
            kind: TimerKind::Once,
        });
    }

    /// Arms a periodic timer: first fire after `first_after`, then every
    /// `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (a zero period would livelock the engine).
    pub fn set_periodic_timer(
        &mut self,
        timer: TimerId,
        first_after: DurationMs,
        period: DurationMs,
    ) {
        assert!(!period.is_zero(), "periodic timer period must be non-zero");
        self.timer_reqs.push(TimerRequest::Set {
            timer,
            first_after,
            kind: TimerKind::Periodic(period),
        });
    }

    /// Cancels a timer; pending fires are suppressed.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.timer_reqs.push(TimerRequest::Cancel(timer));
    }
}

/// A scheduled control action against one node.
type NodeControlFn<N> = Box<dyn FnOnce(&mut N, TimeMs)>;
/// A scheduled control action against the whole node slice.
type GlobalControlFn<N> = Box<dyn FnOnce(&mut [N], TimeMs)>;
/// A scheduled action against one node *with network access* (may send
/// messages and manage timers through the context).
type NodeActionFn<N, M> = Box<dyn FnOnce(&mut N, &mut SimCtx<'_, M>)>;
/// A scheduled mutation of the live network configuration.
type NetControlFn = Box<dyn FnOnce(&mut crate::network::NetworkConfig, TimeMs)>;

enum EventKind<N: SimNode> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: N::Msg,
    },
    Timer {
        node: NodeId,
        timer: TimerId,
        gen: u64,
    },
    NodeControl {
        node: NodeId,
        f: NodeControlFn<N>,
    },
    GlobalControl {
        f: GlobalControlFn<N>,
    },
    NodeAction {
        node: NodeId,
        f: NodeActionFn<N, N::Msg>,
    },
    NetControl {
        f: NetControlFn,
    },
    SetDown {
        node: NodeId,
        down: bool,
    },
    Restart {
        node: NodeId,
        f: NodeControlFn<N>,
    },
}

#[derive(Debug, Clone, Copy)]
struct TimerSlot {
    gen: u64,
    period: Option<DurationMs>,
}

/// Aggregate engine statistics, including an order-sensitive checksum of all
/// engine events — two runs of the same seeded experiment are identical iff
/// their checksums agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Messages handed to the network by nodes.
    pub sends: u64,
    /// Messages delivered to their destination.
    pub deliveries: u64,
    /// Messages dropped by the network (loss, partition or downed node).
    pub drops: u64,
    /// Timer fires dispatched to nodes.
    pub timer_fires: u64,
    /// Order-sensitive checksum of the full event stream.
    pub checksum: u64,
}

impl NetStats {
    fn mix(&mut self, parts: [u64; 4]) {
        for p in parts {
            self.checksum ^= p;
            self.checksum = self.checksum.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Builder for [`Simulation`].
///
/// # Example
///
/// ```
/// use agb_sim::{SimulationBuilder, NetworkConfig};
/// use agb_types::DurationMs;
///
/// let builder = SimulationBuilder::new(7)
///     .network(NetworkConfig::perfect(DurationMs::from_millis(10)));
/// # let _ = builder;
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    seed: u64,
    network: NetworkConfig,
    initially_down: Vec<NodeId>,
}

impl SimulationBuilder {
    /// Starts a builder with the given experiment seed and a default
    /// LAN-like network.
    pub fn new(seed: u64) -> Self {
        SimulationBuilder {
            seed,
            network: NetworkConfig::default(),
            initially_down: Vec::new(),
        }
    }

    /// Sets the network configuration.
    pub fn network(mut self, config: NetworkConfig) -> Self {
        self.network = config;
        self
    }

    /// Marks nodes that start *down*: their `on_start` does not run at
    /// time zero, they receive no messages and fire no timers until a
    /// scheduled [`Simulation::schedule_restart`] brings them up.
    ///
    /// This is how churn scenarios host late joiners: the node slot exists
    /// from the beginning (ids are stable), but the node only enters the
    /// system when its join is scheduled.
    pub fn initially_down(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.initially_down.extend(nodes);
        self
    }

    /// Builds the simulation over the given nodes.
    ///
    /// `nodes[i]` is addressed as `NodeId::new(i)`. Each node's `on_start`
    /// runs at virtual time zero during the first call to a `run_*` method.
    pub fn build<N: SimNode>(self, nodes: Vec<N>) -> Simulation<N> {
        let seeds = SeedSequence::new(self.seed);
        let net_rng: DetRng = seeds.rng_for("network", 0);
        let n = nodes.len();
        let mut down = vec![false; n];
        for id in &self.initially_down {
            down[id.index()] = true;
        }
        Simulation {
            nodes,
            queue: EventQueue::new(),
            now: TimeMs::ZERO,
            net: NetworkModel::new(self.network, net_rng),
            timers: (0..n).map(|_| Vec::new()).collect(),
            timer_gen: vec![0; n],
            down,
            stats: NetStats::default(),
            tracer: None,
            started: false,
            events_processed: 0,
            scratch_outbox: Vec::new(),
            scratch_timer_reqs: Vec::new(),
        }
    }
}

/// The discrete-event simulation: owns the nodes, the clock, the future
/// event list and the network model.
pub struct Simulation<N: SimNode> {
    nodes: Vec<N>,
    queue: EventQueue<EventKind<N>>,
    now: TimeMs,
    net: NetworkModel,
    /// Per-node armed timers. Nodes run a handful of timers at most, so a
    /// small vec with linear lookup beats hashing on the per-fire path.
    timers: Vec<Vec<(TimerId, TimerSlot)>>,
    /// Monotonic per-node timer generation: survives timer-map clears on
    /// restart, so stale queued fires can never collide with re-armed
    /// timers.
    timer_gen: Vec<u64>,
    down: Vec<bool>,
    stats: NetStats,
    tracer: Option<Box<dyn Tracer>>,
    started: bool,
    events_processed: u64,
    /// Reusable invocation buffers: every node handler call borrows these
    /// through [`SimCtx`] instead of allocating fresh vectors.
    scratch_outbox: Vec<(NodeId, <N as SimNode>::Msg)>,
    scratch_timer_reqs: Vec<TimerRequest>,
}

impl<N: SimNode> Simulation<N> {
    /// Current virtual time.
    pub fn now(&self) -> TimeMs {
        self.now
    }

    /// Number of hosted nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the simulation hosts no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (for inspection/configuration between runs).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Engine statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Messages dropped by the network model (loss/partitions only).
    pub fn network_drops(&self) -> u64 {
        self.net.dropped()
    }

    /// Installs a tracer receiving every engine event.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Replaces the network configuration from this point in virtual time.
    pub fn set_network(&mut self, config: NetworkConfig) {
        self.net.set_config(config);
    }

    /// Schedules a closure to run against one node at virtual time `at`.
    ///
    /// Used by scenario schedules (e.g. "at t₁, shrink the buffers of nodes
    /// 0..12"). Closures scheduled at the same instant run in scheduling
    /// order.
    pub fn schedule_node_control(
        &mut self,
        at: TimeMs,
        node: NodeId,
        f: impl FnOnce(&mut N, TimeMs) + 'static,
    ) {
        self.queue.push(
            at,
            EventKind::NodeControl {
                node,
                f: Box::new(f),
            },
        );
    }

    /// Schedules a closure to run against all nodes at virtual time `at`.
    pub fn schedule_control(&mut self, at: TimeMs, f: impl FnOnce(&mut [N], TimeMs) + 'static) {
        self.queue
            .push(at, EventKind::GlobalControl { f: Box::new(f) });
    }

    /// Schedules a crash: from `at` on, the node receives no messages and
    /// its timers do not fire (periodic timers keep rescheduling silently so
    /// they resume on recovery).
    pub fn schedule_crash(&mut self, at: TimeMs, node: NodeId) {
        self.queue.push(at, EventKind::SetDown { node, down: true });
    }

    /// Schedules a recovery from a previous crash.
    pub fn schedule_recover(&mut self, at: TimeMs, node: NodeId) {
        self.queue
            .push(at, EventKind::SetDown { node, down: false });
    }

    /// Schedules a *restart with state loss* (or the first spawn of an
    /// [`initially_down`](SimulationBuilder::initially_down) node): at `at`
    /// the node's pending timers are cleared, `f` runs to replace/reset its
    /// state, the node is marked up, and its `on_start` is invoked so it
    /// re-enters the system through its own bootstrap path.
    pub fn schedule_restart(
        &mut self,
        at: TimeMs,
        node: NodeId,
        f: impl FnOnce(&mut N, TimeMs) + 'static,
    ) {
        self.queue.push(
            at,
            EventKind::Restart {
                node,
                f: Box::new(f),
            },
        );
    }

    /// Schedules a closure that runs against one node *with network
    /// access*: unlike [`schedule_node_control`](Self::schedule_node_control),
    /// the closure receives a [`SimCtx`] and may send messages and manage
    /// timers (e.g. a graceful leave emitting farewell messages, or a
    /// sender burst storm).
    pub fn schedule_node_action(
        &mut self,
        at: TimeMs,
        node: NodeId,
        f: impl FnOnce(&mut N, &mut SimCtx<'_, N::Msg>) + 'static,
    ) {
        self.queue.push(
            at,
            EventKind::NodeAction {
                node,
                f: Box::new(f),
            },
        );
    }

    /// Schedules a mutation of the live network configuration (partitions
    /// forming/healing, link faults flapping, loss spikes) at virtual time
    /// `at`.
    pub fn schedule_network_control(
        &mut self,
        at: TimeMs,
        f: impl FnOnce(&mut NetworkConfig, TimeMs) + 'static,
    ) {
        self.queue
            .push(at, EventKind::NetControl { f: Box::new(f) });
    }

    /// Whether `node` is currently down (crashed or not yet spawned).
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.index()]
    }

    /// Runs the simulation until virtual time `t` (inclusive), then sets the
    /// clock to `t`.
    pub fn run_until(&mut self, t: TimeMs) {
        self.ensure_started();
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step_one();
        }
        self.now = self.now.max(t);
    }

    /// Runs for a further `d` of virtual time.
    pub fn run_for(&mut self, d: DurationMs) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Processes a single event, returning its virtual time, or `None` if
    /// the future event list is empty.
    pub fn step(&mut self) -> Option<TimeMs> {
        self.ensure_started();
        if self.queue.is_empty() {
            return None;
        }
        self.step_one();
        Some(self.now)
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events currently waiting in the future event list.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the future event list over the whole run (the
    /// perf harness's peak event-queue depth).
    pub fn peak_pending_events(&self) -> usize {
        self.queue.peak_len()
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            // Initially-down nodes (late joiners) bootstrap through their
            // scheduled restart instead.
            if self.down[i] {
                continue;
            }
            self.invoke(NodeId::new(i as u32), Invocation::Start);
        }
    }

    fn step_one(&mut self) {
        let Some(scheduled) = self.queue.pop() else {
            return;
        };
        self.now = self.now.max(scheduled.at);
        self.events_processed += 1;
        match scheduled.item {
            EventKind::Deliver { from, to, msg } => {
                if self.down[to.index()] {
                    self.stats.drops += 1;
                    return;
                }
                self.stats.deliveries += 1;
                self.stats.mix([
                    2,
                    u64::from(from.as_u32()) << 32 | u64::from(to.as_u32()),
                    self.now.as_millis(),
                    0,
                ]);
                if let Some(tracer) = self.tracer.as_deref_mut() {
                    tracer.record(TraceEvent::Deliver {
                        from,
                        to,
                        at: self.now,
                    });
                }
                self.invoke(to, Invocation::Message { from, msg });
            }
            EventKind::Timer { node, timer, gen } => {
                let slots = &mut self.timers[node.index()];
                let Some(pos) = slots.iter().position(|&(t, _)| t == timer) else {
                    return;
                };
                let slot = slots[pos].1;
                if slot.gen != gen {
                    return; // stale: timer was re-armed or cancelled
                }
                if let Some(period) = slot.period {
                    let next = self.now + period;
                    self.queue.push(next, EventKind::Timer { node, timer, gen });
                } else {
                    self.timers[node.index()].swap_remove(pos);
                }
                if self.down[node.index()] {
                    return;
                }
                self.stats.timer_fires += 1;
                self.stats.mix([
                    3,
                    u64::from(node.as_u32()),
                    u64::from(timer.0),
                    self.now.as_millis(),
                ]);
                if let Some(tracer) = self.tracer.as_deref_mut() {
                    tracer.record(TraceEvent::Timer {
                        node,
                        timer: timer.0,
                        at: self.now,
                    });
                }
                self.invoke(node, Invocation::Timer(timer));
            }
            EventKind::NodeControl { node, f } => {
                f(&mut self.nodes[node.index()], self.now);
            }
            EventKind::GlobalControl { f } => {
                f(&mut self.nodes, self.now);
            }
            EventKind::NodeAction { node, f } => {
                self.invoke_with(node, |n, ctx| f(n, ctx));
            }
            EventKind::NetControl { f } => {
                f(self.net.config_mut(), self.now);
            }
            EventKind::SetDown { node, down } => {
                self.down[node.index()] = down;
            }
            EventKind::Restart { node, f } => {
                self.timers[node.index()].clear();
                self.down[node.index()] = false;
                f(&mut self.nodes[node.index()], self.now);
                self.invoke(node, Invocation::Start);
            }
        }
    }

    fn invoke(&mut self, id: NodeId, invocation: Invocation<N::Msg>) {
        self.invoke_with(id, |node, ctx| match invocation {
            Invocation::Start => node.on_start(ctx),
            Invocation::Timer(t) => node.on_timer(t, ctx),
            Invocation::Message { from, msg } => node.on_message(from, msg, ctx),
        });
    }

    fn invoke_with(&mut self, id: NodeId, g: impl FnOnce(&mut N, &mut SimCtx<'_, N::Msg>)) {
        // Handler invocations are the engine's innermost loop: reuse the
        // simulation-owned scratch buffers instead of allocating an
        // outbox and a request list per call. Handlers never re-enter the
        // engine, so taking the buffers out for the duration is safe.
        let mut outbox = std::mem::take(&mut self.scratch_outbox);
        let mut timer_reqs = std::mem::take(&mut self.scratch_timer_reqs);
        {
            let mut ctx = SimCtx {
                now: self.now,
                self_id: id,
                outbox: &mut outbox,
                timer_reqs: &mut timer_reqs,
            };
            let node = &mut self.nodes[id.index()];
            g(node, &mut ctx);
        }
        for req in timer_reqs.drain(..) {
            match req {
                TimerRequest::Set {
                    timer,
                    first_after,
                    kind,
                } => {
                    let slots = &mut self.timers[id.index()];
                    self.timer_gen[id.index()] += 1;
                    let gen = self.timer_gen[id.index()];
                    let period = match kind {
                        TimerKind::Once => None,
                        TimerKind::Periodic(p) => Some(p),
                    };
                    match slots.iter_mut().find(|(t, _)| *t == timer) {
                        Some((_, slot)) => *slot = TimerSlot { gen, period },
                        None => slots.push((timer, TimerSlot { gen, period })),
                    }
                    self.queue.push(
                        self.now + first_after,
                        EventKind::Timer {
                            node: id,
                            timer,
                            gen,
                        },
                    );
                }
                TimerRequest::Cancel(timer) => {
                    let slots = &mut self.timers[id.index()];
                    if let Some(pos) = slots.iter().position(|&(t, _)| t == timer) {
                        slots.swap_remove(pos);
                    }
                }
            }
        }
        for (to, msg) in outbox.drain(..) {
            assert!(
                to.index() < self.nodes.len(),
                "message addressed to unknown node {to}"
            );
            self.stats.sends += 1;
            let routed = self.net.route(id, to, self.now);
            let deliver_at = routed.map(|lat| self.now + lat);
            self.stats.mix([
                1,
                u64::from(id.as_u32()) << 32 | u64::from(to.as_u32()),
                self.now.as_millis(),
                deliver_at.map_or(u64::MAX, TimeMs::as_millis),
            ]);
            if let Some(tracer) = self.tracer.as_deref_mut() {
                tracer.record(TraceEvent::Send {
                    from: id,
                    to,
                    at: self.now,
                    deliver_at,
                });
            }
            match deliver_at {
                Some(at) => {
                    self.queue
                        .push(at, EventKind::Deliver { from: id, to, msg });
                }
                None => {
                    self.stats.drops += 1;
                }
            }
        }
        self.scratch_outbox = outbox;
        self.scratch_timer_reqs = timer_reqs;
    }
}

enum Invocation<M> {
    Start,
    Timer(TimerId),
    Message { from: NodeId, msg: M },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LatencyModel;

    /// Counts timer fires and echoes received numbers back to the sender.
    struct Echo {
        fires: u32,
        received: Vec<(NodeId, u64)>,
        period: DurationMs,
    }

    impl Echo {
        fn new(period_ms: u64) -> Self {
            Echo {
                fires: 0,
                received: Vec::new(),
                period: DurationMs::from_millis(period_ms),
            }
        }
    }

    const TICK: TimerId = TimerId(1);

    impl SimNode for Echo {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut SimCtx<'_, u64>) {
            ctx.set_periodic_timer(TICK, self.period, self.period);
        }

        fn on_timer(&mut self, timer: TimerId, ctx: &mut SimCtx<'_, u64>) {
            assert_eq!(timer, TICK);
            self.fires += 1;
            if ctx.self_id() == NodeId::new(0) {
                ctx.send(NodeId::new(1), u64::from(self.fires));
            }
        }

        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut SimCtx<'_, u64>) {
            self.received.push((from, msg));
            if msg.is_multiple_of(2) && ctx.self_id() == NodeId::new(1) {
                ctx.send(from, msg * 10);
            }
        }
    }

    fn build(seed: u64) -> Simulation<Echo> {
        SimulationBuilder::new(seed)
            .network(NetworkConfig::perfect(DurationMs::from_millis(5)))
            .build(vec![Echo::new(100), Echo::new(100)])
    }

    #[test]
    fn periodic_timers_fire_expected_number_of_times() {
        let mut sim = build(1);
        sim.run_until(TimeMs::from_millis(1000));
        // Fires at 100, 200, ..., 1000 => 10 fires.
        assert_eq!(sim.node(NodeId::new(0)).fires, 10);
        assert_eq!(sim.node(NodeId::new(1)).fires, 10);
    }

    #[test]
    fn messages_flow_with_latency() {
        let mut sim = build(1);
        sim.run_until(TimeMs::from_millis(210));
        // Node 0 sent 1 at t=100 and 2 at t=200; both delivered at +5ms.
        let received = &sim.node(NodeId::new(1)).received;
        assert_eq!(received, &[(NodeId::new(0), 1), (NodeId::new(0), 2)]);
        // Echo of "2" arrives at node 0 at t=210.
        assert_eq!(
            sim.node(NodeId::new(0)).received,
            vec![(NodeId::new(1), 20)]
        );
    }

    #[test]
    fn run_until_is_inclusive_and_monotonic() {
        let mut sim = build(1);
        sim.run_until(TimeMs::from_millis(100));
        assert_eq!(sim.node(NodeId::new(0)).fires, 1);
        assert_eq!(sim.now(), TimeMs::from_millis(100));
        sim.run_for(DurationMs::from_millis(50));
        assert_eq!(sim.now(), TimeMs::from_millis(150));
    }

    #[test]
    fn same_seed_same_checksum() {
        let mut a = build(77);
        let mut b = build(77);
        a.run_until(TimeMs::from_secs(5));
        b.run_until(TimeMs::from_secs(5));
        assert_eq!(a.stats(), b.stats());
        assert_ne!(a.stats().checksum, 0);
    }

    #[test]
    fn different_network_seeds_diverge_with_jitter() {
        let make = |seed| {
            SimulationBuilder::new(seed)
                .network(NetworkConfig {
                    latency: LatencyModel::Uniform {
                        min: DurationMs::from_millis(1),
                        max: DurationMs::from_millis(50),
                    },
                    loss: 0.0,
                    partitions: vec![],
                    link_faults: vec![],
                })
                .build(vec![Echo::new(100), Echo::new(100)])
        };
        let mut a = make(1);
        let mut b = make(2);
        a.run_until(TimeMs::from_secs(5));
        b.run_until(TimeMs::from_secs(5));
        assert_ne!(a.stats().checksum, b.stats().checksum);
    }

    #[test]
    fn crash_suppresses_delivery_and_timers_until_recovery() {
        let mut sim = build(3);
        sim.schedule_crash(TimeMs::from_millis(150), NodeId::new(1));
        sim.schedule_recover(TimeMs::from_millis(450), NodeId::new(1));
        sim.run_until(TimeMs::from_millis(1000));
        let n1 = sim.node(NodeId::new(1));
        // Fires at 100 (up), 200..400 suppressed, 500..1000 (up) => 1 + 6.
        assert_eq!(n1.fires, 7);
        // Messages sent at 200,300,400 (+5ms latency) were dropped.
        let got: Vec<u64> = n1.received.iter().map(|&(_, m)| m).collect();
        assert!(got.contains(&1));
        assert!(!got.contains(&2));
        assert!(!got.contains(&3));
        assert!(got.contains(&5));
    }

    #[test]
    fn node_control_runs_at_scheduled_time() {
        let mut sim = build(5);
        sim.schedule_node_control(TimeMs::from_millis(250), NodeId::new(0), |node, now| {
            assert_eq!(now, TimeMs::from_millis(250));
            node.fires = 1000;
        });
        sim.run_until(TimeMs::from_millis(300));
        // 1000 set at t=250, then one more fire at t=300.
        assert_eq!(sim.node(NodeId::new(0)).fires, 1001);
    }

    #[test]
    fn restart_clears_timers_and_reruns_on_start() {
        let mut sim = build(3);
        sim.schedule_crash(TimeMs::from_millis(150), NodeId::new(1));
        // Restart with state loss at t=450: fires counter reset, on_start
        // re-arms the periodic timer from t=450.
        sim.schedule_restart(TimeMs::from_millis(450), NodeId::new(1), |node, _| {
            *node = Echo::new(100);
        });
        sim.run_until(TimeMs::from_millis(1000));
        // Fresh timer fires at 550..1000 => 5 fires on the fresh state.
        assert_eq!(sim.node(NodeId::new(1)).fires, 5);
        assert!(!sim.is_down(NodeId::new(1)));
    }

    #[test]
    fn initially_down_node_spawns_on_restart() {
        let mut sim = SimulationBuilder::new(9)
            .network(NetworkConfig::perfect(DurationMs::from_millis(5)))
            .initially_down([NodeId::new(1)])
            .build(vec![Echo::new(100), Echo::new(100)]);
        sim.schedule_restart(TimeMs::from_millis(500), NodeId::new(1), |_, _| {});
        sim.run_until(TimeMs::from_millis(1000));
        // Node 0 ran the whole time; node 1 only from t=500.
        assert_eq!(sim.node(NodeId::new(0)).fires, 10);
        assert_eq!(sim.node(NodeId::new(1)).fires, 5);
        // Messages sent while node 1 was down were dropped.
        assert!(sim.stats().drops > 0);
    }

    #[test]
    fn node_action_can_send_messages() {
        let mut sim = build(5);
        sim.schedule_node_action(TimeMs::from_millis(250), NodeId::new(0), |_, ctx| {
            assert_eq!(ctx.self_id(), NodeId::new(0));
            ctx.send(NodeId::new(1), 999);
        });
        sim.run_until(TimeMs::from_millis(300));
        let got: Vec<u64> = sim
            .node(NodeId::new(1))
            .received
            .iter()
            .map(|&(_, m)| m)
            .collect();
        assert!(got.contains(&999), "action-sent message delivered: {got:?}");
    }

    #[test]
    fn network_control_mutates_live_config() {
        let mut sim = build(7);
        sim.schedule_network_control(TimeMs::from_millis(150), |config, now| {
            assert_eq!(now, TimeMs::from_millis(150));
            config.loss = 1.0;
        });
        sim.run_until(TimeMs::from_secs(1));
        let stats = sim.stats();
        // The first send (t=100) got through; everything after t=150 drops.
        assert!(stats.deliveries >= 1);
        assert!(stats.drops > 0);
        assert_eq!(stats.deliveries + stats.drops, stats.sends);
    }

    #[test]
    fn global_control_sees_all_nodes() {
        let mut sim = build(5);
        sim.schedule_control(TimeMs::from_millis(50), |nodes, _| {
            for n in nodes.iter_mut() {
                n.fires += 100;
            }
        });
        sim.run_until(TimeMs::from_millis(50));
        assert_eq!(sim.node(NodeId::new(0)).fires, 100);
        assert_eq!(sim.node(NodeId::new(1)).fires, 100);
    }

    #[test]
    fn one_shot_timer_fires_once_and_cancel_works() {
        struct OneShot {
            fired: u32,
        }
        impl SimNode for OneShot {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut SimCtx<'_, ()>) {
                ctx.set_timer(TimerId(1), DurationMs::from_millis(10));
                ctx.set_timer(TimerId(2), DurationMs::from_millis(20));
            }
            fn on_timer(&mut self, timer: TimerId, ctx: &mut SimCtx<'_, ()>) {
                self.fired += timer.0;
                if timer == TimerId(1) {
                    ctx.cancel_timer(TimerId(2));
                }
            }
        }
        let mut sim = SimulationBuilder::new(1).build(vec![OneShot { fired: 0 }]);
        sim.run_until(TimeMs::from_secs(1));
        // Timer 2 cancelled by timer 1; only timer 1 fired.
        assert_eq!(sim.node(NodeId::new(0)).fired, 1);
    }

    #[test]
    fn rearming_replaces_pending_timer() {
        struct Rearm {
            fired_at: Vec<TimeMs>,
        }
        impl SimNode for Rearm {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut SimCtx<'_, ()>) {
                ctx.set_timer(TimerId(1), DurationMs::from_millis(100));
                // Immediately re-arm with a different deadline.
                ctx.set_timer(TimerId(1), DurationMs::from_millis(40));
            }
            fn on_timer(&mut self, _t: TimerId, ctx: &mut SimCtx<'_, ()>) {
                self.fired_at.push(ctx.now());
            }
        }
        let mut sim = SimulationBuilder::new(1).build(vec![Rearm { fired_at: vec![] }]);
        sim.run_until(TimeMs::from_secs(1));
        assert_eq!(
            sim.node(NodeId::new(0)).fired_at,
            vec![TimeMs::from_millis(40)]
        );
    }

    #[test]
    fn step_processes_single_event() {
        let mut sim = build(9);
        let t = sim.step();
        assert_eq!(t, Some(TimeMs::from_millis(100)));
        assert!(sim.events_processed() >= 1);
    }

    #[test]
    fn stats_count_sends_and_deliveries() {
        let mut sim = build(11);
        sim.run_until(TimeMs::from_secs(1));
        let stats = sim.stats();
        // Node 0 sends 10 msgs (t=100..1000). The 10th is still in flight at
        // the horizon, so node 1 echoes only the even ones among 1..9: 4.
        assert_eq!(stats.sends, 14);
        // Delivered: 9 from node 0, plus the 4 echoes.
        assert_eq!(stats.deliveries, 13);
        assert_eq!(stats.drops, 0);
        assert_eq!(stats.timer_fires, 20);
    }

    #[test]
    fn lossy_network_counts_drops() {
        let mut sim = SimulationBuilder::new(13)
            .network(NetworkConfig {
                latency: LatencyModel::Constant(DurationMs::from_millis(1)),
                loss: 1.0,
                partitions: vec![],
                link_faults: vec![],
            })
            .build(vec![Echo::new(50), Echo::new(50)]);
        sim.run_until(TimeMs::from_secs(1));
        let stats = sim.stats();
        assert_eq!(stats.deliveries, 0);
        assert_eq!(stats.drops, stats.sends);
        assert!(stats.sends > 0);
    }
}
