//! Deterministic discrete-event network simulator.
//!
//! This crate is the evaluation substrate of the reproduction: the paper's
//! quantitative results come from a "simple event-based simulation model",
//! which this crate rebuilds with three properties the experiments rely on:
//!
//! 1. **Determinism** — every run is a pure function of the experiment seed.
//!    Events at equal virtual times are delivered in insertion order, node
//!    and network randomness use independent seeded streams.
//! 2. **A configurable network model** — per-message latency distributions,
//!    independent loss, and scheduled partitions ([`network`]).
//! 3. **Actor-style nodes** — protocol state machines implement [`SimNode`]
//!    and interact with the world only through [`SimCtx`], which is exactly
//!    the discipline that lets the threaded runtime (`agb-runtime`) drive the
//!    same protocol code against real sockets.
//!
//! # Example
//!
//! A two-node ping-pong:
//!
//! ```
//! use agb_sim::{Simulation, SimulationBuilder, SimCtx, SimNode};
//! use agb_types::{NodeId, TimeMs};
//!
//! struct Ping { got: u32 }
//!
//! impl SimNode for Ping {
//!     type Msg = u32;
//!     fn on_start(&mut self, ctx: &mut SimCtx<'_, u32>) {
//!         if ctx.self_id() == NodeId::new(0) {
//!             ctx.send(NodeId::new(1), 1);
//!         }
//!     }
//!     fn on_message(&mut self, _from: NodeId, msg: u32, ctx: &mut SimCtx<'_, u32>) {
//!         self.got += msg;
//!         if msg < 3 {
//!             let peer = if ctx.self_id() == NodeId::new(0) { 1 } else { 0 };
//!             ctx.send(NodeId::new(peer), msg + 1);
//!         }
//!     }
//! }
//!
//! let mut sim: Simulation<Ping> = SimulationBuilder::new(42)
//!     .build(vec![Ping { got: 0 }, Ping { got: 0 }]);
//! sim.run_until(TimeMs::from_secs(10));
//! assert_eq!(sim.node(NodeId::new(1)).got, 1 + 3);
//! assert_eq!(sim.node(NodeId::new(0)).got, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod network;
mod queue;
mod shard;
mod trace;

pub use engine::{
    threads_from_env, NetStats, SimCtx, SimNode, Simulation, SimulationBuilder, TimerId,
};
pub use network::{
    AdversaryWindow, LatencyModel, LinkFault, NetworkConfig, NetworkModel, Partition, RouteOutcome,
};
pub use trace::{CountingTracer, NoopTracer, TraceEvent, Tracer};
