//! Network models: latency distributions, independent loss and partitions.
//!
//! The paper's analysis assumes "message loss in the network is independently
//! distributed"; [`NetworkConfig`] reproduces exactly that, plus scheduled
//! [`Partition`]s used by the failure-injection tests to show what happens
//! when the assumption is violated.

use agb_types::{DetRng, DurationMs, NodeId, TimeMs};
use rand::RngExt;

/// Per-message latency distribution.
///
/// # Example
///
/// ```
/// use agb_sim::LatencyModel;
/// use agb_types::DurationMs;
/// use rand::SeedableRng;
///
/// let mut rng = agb_types::DetRng::seed_from_u64(1);
/// let lat = LatencyModel::Uniform {
///     min: DurationMs::from_millis(10),
///     max: DurationMs::from_millis(20),
/// };
/// let d = lat.sample(&mut rng);
/// assert!(d >= DurationMs::from_millis(10) && d <= DurationMs::from_millis(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(DurationMs),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Minimum latency.
        min: DurationMs,
        /// Maximum latency (inclusive).
        max: DurationMs,
    },
    /// Exponentially distributed with the given mean, shifted by `floor`.
    ///
    /// Approximates a LAN with occasional queueing spikes.
    Exponential {
        /// Minimum (propagation) latency added to every sample.
        floor: DurationMs,
        /// Mean of the exponential component.
        mean: DurationMs,
    },
}

impl LatencyModel {
    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut DetRng) -> DurationMs {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_millis();
                let hi = max.as_millis().max(lo);
                DurationMs::from_millis(rng.random_range(lo..=hi))
            }
            LatencyModel::Exponential { floor, mean } => {
                let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let exp = -(u.ln()) * mean.as_millis() as f64;
                DurationMs::from_millis(floor.as_millis() + exp.round() as u64)
            }
        }
    }

    /// The mean of the distribution (used for sanity reporting).
    pub fn mean(&self) -> DurationMs {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                DurationMs::from_millis((min.as_millis() + max.as_millis()) / 2)
            }
            LatencyModel::Exponential { floor, mean } => floor + mean,
        }
    }
}

impl Default for LatencyModel {
    /// A LAN-like default: uniform 5–15 ms.
    fn default() -> Self {
        LatencyModel::Uniform {
            min: DurationMs::from_millis(5),
            max: DurationMs::from_millis(15),
        }
    }
}

/// A scheduled network partition separating two sets of nodes.
///
/// While active, messages crossing between `side_a` and the rest of the
/// system are dropped. Nodes listed in `side_a` can still talk to each
/// other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Nodes on the isolated side.
    pub side_a: Vec<NodeId>,
    /// Partition start (inclusive).
    pub from: TimeMs,
    /// Partition end (exclusive).
    pub until: TimeMs,
}

impl Partition {
    /// Whether a message from `a` to `b` at time `now` crosses the cut.
    pub fn blocks(&self, a: NodeId, b: NodeId, now: TimeMs) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        let a_in = self.side_a.contains(&a);
        let b_in = self.side_a.contains(&b);
        a_in != b_in
    }
}

/// A scheduled degradation of the links touching a set of nodes: extra
/// latency and an extra independent loss probability, active during
/// `[from, until)`.
///
/// Unlike a [`Partition`] (a clean cut), a link fault models flapping or
/// congested paths: messages still flow, but slower and less reliably.
/// A message is affected when its sender **or** receiver is in `nodes`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFault {
    /// Nodes whose links degrade.
    pub nodes: Vec<NodeId>,
    /// Additional latency applied to affected messages.
    pub extra_latency: DurationMs,
    /// Additional independent drop probability in `[0, 1]`, applied on top
    /// of the base loss.
    pub extra_loss: f64,
    /// Fault start (inclusive).
    pub from: TimeMs,
    /// Fault end (exclusive).
    pub until: TimeMs,
}

impl LinkFault {
    /// Whether a message from `a` to `b` at time `now` rides a degraded
    /// link.
    pub fn affects(&self, a: NodeId, b: NodeId, now: TimeMs) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        self.nodes.contains(&a) || self.nodes.contains(&b)
    }
}

/// Complete configuration of the simulated network.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkConfig {
    /// Latency applied to every delivered message.
    pub latency: LatencyModel,
    /// Independent per-message drop probability in `[0, 1]`.
    pub loss: f64,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled per-link degradations (latency inflation, loss spikes).
    pub link_faults: Vec<LinkFault>,
}

impl NetworkConfig {
    /// A perfect network: constant latency, no loss.
    pub fn perfect(latency: DurationMs) -> Self {
        NetworkConfig {
            latency: LatencyModel::Constant(latency),
            loss: 0.0,
            partitions: Vec::new(),
            link_faults: Vec::new(),
        }
    }

    /// LAN-like defaults with the given independent loss probability.
    pub fn lossy(loss: f64) -> Self {
        NetworkConfig {
            latency: LatencyModel::default(),
            loss,
            partitions: Vec::new(),
            link_faults: Vec::new(),
        }
    }
}

/// Routing decision for one message against a configuration and the
/// *sender's* RNG stream: `None` means the network dropped it, otherwise
/// the latency to apply.
///
/// Stateless apart from the stream, so shard workers can route their own
/// nodes' traffic concurrently; because every draw comes from the
/// per-sender stream, the draw sequence depends only on that sender's
/// send order — which the canonical merge keeps identical at any thread
/// count.
pub(crate) fn route_decision(
    config: &NetworkConfig,
    rng: &mut DetRng,
    from: NodeId,
    to: NodeId,
    now: TimeMs,
) -> Option<DurationMs> {
    for p in &config.partitions {
        if p.blocks(from, to, now) {
            return None;
        }
    }
    if config.loss > 0.0 && rng.random::<f64>() < config.loss {
        return None;
    }
    let mut extra = DurationMs::ZERO;
    for f in &config.link_faults {
        if f.affects(from, to, now) {
            // One loss draw per active fault: overlapping faults
            // compound, as independent bad hops would.
            if f.extra_loss > 0.0 && rng.random::<f64>() < f.extra_loss {
                return None;
            }
            extra += f.extra_latency;
        }
    }
    Some(config.latency.sample(rng) + extra)
}

/// Decides the fate of each message: dropped, or delivered after a latency.
///
/// The default implementation, [`NetworkModel::new`], combines a
/// [`LatencyModel`], independent loss and partitions from [`NetworkConfig`].
///
/// Randomness is organized as one deterministic stream *per sending
/// node*, all forked from a master seed drawn once at construction. A
/// sender's loss/latency draws therefore depend only on its own send
/// sequence — never on how sends from different nodes interleave — which
/// is what lets the sharded engine route traffic on worker threads and
/// still reproduce the single-threaded run bit for bit.
#[derive(Debug)]
pub struct NetworkModel {
    config: NetworkConfig,
    master: u64,
    streams: Vec<DetRng>,
    sent: u64,
    dropped: u64,
}

impl NetworkModel {
    /// Creates a model from configuration and a dedicated RNG stream
    /// (consumed as the master seed for the per-sender streams).
    pub fn new(config: NetworkConfig, mut rng: DetRng) -> Self {
        NetworkModel {
            config,
            master: rng.random(),
            streams: Vec::new(),
            sent: 0,
            dropped: 0,
        }
    }

    /// Pre-creates the per-sender streams for nodes `0..n`.
    pub(crate) fn ensure_streams(&mut self, n: usize) {
        use rand::SeedableRng;
        while self.streams.len() < n {
            let i = self.streams.len() as u64;
            self.streams
                .push(DetRng::seed_from_u64(agb_types::fork_seed(self.master, i)));
        }
    }

    /// The configuration and the per-sender streams as disjoint borrows,
    /// for shard workers.
    pub(crate) fn lanes(&mut self, n: usize) -> (&NetworkConfig, &mut [DetRng]) {
        self.ensure_streams(n);
        (&self.config, &mut self.streams)
    }

    /// Folds per-worker routing counters back into the model.
    pub(crate) fn add_counts(&mut self, sent: u64, dropped: u64) {
        self.sent += sent;
        self.dropped += dropped;
    }

    /// Routes one message: `None` means the network dropped it, otherwise
    /// the latency to apply.
    pub fn route(&mut self, from: NodeId, to: NodeId, now: TimeMs) -> Option<DurationMs> {
        self.ensure_streams(from.index() + 1);
        self.sent += 1;
        let decision = route_decision(&self.config, &mut self.streams[from.index()], from, to, now);
        if decision.is_none() {
            self.dropped += 1;
        }
        decision
    }

    /// Messages handed to the network so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages dropped by loss or partitions so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The active configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Mutable access to the configuration (used by scheduled network
    /// controls: partitions healing early, link faults flapping, loss
    /// spikes).
    pub fn config_mut(&mut self) -> &mut NetworkConfig {
        &mut self.config
    }

    /// Replaces the network configuration at runtime (used by failure
    /// injection scenarios).
    pub fn set_config(&mut self, config: NetworkConfig) {
        self.config = config;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(7)
    }

    #[test]
    fn constant_latency_is_constant() {
        let m = LatencyModel::Constant(DurationMs::from_millis(25));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), DurationMs::from_millis(25));
        }
        assert_eq!(m.mean(), DurationMs::from_millis(25));
    }

    #[test]
    fn uniform_latency_within_bounds() {
        let m = LatencyModel::Uniform {
            min: DurationMs::from_millis(10),
            max: DurationMs::from_millis(30),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r);
            assert!(d >= DurationMs::from_millis(10));
            assert!(d <= DurationMs::from_millis(30));
        }
        assert_eq!(m.mean(), DurationMs::from_millis(20));
    }

    #[test]
    fn exponential_latency_respects_floor_and_mean() {
        let m = LatencyModel::Exponential {
            floor: DurationMs::from_millis(5),
            mean: DurationMs::from_millis(20),
        };
        let mut r = rng();
        let mut sum = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let d = m.sample(&mut r);
            assert!(d >= DurationMs::from_millis(5));
            sum += d.as_millis();
        }
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 25.0).abs() < 1.5,
            "empirical mean {mean} too far from 25"
        );
    }

    #[test]
    fn perfect_network_never_drops() {
        let mut net = NetworkModel::new(NetworkConfig::perfect(DurationMs::from_millis(1)), rng());
        for i in 0..100 {
            let d = net.route(NodeId::new(i), NodeId::new(i + 1), TimeMs::ZERO);
            assert_eq!(d, Some(DurationMs::from_millis(1)));
        }
        assert_eq!(net.dropped(), 0);
        assert_eq!(net.sent(), 100);
    }

    #[test]
    fn lossy_network_drops_roughly_p() {
        let mut net = NetworkModel::new(NetworkConfig::lossy(0.3), rng());
        let n = 20_000;
        for _ in 0..n {
            net.route(NodeId::new(0), NodeId::new(1), TimeMs::ZERO);
        }
        let rate = net.dropped() as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn partition_blocks_cross_traffic_only_during_interval() {
        let p = Partition {
            side_a: vec![NodeId::new(0), NodeId::new(1)],
            from: TimeMs::from_secs(10),
            until: TimeMs::from_secs(20),
        };
        // Before and after: nothing blocked.
        assert!(!p.blocks(NodeId::new(0), NodeId::new(5), TimeMs::from_secs(5)));
        assert!(!p.blocks(NodeId::new(0), NodeId::new(5), TimeMs::from_secs(20)));
        // During: cross traffic blocked both directions.
        assert!(p.blocks(NodeId::new(0), NodeId::new(5), TimeMs::from_secs(15)));
        assert!(p.blocks(NodeId::new(5), NodeId::new(1), TimeMs::from_secs(15)));
        // During: same-side traffic unaffected.
        assert!(!p.blocks(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(15)));
        assert!(!p.blocks(NodeId::new(4), NodeId::new(5), TimeMs::from_secs(15)));
    }

    #[test]
    fn partitioned_network_drops_cross_messages() {
        let config = NetworkConfig {
            latency: LatencyModel::Constant(DurationMs::from_millis(1)),
            loss: 0.0,
            partitions: vec![Partition {
                side_a: vec![NodeId::new(0)],
                from: TimeMs::ZERO,
                until: TimeMs::from_secs(1),
            }],
            link_faults: vec![],
        };
        let mut net = NetworkModel::new(config, rng());
        assert_eq!(
            net.route(NodeId::new(0), NodeId::new(1), TimeMs::ZERO),
            None
        );
        assert!(net
            .route(NodeId::new(1), NodeId::new(2), TimeMs::ZERO)
            .is_some());
        assert!(net
            .route(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(1))
            .is_some());
    }

    #[test]
    fn link_fault_inflates_latency_within_window() {
        let config = NetworkConfig {
            latency: LatencyModel::Constant(DurationMs::from_millis(5)),
            loss: 0.0,
            partitions: vec![],
            link_faults: vec![LinkFault {
                nodes: vec![NodeId::new(1)],
                extra_latency: DurationMs::from_millis(40),
                extra_loss: 0.0,
                from: TimeMs::from_secs(10),
                until: TimeMs::from_secs(20),
            }],
        };
        let mut net = NetworkModel::new(config, rng());
        // Outside the window or off the faulted node: base latency.
        assert_eq!(
            net.route(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(5)),
            Some(DurationMs::from_millis(5))
        );
        assert_eq!(
            net.route(NodeId::new(0), NodeId::new(2), TimeMs::from_secs(15)),
            Some(DurationMs::from_millis(5))
        );
        // Inside the window, touching the faulted node in either direction.
        assert_eq!(
            net.route(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(15)),
            Some(DurationMs::from_millis(45))
        );
        assert_eq!(
            net.route(NodeId::new(1), NodeId::new(2), TimeMs::from_secs(15)),
            Some(DurationMs::from_millis(45))
        );
    }

    #[test]
    fn link_fault_loss_spike_drops_roughly_p() {
        let config = NetworkConfig {
            latency: LatencyModel::Constant(DurationMs::from_millis(1)),
            loss: 0.0,
            partitions: vec![],
            link_faults: vec![LinkFault {
                nodes: vec![NodeId::new(0)],
                extra_latency: DurationMs::ZERO,
                extra_loss: 0.4,
                from: TimeMs::ZERO,
                until: TimeMs::from_secs(100),
            }],
        };
        let mut net = NetworkModel::new(config, rng());
        let n = 20_000;
        for _ in 0..n {
            net.route(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(1));
        }
        let rate = net.dropped() as f64 / n as f64;
        assert!((rate - 0.4).abs() < 0.02, "spike loss rate {rate}");
    }

    #[test]
    fn set_config_takes_effect() {
        let mut net = NetworkModel::new(NetworkConfig::perfect(DurationMs::ZERO), rng());
        assert!(net
            .route(NodeId::new(0), NodeId::new(1), TimeMs::ZERO)
            .is_some());
        net.set_config(NetworkConfig {
            latency: LatencyModel::Constant(DurationMs::ZERO),
            loss: 1.0,
            partitions: vec![],
            link_faults: vec![],
        });
        assert_eq!(
            net.route(NodeId::new(0), NodeId::new(1), TimeMs::ZERO),
            None
        );
        assert_eq!(net.config().loss, 1.0);
    }
}
