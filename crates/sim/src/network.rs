//! Network models: latency distributions, independent loss and partitions.
//!
//! The paper's analysis assumes "message loss in the network is independently
//! distributed"; [`NetworkConfig`] reproduces exactly that, plus scheduled
//! [`Partition`]s used by the failure-injection tests to show what happens
//! when the assumption is violated.

use agb_failure::{AdversaryConfig, Mutation};
use agb_types::{DetRng, DurationMs, NodeId, TimeMs};
use rand::RngExt;

/// Per-message latency distribution.
///
/// # Example
///
/// ```
/// use agb_sim::LatencyModel;
/// use agb_types::DurationMs;
/// use rand::SeedableRng;
///
/// let mut rng = agb_types::DetRng::seed_from_u64(1);
/// let lat = LatencyModel::Uniform {
///     min: DurationMs::from_millis(10),
///     max: DurationMs::from_millis(20),
/// };
/// let d = lat.sample(&mut rng);
/// assert!(d >= DurationMs::from_millis(10) && d <= DurationMs::from_millis(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(DurationMs),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Minimum latency.
        min: DurationMs,
        /// Maximum latency (inclusive).
        max: DurationMs,
    },
    /// Exponentially distributed with the given mean, shifted by `floor`.
    ///
    /// Approximates a LAN with occasional queueing spikes.
    Exponential {
        /// Minimum (propagation) latency added to every sample.
        floor: DurationMs,
        /// Mean of the exponential component.
        mean: DurationMs,
    },
}

impl LatencyModel {
    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut DetRng) -> DurationMs {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_millis();
                let hi = max.as_millis().max(lo);
                DurationMs::from_millis(rng.random_range(lo..=hi))
            }
            LatencyModel::Exponential { floor, mean } => {
                let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let exp = -(u.ln()) * mean.as_millis() as f64;
                DurationMs::from_millis(floor.as_millis() + exp.round() as u64)
            }
        }
    }

    /// The mean of the distribution (used for sanity reporting).
    pub fn mean(&self) -> DurationMs {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                DurationMs::from_millis((min.as_millis() + max.as_millis()) / 2)
            }
            LatencyModel::Exponential { floor, mean } => floor + mean,
        }
    }
}

impl Default for LatencyModel {
    /// A LAN-like default: uniform 5–15 ms.
    fn default() -> Self {
        LatencyModel::Uniform {
            min: DurationMs::from_millis(5),
            max: DurationMs::from_millis(15),
        }
    }
}

/// A scheduled network partition separating two sets of nodes.
///
/// While active, messages crossing between `side_a` and the rest of the
/// system are dropped. Nodes listed in `side_a` can still talk to each
/// other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Nodes on the isolated side.
    pub side_a: Vec<NodeId>,
    /// Partition start (inclusive).
    pub from: TimeMs,
    /// Partition end (exclusive).
    pub until: TimeMs,
}

impl Partition {
    /// Whether a message from `a` to `b` at time `now` crosses the cut.
    pub fn blocks(&self, a: NodeId, b: NodeId, now: TimeMs) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        let a_in = self.side_a.contains(&a);
        let b_in = self.side_a.contains(&b);
        a_in != b_in
    }
}

/// A scheduled degradation of the links touching a set of nodes: extra
/// latency and an extra independent loss probability, active during
/// `[from, until)`.
///
/// Unlike a [`Partition`] (a clean cut), a link fault models flapping or
/// congested paths: messages still flow, but slower and less reliably.
/// A message is affected when its sender **or** receiver is in `nodes`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFault {
    /// Nodes whose links degrade.
    pub nodes: Vec<NodeId>,
    /// Additional latency applied to affected messages.
    pub extra_latency: DurationMs,
    /// Additional independent drop probability in `[0, 1]`, applied on top
    /// of the base loss.
    pub extra_loss: f64,
    /// Fault start (inclusive).
    pub from: TimeMs,
    /// Fault end (exclusive).
    pub until: TimeMs,
}

impl LinkFault {
    /// Whether a message from `a` to `b` at time `now` rides a degraded
    /// link.
    pub fn affects(&self, a: NodeId, b: NodeId, now: TimeMs) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        self.nodes.contains(&a) || self.nodes.contains(&b)
    }
}

/// A scheduled byte-adversary episode: during `[from, until)`, messages
/// riding the affected links suffer the [`AdversaryConfig`] fault draws —
/// bit flips and truncations (the frame is destroyed and counted as
/// corrupted, never misdelivered), duplication (the receiver gets two
/// copies) and reordering (an extra hold-back delay).
///
/// The simulator's messages have no byte representation, so destructive
/// faults model the *receiver-side outcome* of the wire-level adversary:
/// the frame checksum rejects the mangled datagram and the decode path
/// drops it. The threaded runtime applies the identical fault draws to
/// real encoded bytes ([`agb_failure::ByteAdversary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryWindow {
    /// Nodes whose links are attacked; empty means every link. A message
    /// is affected when its sender **or** receiver is listed.
    pub nodes: Vec<NodeId>,
    /// The fault rates drawn per affected message.
    pub faults: AdversaryConfig,
    /// Episode start (inclusive).
    pub from: TimeMs,
    /// Episode end (exclusive).
    pub until: TimeMs,
}

impl AdversaryWindow {
    /// Whether a message from `a` to `b` at time `now` is attacked.
    pub fn affects(&self, a: NodeId, b: NodeId, now: TimeMs) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        self.nodes.is_empty() || self.nodes.contains(&a) || self.nodes.contains(&b)
    }
}

/// Complete configuration of the simulated network.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkConfig {
    /// Latency applied to every delivered message.
    pub latency: LatencyModel,
    /// Independent per-message drop probability in `[0, 1]`.
    pub loss: f64,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled per-link degradations (latency inflation, loss spikes).
    pub link_faults: Vec<LinkFault>,
    /// Scheduled byte-adversary episodes (corruption, truncation,
    /// duplication, reordering).
    pub adversaries: Vec<AdversaryWindow>,
}

impl NetworkConfig {
    /// A perfect network: constant latency, no loss.
    pub fn perfect(latency: DurationMs) -> Self {
        NetworkConfig {
            latency: LatencyModel::Constant(latency),
            loss: 0.0,
            partitions: Vec::new(),
            link_faults: Vec::new(),
            adversaries: Vec::new(),
        }
    }

    /// LAN-like defaults with the given independent loss probability.
    pub fn lossy(loss: f64) -> Self {
        NetworkConfig {
            latency: LatencyModel::default(),
            loss,
            partitions: Vec::new(),
            link_faults: Vec::new(),
            adversaries: Vec::new(),
        }
    }
}

/// The network's verdict on one routed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Delivered after the given latency.
    Deliver(DurationMs),
    /// Delivered twice (adversary duplication), each copy after its own
    /// latency.
    Duplicate(DurationMs, DurationMs),
    /// Dropped by loss, a partition, or a link fault.
    Drop,
    /// Destroyed by the byte adversary (bit flip / truncation): the frame
    /// checksum rejects it at the receiver, so it is counted separately
    /// from plain loss and never misdelivered.
    Corrupt,
}

impl RouteOutcome {
    /// The first delivery latency, if any copy is delivered.
    pub fn latency(self) -> Option<DurationMs> {
        match self {
            RouteOutcome::Deliver(d) | RouteOutcome::Duplicate(d, _) => Some(d),
            RouteOutcome::Drop | RouteOutcome::Corrupt => None,
        }
    }
}

/// Routing decision for one message against a configuration and the
/// *sender's* RNG stream.
///
/// Stateless apart from the stream, so shard workers can route their own
/// nodes' traffic concurrently; because every draw comes from the
/// per-sender stream, the draw sequence depends only on that sender's
/// send order — which the canonical merge keeps identical at any thread
/// count. Adversary draws happen only while a window covers the link, so
/// adversary-free configurations consume the exact RNG sequence they
/// always did and their run digests are unchanged.
pub(crate) fn route_decision(
    config: &NetworkConfig,
    rng: &mut DetRng,
    from: NodeId,
    to: NodeId,
    now: TimeMs,
) -> RouteOutcome {
    for p in &config.partitions {
        if p.blocks(from, to, now) {
            return RouteOutcome::Drop;
        }
    }
    if config.loss > 0.0 && rng.random::<f64>() < config.loss {
        return RouteOutcome::Drop;
    }
    let mut extra = DurationMs::ZERO;
    for f in &config.link_faults {
        if f.affects(from, to, now) {
            // One loss draw per active fault: overlapping faults
            // compound, as independent bad hops would.
            if f.extra_loss > 0.0 && rng.random::<f64>() < f.extra_loss {
                return RouteOutcome::Drop;
            }
            extra += f.extra_latency;
        }
    }
    let mut fate = Mutation::None;
    for w in &config.adversaries {
        if w.affects(from, to, now) {
            fate = w.faults.draw(rng);
            // First window to fire claims the datagram; overlapping
            // windows only get a draw if earlier ones passed it through.
            if fate != Mutation::None {
                break;
            }
        }
    }
    match fate {
        Mutation::Corrupted | Mutation::Truncated => RouteOutcome::Corrupt,
        Mutation::Duplicated => RouteOutcome::Duplicate(
            config.latency.sample(rng) + extra,
            config.latency.sample(rng) + extra,
        ),
        Mutation::Reordered(delay) => {
            RouteOutcome::Deliver(config.latency.sample(rng) + extra + delay)
        }
        Mutation::None => RouteOutcome::Deliver(config.latency.sample(rng) + extra),
    }
}

/// Decides the fate of each message: dropped, or delivered after a latency.
///
/// The default implementation, [`NetworkModel::new`], combines a
/// [`LatencyModel`], independent loss and partitions from [`NetworkConfig`].
///
/// Randomness is organized as one deterministic stream *per sending
/// node*, all forked from a master seed drawn once at construction. A
/// sender's loss/latency draws therefore depend only on its own send
/// sequence — never on how sends from different nodes interleave — which
/// is what lets the sharded engine route traffic on worker threads and
/// still reproduce the single-threaded run bit for bit.
#[derive(Debug)]
pub struct NetworkModel {
    config: NetworkConfig,
    master: u64,
    streams: Vec<DetRng>,
    sent: u64,
    dropped: u64,
    corrupted: u64,
}

impl NetworkModel {
    /// Creates a model from configuration and a dedicated RNG stream
    /// (consumed as the master seed for the per-sender streams).
    pub fn new(config: NetworkConfig, mut rng: DetRng) -> Self {
        NetworkModel {
            config,
            master: rng.random(),
            streams: Vec::new(),
            sent: 0,
            dropped: 0,
            corrupted: 0,
        }
    }

    /// Pre-creates the per-sender streams for nodes `0..n`.
    pub(crate) fn ensure_streams(&mut self, n: usize) {
        use rand::SeedableRng;
        while self.streams.len() < n {
            let i = self.streams.len() as u64;
            self.streams
                .push(DetRng::seed_from_u64(agb_types::fork_seed(self.master, i)));
        }
    }

    /// The configuration and the per-sender streams as disjoint borrows,
    /// for shard workers.
    pub(crate) fn lanes(&mut self, n: usize) -> (&NetworkConfig, &mut [DetRng]) {
        self.ensure_streams(n);
        (&self.config, &mut self.streams)
    }

    /// Folds per-worker routing counters back into the model.
    pub(crate) fn add_counts(&mut self, sent: u64, dropped: u64, corrupted: u64) {
        self.sent += sent;
        self.dropped += dropped;
        self.corrupted += corrupted;
    }

    /// Routes one message: `None` means the network dropped (or the
    /// adversary destroyed) it, otherwise the latency of the first copy.
    pub fn route(&mut self, from: NodeId, to: NodeId, now: TimeMs) -> Option<DurationMs> {
        self.route_outcome(from, to, now).latency()
    }

    /// Routes one message, exposing the full verdict including adversary
    /// duplication and corruption.
    pub fn route_outcome(&mut self, from: NodeId, to: NodeId, now: TimeMs) -> RouteOutcome {
        self.ensure_streams(from.index() + 1);
        self.sent += 1;
        let outcome = route_decision(&self.config, &mut self.streams[from.index()], from, to, now);
        match outcome {
            RouteOutcome::Drop => self.dropped += 1,
            RouteOutcome::Corrupt => {
                self.dropped += 1;
                self.corrupted += 1;
            }
            RouteOutcome::Deliver(_) | RouteOutcome::Duplicate(_, _) => {}
        }
        outcome
    }

    /// Messages handed to the network so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages dropped by loss, partitions, or adversary destruction so
    /// far (corrupted frames are a subset of this count).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages destroyed by the byte adversary (checksum-rejected at the
    /// receiver) so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// The active configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Mutable access to the configuration (used by scheduled network
    /// controls: partitions healing early, link faults flapping, loss
    /// spikes).
    pub fn config_mut(&mut self) -> &mut NetworkConfig {
        &mut self.config
    }

    /// Replaces the network configuration at runtime (used by failure
    /// injection scenarios).
    pub fn set_config(&mut self, config: NetworkConfig) {
        self.config = config;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(7)
    }

    #[test]
    fn constant_latency_is_constant() {
        let m = LatencyModel::Constant(DurationMs::from_millis(25));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), DurationMs::from_millis(25));
        }
        assert_eq!(m.mean(), DurationMs::from_millis(25));
    }

    #[test]
    fn uniform_latency_within_bounds() {
        let m = LatencyModel::Uniform {
            min: DurationMs::from_millis(10),
            max: DurationMs::from_millis(30),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r);
            assert!(d >= DurationMs::from_millis(10));
            assert!(d <= DurationMs::from_millis(30));
        }
        assert_eq!(m.mean(), DurationMs::from_millis(20));
    }

    #[test]
    fn exponential_latency_respects_floor_and_mean() {
        let m = LatencyModel::Exponential {
            floor: DurationMs::from_millis(5),
            mean: DurationMs::from_millis(20),
        };
        let mut r = rng();
        let mut sum = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let d = m.sample(&mut r);
            assert!(d >= DurationMs::from_millis(5));
            sum += d.as_millis();
        }
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 25.0).abs() < 1.5,
            "empirical mean {mean} too far from 25"
        );
    }

    #[test]
    fn perfect_network_never_drops() {
        let mut net = NetworkModel::new(NetworkConfig::perfect(DurationMs::from_millis(1)), rng());
        for i in 0..100 {
            let d = net.route(NodeId::new(i), NodeId::new(i + 1), TimeMs::ZERO);
            assert_eq!(d, Some(DurationMs::from_millis(1)));
        }
        assert_eq!(net.dropped(), 0);
        assert_eq!(net.sent(), 100);
    }

    #[test]
    fn lossy_network_drops_roughly_p() {
        let mut net = NetworkModel::new(NetworkConfig::lossy(0.3), rng());
        let n = 20_000;
        for _ in 0..n {
            net.route(NodeId::new(0), NodeId::new(1), TimeMs::ZERO);
        }
        let rate = net.dropped() as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn partition_blocks_cross_traffic_only_during_interval() {
        let p = Partition {
            side_a: vec![NodeId::new(0), NodeId::new(1)],
            from: TimeMs::from_secs(10),
            until: TimeMs::from_secs(20),
        };
        // Before and after: nothing blocked.
        assert!(!p.blocks(NodeId::new(0), NodeId::new(5), TimeMs::from_secs(5)));
        assert!(!p.blocks(NodeId::new(0), NodeId::new(5), TimeMs::from_secs(20)));
        // During: cross traffic blocked both directions.
        assert!(p.blocks(NodeId::new(0), NodeId::new(5), TimeMs::from_secs(15)));
        assert!(p.blocks(NodeId::new(5), NodeId::new(1), TimeMs::from_secs(15)));
        // During: same-side traffic unaffected.
        assert!(!p.blocks(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(15)));
        assert!(!p.blocks(NodeId::new(4), NodeId::new(5), TimeMs::from_secs(15)));
    }

    #[test]
    fn partitioned_network_drops_cross_messages() {
        let config = NetworkConfig {
            latency: LatencyModel::Constant(DurationMs::from_millis(1)),
            loss: 0.0,
            partitions: vec![Partition {
                side_a: vec![NodeId::new(0)],
                from: TimeMs::ZERO,
                until: TimeMs::from_secs(1),
            }],
            link_faults: vec![],
            adversaries: vec![],
        };
        let mut net = NetworkModel::new(config, rng());
        assert_eq!(
            net.route(NodeId::new(0), NodeId::new(1), TimeMs::ZERO),
            None
        );
        assert!(net
            .route(NodeId::new(1), NodeId::new(2), TimeMs::ZERO)
            .is_some());
        assert!(net
            .route(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(1))
            .is_some());
    }

    #[test]
    fn link_fault_inflates_latency_within_window() {
        let config = NetworkConfig {
            latency: LatencyModel::Constant(DurationMs::from_millis(5)),
            loss: 0.0,
            partitions: vec![],
            link_faults: vec![LinkFault {
                nodes: vec![NodeId::new(1)],
                extra_latency: DurationMs::from_millis(40),
                extra_loss: 0.0,
                from: TimeMs::from_secs(10),
                until: TimeMs::from_secs(20),
            }],
            adversaries: vec![],
        };
        let mut net = NetworkModel::new(config, rng());
        // Outside the window or off the faulted node: base latency.
        assert_eq!(
            net.route(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(5)),
            Some(DurationMs::from_millis(5))
        );
        assert_eq!(
            net.route(NodeId::new(0), NodeId::new(2), TimeMs::from_secs(15)),
            Some(DurationMs::from_millis(5))
        );
        // Inside the window, touching the faulted node in either direction.
        assert_eq!(
            net.route(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(15)),
            Some(DurationMs::from_millis(45))
        );
        assert_eq!(
            net.route(NodeId::new(1), NodeId::new(2), TimeMs::from_secs(15)),
            Some(DurationMs::from_millis(45))
        );
    }

    #[test]
    fn link_fault_loss_spike_drops_roughly_p() {
        let config = NetworkConfig {
            latency: LatencyModel::Constant(DurationMs::from_millis(1)),
            loss: 0.0,
            partitions: vec![],
            link_faults: vec![LinkFault {
                nodes: vec![NodeId::new(0)],
                extra_latency: DurationMs::ZERO,
                extra_loss: 0.4,
                from: TimeMs::ZERO,
                until: TimeMs::from_secs(100),
            }],
            adversaries: vec![],
        };
        let mut net = NetworkModel::new(config, rng());
        let n = 20_000;
        for _ in 0..n {
            net.route(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(1));
        }
        let rate = net.dropped() as f64 / n as f64;
        assert!((rate - 0.4).abs() < 0.02, "spike loss rate {rate}");
    }

    #[test]
    fn set_config_takes_effect() {
        let mut net = NetworkModel::new(NetworkConfig::perfect(DurationMs::ZERO), rng());
        assert!(net
            .route(NodeId::new(0), NodeId::new(1), TimeMs::ZERO)
            .is_some());
        net.set_config(NetworkConfig {
            latency: LatencyModel::Constant(DurationMs::ZERO),
            loss: 1.0,
            partitions: vec![],
            link_faults: vec![],
            adversaries: vec![],
        });
        assert_eq!(
            net.route(NodeId::new(0), NodeId::new(1), TimeMs::ZERO),
            None
        );
        assert_eq!(net.config().loss, 1.0);
    }

    fn adversary_config(faults: AdversaryConfig, from: u64, until: u64) -> NetworkConfig {
        NetworkConfig {
            latency: LatencyModel::Constant(DurationMs::from_millis(2)),
            loss: 0.0,
            partitions: vec![],
            link_faults: vec![],
            adversaries: vec![AdversaryWindow {
                nodes: vec![],
                faults,
                from: TimeMs::from_secs(from),
                until: TimeMs::from_secs(until),
            }],
        }
    }

    #[test]
    fn corrupting_adversary_destroys_inside_window_only() {
        let faults = AdversaryConfig {
            corrupt: 1.0,
            ..AdversaryConfig::default()
        };
        let mut net = NetworkModel::new(adversary_config(faults, 10, 20), rng());
        assert_eq!(
            net.route_outcome(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(5)),
            RouteOutcome::Deliver(DurationMs::from_millis(2))
        );
        assert_eq!(
            net.route_outcome(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(15)),
            RouteOutcome::Corrupt
        );
        assert_eq!(
            net.route_outcome(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(20)),
            RouteOutcome::Deliver(DurationMs::from_millis(2))
        );
        assert_eq!(net.corrupted(), 1);
        assert_eq!(net.dropped(), 1);
    }

    #[test]
    fn duplicating_adversary_yields_two_latencies() {
        let faults = AdversaryConfig {
            duplicate: 1.0,
            ..AdversaryConfig::default()
        };
        let mut net = NetworkModel::new(adversary_config(faults, 0, 100), rng());
        match net.route_outcome(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(1)) {
            RouteOutcome::Duplicate(a, b) => {
                assert_eq!(a, DurationMs::from_millis(2));
                assert_eq!(b, DurationMs::from_millis(2));
            }
            other => panic!("expected duplicate, got {other:?}"),
        }
        assert_eq!(net.dropped(), 0);
        assert_eq!(net.corrupted(), 0);
    }

    #[test]
    fn reordering_adversary_inflates_latency() {
        let faults = AdversaryConfig {
            reorder: 1.0,
            reorder_delay: DurationMs::from_millis(40),
            ..AdversaryConfig::default()
        };
        let mut net = NetworkModel::new(adversary_config(faults, 0, 100), rng());
        match net.route_outcome(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(1)) {
            RouteOutcome::Deliver(d) => {
                assert!(d > DurationMs::from_millis(2));
                assert!(d <= DurationMs::from_millis(42));
            }
            other => panic!("expected delayed delivery, got {other:?}"),
        }
    }

    #[test]
    fn targeted_adversary_spares_unlisted_links() {
        let faults = AdversaryConfig {
            corrupt: 1.0,
            ..AdversaryConfig::default()
        };
        let config = NetworkConfig {
            adversaries: vec![AdversaryWindow {
                nodes: vec![NodeId::new(3)],
                faults,
                from: TimeMs::ZERO,
                until: TimeMs::from_secs(100),
            }],
            ..adversary_config(AdversaryConfig::default(), 0, 0)
        };
        let mut net = NetworkModel::new(config, rng());
        assert_eq!(
            net.route_outcome(NodeId::new(0), NodeId::new(1), TimeMs::from_secs(1)),
            RouteOutcome::Deliver(DurationMs::from_millis(2))
        );
        assert_eq!(
            net.route_outcome(NodeId::new(0), NodeId::new(3), TimeMs::from_secs(1)),
            RouteOutcome::Corrupt
        );
        assert_eq!(
            net.route_outcome(NodeId::new(3), NodeId::new(1), TimeMs::from_secs(1)),
            RouteOutcome::Corrupt
        );
    }

    #[test]
    fn inactive_adversary_window_leaves_rng_stream_untouched() {
        // The adversary draws from the sender stream only while a window
        // is active, so a config with a never-active window routes the
        // identical sequence as one with no adversary at all.
        let faults = AdversaryConfig::corrupting(0.5);
        let mut plain = NetworkModel::new(NetworkConfig::lossy(0.2), rng());
        let mut windowed = NetworkModel::new(
            NetworkConfig {
                adversaries: vec![AdversaryWindow {
                    nodes: vec![],
                    faults,
                    from: TimeMs::from_secs(900),
                    until: TimeMs::from_secs(1000),
                }],
                ..NetworkConfig::lossy(0.2)
            },
            rng(),
        );
        for i in 0..5000u64 {
            let now = TimeMs::from_millis(i);
            assert_eq!(
                plain.route_outcome(NodeId::new(0), NodeId::new(1), now),
                windowed.route_outcome(NodeId::new(0), NodeId::new(1), now),
            );
        }
    }
}
