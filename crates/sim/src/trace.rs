//! Simulation tracing hooks.
//!
//! Tracers observe engine-level happenings (sends, deliveries, network
//! drops, timer fires) without access to message contents; they exist for
//! debugging, determinism checks and statistics.

use agb_types::{NodeId, TimeMs};

/// An engine-level trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node handed a message to the network.
    Send {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Send time.
        at: TimeMs,
        /// Scheduled delivery time (`None` if the network dropped it).
        deliver_at: Option<TimeMs>,
    },
    /// A message reached its destination.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Delivery time.
        at: TimeMs,
    },
    /// A timer fired at a node.
    Timer {
        /// The node whose timer fired.
        node: NodeId,
        /// Timer identifier (protocol-defined).
        timer: u32,
        /// Fire time.
        at: TimeMs,
    },
}

impl TraceEvent {
    /// The virtual time at which the event occurred.
    pub fn at(&self) -> TimeMs {
        match *self {
            TraceEvent::Send { at, .. }
            | TraceEvent::Deliver { at, .. }
            | TraceEvent::Timer { at, .. } => at,
        }
    }
}

/// Observer of engine-level events.
pub trait Tracer {
    /// Called once per trace event, in virtual-time order.
    fn record(&mut self, event: TraceEvent);
}

/// A tracer that discards everything (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn record(&mut self, _event: TraceEvent) {}
}

/// A tracer that counts events by kind and keeps a rolling checksum of the
/// stream, used by determinism tests: two runs are identical iff their
/// checksums match.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingTracer {
    /// Number of sends observed.
    pub sends: u64,
    /// Number of deliveries observed.
    pub deliveries: u64,
    /// Number of network drops observed.
    pub drops: u64,
    /// Number of timer fires observed.
    pub timers: u64,
    /// Order-sensitive FNV-style checksum of the event stream.
    pub checksum: u64,
}

impl CountingTracer {
    /// Creates a zeroed tracer.
    pub fn new() -> Self {
        Self::default()
    }

    fn mix(&mut self, parts: [u64; 4]) {
        for p in parts {
            self.checksum ^= p;
            self.checksum = self.checksum.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

impl Tracer for CountingTracer {
    fn record(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::Send {
                from,
                to,
                at,
                deliver_at,
            } => {
                self.sends += 1;
                if deliver_at.is_none() {
                    self.drops += 1;
                }
                self.mix([
                    1,
                    u64::from(from.as_u32()) << 32 | u64::from(to.as_u32()),
                    at.as_millis(),
                    deliver_at.map_or(u64::MAX, TimeMs::as_millis),
                ]);
            }
            TraceEvent::Deliver { from, to, at } => {
                self.deliveries += 1;
                self.mix([
                    2,
                    u64::from(from.as_u32()) << 32 | u64::from(to.as_u32()),
                    at.as_millis(),
                    0,
                ]);
            }
            TraceEvent::Timer { node, timer, at } => {
                self.timers += 1;
                self.mix([
                    3,
                    u64::from(node.as_u32()),
                    u64::from(timer),
                    at.as_millis(),
                ]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tracer_counts() {
        let mut t = CountingTracer::new();
        t.record(TraceEvent::Send {
            from: NodeId::new(0),
            to: NodeId::new(1),
            at: TimeMs::ZERO,
            deliver_at: Some(TimeMs::from_millis(5)),
        });
        t.record(TraceEvent::Send {
            from: NodeId::new(0),
            to: NodeId::new(2),
            at: TimeMs::ZERO,
            deliver_at: None,
        });
        t.record(TraceEvent::Deliver {
            from: NodeId::new(0),
            to: NodeId::new(1),
            at: TimeMs::from_millis(5),
        });
        t.record(TraceEvent::Timer {
            node: NodeId::new(3),
            timer: 1,
            at: TimeMs::from_millis(7),
        });
        assert_eq!(t.sends, 2);
        assert_eq!(t.drops, 1);
        assert_eq!(t.deliveries, 1);
        assert_eq!(t.timers, 1);
        assert_ne!(t.checksum, 0);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let a_events = [
            TraceEvent::Timer {
                node: NodeId::new(1),
                timer: 0,
                at: TimeMs::ZERO,
            },
            TraceEvent::Timer {
                node: NodeId::new(2),
                timer: 0,
                at: TimeMs::ZERO,
            },
        ];
        let mut fwd = CountingTracer::new();
        let mut rev = CountingTracer::new();
        for e in a_events {
            fwd.record(e);
        }
        for e in a_events.iter().rev() {
            rev.record(*e);
        }
        assert_ne!(fwd.checksum, rev.checksum);
    }

    #[test]
    fn trace_event_time_accessor() {
        let e = TraceEvent::Deliver {
            from: NodeId::new(0),
            to: NodeId::new(1),
            at: TimeMs::from_millis(42),
        };
        assert_eq!(e.at(), TimeMs::from_millis(42));
    }

    #[test]
    fn noop_tracer_is_callable() {
        let mut t = NoopTracer;
        t.record(TraceEvent::Timer {
            node: NodeId::new(0),
            timer: 9,
            at: TimeMs::ZERO,
        });
    }
}
