//! The simulator's future event list: a time-ordered queue with
//! deterministic FIFO tie-breaking.
//!
//! Implemented as a `BTreeMap` of per-instant FIFO buckets rather than a
//! binary heap. Discrete-event gossip workloads are massively
//! time-collided — synchronized round timers all fire at the same instant
//! and constant-latency deliveries land together — so bucketing turns
//! `O(log n)` sift operations (each moving large event payloads) into
//! amortized `O(1)` pushes onto the back of a `VecDeque`. Ordering is
//! identical to the previous heap with an insertion-sequence tie-break:
//! earliest time first, FIFO within a time.

use std::collections::{BTreeMap, VecDeque};

use agb_types::TimeMs;

/// An entry popped from the future event list.
#[derive(Debug)]
pub(crate) struct Scheduled<E> {
    pub at: TimeMs,
    pub item: E,
}

/// Time-bucketed future event list with FIFO tie-breaking.
///
/// Insertion order as the tie-break makes simultaneous events
/// deterministic, which is what allows byte-identical reruns from the
/// same seed.
#[derive(Debug)]
pub(crate) struct EventQueue<E> {
    buckets: BTreeMap<TimeMs, VecDeque<E>>,
    len: usize,
    peak_len: usize,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            buckets: BTreeMap::new(),
            len: 0,
            peak_len: 0,
        }
    }

    /// Schedules `item` at virtual time `at`.
    pub fn push(&mut self, at: TimeMs, item: E) {
        self.buckets.entry(at).or_default().push_back(item);
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
    }

    /// Removes and returns the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let mut entry = self.buckets.first_entry()?;
        let at = *entry.key();
        let item = entry.get_mut().pop_front().expect("buckets are non-empty");
        if entry.get().is_empty() {
            entry.remove();
        }
        self.len -= 1;
        Some(Scheduled { at, item })
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<TimeMs> {
        self.buckets.first_key_value().map(|(&at, _)| at)
    }

    /// The earliest event (time and item) without removing it.
    ///
    /// Lets the engine's batch collector decide whether the next event
    /// joins a parallel run before committing to the pop.
    pub fn peek(&self) -> Option<(TimeMs, &E)> {
        self.buckets
            .first_key_value()
            .and_then(|(&at, bucket)| bucket.front().map(|item| (at, item)))
    }

    /// Restarts peak tracking from the current length (the perf harness
    /// calls this at the warmup/measure boundary so the reported peak
    /// reflects measured rounds only).
    pub fn reset_peak(&mut self) {
        self.peak_len = self.len;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// The high-water mark of the queue length over the whole run.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Estimated resident bytes: queued items plus per-bucket container
    /// overhead (`VecDeque` header + B-tree slot). A `size_of`
    /// estimate, deterministic by construction.
    pub fn estimated_bytes(&self) -> u64 {
        let per_item = std::mem::size_of::<E>() as u64;
        let per_bucket =
            (std::mem::size_of::<VecDeque<E>>() + std::mem::size_of::<TimeMs>() + 16) as u64;
        self.len as u64 * per_item + self.buckets.len() as u64 * per_bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(TimeMs::from_millis(30), "c");
        q.push(TimeMs::from_millis(10), "a");
        q.push(TimeMs::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().item, "a");
        assert_eq!(q.pop().unwrap().item, "b");
        assert_eq!(q.pop().unwrap().item, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = TimeMs::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().item, i);
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(TimeMs::from_millis(7), ());
        q.push(TimeMs::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(TimeMs::from_millis(3)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), Some(TimeMs::from_millis(7)));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(TimeMs::from_millis(10), 1);
        q.push(TimeMs::from_millis(5), 0);
        assert_eq!(q.pop().unwrap().item, 0);
        q.push(TimeMs::from_millis(8), 2);
        q.push(TimeMs::from_millis(8), 3);
        assert_eq!(q.pop().unwrap().item, 2);
        assert_eq!(q.pop().unwrap().item, 3);
        assert_eq!(q.pop().unwrap().item, 1);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(TimeMs::from_millis(i), i);
        }
        for _ in 0..10 {
            q.pop();
        }
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 10);
    }

    #[test]
    fn reset_peak_restarts_from_current_len() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(TimeMs::from_millis(i), i);
        }
        for _ in 0..7 {
            q.pop();
        }
        assert_eq!(q.peak_len(), 10);
        q.reset_peak();
        assert_eq!(q.peak_len(), 3);
        q.push(TimeMs::from_millis(99), 99);
        assert_eq!(q.peak_len(), 4);
    }

    #[test]
    fn peek_exposes_front_item_without_removal() {
        let mut q = EventQueue::new();
        assert!(q.peek().is_none());
        q.push(TimeMs::from_millis(9), "b");
        q.push(TimeMs::from_millis(3), "a");
        let (at, item) = q.peek().unwrap();
        assert_eq!(at, TimeMs::from_millis(3));
        assert_eq!(*item, "a");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().item, "a");
    }

    #[test]
    fn scheduled_carries_time_of_bucket() {
        let mut q = EventQueue::new();
        q.push(TimeMs::from_millis(42), "x");
        let s = q.pop().unwrap();
        assert_eq!(s.at, TimeMs::from_millis(42));
        assert_eq!(s.item, "x");
    }
}
