//! The simulator's future event list: a time-ordered priority queue with
//! deterministic FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use agb_types::TimeMs;

/// An entry in the future event list.
#[derive(Debug)]
pub(crate) struct Scheduled<E> {
    pub at: TimeMs,
    pub seq: u64,
    pub item: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of scheduled events ordered by `(time, insertion sequence)`.
///
/// Insertion order as the tie-break makes simultaneous events deterministic,
/// which is what allows byte-identical reruns from the same seed.
#[derive(Debug)]
pub(crate) struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `item` at virtual time `at`.
    pub fn push(&mut self, at: TimeMs, item: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, item });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<TimeMs> {
        self.heap.peek().map(|s| s.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(TimeMs::from_millis(30), "c");
        q.push(TimeMs::from_millis(10), "a");
        q.push(TimeMs::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().item, "a");
        assert_eq!(q.pop().unwrap().item, "b");
        assert_eq!(q.pop().unwrap().item, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = TimeMs::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().item, i);
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(TimeMs::from_millis(7), ());
        q.push(TimeMs::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(TimeMs::from_millis(3)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), Some(TimeMs::from_millis(7)));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(TimeMs::from_millis(10), 1);
        q.push(TimeMs::from_millis(5), 0);
        assert_eq!(q.pop().unwrap().item, 0);
        q.push(TimeMs::from_millis(8), 2);
        q.push(TimeMs::from_millis(8), 3);
        assert_eq!(q.pop().unwrap().item, 2);
        assert_eq!(q.pop().unwrap().item, 3);
        assert_eq!(q.pop().unwrap().item, 1);
    }
}
