//! Sharded batch execution for the simulation engine.
//!
//! The engine processes each virtual instant as a *batch*: every
//! same-timestamp `Deliver`/`Timer` event currently queued is lifted out
//! of the future event list, executed against per-node state, and the
//! resulting effects (queue insertions, checksum mixes, trace records,
//! counters) are buffered in an [`EffectBuf`] instead of applied
//! immediately. The buffered effects are then merged back **in canonical
//! order** — the order the events were popped, each event's effects in
//! generation order — which makes the observable outcome independent of
//! *who* executed an event.
//!
//! That independence is the whole trick: a batch can be split across
//! worker threads by node ownership ([`agb_types::ShardMap`] ranges, one
//! [`Lane`] of disjoint `&mut` state per worker) and the merged result is
//! bit-identical to single-threaded execution — same event order, same
//! RNG draws (per-sender network streams), same determinism checksum.

use std::time::Instant;

use agb_types::{DetRng, NodeId, TimeMs};

use crate::engine::{SimCtx, SimNode, TimerId, TimerKind, TimerRequest, TimerSlot};
use crate::network::{route_decision, NetworkConfig, RouteOutcome};
use crate::trace::TraceEvent;

/// Armed timers of one node.
pub(crate) type TimerSlots = Vec<(TimerId, TimerSlot)>;

/// A `Deliver` or `Timer` event lifted out of the queue for batch
/// execution.
pub(crate) enum BatchEvent<M> {
    /// A message delivery to `to`.
    Deliver { from: NodeId, to: NodeId, msg: M },
    /// A timer fire at `node`.
    Timer {
        node: NodeId,
        timer: TimerId,
        gen: u64,
    },
}

impl<M> BatchEvent<M> {
    /// The node whose state this event touches (decides shard ownership).
    pub(crate) fn target(&self) -> NodeId {
        match *self {
            BatchEvent::Deliver { to, .. } => to,
            BatchEvent::Timer { node, .. } => node,
        }
    }
}

/// A future-event-list insertion produced during batch execution,
/// applied at the merge barrier.
pub(crate) enum DeferredPush<M> {
    /// Insert a delivery at `at`.
    Deliver {
        at: TimeMs,
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    /// Insert a timer fire at `at`.
    Timer {
        at: TimeMs,
        node: NodeId,
        timer: TimerId,
        gen: u64,
    },
}

impl<M> DeferredPush<M> {
    /// Dummy value swapped into consumed slots during the merge.
    pub(crate) fn consumed() -> Self {
        DeferredPush::Timer {
            at: TimeMs::ZERO,
            node: NodeId::new(0),
            timer: TimerId(0),
            gen: 0,
        }
    }
}

/// Commutative counters accumulated during batch execution and folded
/// into `NetStats`/`NetworkModel` at the merge barrier.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Counts {
    pub sends: u64,
    pub deliveries: u64,
    pub drops: u64,
    pub timer_fires: u64,
    /// Drops decided by the network model (subset of `drops`).
    pub net_dropped: u64,
    /// Frames destroyed by the byte adversary (subset of `net_dropped`).
    pub corrupted: u64,
}

/// End offsets of one executed event's effects within an [`EffectBuf`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct EffectMark {
    pub pushes: u32,
    pub mixes: u32,
    pub traces: u32,
    /// Whether a node handler actually ran (stale timers and deliveries
    /// to downed nodes do not invoke).
    pub invoked: bool,
}

/// Ordered, buffered effects of a run of executed events.
///
/// Effects of different event streams are order-sensitive only among
/// themselves (queue insertions among insertions, checksum mixes among
/// mixes), so each stream is a flat vector with per-event end marks.
pub(crate) struct EffectBuf<M> {
    pub pushes: Vec<DeferredPush<M>>,
    pub mixes: Vec<[u64; 4]>,
    pub traces: Vec<TraceEvent>,
    pub marks: Vec<EffectMark>,
    pub counts: Counts,
    /// Wall nanoseconds spent routing outbox sends (profiling only —
    /// harvested into the profiler at the merge barrier, never part of
    /// the determinism digest).
    pub route_ns: u64,
}

impl<M> Default for EffectBuf<M> {
    fn default() -> Self {
        EffectBuf {
            pushes: Vec::new(),
            mixes: Vec::new(),
            traces: Vec::new(),
            marks: Vec::new(),
            counts: Counts::default(),
            route_ns: 0,
        }
    }
}

impl<M> EffectBuf<M> {
    /// Records the end-of-effects mark for one executed event.
    pub(crate) fn mark_event(&mut self, invoked: bool) {
        self.marks.push(EffectMark {
            pushes: self.pushes.len() as u32,
            mixes: self.mixes.len() as u32,
            traces: self.traces.len() as u32,
            invoked,
        });
    }

    /// Empties the buffers for reuse (capacity retained).
    pub(crate) fn clear(&mut self) {
        self.pushes.clear();
        self.mixes.clear();
        self.traces.clear();
        self.marks.clear();
        self.counts = Counts::default();
        self.route_ns = 0;
    }
}

/// Per-event read cursor over an [`EffectBuf`] used by the merge.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct EffectCursor {
    pub pushes: usize,
    pub mixes: usize,
    pub traces: usize,
    pub marks: usize,
}

/// One worker's window onto the engine state: exclusive access to a
/// contiguous range of nodes (and their timers, timer generations and
/// network RNG streams), shared read access to everything else.
pub(crate) struct Lane<'a, N: SimNode> {
    /// First node index owned by this lane; `nodes[i - base]` is node `i`.
    pub base: usize,
    pub nodes: &'a mut [N],
    pub timers: &'a mut [TimerSlots],
    pub timer_gen: &'a mut [u64],
    /// Per-sender network RNG streams of the owned nodes.
    pub rngs: &'a mut [DetRng],
    /// Up/down flags of *all* nodes (only mutated at merge barriers).
    pub down: &'a [bool],
    pub config: &'a NetworkConfig,
    pub now: TimeMs,
    /// Total node count (for addressing asserts).
    pub n_total: usize,
    /// Whether a tracer is installed (effects record trace events).
    pub tracing: bool,
    /// Whether a profiler is attached (routing time is measured).
    pub profiling: bool,
}

/// Executes a run of batch events against one lane, buffering all
/// effects.
///
/// `outbox`/`timer_reqs` are reusable per-invocation scratch vectors;
/// they are always drained before return.
pub(crate) fn exec_events<N: SimNode>(
    lane: &mut Lane<'_, N>,
    events: &mut Vec<BatchEvent<N::Msg>>,
    outbox: &mut Vec<(NodeId, N::Msg)>,
    timer_reqs: &mut Vec<TimerRequest>,
    buf: &mut EffectBuf<N::Msg>,
) {
    for ev in events.drain(..) {
        match ev {
            BatchEvent::Deliver { from, to, msg } => {
                if lane.down[to.index()] {
                    buf.counts.drops += 1;
                    buf.mark_event(false);
                    continue;
                }
                buf.counts.deliveries += 1;
                buf.mixes.push([
                    2,
                    u64::from(from.as_u32()) << 32 | u64::from(to.as_u32()),
                    lane.now.as_millis(),
                    0,
                ]);
                if lane.tracing {
                    buf.traces.push(TraceEvent::Deliver {
                        from,
                        to,
                        at: lane.now,
                    });
                }
                invoke_on(
                    lane,
                    to,
                    |n, ctx| n.on_message(from, msg, ctx),
                    outbox,
                    timer_reqs,
                    buf,
                );
                buf.mark_event(true);
            }
            BatchEvent::Timer { node, timer, gen } => {
                let local = node.index() - lane.base;
                let slots = &mut lane.timers[local];
                let Some(pos) = slots.iter().position(|&(t, _)| t == timer) else {
                    buf.mark_event(false);
                    continue;
                };
                let slot = slots[pos].1;
                if slot.gen != gen {
                    // Stale: the timer was re-armed or cancelled.
                    buf.mark_event(false);
                    continue;
                }
                if let Some(period) = slot.period {
                    buf.pushes.push(DeferredPush::Timer {
                        at: lane.now + period,
                        node,
                        timer,
                        gen,
                    });
                } else {
                    slots.swap_remove(pos);
                }
                if lane.down[node.index()] {
                    buf.mark_event(false);
                    continue;
                }
                buf.counts.timer_fires += 1;
                buf.mixes.push([
                    3,
                    u64::from(node.as_u32()),
                    u64::from(timer.0),
                    lane.now.as_millis(),
                ]);
                if lane.tracing {
                    buf.traces.push(TraceEvent::Timer {
                        node,
                        timer: timer.0,
                        at: lane.now,
                    });
                }
                invoke_on(
                    lane,
                    node,
                    |n, ctx| n.on_timer(timer, ctx),
                    outbox,
                    timer_reqs,
                    buf,
                );
                buf.mark_event(true);
            }
        }
    }
}

/// Invokes one node handler and buffers its effects: timer requests
/// first (exactly the sequential engine's order), then outbox routing
/// through the sender's own network RNG stream.
pub(crate) fn invoke_on<N: SimNode>(
    lane: &mut Lane<'_, N>,
    id: NodeId,
    g: impl FnOnce(&mut N, &mut SimCtx<'_, N::Msg>),
    outbox: &mut Vec<(NodeId, N::Msg)>,
    timer_reqs: &mut Vec<TimerRequest>,
    buf: &mut EffectBuf<N::Msg>,
) {
    let local = id.index() - lane.base;
    {
        let mut ctx = SimCtx::new(lane.now, id, outbox, timer_reqs);
        g(&mut lane.nodes[local], &mut ctx);
    }
    for req in timer_reqs.drain(..) {
        match req {
            TimerRequest::Set {
                timer,
                first_after,
                kind,
            } => {
                lane.timer_gen[local] += 1;
                let gen = lane.timer_gen[local];
                let period = match kind {
                    TimerKind::Once => None,
                    TimerKind::Periodic(p) => Some(p),
                };
                let slots = &mut lane.timers[local];
                match slots.iter_mut().find(|(t, _)| *t == timer) {
                    Some((_, slot)) => *slot = TimerSlot { gen, period },
                    None => slots.push((timer, TimerSlot { gen, period })),
                }
                buf.pushes.push(DeferredPush::Timer {
                    at: lane.now + first_after,
                    node: id,
                    timer,
                    gen,
                });
            }
            TimerRequest::Cancel(timer) => {
                let slots = &mut lane.timers[local];
                if let Some(pos) = slots.iter().position(|&(t, _)| t == timer) {
                    slots.swap_remove(pos);
                }
            }
        }
    }
    // Routing time is measured per handler, not per send: one clock
    // read either side of the drain keeps profiling overhead off the
    // per-message path (and clocks never feed back into routing, so
    // results are identical profiling or not).
    let route_t0 = lane.profiling.then(Instant::now);
    for (to, msg) in outbox.drain(..) {
        assert!(
            to.index() < lane.n_total,
            "message addressed to unknown node {to}"
        );
        buf.counts.sends += 1;
        let routed = route_decision(lane.config, &mut lane.rngs[local], id, to, lane.now);
        let deliver_at = routed.latency().map(|lat| lane.now + lat);
        buf.mixes.push([
            1,
            u64::from(id.as_u32()) << 32 | u64::from(to.as_u32()),
            lane.now.as_millis(),
            deliver_at.map_or(u64::MAX, TimeMs::as_millis),
        ]);
        if lane.tracing {
            buf.traces.push(TraceEvent::Send {
                from: id,
                to,
                at: lane.now,
                deliver_at,
            });
        }
        match routed {
            RouteOutcome::Deliver(lat) => buf.pushes.push(DeferredPush::Deliver {
                at: lane.now + lat,
                from: id,
                to,
                msg,
            }),
            RouteOutcome::Duplicate(first, second) => {
                // The adversary's extra copy gets its own checksum mix
                // entry and trace record, so the determinism digest still
                // covers every queue insertion one-for-one.
                let copy_at = lane.now + second;
                buf.mixes.push([
                    1,
                    u64::from(id.as_u32()) << 32 | u64::from(to.as_u32()),
                    lane.now.as_millis(),
                    copy_at.as_millis(),
                ]);
                if lane.tracing {
                    buf.traces.push(TraceEvent::Send {
                        from: id,
                        to,
                        at: lane.now,
                        deliver_at: Some(copy_at),
                    });
                }
                buf.pushes.push(DeferredPush::Deliver {
                    at: lane.now + first,
                    from: id,
                    to,
                    msg: msg.clone(),
                });
                buf.pushes.push(DeferredPush::Deliver {
                    at: copy_at,
                    from: id,
                    to,
                    msg,
                });
            }
            RouteOutcome::Drop => {
                buf.counts.drops += 1;
                buf.counts.net_dropped += 1;
            }
            RouteOutcome::Corrupt => {
                buf.counts.drops += 1;
                buf.counts.net_dropped += 1;
                buf.counts.corrupted += 1;
            }
        }
    }
    if let Some(t0) = route_t0 {
        buf.route_ns += t0.elapsed().as_nanos() as u64;
    }
}

/// Reusable per-worker scratch: the worker's event slice, invocation
/// buffers and effect buffers, all retained across batches.
pub(crate) struct LaneScratch<M> {
    pub events: Vec<BatchEvent<M>>,
    pub outbox: Vec<(NodeId, M)>,
    pub timer_reqs: Vec<TimerRequest>,
    pub buf: EffectBuf<M>,
    /// Wall nanoseconds this worker spent executing its share of the
    /// last parallel batch (profiling only; feeds shard load-balance
    /// stats).
    pub busy_ns: u64,
}

impl<M> Default for LaneScratch<M> {
    fn default() -> Self {
        LaneScratch {
            events: Vec::new(),
            outbox: Vec::new(),
            timer_reqs: Vec::new(),
            buf: EffectBuf::default(),
            busy_ns: 0,
        }
    }
}
