//! Property-based determinism tests of the simulation engine: for random
//! topologies, workloads and network configurations, the same seed always
//! yields the same checksum, and the event stream respects virtual time.

use agb_sim::{LatencyModel, NetworkConfig, SimCtx, SimNode, SimulationBuilder, TimerId};
use agb_types::{DurationMs, NodeId, TimeMs};
use proptest::prelude::*;

/// A node that gossips a counter to a ring neighbour every period.
struct Ring {
    n: usize,
    period: DurationMs,
    sent: u64,
    received: u64,
    last_receive_at: TimeMs,
}

const TICK: TimerId = TimerId(1);

impl SimNode for Ring {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut SimCtx<'_, u64>) {
        ctx.set_periodic_timer(TICK, self.period, self.period);
    }

    fn on_timer(&mut self, _t: TimerId, ctx: &mut SimCtx<'_, u64>) {
        self.sent += 1;
        let next = (ctx.self_id().index() + 1) % self.n;
        ctx.send(NodeId::new(next as u32), self.sent);
    }

    fn on_message(&mut self, _from: NodeId, _msg: u64, ctx: &mut SimCtx<'_, u64>) {
        // Virtual time never goes backwards within a node's observations.
        assert!(ctx.now() >= self.last_receive_at);
        self.received += 1;
        self.last_receive_at = ctx.now();
    }
}

fn run(seed: u64, n: usize, period_ms: u64, loss: f64, horizon_s: u64) -> (u64, u64, u64) {
    let nodes: Vec<Ring> = (0..n)
        .map(|_| Ring {
            n,
            period: DurationMs::from_millis(period_ms),
            sent: 0,
            received: 0,
            last_receive_at: TimeMs::ZERO,
        })
        .collect();
    let mut sim = SimulationBuilder::new(seed)
        .network(NetworkConfig {
            latency: LatencyModel::Uniform {
                min: DurationMs::from_millis(1),
                max: DurationMs::from_millis(30),
            },
            loss,
            partitions: vec![],
            link_faults: vec![],
            adversaries: vec![],
        })
        .build(nodes);
    sim.run_until(TimeMs::from_secs(horizon_s));
    let stats = sim.stats();
    let received: u64 = sim.nodes().map(|r| r.received).sum();
    (stats.checksum, stats.deliveries, received)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_seed_same_everything(
        seed in any::<u64>(),
        n in 2usize..12,
        period in 20u64..500,
        loss in 0.0f64..0.5,
    ) {
        let a = run(seed, n, period, loss, 20);
        let b = run(seed, n, period, loss, 20);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn deliveries_match_node_observations(
        seed in any::<u64>(),
        n in 2usize..10,
        loss in 0.0f64..0.3,
    ) {
        let (_, engine_deliveries, node_received) = run(seed, n, 100, loss, 15);
        prop_assert_eq!(engine_deliveries, node_received);
    }

    #[test]
    fn zero_loss_eventually_delivers_everything_sent(
        seed in any::<u64>(),
        n in 2usize..8,
    ) {
        // Horizon long past the last send + max latency: everything sent
        // by t=idle must arrive.
        let nodes: Vec<Ring> = (0..n)
            .map(|_| Ring {
                n,
                period: DurationMs::from_millis(100),
                sent: 0,
                received: 0,
                last_receive_at: TimeMs::ZERO,
            })
            .collect();
        let mut sim = SimulationBuilder::new(seed)
            .network(NetworkConfig::perfect(DurationMs::from_millis(5)))
            .build(nodes);
        sim.run_until(TimeMs::from_secs(10));
        // Stop ticking by crashing everyone, then flush in-flight messages.
        for i in 0..n {
            sim.schedule_crash(TimeMs::from_secs(10), NodeId::new(i as u32));
        }
        sim.run_until(TimeMs::from_secs(11));
        let sent: u64 = sim.nodes().map(|r| r.sent).sum();
        let stats = sim.stats();
        prop_assert_eq!(stats.sends, sent);
        // Crashed receivers drop; before the crash everything was delivered.
        prop_assert!(stats.deliveries + stats.drops == sent);
    }
}
