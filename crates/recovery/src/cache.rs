//! The bounded retransmission cache.
//!
//! Events enter the cache when they are first delivered locally and stay
//! servable after the gossip [`EventBuffer`](agb_core::EventBuffer) has
//! purged them — that gap is precisely where lpbcast's atomicity breaks
//! and pull-based repair operates. The cache has its **own** purge policy
//! (FIFO capacity bound plus a round-count age cap), deliberately
//! decoupled from the gossip buffer so that serving retransmissions never
//! competes with dissemination for buffer slots.

use std::collections::VecDeque;

use agb_types::FastHashMap;

use agb_core::Event;
use agb_types::EventId;

#[derive(Debug, Clone)]
struct CachedEvent {
    event: Event,
    cached_at_round: u64,
}

/// Bounded FIFO store of recently delivered events, indexed by id.
///
/// # Example
///
/// ```
/// use agb_recovery::RetransmissionCache;
/// use agb_core::Event;
/// use agb_types::{EventId, NodeId, Payload};
///
/// let mut cache = RetransmissionCache::new(2, 10);
/// let id = |s| EventId::new(NodeId::new(0), s);
/// cache.insert(Event::new(id(0), Payload::new()));
/// cache.insert(Event::new(id(1), Payload::new()));
/// cache.insert(Event::new(id(2), Payload::new())); // evicts id(0)
/// assert!(cache.get(id(0)).is_none());
/// assert!(cache.get(id(2)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct RetransmissionCache {
    capacity: usize,
    max_rounds: u32,
    slots: FastHashMap<EventId, CachedEvent>,
    order: VecDeque<EventId>,
    round: u64,
}

impl RetransmissionCache {
    /// Creates a cache holding at most `capacity` events, each for at most
    /// `max_rounds` rounds.
    pub fn new(capacity: usize, max_rounds: u32) -> Self {
        RetransmissionCache {
            capacity,
            max_rounds,
            // Grown on demand: one cache per node at 10k+ simulated
            // nodes makes eager full-bound reservations prohibitive.
            slots: FastHashMap::default(),
            order: VecDeque::new(),
            round: 0,
        }
    }

    /// Caches a delivered event. Duplicate ids refresh nothing (the first
    /// cached copy is as servable as any).
    pub fn insert(&mut self, event: Event) {
        if self.capacity == 0 || self.slots.contains_key(&event.id()) {
            return;
        }
        self.order.push_back(event.id());
        self.slots.insert(
            event.id(),
            CachedEvent {
                event,
                cached_at_round: self.round,
            },
        );
        while self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.slots.remove(&old);
            }
        }
    }

    /// Looks up a cached event.
    pub fn get(&self, id: EventId) -> Option<&Event> {
        self.slots.get(&id).map(|c| &c.event)
    }

    /// Advances the cache clock one gossip round and applies the age
    /// purge.
    pub fn on_round(&mut self) {
        self.round += 1;
        let max_rounds = u64::from(self.max_rounds);
        while let Some(&front) = self.order.front() {
            let expired = self
                .slots
                .get(&front)
                .is_some_and(|c| self.round - c.cached_at_round > max_rounds);
            if !expired {
                break;
            }
            self.order.pop_front();
            self.slots.remove(&front);
        }
    }

    /// Number of cached events.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl agb_profile::MemReport for RetransmissionCache {
    fn mem_usage(&self) -> agb_profile::MemUsage {
        // Each cached event appears in the id-indexed slot map and the
        // FIFO order queue; payload bytes are shared-buffer estimates.
        let per_slot =
            (2 * std::mem::size_of::<EventId>() + std::mem::size_of::<CachedEvent>() + 8) as u64;
        let payloads: u64 = self
            .slots
            .values()
            .map(|c| c.event.payload().len() as u64)
            .sum();
        agb_profile::MemUsage::new(
            self.slots.len() as u64 * per_slot + payloads,
            self.slots.len() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_types::{NodeId, Payload};

    fn ev(s: u64) -> Event {
        Event::new(EventId::new(NodeId::new(1), s), Payload::new())
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = RetransmissionCache::new(3, 100);
        for s in 0..5 {
            c.insert(ev(s));
        }
        assert_eq!(c.len(), 3);
        assert!(c.get(ev(0).id()).is_none());
        assert!(c.get(ev(1).id()).is_none());
        assert!(c.get(ev(4).id()).is_some());
    }

    #[test]
    fn age_purge_after_max_rounds() {
        let mut c = RetransmissionCache::new(10, 2);
        c.insert(ev(0));
        c.on_round();
        c.insert(ev(1));
        c.on_round();
        assert_eq!(c.len(), 2, "both within the round cap");
        c.on_round(); // ev(0) now 3 rounds old > 2
        assert!(c.get(ev(0).id()).is_none());
        assert!(c.get(ev(1).id()).is_some());
        c.on_round();
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut c = RetransmissionCache::new(2, 10);
        c.insert(ev(0));
        c.insert(ev(0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = RetransmissionCache::new(0, 10);
        c.insert(ev(0));
        assert!(c.is_empty());
    }
}
