//! Configuration of the pull-based recovery layer.

use agb_types::{ConfigError, ConfigResult};

/// Parameters of the recovery layer (`RecoverableNode`).
///
/// The defaults are deliberately conservative: digests add ≈ 0.4 kB to a
/// gossip message, and every recovery budget is bounded so that repair
/// traffic cannot itself congest the group — the failure mode the paper's
/// adaptive mechanism exists to prevent.
///
/// # Example
///
/// ```
/// use agb_recovery::RecoveryConfig;
///
/// let config = RecoveryConfig { digest_size: 16, ..RecoveryConfig::default() };
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Maximum ids advertised per piggybacked `IHave` digest.
    pub digest_size: usize,
    /// How many recently-seen ids the advertisement window retains
    /// (rotating coverage: each round advertises a different slice).
    pub ihave_window: usize,
    /// How many seen ids are remembered for gap detection (the recovery
    /// layer's own `EventIdBuffer`; ids are 16 bytes, so this can be much
    /// larger than the event buffer).
    pub seen_capacity: usize,
    /// Retransmission-cache capacity in events — the cache's own resource
    /// bound, purged FIFO independently of the gossip buffer.
    pub cache_capacity: usize,
    /// Rounds a cached event stays servable before the cache's age purge
    /// removes it.
    pub cache_rounds: u32,
    /// Rounds to wait for a retransmission before re-requesting a missing
    /// id from the next advertiser.
    pub graft_timeout_rounds: u32,
    /// Pull attempts per missing id before recovery is abandoned.
    pub max_retries: u32,
    /// Maximum missing ids grafted per round (request-side budget).
    pub max_grafts_per_round: usize,
    /// Maximum events served from the cache per round (serve-side budget).
    pub serve_budget_per_round: usize,
    /// Maximum open gaps tracked at once (memory bound for the missing
    /// tracker; overflow gaps are re-noticed by later advertisements).
    pub max_missing: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            digest_size: 32,
            ihave_window: 256,
            seen_capacity: 50_000,
            cache_capacity: 256,
            cache_rounds: 30,
            graft_timeout_rounds: 2,
            max_retries: 4,
            max_grafts_per_round: 64,
            serve_budget_per_round: 128,
            max_missing: 4096,
        }
    }
}

impl RecoveryConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> ConfigResult<()> {
        // The wire codec counts ids with a u16; cap the id-carrying
        // budgets far below that bound (4096 ids ≈ 48 kB, a datagram's
        // worth).
        const MAX_IDS: usize = 4096;
        if self.digest_size == 0 {
            return Err(ConfigError::new("digest_size", "must be at least 1"));
        }
        if self.digest_size > MAX_IDS {
            return Err(ConfigError::new("digest_size", "must be at most 4096"));
        }
        if self.max_grafts_per_round > MAX_IDS {
            return Err(ConfigError::new(
                "max_grafts_per_round",
                "must be at most 4096",
            ));
        }
        if self.serve_budget_per_round > MAX_IDS {
            return Err(ConfigError::new(
                "serve_budget_per_round",
                "must be at most 4096",
            ));
        }
        if self.ihave_window < self.digest_size {
            return Err(ConfigError::new(
                "ihave_window",
                "must be at least digest_size",
            ));
        }
        if self.seen_capacity < self.ihave_window {
            return Err(ConfigError::new(
                "seen_capacity",
                "must be at least ihave_window (advertised ids must be recognizable)",
            ));
        }
        if self.cache_capacity == 0 {
            return Err(ConfigError::new("cache_capacity", "must be at least 1"));
        }
        if self.cache_rounds == 0 {
            return Err(ConfigError::new("cache_rounds", "must be at least 1"));
        }
        if self.graft_timeout_rounds == 0 {
            return Err(ConfigError::new(
                "graft_timeout_rounds",
                "must be at least 1",
            ));
        }
        if self.max_retries == 0 {
            return Err(ConfigError::new("max_retries", "must be at least 1"));
        }
        if self.max_grafts_per_round == 0 {
            return Err(ConfigError::new(
                "max_grafts_per_round",
                "must be at least 1",
            ));
        }
        if self.serve_budget_per_round == 0 {
            return Err(ConfigError::new(
                "serve_budget_per_round",
                "must be at least 1",
            ));
        }
        if self.max_missing == 0 {
            return Err(ConfigError::new("max_missing", "must be at least 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(RecoveryConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_fields() {
        let mut c = RecoveryConfig::default();
        c.digest_size = 0;
        assert_eq!(c.validate().unwrap_err().field(), "digest_size");

        let mut c = RecoveryConfig::default();
        c.digest_size = 5000;
        c.ihave_window = 5000;
        c.seen_capacity = 50_000;
        assert_eq!(c.validate().unwrap_err().field(), "digest_size");

        let mut c = RecoveryConfig::default();
        c.max_grafts_per_round = 70_000;
        assert_eq!(c.validate().unwrap_err().field(), "max_grafts_per_round");

        let mut c = RecoveryConfig::default();
        c.serve_budget_per_round = 70_000;
        assert_eq!(c.validate().unwrap_err().field(), "serve_budget_per_round");

        let mut c = RecoveryConfig::default();
        c.ihave_window = c.digest_size - 1;
        assert_eq!(c.validate().unwrap_err().field(), "ihave_window");

        let mut c = RecoveryConfig::default();
        c.seen_capacity = c.ihave_window - 1;
        assert_eq!(c.validate().unwrap_err().field(), "seen_capacity");

        let mut c = RecoveryConfig::default();
        c.cache_capacity = 0;
        assert_eq!(c.validate().unwrap_err().field(), "cache_capacity");

        let mut c = RecoveryConfig::default();
        c.cache_rounds = 0;
        assert_eq!(c.validate().unwrap_err().field(), "cache_rounds");

        let mut c = RecoveryConfig::default();
        c.graft_timeout_rounds = 0;
        assert_eq!(c.validate().unwrap_err().field(), "graft_timeout_rounds");

        let mut c = RecoveryConfig::default();
        c.max_retries = 0;
        assert_eq!(c.validate().unwrap_err().field(), "max_retries");

        let mut c = RecoveryConfig::default();
        c.max_grafts_per_round = 0;
        assert_eq!(c.validate().unwrap_err().field(), "max_grafts_per_round");

        let mut c = RecoveryConfig::default();
        c.serve_budget_per_round = 0;
        assert_eq!(c.validate().unwrap_err().field(), "serve_budget_per_round");

        let mut c = RecoveryConfig::default();
        c.max_missing = 0;
        assert_eq!(c.validate().unwrap_err().field(), "max_missing");
    }
}
