//! The recovery wrapper: any [`GossipProtocol`] node plus pull-based
//! anti-entropy.

use std::collections::VecDeque;

use agb_core::{
    Event, EventIdBuffer, FrameProtocol, GossipFrame, GossipMessage, GossipProtocol, GraftRequest,
    IHaveDigest, OfferOutcome, ProtocolEvent, Retransmission,
};
use agb_membership::MembershipDigest;
use agb_types::{DurationMs, EventId, NodeId, Payload, TimeMs};

use crate::cache::RetransmissionCache;
use crate::config::RecoveryConfig;
use crate::missing::MissingTracker;

/// A gossip node composed with the pull-based recovery layer.
///
/// Wraps any [`GossipProtocol`] — `LpbcastNode` and `AdaptiveNode` alike —
/// and implements [`FrameProtocol`]:
///
/// * every outgoing gossip message piggybacks an [`IHaveDigest`] drawn
///   from a rotating window of recently-seen event ids (reusing
///   [`EventIdBuffer`] for the seen set);
/// * incoming digests are checked against the seen set; fresh gaps are
///   pulled with [`GraftRequest`]s addressed to the advertiser, with
///   per-round budgets, per-id retry/timeout bookkeeping, and advertiser
///   round-robin on retry;
/// * grafts are served from a bounded [`RetransmissionCache`] with its own
///   FIFO + round-age purge policy, so repair traffic can never occupy
///   gossip buffer slots or grow without bound;
/// * recovered events are fed through the wrapped node's normal receive
///   path, so they are delivered once, re-buffered, and re-disseminated.
///
/// # Example
///
/// ```
/// use agb_core::{FrameProtocol, GossipConfig, LpbcastNode};
/// use agb_membership::FullView;
/// use agb_recovery::{RecoverableNode, RecoveryConfig};
/// use agb_types::{DetRng, NodeId, Payload, TimeMs};
/// use rand::SeedableRng;
///
/// let inner = LpbcastNode::new(
///     NodeId::new(0),
///     GossipConfig::default(),
///     FullView::new(8),
///     DetRng::seed_from_u64(1),
/// );
/// let mut node = RecoverableNode::new(inner, RecoveryConfig::default());
/// node.offer(Payload::from_static(b"x"), TimeMs::ZERO);
/// let out = node.on_round(TimeMs::from_secs(1));
/// // Every data frame carries the piggybacked digest.
/// assert!(out.iter().all(|(_, f)| matches!(
///     f,
///     agb_core::GossipFrame::Gossip { ihave: Some(d), .. } if !d.ids.is_empty()
/// )));
/// ```
#[derive(Debug)]
pub struct RecoverableNode<P> {
    inner: P,
    config: RecoveryConfig,
    /// Ids this node has delivered (gap reference for incoming digests).
    seen: EventIdBuffer,
    /// Rotating advertisement window over the most recently seen ids,
    /// tagged with the round they were first seen.
    window: VecDeque<(EventId, u64)>,
    advertise_cursor: usize,
    cache: RetransmissionCache,
    missing: MissingTracker,
    round: u64,
    graft_ids_this_round: usize,
    served_events_this_round: usize,
    out_events: Vec<ProtocolEvent>,
    /// Reusable buffer for draining the inner node's events on every
    /// sync (once per receive/round — allocation-free at steady state).
    sync_scratch: Vec<ProtocolEvent>,
}

impl<P: GossipProtocol> RecoverableNode<P> {
    /// Wraps `inner` with the recovery layer.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation; validate untrusted configs
    /// with [`RecoveryConfig::validate`] first.
    pub fn new(inner: P, config: RecoveryConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid RecoveryConfig: {e}"));
        RecoverableNode {
            seen: EventIdBuffer::new(config.seen_capacity),
            window: VecDeque::new(),
            advertise_cursor: 0,
            cache: RetransmissionCache::new(config.cache_capacity, config.cache_rounds),
            missing: MissingTracker::with_capacity(config.max_missing),
            round: 0,
            graft_ids_this_round: 0,
            served_events_this_round: 0,
            out_events: Vec::new(),
            sync_scratch: Vec::new(),
            inner,
            config,
        }
    }

    /// The recovery configuration in force.
    pub fn recovery_config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// The wrapped protocol node.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Events currently held by the retransmission cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Gaps currently tracked as missing.
    pub fn missing_len(&self) -> usize {
        self.missing.len()
    }

    /// Absorbs the wrapped node's protocol events: newly delivered events
    /// populate the seen set, the advertisement window and the
    /// retransmission cache, and close any matching gap.
    fn sync(&mut self) {
        self.sync_collect_delivered(None);
    }

    /// [`sync`](Self::sync), additionally recording delivered ids into
    /// `delivered` when provided (used by the retransmission path to
    /// confirm which recoveries the inner node actually delivered).
    fn sync_collect_delivered(&mut self, mut delivered: Option<&mut Vec<EventId>>) {
        let mut drained = std::mem::take(&mut self.sync_scratch);
        drained.clear();
        self.inner.drain_events_into(&mut drained);
        for event in drained.drain(..) {
            if let ProtocolEvent::Delivered { event: ev, .. } = &event {
                let id = ev.id();
                if self.seen.insert(id) {
                    self.window.push_back((id, self.round));
                    while self.window.len() > self.config.ihave_window {
                        self.window.pop_front();
                    }
                    self.cache.insert(ev.clone());
                }
                self.missing.resolve(id);
                if let Some(out) = delivered.as_deref_mut() {
                    out.push(id);
                }
            }
            self.out_events.push(event);
        }
        self.sync_scratch = drained;
    }

    /// Drops window entries our own cache can no longer serve, keeping
    /// advertisements honest: a graft lands at the advertiser, so only ids
    /// within the cache's round horizon are worth advertising. Without
    /// this, low-rate groups keep advertising unservable ids and trap
    /// receivers in graft/abandon cycles.
    fn prune_window(&mut self) {
        let horizon = u64::from(self.config.cache_rounds);
        while let Some(&(_, seen_at)) = self.window.front() {
            if self.round.saturating_sub(seen_at) <= horizon {
                break;
            }
            self.window.pop_front();
        }
    }

    /// The rotating digest advertised this round.
    fn digest(&mut self) -> IHaveDigest {
        let len = self.window.len();
        if len == 0 {
            return IHaveDigest::default();
        }
        let take = self.config.digest_size.min(len);
        let start = self.advertise_cursor % len;
        let mut ids = Vec::with_capacity(take);
        for i in 0..take {
            ids.push(self.window[(start + i) % len].0);
        }
        self.advertise_cursor = (start + take) % len.max(1);
        IHaveDigest { ids }
    }

    /// Emits due pull requests within the remaining round budget.
    fn poll_grafts(&mut self, now: TimeMs) -> Vec<(NodeId, GossipFrame)> {
        let budget = self
            .config
            .max_grafts_per_round
            .saturating_sub(self.graft_ids_this_round);
        if budget == 0 {
            return Vec::new();
        }
        let (due, abandoned) = self.missing.take_due(
            self.round,
            budget,
            self.config.graft_timeout_rounds,
            self.config.max_retries,
        );
        for id in abandoned {
            self.out_events
                .push(ProtocolEvent::RecoveryAbandoned { id, at: now });
        }
        self.graft_ids_this_round += due.len();
        // Group ids by advertiser, preserving discovery order.
        let mut requests: Vec<(NodeId, Vec<EventId>)> = Vec::new();
        for graft in due {
            match requests.iter_mut().find(|(node, _)| *node == graft.from) {
                Some((_, ids)) => ids.push(graft.id),
                None => requests.push((graft.from, vec![graft.id])),
            }
        }
        let me = self.inner.node_id();
        requests
            .into_iter()
            .map(|(to, ids)| {
                self.out_events.push(ProtocolEvent::RecoveryRequested {
                    to,
                    ids: ids.len(),
                    at: now,
                });
                (to, GossipFrame::Graft(GraftRequest { sender: me, ids }))
            })
            .collect()
    }

    /// Serves a pull request from the retransmission cache.
    fn serve(&mut self, request: GraftRequest, now: TimeMs) -> Vec<(NodeId, GossipFrame)> {
        let budget = self
            .config
            .serve_budget_per_round
            .saturating_sub(self.served_events_this_round);
        let mut events = Vec::new();
        let mut missed = 0usize;
        for id in request.ids {
            if events.len() >= budget {
                // Budget exhaustion is not a cache miss: the event may
                // well be cached, the requester's retry timeout simply
                // pulls it again (possibly elsewhere) next round.
                continue;
            }
            match self.cache.get(id) {
                Some(event) => events.push(event.clone()),
                None => missed += 1,
            }
        }
        self.served_events_this_round += events.len();
        self.out_events.push(ProtocolEvent::RecoveryServed {
            to: request.sender,
            events: events.len(),
            missed,
            at: now,
        });
        if events.is_empty() {
            return Vec::new();
        }
        let reply = Retransmission {
            sender: self.inner.node_id(),
            events,
        };
        vec![(request.sender, GossipFrame::Retransmit(reply))]
    }

    /// Ingests a retransmission: unseen events flow through the wrapped
    /// node's normal receive path (delivery, buffering, re-dissemination).
    fn absorb_retransmission(&mut self, from: NodeId, retransmission: Retransmission, now: TimeMs) {
        let mut fresh = Vec::new();
        let mut candidates = Vec::new();
        for event in retransmission.events {
            if self.seen.contains(event.id()) {
                self.out_events.push(ProtocolEvent::RecoveryDuplicate {
                    id: event.id(),
                    at: now,
                });
            } else {
                if self.missing.contains(event.id()) {
                    candidates.push(event.id());
                }
                fresh.push(event);
            }
        }
        if fresh.is_empty() {
            return;
        }
        let fed_ids: Vec<EventId> = fresh.iter().map(Event::id).collect();
        let synthesized = GossipMessage {
            sender: from,
            sample_period: 0,
            min_buffs: Vec::new(),
            events: fresh.into(),
            membership: MembershipDigest::default(),
        };
        self.inner.on_receive(from, synthesized, now);
        let mut delivered = Vec::new();
        self.sync_collect_delivered(Some(&mut delivered));
        // A tracked gap counts as recovered only if the inner node actually
        // delivered the copy; an id our (smaller) seen set forgot but the
        // inner dedup buffer still knows is a duplicate, and its gap entry
        // is closed so it is not re-pulled forever.
        for id in candidates {
            if delivered.contains(&id) {
                self.out_events
                    .push(ProtocolEvent::Recovered { id, from, at: now });
            }
        }
        for id in fed_ids {
            if !delivered.contains(&id) {
                self.seen.insert(id);
                self.missing.resolve(id);
                self.out_events
                    .push(ProtocolEvent::RecoveryDuplicate { id, at: now });
            }
        }
    }
}

impl<P: GossipProtocol> FrameProtocol for RecoverableNode<P> {
    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn offer(&mut self, payload: Payload, now: TimeMs) -> OfferOutcome {
        let outcome = self.inner.offer(payload, now);
        self.sync();
        outcome
    }

    fn on_round(&mut self, now: TimeMs) -> Vec<(NodeId, GossipFrame)> {
        self.round += 1;
        self.graft_ids_this_round = 0;
        self.served_events_this_round = 0;
        self.cache.on_round();
        self.prune_window();

        let msgs = self.inner.on_round(now);
        self.sync();
        let digest = self.digest();
        let mut out: Vec<(NodeId, GossipFrame)> = msgs
            .into_iter()
            .map(|(to, msg)| {
                (
                    to,
                    GossipFrame::Gossip {
                        msg,
                        ihave: Some(digest.clone()),
                    },
                )
            })
            .collect();
        out.extend(self.poll_grafts(now));
        out
    }

    fn on_receive(
        &mut self,
        from: NodeId,
        frame: GossipFrame,
        now: TimeMs,
    ) -> Vec<(NodeId, GossipFrame)> {
        match frame {
            GossipFrame::Gossip { msg, ihave } => {
                self.inner.on_receive(from, msg, now);
                self.sync();
                if let Some(digest) = ihave {
                    for id in digest.ids {
                        if !self.seen.contains(id) {
                            self.missing.note(id, from, self.round);
                        }
                    }
                }
                // Pull fresh gaps immediately (still budget-bounded);
                // retries ride on later rounds.
                self.poll_grafts(now)
            }
            GossipFrame::Graft(request) => self.serve(request, now),
            GossipFrame::Retransmit(retransmission) => {
                self.absorb_retransmission(from, retransmission, now);
                Vec::new()
            }
        }
    }

    fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        self.sync();
        std::mem::take(&mut self.out_events)
    }

    fn drain_events_into(&mut self, out: &mut Vec<ProtocolEvent>) {
        self.sync();
        out.append(&mut self.out_events);
    }

    fn set_buffer_capacity(&mut self, capacity: usize, now: TimeMs) {
        self.inner.set_buffer_capacity(capacity, now);
        self.sync();
    }

    fn buffer_capacity(&self) -> usize {
        self.inner.buffer_capacity()
    }

    fn buffer_len(&self) -> usize {
        self.inner.buffer_len()
    }

    fn allowed_rate(&self) -> Option<f64> {
        self.inner.allowed_rate()
    }

    fn pending_len(&self) -> usize {
        self.inner.pending_len()
    }

    fn gossip_period(&self) -> DurationMs {
        self.inner.gossip_period()
    }

    fn avg_age(&self) -> Option<f64> {
        GossipProtocol::avg_age(&self.inner)
    }

    fn avg_tokens(&self) -> Option<f64> {
        GossipProtocol::avg_tokens(&self.inner)
    }

    fn min_buff_estimate(&self) -> Option<u32> {
        GossipProtocol::min_buff_estimate(&self.inner)
    }

    fn membership_view(&self) -> Vec<NodeId> {
        GossipProtocol::membership_view(&self.inner)
    }

    fn leave(&mut self, now: TimeMs) -> Vec<(NodeId, GossipFrame)> {
        let msgs = GossipProtocol::leave(&mut self.inner, now);
        self.sync();
        // Farewell frames advertise nothing: the leaver will not be around
        // to serve grafts.
        msgs.into_iter()
            .map(|(to, msg)| (to, GossipFrame::plain(msg)))
            .collect()
    }

    fn evict_peer(&mut self, node: NodeId) {
        GossipProtocol::evict_peer(&mut self.inner, node);
    }

    fn mem_breakdown(&self) -> Vec<(&'static str, agb_profile::MemUsage)> {
        use agb_profile::{MemReport, MemUsage};
        let mut rows = GossipProtocol::mem_breakdown(&self.inner);
        rows.push(("retransmission_cache", self.cache.mem_usage()));
        rows.push(("missing_tracker", self.missing.mem_usage()));
        rows.push(("recovery_seen_ids", self.seen.mem_usage()));
        rows.push((
            "recovery_window",
            MemUsage::new(
                (self.window.len() * std::mem::size_of::<(EventId, u64)>()) as u64,
                self.window.len() as u64,
            ),
        ));
        rows
    }
}

/// Boxes a protocol node for frame-level driving, wrapping it in the
/// recovery layer when configured — the one place the sim cluster and the
/// threaded runtime share for recovery wiring.
pub fn boxed_frame_protocol<P: GossipProtocol + Send + 'static>(
    node: P,
    recovery: Option<RecoveryConfig>,
) -> Box<dyn FrameProtocol + Send> {
    match recovery {
        Some(config) => Box::new(RecoverableNode::new(node, config)),
        None => Box::new(node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_core::{Event, GossipConfig, LpbcastNode};
    use agb_membership::FullView;
    use agb_types::DetRng;
    use rand::SeedableRng;

    fn lpbcast(id: u32) -> LpbcastNode<FullView> {
        LpbcastNode::new(
            NodeId::new(id),
            GossipConfig::default(),
            FullView::new(8),
            DetRng::seed_from_u64(u64::from(id) + 11),
        )
    }

    fn recoverable(id: u32) -> RecoverableNode<LpbcastNode<FullView>> {
        RecoverableNode::new(lpbcast(id), RecoveryConfig::default())
    }

    fn eid(origin: u32, seq: u64) -> EventId {
        EventId::new(NodeId::new(origin), seq)
    }

    fn gossip_frame(sender: u32, events: Vec<Event>, ihave: Vec<EventId>) -> GossipFrame {
        GossipFrame::Gossip {
            msg: GossipMessage {
                sender: NodeId::new(sender),
                sample_period: 0,
                min_buffs: vec![],
                events: events.into(),
                membership: MembershipDigest::default(),
            },
            ihave: Some(IHaveDigest { ids: ihave }),
        }
    }

    #[test]
    fn advertises_recently_seen_ids() {
        let mut n = recoverable(0);
        n.offer(Payload::from_static(b"a"), TimeMs::ZERO);
        n.offer(Payload::from_static(b"b"), TimeMs::ZERO);
        let out = n.on_round(TimeMs::from_secs(1));
        assert_eq!(out.len(), 4);
        for (_, frame) in &out {
            let GossipFrame::Gossip { ihave: Some(d), .. } = frame else {
                panic!("expected gossip frame with digest");
            };
            assert_eq!(d.ids, vec![eid(0, 0), eid(0, 1)]);
        }
    }

    #[test]
    fn gap_detection_grafts_the_advertiser() {
        let mut n = recoverable(0);
        let replies = n.on_receive(
            NodeId::new(3),
            gossip_frame(3, vec![], vec![eid(7, 0), eid(7, 1)]),
            TimeMs::ZERO,
        );
        assert_eq!(replies.len(), 1);
        let (to, frame) = &replies[0];
        assert_eq!(*to, NodeId::new(3));
        let GossipFrame::Graft(req) = frame else {
            panic!("expected graft");
        };
        assert_eq!(req.sender, NodeId::new(0));
        assert_eq!(req.ids, vec![eid(7, 0), eid(7, 1)]);
        assert_eq!(n.missing_len(), 2);
        let requested = n
            .drain_events()
            .iter()
            .filter(|e| matches!(e, ProtocolEvent::RecoveryRequested { .. }))
            .count();
        assert_eq!(requested, 1);
    }

    #[test]
    fn known_ids_are_not_grafted() {
        let mut n = recoverable(0);
        let event = Event::new(eid(7, 0), Payload::new());
        // Receive the event itself and its advertisement in one frame.
        let replies = n.on_receive(
            NodeId::new(3),
            gossip_frame(3, vec![event], vec![eid(7, 0)]),
            TimeMs::ZERO,
        );
        assert!(replies.is_empty(), "nothing is missing");
        assert_eq!(n.missing_len(), 0);
    }

    #[test]
    fn serves_grafts_from_cache_and_reports_misses() {
        let mut n = recoverable(0);
        n.offer(Payload::from_static(b"x"), TimeMs::ZERO);
        let replies = n.on_receive(
            NodeId::new(2),
            GossipFrame::Graft(GraftRequest {
                sender: NodeId::new(2),
                ids: vec![eid(0, 0), eid(9, 9)],
            }),
            TimeMs::ZERO,
        );
        assert_eq!(replies.len(), 1);
        let GossipFrame::Retransmit(r) = &replies[0].1 else {
            panic!("expected retransmission");
        };
        assert_eq!(r.sender, NodeId::new(0));
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].id(), eid(0, 0));
        let served: Vec<_> = n
            .drain_events()
            .into_iter()
            .filter_map(|e| match e {
                ProtocolEvent::RecoveryServed { events, missed, .. } => Some((events, missed)),
                _ => None,
            })
            .collect();
        assert_eq!(served, vec![(1, 1)]);
    }

    #[test]
    fn retransmission_delivers_and_resolves_gap() {
        let mut n = recoverable(0);
        n.on_receive(
            NodeId::new(3),
            gossip_frame(3, vec![], vec![eid(7, 0)]),
            TimeMs::ZERO,
        );
        assert_eq!(n.missing_len(), 1);
        n.on_receive(
            NodeId::new(3),
            GossipFrame::Retransmit(Retransmission {
                sender: NodeId::new(3),
                events: vec![Event::with_age(eid(7, 0), 4, Payload::from_static(b"p"))],
            }),
            TimeMs::from_secs(1),
        );
        assert_eq!(n.missing_len(), 0);
        let events = n.drain_events();
        assert!(events.iter().any(|e| matches!(
            e,
            ProtocolEvent::Delivered { event, .. } if event.id() == eid(7, 0)
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            ProtocolEvent::Recovered { id, from, .. }
                if *id == eid(7, 0) && *from == NodeId::new(3)
        )));
    }

    #[test]
    fn duplicate_retransmission_is_counted_not_redelivered() {
        let mut n = recoverable(0);
        let event = Event::new(eid(7, 0), Payload::new());
        n.on_receive(
            NodeId::new(2),
            gossip_frame(2, vec![event.clone()], vec![]),
            TimeMs::ZERO,
        );
        n.drain_events();
        n.on_receive(
            NodeId::new(3),
            GossipFrame::Retransmit(Retransmission {
                sender: NodeId::new(3),
                events: vec![event],
            }),
            TimeMs::ZERO,
        );
        let events = n.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, ProtocolEvent::RecoveryDuplicate { .. })));
        assert!(!events
            .iter()
            .any(|e| matches!(e, ProtocolEvent::Delivered { .. })));
    }

    #[test]
    fn graft_budget_bounds_requests_per_round() {
        let mut config = RecoveryConfig::default();
        config.max_grafts_per_round = 3;
        let mut n = RecoverableNode::new(lpbcast(0), config);
        let ids: Vec<EventId> = (0..10).map(|s| eid(7, s)).collect();
        let replies = n.on_receive(NodeId::new(3), gossip_frame(3, vec![], ids), TimeMs::ZERO);
        let requested: usize = replies
            .iter()
            .filter_map(|(_, f)| match f {
                GossipFrame::Graft(g) => Some(g.ids.len()),
                _ => None,
            })
            .sum();
        assert_eq!(requested, 3, "round budget must bind");
        assert_eq!(n.missing_len(), 10, "unrequested gaps stay tracked");
        // Next round, the budget resets and the remaining gaps go out.
        let out = n.on_round(TimeMs::from_secs(1));
        let grafted: usize = out
            .iter()
            .filter_map(|(_, f)| match f {
                GossipFrame::Graft(g) => Some(g.ids.len()),
                _ => None,
            })
            .sum();
        assert_eq!(grafted, 3);
    }

    #[test]
    fn abandoned_after_retry_budget() {
        let mut config = RecoveryConfig::default();
        config.max_retries = 1;
        config.graft_timeout_rounds = 1;
        let mut n = RecoverableNode::new(lpbcast(0), config);
        n.on_receive(
            NodeId::new(3),
            gossip_frame(3, vec![], vec![eid(7, 0)]),
            TimeMs::ZERO,
        );
        // One attempt was made on receive; the next due poll abandons.
        n.on_round(TimeMs::from_secs(1));
        n.on_round(TimeMs::from_secs(2));
        let abandoned = n
            .drain_events()
            .iter()
            .filter(|e| matches!(e, ProtocolEvent::RecoveryAbandoned { .. }))
            .count();
        assert_eq!(abandoned, 1);
        assert_eq!(n.missing_len(), 0);
    }

    #[test]
    fn digest_rotates_across_rounds() {
        let mut config = RecoveryConfig::default();
        config.digest_size = 2;
        let mut n = RecoverableNode::new(lpbcast(0), config);
        for _ in 0..4 {
            n.offer(Payload::new(), TimeMs::ZERO);
        }
        let digest_of = |out: &Vec<(NodeId, GossipFrame)>| -> Vec<EventId> {
            let GossipFrame::Gossip { ihave: Some(d), .. } = &out[0].1 else {
                panic!("expected digest");
            };
            d.ids.clone()
        };
        let first = digest_of(&n.on_round(TimeMs::from_secs(1)));
        let second = digest_of(&n.on_round(TimeMs::from_secs(2)));
        assert_eq!(first, vec![eid(0, 0), eid(0, 1)]);
        assert_eq!(second, vec![eid(0, 2), eid(0, 3)]);
    }

    #[test]
    fn delegates_protocol_surface_to_inner() {
        let mut n = recoverable(5);
        assert_eq!(n.node_id(), NodeId::new(5));
        assert_eq!(n.buffer_capacity(), 90);
        assert_eq!(n.allowed_rate(), None);
        assert_eq!(n.pending_len(), 0);
        assert_eq!(n.gossip_period(), DurationMs::from_secs(1));
        assert_eq!(FrameProtocol::avg_age(&n), None);
        n.set_buffer_capacity(30, TimeMs::ZERO);
        assert_eq!(n.buffer_capacity(), 30);
        assert_eq!(n.recovery_config().digest_size, 32);
        assert_eq!(n.cache_len(), 0);
    }
}
