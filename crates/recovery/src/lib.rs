//! Pull-based anti-entropy and event recovery for gossip broadcast.
//!
//! The paper's adaptive mechanism keeps gossip reliable by preventing
//! buffer overflow, but the underlying lpbcast design assumes a
//! retransmission-request path to recover events purged before full
//! dissemination — under message loss and aggressive purging, push-only
//! gossip loses atomicity. This crate supplies that path as a composable
//! layer, in the spirit of deterministic pull gossip (Haeupler 2012) and
//! tunable push/pull trade-offs (De Florio & Blondia 2015):
//!
//! * [`RecoverableNode`] wraps **any** [`GossipProtocol`] node (baseline
//!   `LpbcastNode` or `AdaptiveNode`) and implements
//!   [`FrameProtocol`](agb_core::FrameProtocol), the frame-level driving
//!   interface shared by the simulator and the threaded runtime;
//! * outgoing gossip piggybacks compact `IHave` digests of recently-seen
//!   event ids (reusing [`EventIdBuffer`](agb_core::EventIdBuffer));
//! * receivers detect gaps, issue `Graft` pull requests to the
//!   advertiser, and retry round-robin across advertisers with bounded
//!   budgets;
//! * [`RetransmissionCache`] serves grafts from a bounded store with its
//!   own purge policy, so recovery traffic cannot itself cause the
//!   congestion the adaptive mechanism exists to prevent.
//!
//! Everything recovery does is observable through the
//! `ProtocolEvent::Recovery*` events and aggregated by
//! `agb_metrics::RecoveryStats`.
//!
//! [`GossipProtocol`]: agb_core::GossipProtocol

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod missing;
mod node;

pub use cache::RetransmissionCache;
pub use config::RecoveryConfig;
pub use missing::{DueGraft, MissingTracker};
pub use node::{boxed_frame_protocol, RecoverableNode};
