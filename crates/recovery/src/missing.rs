//! Gap bookkeeping: which advertised events are we missing, who can serve
//! them, and when is the next pull attempt due.

use std::collections::VecDeque;

use agb_types::FastHashMap;

use agb_types::{EventId, NodeId};

#[derive(Debug, Clone)]
struct MissingEntry {
    /// Nodes that advertised the id (pull candidates), in discovery order.
    advertisers: Vec<NodeId>,
    /// Round-robin cursor over `advertisers`.
    next_advertiser: usize,
    /// Pull attempts made so far.
    attempts: u32,
    /// Round at which the next pull attempt is due.
    due_round: u64,
}

/// A pull attempt scheduled by [`MissingTracker::take_due`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DueGraft {
    /// The missing event.
    pub id: EventId,
    /// The advertiser to pull from this attempt.
    pub from: NodeId,
}

/// Tracks missing event ids discovered through `IHave` digests.
///
/// Iteration order is the discovery order (not hash order), so the graft
/// stream is a pure function of the input stream — the property the
/// deterministic simulator's checksum tests rely on.
#[derive(Debug, Clone)]
pub struct MissingTracker {
    entries: FastHashMap<EventId, MissingEntry>,
    order: VecDeque<EventId>,
    capacity: usize,
    /// Lower bound on the earliest `due_round` of any tracked entry, so
    /// the per-message due scan can bail out in O(1) when nothing can be
    /// due yet (`u64::MAX` when no entries are tracked).
    earliest_due: u64,
}

impl Default for MissingTracker {
    fn default() -> Self {
        MissingTracker::new()
    }
}

impl MissingTracker {
    /// Creates an unbounded tracker (tests and ad-hoc use).
    pub fn new() -> Self {
        MissingTracker::with_capacity(usize::MAX)
    }

    /// Creates a tracker holding at most `capacity` open gaps; once full,
    /// newly advertised gaps are ignored until existing ones resolve or
    /// are abandoned (the next advertisement re-opens them).
    pub fn with_capacity(capacity: usize) -> Self {
        MissingTracker {
            entries: FastHashMap::default(),
            order: VecDeque::new(),
            capacity,
            earliest_due: u64::MAX,
        }
    }

    /// Records that `advertiser` claims to have seen `id`. Returns whether
    /// this opened a new gap entry; a full tracker refuses new gaps.
    pub fn note(&mut self, id: EventId, advertiser: NodeId, round: u64) -> bool {
        match self.entries.get_mut(&id) {
            Some(entry) => {
                if !entry.advertisers.contains(&advertiser) {
                    entry.advertisers.push(advertiser);
                }
                false
            }
            None => {
                if self.entries.len() >= self.capacity {
                    return false;
                }
                self.earliest_due = self.earliest_due.min(round);
                self.entries.insert(
                    id,
                    MissingEntry {
                        advertisers: vec![advertiser],
                        next_advertiser: 0,
                        attempts: 0,
                        due_round: round,
                    },
                );
                self.order.push_back(id);
                true
            }
        }
    }

    /// Marks `id` as recovered (or otherwise received); returns whether it
    /// was being tracked.
    pub fn resolve(&mut self, id: EventId) -> bool {
        self.entries.remove(&id).is_some()
    }

    /// Whether `id` is currently tracked as missing.
    pub fn contains(&self, id: EventId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Number of tracked gaps.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no gaps are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated resident footprint (entries, advertiser lists, FIFO
    /// order queue).
    fn estimated_bytes(&self) -> u64 {
        let per_entry =
            (2 * std::mem::size_of::<EventId>() + std::mem::size_of::<MissingEntry>() + 8) as u64;
        let advertisers: u64 = self
            .entries
            .values()
            .map(|e| (e.advertisers.len() * std::mem::size_of::<NodeId>()) as u64)
            .sum();
        self.entries.len() as u64 * per_entry + advertisers
    }

    /// Collects up to `budget` due pull attempts for `round`, advancing
    /// retry state; ids whose retry budget is exhausted are dropped and
    /// returned as abandoned.
    pub fn take_due(
        &mut self,
        round: u64,
        budget: usize,
        timeout_rounds: u32,
        max_retries: u32,
    ) -> (Vec<DueGraft>, Vec<EventId>) {
        if self.entries.is_empty() || round < self.earliest_due || budget == 0 {
            return (Vec::new(), Vec::new());
        }
        let mut due = Vec::new();
        let mut abandoned = Vec::new();
        let mut keep = VecDeque::with_capacity(self.order.len());
        let mut min_due = u64::MAX;
        while let Some(id) = self.order.pop_front() {
            let Some(entry) = self.entries.get_mut(&id) else {
                continue; // resolved earlier; lazily dropped here
            };
            if entry.due_round > round || due.len() >= budget {
                min_due = min_due.min(entry.due_round);
                keep.push_back(id);
                continue;
            }
            if entry.attempts >= max_retries {
                self.entries.remove(&id);
                abandoned.push(id);
                continue;
            }
            let from = entry.advertisers[entry.next_advertiser % entry.advertisers.len()];
            entry.next_advertiser = entry.next_advertiser.wrapping_add(1);
            entry.attempts += 1;
            entry.due_round = round + u64::from(timeout_rounds);
            min_due = min_due.min(entry.due_round);
            due.push(DueGraft { id, from });
            keep.push_back(id);
        }
        self.order = keep;
        self.earliest_due = min_due;
        (due, abandoned)
    }
}

impl agb_profile::MemReport for MissingTracker {
    fn mem_usage(&self) -> agb_profile::MemUsage {
        agb_profile::MemUsage::new(self.estimated_bytes(), self.entries.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: u64) -> EventId {
        EventId::new(NodeId::new(9), s)
    }

    #[test]
    fn note_tracks_and_dedups_advertisers() {
        let mut t = MissingTracker::new();
        assert!(t.note(id(1), NodeId::new(2), 0));
        assert!(!t.note(id(1), NodeId::new(2), 0));
        assert!(!t.note(id(1), NodeId::new(3), 0));
        assert_eq!(t.len(), 1);
        assert!(t.contains(id(1)));
    }

    #[test]
    fn due_grafts_round_robin_over_advertisers() {
        let mut t = MissingTracker::new();
        t.note(id(1), NodeId::new(2), 0);
        t.note(id(1), NodeId::new(3), 0);
        let (due, _) = t.take_due(0, 10, 2, 10);
        assert_eq!(
            due,
            vec![DueGraft {
                id: id(1),
                from: NodeId::new(2)
            }]
        );
        // Not due again until the timeout elapses.
        let (due, _) = t.take_due(1, 10, 2, 10);
        assert!(due.is_empty());
        // Retry goes to the next advertiser.
        let (due, _) = t.take_due(2, 10, 2, 10);
        assert_eq!(
            due,
            vec![DueGraft {
                id: id(1),
                from: NodeId::new(3)
            }]
        );
    }

    #[test]
    fn budget_bounds_and_preserves_order() {
        let mut t = MissingTracker::new();
        for s in 0..5 {
            t.note(id(s), NodeId::new(1), 0);
        }
        let (due, _) = t.take_due(0, 2, 1, 10);
        let got: Vec<EventId> = due.iter().map(|d| d.id).collect();
        assert_eq!(got, vec![id(0), id(1)]);
        let (due, _) = t.take_due(0, 10, 1, 10);
        let got: Vec<EventId> = due.iter().map(|d| d.id).collect();
        assert_eq!(
            got,
            vec![id(2), id(3), id(4)],
            "skipped ids come first next"
        );
    }

    #[test]
    fn exhausted_retries_abandon() {
        let mut t = MissingTracker::new();
        t.note(id(1), NodeId::new(2), 0);
        let (due, abandoned) = t.take_due(0, 10, 1, 1);
        assert_eq!(due.len(), 1);
        assert!(abandoned.is_empty());
        let (due, abandoned) = t.take_due(5, 10, 1, 1);
        assert!(due.is_empty());
        assert_eq!(abandoned, vec![id(1)]);
        assert!(t.is_empty());
    }

    #[test]
    fn resolve_removes_entry() {
        let mut t = MissingTracker::new();
        t.note(id(1), NodeId::new(2), 0);
        assert!(t.resolve(id(1)));
        assert!(!t.resolve(id(1)));
        let (due, abandoned) = t.take_due(10, 10, 1, 1);
        assert!(due.is_empty() && abandoned.is_empty());
    }
}
