//! The CI perf regression gate: compare a fresh bench JSON against a
//! committed baseline with a throughput tolerance.
//!
//! The gate only fails on *regressions* beyond the tolerance — wall-clock
//! throughput on shared CI runners is noisy, so the tolerance is wide
//! (±25% by default) and improvements merely suggest refreshing the
//! baseline.

use crate::json::Json;

/// Throughput metrics the gate compares (higher is better).
const GATED_METRICS: [&str; 2] = ["rounds_per_sec", "messages_per_sec"];

/// One compared metric of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Scenario key.
    pub scenario: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `current / baseline - 1`, as a signed fraction.
    pub change: f64,
    /// Whether this delta is a regression beyond the tolerance.
    pub regressed: bool,
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-scenario, per-metric deltas.
    pub deltas: Vec<Delta>,
    /// Scenarios present in the baseline but missing from the current
    /// report (treated as failures: the sweep silently shrank).
    pub missing: Vec<String>,
    /// The tolerance used, as a fraction.
    pub tolerance: f64,
    /// Informational lines from `v3` attribution fields in the current
    /// report (resident bytes per node, dominant phase). Never gate —
    /// older baselines lack them, and phase times are wall-clock noise.
    pub notes: Vec<String>,
}

impl Comparison {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.deltas.iter().all(|d| !d.regressed)
    }

    /// The printable delta table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf gate (tolerance ±{:.0}%)\n",
            self.tolerance * 100.0
        ));
        out.push_str(&format!(
            "  {:<18} {:<18} {:>14} {:>14} {:>9}  {}\n",
            "scenario", "metric", "baseline", "current", "change", "verdict"
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "  {:<18} {:<18} {:>14.2} {:>14.2} {:>+8.1}%  {}\n",
                d.scenario,
                d.metric,
                d.baseline,
                d.current,
                d.change * 100.0,
                if d.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        for m in &self.missing {
            out.push_str(&format!("  {m:<18} MISSING from current report\n"));
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out.push_str(if self.passed() {
            "  gate: PASS\n"
        } else {
            "  gate: FAIL\n"
        });
        out
    }
}

fn scenario_map(report: &Json) -> Vec<(&str, &Json)> {
    report
        .get("scenarios")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|s| s.get("name").and_then(Json::as_str).map(|n| (n, s)))
                .collect()
        })
        .unwrap_or_default()
}

/// Compares `current` against `baseline` with the given regression
/// tolerance (fraction; 0.25 = a metric may drop to 75% of baseline).
pub fn compare(current: &Json, baseline: &Json, tolerance: f64) -> Comparison {
    let current_scenarios = scenario_map(current);
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for (name, base) in scenario_map(baseline) {
        let Some((_, cur)) = current_scenarios.iter().find(|(n, _)| *n == name) else {
            missing.push(name.to_string());
            continue;
        };
        for metric in GATED_METRICS {
            let (Some(b), Some(c)) = (
                base.get(metric).and_then(Json::as_f64),
                cur.get(metric).and_then(Json::as_f64),
            ) else {
                continue;
            };
            if b <= 0.0 {
                continue;
            }
            let change = c / b - 1.0;
            deltas.push(Delta {
                scenario: name.to_string(),
                metric: metric.to_string(),
                baseline: b,
                current: c,
                change,
                regressed: change < -tolerance,
            });
        }
    }
    Comparison {
        deltas,
        missing,
        tolerance,
        notes: attribution_notes(&current_scenarios),
    }
}

/// One informational line per scenario carrying `v3` attribution fields
/// (absent from `v1`/`v2` reports, so older inputs produce no notes).
fn attribution_notes(scenarios: &[(&str, &Json)]) -> Vec<String> {
    let mut notes = Vec::new();
    for (name, s) in scenarios {
        let bytes = s.get("peak_resident_bytes_per_node").and_then(Json::as_f64);
        let top_phase = s.get("phases").and_then(|p| match p {
            Json::Obj(map) => map
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|ns| (k.as_str(), ns)))
                .filter(|&(_, ns)| ns > 0.0)
                .max_by(|a, b| a.1.total_cmp(&b.1)),
            _ => None,
        });
        match (bytes, top_phase) {
            (Some(b), Some((phase, _))) => {
                notes.push(format!(
                    "{name}: {b:.0} resident bytes/node, hottest phase {phase}"
                ));
            }
            (Some(b), None) => notes.push(format!("{name}: {b:.0} resident bytes/node")),
            _ => {}
        }
    }
    notes
}

/// Loads two report files and runs the gate; returns the comparison or a
/// description of what could not be read.
///
/// # Errors
///
/// Fails when either file is unreadable or not schema-valid bench JSON.
pub fn compare_files(
    current_path: &str,
    baseline_path: &str,
    tolerance: f64,
) -> Result<Comparison, String> {
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        // `v3` (attribution-aware) is current; `v2` and `v1` baselines
        // parse read-only — the gated metrics carry the same names in
        // all three.
        match json.get("schema").and_then(Json::as_str) {
            Some(crate::harness::SCHEMA)
            | Some(crate::harness::SCHEMA_V2)
            | Some(crate::harness::SCHEMA_V1) => Ok(json),
            other => Err(format!(
                "{path}: unsupported schema {other:?} (expected {}, {}, or {})",
                crate::harness::SCHEMA,
                crate::harness::SCHEMA_V2,
                crate::harness::SCHEMA_V1
            )),
        }
    };
    Ok(compare(
        &load(current_path)?,
        &load(baseline_path)?,
        tolerance,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rounds: f64, msgs: f64) -> Json {
        Json::obj([
            ("schema", Json::Str(crate::harness::SCHEMA.into())),
            (
                "scenarios",
                Json::Arr(vec![Json::obj([
                    ("name", Json::Str("n1000".into())),
                    ("rounds_per_sec", Json::Num(rounds)),
                    ("messages_per_sec", Json::Num(msgs)),
                ])]),
            ),
        ])
    }

    #[test]
    fn within_tolerance_passes() {
        let c = compare(&report(80.0, 800.0), &report(100.0, 1000.0), 0.25);
        assert!(c.passed(), "{}", c.table());
        assert_eq!(c.deltas.len(), 2);
    }

    #[test]
    fn beyond_tolerance_fails() {
        let c = compare(&report(70.0, 1000.0), &report(100.0, 1000.0), 0.25);
        assert!(!c.passed());
        assert!(c.deltas.iter().any(|d| d.regressed));
        assert!(c.table().contains("REGRESSED"));
    }

    #[test]
    fn improvements_never_fail() {
        let c = compare(&report(500.0, 9000.0), &report(100.0, 1000.0), 0.25);
        assert!(c.passed());
    }

    #[test]
    fn missing_scenario_fails() {
        let empty = Json::obj([
            ("schema", Json::Str(crate::harness::SCHEMA.into())),
            ("scenarios", Json::Arr(vec![])),
        ]);
        let c = compare(&empty, &report(100.0, 1000.0), 0.25);
        assert!(!c.passed());
        assert_eq!(c.missing, vec!["n1000".to_string()]);
    }

    #[test]
    fn v1_baselines_still_parse() {
        let dir = std::env::temp_dir();
        let cur = dir.join("agb_perf_v2_cur.json");
        let base = dir.join("agb_perf_v1_base.json");
        // Rewrite the schema tag to the legacy value.
        let v1_text = report(90.0, 900.0)
            .pretty()
            .replace(crate::harness::SCHEMA, crate::harness::SCHEMA_V1);
        assert!(v1_text.contains("agb-perf/v1"));
        std::fs::write(&cur, report(100.0, 1000.0).pretty()).unwrap();
        std::fs::write(&base, v1_text).unwrap();
        let c = compare_files(cur.to_str().unwrap(), base.to_str().unwrap(), 0.25).unwrap();
        assert!(c.passed(), "{}", c.table());
        // Unknown schemas still fail loudly.
        std::fs::write(&base, "{\"schema\": \"agb-perf/v0\", \"scenarios\": []}").unwrap();
        assert!(compare_files(cur.to_str().unwrap(), base.to_str().unwrap(), 0.25).is_err());
    }

    #[test]
    fn v2_baselines_tolerated_and_v3_fields_become_notes() {
        let dir = std::env::temp_dir();
        let cur = dir.join("agb_perf_v3_cur.json");
        let base = dir.join("agb_perf_v2_base.json");
        // A v3 current report carrying the attribution fields.
        let mut current = report(100.0, 1000.0);
        if let Json::Obj(top) = &mut current {
            if let Some(Json::Arr(scenarios)) = top.get_mut("scenarios") {
                if let Some(Json::Obj(s)) = scenarios.get_mut(0) {
                    s.insert("peak_resident_bytes_per_node".into(), Json::Num(18432.0));
                    s.insert(
                        "phases".into(),
                        Json::obj([("shard_exec", Json::Num(9e8)), ("merge", Json::Num(2e8))]),
                    );
                }
            }
        }
        let v2_text = report(90.0, 900.0)
            .pretty()
            .replace(crate::harness::SCHEMA, crate::harness::SCHEMA_V2);
        assert!(v2_text.contains("agb-perf/v2"));
        std::fs::write(&cur, current.pretty()).unwrap();
        std::fs::write(&base, v2_text).unwrap();
        let c = compare_files(cur.to_str().unwrap(), base.to_str().unwrap(), 0.25).unwrap();
        assert!(c.passed(), "{}", c.table());
        assert_eq!(c.notes.len(), 1);
        assert!(
            c.notes[0].contains("18432 resident bytes/node"),
            "{:?}",
            c.notes
        );
        assert!(c.notes[0].contains("hottest phase shard_exec"));
        assert!(c.table().contains("note: n1000:"));
        // A v1/v2 current report produces no notes — the gate output is
        // unchanged for older inputs.
        let old = compare(&report(90.0, 900.0), &report(90.0, 900.0), 0.25);
        assert!(old.notes.is_empty());
    }

    #[test]
    fn compare_files_round_trip() {
        let dir = std::env::temp_dir();
        let cur = dir.join("agb_perf_cur_test.json");
        let base = dir.join("agb_perf_base_test.json");
        std::fs::write(&cur, report(100.0, 1000.0).pretty()).unwrap();
        std::fs::write(&base, report(90.0, 900.0).pretty()).unwrap();
        let c = compare_files(cur.to_str().unwrap(), base.to_str().unwrap(), 0.25).unwrap();
        assert!(c.passed());
        assert!(compare_files("/nonexistent.json", base.to_str().unwrap(), 0.25).is_err());
    }
}
