//! The macro-benchmark harness: full adaptive-gossip rounds at 1k–50k
//! nodes, with and without the recovery layer, measured in wall-clock
//! throughput and allocation counts.
//!
//! Every scenario is a normal [`GossipCluster`] run — the same code path
//! the figure reproductions drive — so a throughput number here is a
//! number for the real system, not for a stripped-down kernel. Timing
//! wraps only the measured window; warmup rounds bring buffers and
//! adaptation to steady state first.

use std::time::Instant;

use agb_core::{Event, GossipFrame, GossipMessage, IHaveDigest};
use agb_membership::MembershipDigest;
use agb_profile::{ProfileConfig, PHASES};
use agb_recovery::RecoveryConfig;
use agb_runtime::wire;
use agb_sim::NetworkConfig;
use agb_types::{fnv1a, DurationMs, EventId, NodeId, Payload, TimeMs};
use agb_workload::{Algorithm, ClusterConfig, GossipCluster, PhaseModel};

use crate::alloc::allocation_count;
use crate::json::Json;

/// The bench JSON schema identifier. Bump when the report shape changes.
///
/// `v3` adds cost attribution from a profiled re-run of every scenario:
/// per-phase wall-nanosecond totals (`phases`), the mean shard busy
/// imbalance (`shard_balance_ratio`), and the end-of-run resident bytes
/// per node (`peak_resident_bytes_per_node`). The *measured* throughput
/// run stays profiler-off; the attribution run doubles as an overhead
/// guard by asserting its engine checksum equals the unprofiled run's.
/// The CI gate still parses `v2` and `v1` baselines (see `compare`).
pub const SCHEMA: &str = "agb-perf/v3";

/// The `v2` schema identifier (threads/speedup), accepted read-only by
/// the gate.
pub const SCHEMA_V2: &str = "agb-perf/v2";

/// The original schema identifier, accepted read-only by the gate.
pub const SCHEMA_V1: &str = "agb-perf/v1";

/// Scale points of the sweep: quick mode stops at 10k nodes, full mode
/// adds 50k and 100k.
pub fn scale_points(quick: bool) -> Vec<usize> {
    if quick {
        vec![1_000, 5_000, 10_000]
    } else {
        vec![1_000, 5_000, 10_000, 50_000, 100_000]
    }
}

/// The engine thread count the harness runs with (`AGB_THREADS`).
pub fn harness_threads() -> usize {
    agb_sim::threads_from_env()
}

/// Whether quick mode is active (`AGB_QUICK`, truthy values on;
/// `0`/`false`/`off` explicitly off).
pub fn quick_mode() -> bool {
    agb_types::env_flag("AGB_QUICK")
}

/// One macro-benchmark scenario: a cluster scale plus the recovery
/// toggle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Scenario key used in the JSON and the CI gate (stable across PRs).
    pub name: String,
    /// Group size.
    pub n_nodes: usize,
    /// Whether nodes run the pull-based recovery layer.
    pub recovery: bool,
    /// Virtual gossip rounds excluded from measurement.
    pub warmup_rounds: u64,
    /// Virtual gossip rounds measured.
    pub measure_rounds: u64,
}

impl ScenarioSpec {
    /// The standard sweep: every scale point with and without recovery.
    pub fn sweep(quick: bool) -> Vec<ScenarioSpec> {
        let (warmup, measure) = if quick { (3, 10) } else { (5, 20) };
        let mut specs = Vec::new();
        for n in scale_points(quick) {
            for recovery in [false, true] {
                specs.push(ScenarioSpec {
                    name: format!("n{n}{}", if recovery { "-recovery" } else { "" }),
                    n_nodes: n,
                    recovery,
                    warmup_rounds: warmup,
                    measure_rounds: measure,
                });
            }
        }
        specs
    }

    /// The cluster configuration this scenario runs.
    pub fn cluster_config(&self, seed: u64) -> ClusterConfig {
        let mut c = ClusterConfig::new(self.n_nodes, seed);
        c.algorithm = Algorithm::Adaptive;
        c.gossip.fanout = 4;
        c.gossip.gossip_period = DurationMs::from_secs(1);
        c.gossip.max_events = 60;
        c.gossip.max_event_ids = 5_000;
        c.gossip.age_cap = 10;
        c.adaptation.initial_rate = 5.0;
        c.n_senders = 10.min(self.n_nodes);
        c.offered_rate = 50.0;
        c.payload_size = 64;
        c.network = NetworkConfig::default();
        c.phases = PhaseModel::Synchronized;
        c.metrics_bin = DurationMs::from_secs(1);
        if self.recovery {
            c.recovery = Some(RecoveryConfig::default());
        }
        c
    }
}

/// Measured outcome of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The spec this result measured.
    pub spec: ScenarioSpec,
    /// Wall-clock seconds of the measured window.
    pub wall_secs: f64,
    /// Virtual gossip rounds per wall second (the headline metric).
    pub rounds_per_sec: f64,
    /// Per-node round executions per wall second (`rounds/sec × n`).
    pub node_rounds_per_sec: f64,
    /// Network messages routed per wall second.
    pub messages_per_sec: f64,
    /// Engine events processed per wall second.
    pub events_per_sec: f64,
    /// Messages handed to the network during measurement.
    pub sends: u64,
    /// Messages delivered during measurement.
    pub deliveries: u64,
    /// High-water mark of the engine's future event list.
    pub peak_queue_depth: usize,
    /// Allocation events during measurement.
    pub allocations: u64,
    /// Allocation events per virtual round.
    pub allocs_per_round: u64,
    /// Engine determinism checksum at the end of the run.
    pub checksum: u64,
    /// Engine shard/worker threads the measured run used.
    pub threads: usize,
    /// Wall-clock speedup versus a single-threaded run of the same
    /// scenario (only measured when `threads > 1`; the harness re-runs
    /// the scenario at `K = 1` and asserts the checksums match).
    pub speedup: Option<f64>,
    /// Per-phase wall-nanosecond totals from the profiled attribution
    /// run, in [`PHASES`] order (empty until attribution runs).
    pub phase_ns: Vec<(&'static str, u64)>,
    /// Mean per-batch max/min shard busy ratio from the attribution run
    /// (`None` when the engine never ran a parallel batch, e.g. `K = 1`).
    pub shard_balance_ratio: Option<f64>,
    /// End-of-run resident bytes per node across all instrumented
    /// subsystems (deterministic: computed from entry counts, not the
    /// allocator), from the attribution run.
    pub peak_resident_bytes_per_node: u64,
}

/// Runs one scenario at the `AGB_THREADS` thread count.
///
/// When the thread count exceeds 1, a single-threaded run of the same
/// scenario is measured as well: its wall-clock anchors the reported
/// `speedup`, and its determinism checksum (plus message counts and
/// queue peak) must match the threaded run exactly — the engine's
/// K-invariance, asserted on every harness run.
pub fn run_scenario(spec: &ScenarioSpec, seed: u64) -> ScenarioResult {
    let threads = harness_threads();
    let mut result = run_scenario_at(spec, seed, threads);
    if threads > 1 {
        let baseline = run_scenario_at(spec, seed, 1);
        assert_eq!(
            (
                baseline.checksum,
                baseline.sends,
                baseline.deliveries,
                baseline.peak_queue_depth
            ),
            (
                result.checksum,
                result.sends,
                result.deliveries,
                result.peak_queue_depth
            ),
            "scenario {} diverged between K=1 and K={threads}",
            spec.name
        );
        result.speedup = Some(baseline.wall_secs / result.wall_secs.max(1e-9));
    }
    attribute_scenario(&mut result, spec, seed, threads);
    result
}

/// Re-runs the scenario with the profiler attached and folds phase
/// totals, shard balance, and per-node resident bytes into `result`.
///
/// The timed throughput run above stays profiler-off, so the gated
/// metrics never pay for instrumentation; this run is where the cost
/// attribution comes from — and it doubles as the overhead guard: the
/// profiled engine must reproduce the unprofiled run's checksum and
/// message counts exactly, or profiling perturbed the engine.
fn attribute_scenario(result: &mut ScenarioResult, spec: &ScenarioSpec, seed: u64, threads: usize) {
    let mut config = spec.cluster_config(seed);
    config.threads = threads.max(1);
    config.profile = ProfileConfig::enabled();
    let period = config.gossip.gossip_period;
    let mut cluster = GossipCluster::build(config);
    if let Some(profiler) = cluster.profiler_mut() {
        profiler.set_alloc_counter(allocation_count);
    }

    let warmup_until = TimeMs::ZERO + period.mul_f64(spec.warmup_rounds as f64);
    cluster.run_until(warmup_until);
    cluster.reset_peak_queue_depth();
    let sends_before = cluster.sim_stats().sends;
    let deliveries_before = cluster.sim_stats().deliveries;
    cluster.run_until(warmup_until + period.mul_f64(spec.measure_rounds as f64));

    let stats = cluster.sim_stats();
    assert_eq!(
        (
            result.checksum,
            result.sends,
            result.deliveries,
            result.peak_queue_depth
        ),
        (
            stats.checksum,
            stats.sends - sends_before,
            stats.deliveries - deliveries_before,
            cluster.peak_queue_depth()
        ),
        "scenario {} diverged profiler-on vs profiler-off",
        spec.name
    );

    let snapshot = cluster
        .profiler_snapshot()
        .expect("profiled cluster has a profiler");
    result.phase_ns = PHASES
        .iter()
        .map(|&p| (p.label(), snapshot.phase(p).total_ns))
        .collect();
    result.shard_balance_ratio = snapshot.mean_balance_ratio;
    result.peak_resident_bytes_per_node = cluster.mem_table().bytes_per_node();
}

/// Runs one scenario at an explicit engine thread count and measures it.
pub fn run_scenario_at(spec: &ScenarioSpec, seed: u64, threads: usize) -> ScenarioResult {
    let mut config = spec.cluster_config(seed);
    config.threads = threads.max(1);
    let period = config.gossip.gossip_period;
    let mut cluster = GossipCluster::build(config);

    let warmup_until = TimeMs::ZERO + period.mul_f64(spec.warmup_rounds as f64);
    cluster.run_until(warmup_until);
    // The peak-depth metric should describe the measured window, not
    // warmup transients.
    cluster.reset_peak_queue_depth();

    let sends_before = cluster.sim_stats().sends;
    let deliveries_before = cluster.sim_stats().deliveries;
    let events_before = cluster.events_processed();
    let allocs_before = allocation_count();
    let started = Instant::now();

    let measure_until = warmup_until + period.mul_f64(spec.measure_rounds as f64);
    cluster.run_until(measure_until);

    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let allocations = allocation_count() - allocs_before;
    let stats = cluster.sim_stats();
    let sends = stats.sends - sends_before;
    let deliveries = stats.deliveries - deliveries_before;
    let events = cluster.events_processed() - events_before;
    let rounds = spec.measure_rounds;

    ScenarioResult {
        spec: spec.clone(),
        wall_secs,
        rounds_per_sec: rounds as f64 / wall_secs,
        node_rounds_per_sec: rounds as f64 * spec.n_nodes as f64 / wall_secs,
        messages_per_sec: sends as f64 / wall_secs,
        events_per_sec: events as f64 / wall_secs,
        sends,
        deliveries,
        peak_queue_depth: cluster.peak_queue_depth(),
        allocations,
        allocs_per_round: allocations / rounds.max(1),
        checksum: stats.checksum,
        threads: threads.max(1),
        speedup: None,
        phase_ns: Vec::new(),
        shard_balance_ratio: None,
        peak_resident_bytes_per_node: 0,
    }
}

/// Measured outcome of the wire-encode micro-leg (bytes encoded/sec
/// through the pooled [`wire::FrameEncoder`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeResult {
    /// Frames encoded.
    pub frames: u64,
    /// Total bytes produced.
    pub bytes: u64,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Bytes encoded per wall second.
    pub bytes_per_sec: f64,
    /// Frames encoded per wall second.
    pub frames_per_sec: f64,
    /// FNV checksum of one encoded frame (schema/codec determinism
    /// anchor).
    pub checksum: u64,
}

/// A representative gossip frame: a full 60-event buffer of 64-byte
/// payloads plus a piggybacked recovery digest — what a loaded node
/// actually puts on the wire each round.
fn representative_frame(seed: u64) -> GossipFrame {
    let payload = Payload::from(
        (0..64u64)
            .map(|i| (i.wrapping_mul(seed | 1) >> 3) as u8)
            .collect::<Vec<u8>>(),
    );
    let events: Vec<Event> = (0..60)
        .map(|s| {
            Event::with_age(
                EventId::new(NodeId::new((s % 10) as u32), seed.wrapping_add(s)),
                (s % 11) as u32,
                payload.clone(),
            )
        })
        .collect();
    let ids = (0..32)
        .map(|s| {
            EventId::new(
                NodeId::new((s % 7) as u32),
                seed.wrapping_mul(3).wrapping_add(s),
            )
        })
        .collect();
    GossipFrame::Gossip {
        msg: GossipMessage {
            sender: NodeId::new(1),
            sample_period: 4,
            min_buffs: vec![agb_core::BuffAd {
                node: NodeId::new(3),
                capacity: 60,
            }],
            events: events.into(),
            membership: MembershipDigest::default(),
        },
        ihave: Some(IHaveDigest { ids }),
    }
}

/// Runs the encode micro-leg.
pub fn run_encode_bench(seed: u64, quick: bool) -> EncodeResult {
    let frame = representative_frame(seed);
    let iterations: u64 = if quick { 5_000 } else { 50_000 };
    let mut encoder = wire::FrameEncoder::default();
    // Correctness anchor outside the timed loop: pooled output must equal
    // the legacy codec and round-trip.
    let reference = wire::encode_frame(&frame);
    assert_eq!(encoder.encode(&frame), reference, "pooled codec diverged");
    assert_eq!(
        wire::decode_frame(&reference).expect("reference frame decodes"),
        frame
    );

    let mut bytes = 0u64;
    let started = Instant::now();
    for _ in 0..iterations {
        let encoded = encoder.encode(&frame);
        bytes += encoded.len() as u64;
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    EncodeResult {
        frames: iterations,
        bytes,
        wall_secs,
        bytes_per_sec: bytes as f64 / wall_secs,
        frames_per_sec: iterations as f64 / wall_secs,
        checksum: fnv1a(&reference),
    }
}

/// The complete bench report (`BENCH_PR4.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Experiment seed.
    pub seed: u64,
    /// Whether quick mode shaped the sweep.
    pub quick: bool,
    /// Engine shard/worker threads (`AGB_THREADS`).
    pub threads: usize,
    /// Scenario sweep results.
    pub scenarios: Vec<ScenarioResult>,
    /// Wire-encode micro-leg.
    pub encode: EncodeResult,
}

impl PerfReport {
    /// Runs the whole harness: the scale sweep plus the encode leg.
    ///
    /// Progress lines go to stderr so stdout stays a clean human
    /// summary.
    pub fn run(seed: u64) -> PerfReport {
        let quick = quick_mode();
        let mut scenarios = Vec::new();
        for spec in ScenarioSpec::sweep(quick) {
            eprintln!(
                "perf: running {} ({} rounds measured)...",
                spec.name, spec.measure_rounds
            );
            scenarios.push(run_scenario(&spec, seed));
        }
        let encode = run_encode_bench(seed, quick);
        PerfReport {
            seed,
            quick,
            threads: harness_threads(),
            scenarios,
            encode,
        }
    }

    /// Order-sensitive checksum over everything deterministic in the
    /// report (engine checksums, message counts, queue depths, resident
    /// bytes, codec bytes). Two runs of the same seed must agree on this
    /// value — *at any `AGB_THREADS`*: wall-clock fields (per-phase
    /// nanoseconds, balance ratios, the derived speedup) are excluded,
    /// and everything mixed here is thread-count-invariant by engine
    /// construction. Resident bytes qualify because the memory
    /// attribution is computed from entry counts, not the allocator.
    pub fn determinism_checksum(&self) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            acc ^= v;
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for s in &self.scenarios {
            mix(fnv1a(s.spec.name.as_bytes()));
            mix(s.checksum);
            mix(s.sends);
            mix(s.deliveries);
            mix(s.peak_queue_depth as u64);
            mix(s.peak_resident_bytes_per_node);
        }
        mix(self.encode.bytes);
        mix(self.encode.checksum);
        acc
    }

    /// The machine-readable report (stable schema, see `SCHEMA`).
    pub fn to_json(&self) -> Json {
        let scenarios = self
            .scenarios
            .iter()
            .map(|s| {
                Json::obj([
                    ("name", Json::Str(s.spec.name.clone())),
                    ("n_nodes", Json::Num(s.spec.n_nodes as f64)),
                    ("recovery", Json::Bool(s.spec.recovery)),
                    ("measure_rounds", Json::Num(s.spec.measure_rounds as f64)),
                    ("wall_secs", Json::Num(s.wall_secs)),
                    ("rounds_per_sec", Json::Num(s.rounds_per_sec)),
                    ("node_rounds_per_sec", Json::Num(s.node_rounds_per_sec)),
                    ("messages_per_sec", Json::Num(s.messages_per_sec)),
                    ("events_per_sec", Json::Num(s.events_per_sec)),
                    ("sends", Json::Num(s.sends as f64)),
                    ("deliveries", Json::Num(s.deliveries as f64)),
                    ("peak_queue_depth", Json::Num(s.peak_queue_depth as f64)),
                    ("allocations", Json::Num(s.allocations as f64)),
                    ("allocs_per_round", Json::Num(s.allocs_per_round as f64)),
                    ("checksum", Json::Str(format!("{:#018x}", s.checksum))),
                    ("threads", Json::Num(s.threads as f64)),
                    ("speedup", Json::Num(s.speedup.unwrap_or(1.0))),
                    (
                        "phases",
                        Json::obj(
                            s.phase_ns
                                .iter()
                                .map(|&(label, ns)| (label, Json::Num(ns as f64))),
                        ),
                    ),
                    (
                        "shard_balance_ratio",
                        Json::Num(s.shard_balance_ratio.unwrap_or(1.0)),
                    ),
                    (
                        "peak_resident_bytes_per_node",
                        Json::Num(s.peak_resident_bytes_per_node as f64),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::Str(SCHEMA.into())),
            ("seed", Json::Num(self.seed as f64)),
            ("quick", Json::Bool(self.quick)),
            ("threads", Json::Num(self.threads as f64)),
            ("scenarios", Json::Arr(scenarios)),
            (
                "encode",
                Json::obj([
                    ("frames", Json::Num(self.encode.frames as f64)),
                    ("bytes", Json::Num(self.encode.bytes as f64)),
                    ("wall_secs", Json::Num(self.encode.wall_secs)),
                    ("bytes_per_sec", Json::Num(self.encode.bytes_per_sec)),
                    ("frames_per_sec", Json::Num(self.encode.frames_per_sec)),
                    (
                        "checksum",
                        Json::Str(format!("{:#018x}", self.encode.checksum)),
                    ),
                ]),
            ),
            (
                "determinism_checksum",
                Json::Str(format!("{:#018x}", self.determinism_checksum())),
            ),
        ])
    }

    /// The human summary table printed alongside the JSON.
    pub fn human_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf sweep (seed {}, {} mode, {} thread{})\n",
            self.seed,
            if self.quick { "quick" } else { "full" },
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        ));
        out.push_str(&format!(
            "  {:<16} {:>12} {:>14} {:>14} {:>12} {:>14} {:>9} {:>11}\n",
            "scenario",
            "rounds/s",
            "node-rounds/s",
            "messages/s",
            "peak queue",
            "allocs/round",
            "speedup",
            "bytes/node"
        ));
        for s in &self.scenarios {
            let speedup = s
                .speedup
                .map_or_else(|| "     -".to_string(), |v| format!("{v:>5.2}x"));
            out.push_str(&format!(
                "  {:<16} {:>12.2} {:>14.0} {:>14.0} {:>12} {:>14} {:>9} {:>11}\n",
                s.spec.name,
                s.rounds_per_sec,
                s.node_rounds_per_sec,
                s.messages_per_sec,
                s.peak_queue_depth,
                s.allocs_per_round,
                speedup,
                s.peak_resident_bytes_per_node,
            ));
        }
        for s in &self.scenarios {
            // Percentages are of the *top-level* total — nested phases
            // (route/encode/decode inside shard_exec) would otherwise be
            // double-counted in the denominator.
            let total: u64 = PHASES
                .iter()
                .zip(&s.phase_ns)
                .filter(|(p, _)| !p.nested())
                .map(|(_, &(_, ns))| ns)
                .sum();
            if total == 0 {
                continue;
            }
            let mut phases: Vec<_> = s.phase_ns.iter().filter(|&&(_, ns)| ns > 0).collect();
            phases.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
            let top: Vec<String> = phases
                .iter()
                .take(3)
                .map(|&&(label, ns)| format!("{label} {:.0}%", ns as f64 * 100.0 / total as f64))
                .collect();
            let balance = s
                .shard_balance_ratio
                .map_or_else(String::new, |r| format!(", shard balance {r:.2}x"));
            out.push_str(&format!(
                "  {:<16} phases: {}{balance}\n",
                s.spec.name,
                top.join(", ")
            ));
        }
        out.push_str(&format!(
            "  encode: {:.1} MB/s ({:.0} frames/s)\n",
            self.encode.bytes_per_sec / 1e6,
            self.encode.frames_per_sec
        ));
        out.push_str(&format!(
            "  perf determinism checksum: {:#018x}\n",
            self.determinism_checksum()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(recovery: bool) -> ScenarioSpec {
        ScenarioSpec {
            name: format!("tiny{}", if recovery { "-recovery" } else { "" }),
            n_nodes: 40,
            recovery,
            warmup_rounds: 2,
            measure_rounds: 4,
        }
    }

    #[test]
    fn scenario_runs_and_measures() {
        let r = run_scenario(&tiny_spec(false), 7);
        assert!(r.sends > 0);
        assert!(r.deliveries > 0);
        assert!(r.rounds_per_sec > 0.0);
        assert!(r.peak_queue_depth > 0);
        assert!(r.allocations > 0);
        assert_ne!(r.checksum, 0);
        // v3 attribution rode along (and its internal assertion already
        // proved the profiled re-run reproduced this checksum).
        assert_eq!(r.phase_ns.len(), PHASES.len());
        let exec = r
            .phase_ns
            .iter()
            .find(|(label, _)| *label == "shard_exec")
            .unwrap();
        assert!(exec.1 > 0, "shard execution took no time?");
        assert!(r.peak_resident_bytes_per_node > 0);
    }

    #[test]
    fn attribution_is_deterministic_where_it_claims_to_be() {
        let a = run_scenario(&tiny_spec(true), 11);
        let b = run_scenario(&tiny_spec(true), 11);
        // Bytes are entry-count arithmetic: exactly reproducible.
        assert_eq!(
            a.peak_resident_bytes_per_node,
            b.peak_resident_bytes_per_node
        );
        // Phase labels (not times) are stable.
        let labels = |r: &ScenarioResult| r.phase_ns.iter().map(|&(l, _)| l).collect::<Vec<_>>();
        assert_eq!(labels(&a), labels(&b));
    }

    #[test]
    fn same_seed_same_checksum_and_counts() {
        let a = run_scenario(&tiny_spec(true), 9);
        let b = run_scenario(&tiny_spec(true), 9);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.sends, b.sends);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.peak_queue_depth, b.peak_queue_depth);
    }

    #[test]
    fn encode_bench_is_deterministic_in_bytes() {
        let a = run_encode_bench(42, true);
        let b = run_encode_bench(42, true);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.checksum, b.checksum);
        assert!(a.bytes_per_sec > 0.0);
    }

    #[test]
    fn report_json_is_schema_shaped() {
        let report = PerfReport {
            seed: 42,
            quick: true,
            threads: 1,
            scenarios: vec![run_scenario(&tiny_spec(false), 42)],
            encode: run_encode_bench(42, true),
        };
        let json = report.to_json();
        assert_eq!(json.get("schema").unwrap().as_str(), Some(SCHEMA));
        let scenarios = json.get("scenarios").unwrap().as_arr().unwrap();
        for key in [
            "name",
            "rounds_per_sec",
            "messages_per_sec",
            "peak_queue_depth",
            "bytes_per_sec",
            "allocs_per_round",
            "phases",
            "shard_balance_ratio",
            "peak_resident_bytes_per_node",
        ] {
            let holder = if key == "bytes_per_sec" {
                json.get("encode").unwrap()
            } else {
                &scenarios[0]
            };
            assert!(holder.get(key).is_some(), "schema key {key} missing");
        }
        // And it round-trips through the parser.
        let parsed = Json::parse(&json.pretty()).unwrap();
        assert_eq!(parsed, json);
    }

    #[test]
    fn sweep_covers_scales_with_and_without_recovery() {
        let specs = ScenarioSpec::sweep(true);
        assert_eq!(specs.len(), 6);
        assert!(specs.iter().any(|s| s.n_nodes == 10_000 && s.recovery));
        assert!(specs.iter().any(|s| s.n_nodes == 10_000 && !s.recovery));
        let full = ScenarioSpec::sweep(false);
        assert!(full.iter().any(|s| s.n_nodes == 50_000));
        assert!(full.iter().any(|s| s.n_nodes == 100_000));
    }
}
