//! A counting global allocator for allocation-per-round accounting.
//!
//! [`CountingAllocator`] wraps the system allocator and counts every
//! allocation (and reallocation) with one relaxed atomic increment. The
//! perf harness reads deltas of [`allocation_count`] around measured
//! phases to report allocations-per-round — the single most sensitive
//! canary for accidental hot-path allocation regressions, and (for a
//! deterministic single-threaded simulation) a count that is *exactly*
//! reproducible across runs of the same seed.
//!
//! Installation is **opt-in per binary** — a library must not hijack
//! the process allocator of everything that links it (and would
//! conflict with any downstream `#[global_allocator]`). Binaries that
//! want allocation metrics declare:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: agb_perf::alloc::CountingAllocator = agb_perf::alloc::CountingAllocator;
//! ```
//!
//! The `repro` binary and the allocation-determinism test install it;
//! without it, [`allocation_count`] stays 0 and the harness reports
//! zero allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper counting allocation events.
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the only addition is a relaxed
// counter increment, which cannot violate allocator invariants.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// The crate's own test harness installs the allocator so unit tests
/// can observe real counts; external binaries opt in themselves (see
/// module docs).
#[cfg(test)]
#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Total allocation events (alloc + alloc_zeroed + realloc) since process
/// start. Compare deltas around a measured phase. Always 0 unless the
/// running binary installed [`CountingAllocator`] as its
/// `#[global_allocator]`.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_advances_on_allocation() {
        let before = allocation_count();
        let v: Vec<u64> = Vec::with_capacity(1024);
        assert!(v.capacity() >= 1024);
        assert!(allocation_count() > before);
    }
}
