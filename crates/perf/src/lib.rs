//! `agb-perf` — the large-scale macro-benchmark subsystem.
//!
//! Three pieces:
//!
//! * [`harness`] — runs full adaptive-gossip rounds at 1k / 5k / 10k
//!   (and 50k / 100k in full mode) nodes, with and without the recovery
//!   layer, at the `AGB_THREADS` engine shard count, and produces a
//!   machine-readable bench report (`BENCH_PR4.json`, schema
//!   `agb-perf/v3`) alongside a human summary. Invoked as
//!   `repro perf [seed]`. At `K > 1` each scenario is re-measured at
//!   `K = 1` for the `speedup` column, with checksum equality asserted.
//!   Every scenario is then re-run with the `agb-profile` profiler
//!   attached for cost attribution (per-phase totals, shard balance,
//!   resident bytes per node); the timed run stays profiler-off, and
//!   the attribution run must reproduce its checksum exactly.
//! * [`compare`](mod@compare) — the CI regression gate: diff a fresh report against a
//!   committed baseline (`ci/perf-baseline.json`) with a throughput
//!   tolerance, printing a delta table; parses `v2` and legacy `v1`
//!   baselines (new `v3` fields print as informational notes, never
//!   gate). Invoked as
//!   `repro perf-check <current> <baseline> [tolerance]`.
//! * [`alloc`] — a counting global allocator (opt-in per binary; the
//!   `repro` driver installs it) powering the allocations-per-round
//!   metric, the most sensitive canary for hot-path allocation
//!   regressions.
//!
//! [`json`] is the dependency-free JSON model the other modules share —
//! it lives in [`agb_types::json`] (the Maelstrom subsystem speaks it
//! too) and is re-exported here.
//!
//! # Bench JSON schema (`agb-perf/v3`)
//!
//! ```json
//! {
//!   "schema": "agb-perf/v3",
//!   "seed": 42,
//!   "quick": true,
//!   "threads": 4,                     // engine shard count (AGB_THREADS)
//!   "scenarios": [
//!     {
//!       "name": "n10000",            // key: n<nodes>[-recovery]
//!       "n_nodes": 10000,
//!       "recovery": false,
//!       "measure_rounds": 10,
//!       "wall_secs": 1.9,
//!       "rounds_per_sec": 5.2,       // virtual gossip rounds / wall s
//!       "node_rounds_per_sec": 52000,
//!       "messages_per_sec": 210000,  // network messages routed / wall s
//!       "events_per_sec": 430000,    // engine events / wall s
//!       "sends": 400000,
//!       "deliveries": 398000,
//!       "peak_queue_depth": 40500,   // future-event-list high-water mark
//!       "allocations": 1200000,      // via the counting allocator
//!       "allocs_per_round": 120000,
//!       "checksum": "0x…",           // engine determinism checksum
//!       "threads": 4,
//!       "speedup": 3.1,              // wall-clock vs a K=1 re-run (1.0 at K=1)
//!       "phases": {                  // wall-ns totals, profiled re-run
//!         "batch_lift": 1.2e8, "shard_exec": 9.1e8, "merge": 2.4e8,
//!         "control": 3.0e7, "route": 1.1e8, "encode": 0, "decode": 0
//!       },
//!       "shard_balance_ratio": 1.4,  // mean max/min shard busy (1.0 at K=1)
//!       "peak_resident_bytes_per_node": 18432  // deterministic, end of run
//!     }
//!   ],
//!   "encode": {                      // pooled wire-codec micro-leg
//!     "bytes_per_sec": 1.2e9, "frames_per_sec": 230000,
//!     "frames": 5000, "bytes": 2.6e7, "wall_secs": 0.02, "checksum": "0x…"
//!   },
//!   "determinism_checksum": "0x…"    // identical across same-seed runs
//! }
//! ```
//!
//! Wall-clock metrics (`wall_secs`, `*_per_sec`, `speedup`, the
//! `phases` nanoseconds, `shard_balance_ratio`) vary between machines
//! and runs; everything else — counts, checksums, queue depths,
//! `peak_resident_bytes_per_node` — is an exact function of the seed,
//! at every thread count. `peak_queue_depth` covers measured rounds
//! only (peak tracking resets at the warmup/measure boundary).

#![warn(missing_docs)]

pub mod alloc;
pub mod compare;
pub mod harness;

pub use agb_types::json;
pub use agb_types::json::Json;
pub use compare::{compare, compare_files, Comparison, Delta};
pub use harness::{
    harness_threads, quick_mode, run_encode_bench, run_scenario, run_scenario_at, scale_points,
    EncodeResult, PerfReport, ScenarioResult, ScenarioSpec, SCHEMA, SCHEMA_V1, SCHEMA_V2,
};
