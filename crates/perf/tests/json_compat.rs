//! The bench-JSON emitter moved from a private `agb-perf` module into
//! `agb_types::json` (shared with the Maelstrom subsystem). The schema is
//! a CI artifact diffed across runs, so the move must be byte-invisible:
//! this golden test pins the exact text a report-shaped document emits.

use agb_perf::json::Json;

#[test]
fn bench_json_emission_is_byte_identical() {
    let doc = Json::obj([
        ("schema", Json::Str("agb-perf/v2".into())),
        ("seed", Json::Num(42.0)),
        ("quick", Json::Bool(true)),
        ("threads", Json::Num(4.0)),
        (
            "scenarios",
            Json::Arr(vec![Json::obj([
                ("name", Json::Str("n10000-recovery".into())),
                ("n_nodes", Json::Num(10000.0)),
                ("recovery", Json::Bool(true)),
                ("rounds_per_sec", Json::Num(123.456)),
                ("wall_secs", Json::Num(0.5)),
                ("peak_queue_depth", Json::Num(40000.0)),
                ("checksum", Json::Str("0x00ff".into())),
                ("note", Json::Str("line1\nline\"2\"".into())),
                ("empty_arr", Json::Arr(vec![])),
                ("empty_obj", Json::Obj(Default::default())),
                ("nothing", Json::Null),
            ])]),
        ),
    ]);
    let expected = concat!(
        "{\n",
        "  \"quick\": true,\n",
        "  \"scenarios\": [\n",
        "    {\n",
        "      \"checksum\": \"0x00ff\",\n",
        "      \"empty_arr\": [],\n",
        "      \"empty_obj\": {},\n",
        "      \"n_nodes\": 10000,\n",
        "      \"name\": \"n10000-recovery\",\n",
        "      \"note\": \"line1\\nline\\\"2\\\"\",\n",
        "      \"nothing\": null,\n",
        "      \"peak_queue_depth\": 40000,\n",
        "      \"recovery\": true,\n",
        "      \"rounds_per_sec\": 123.456,\n",
        "      \"wall_secs\": 0.5\n",
        "    }\n",
        "  ],\n",
        "  \"schema\": \"agb-perf/v2\",\n",
        "  \"seed\": 42,\n",
        "  \"threads\": 4\n",
        "}\n",
    );
    assert_eq!(doc.pretty(), expected);
    // And the parser still reads its own output back exactly.
    assert_eq!(Json::parse(expected).unwrap(), doc);
}

#[test]
fn committed_baseline_still_parses() {
    // The committed CI baseline is the real compatibility surface: it must
    // parse through the relocated model without loss.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../ci/perf-baseline.json"
    ))
    .expect("ci/perf-baseline.json readable");
    let parsed = Json::parse(&text).expect("baseline parses");
    assert!(parsed.get("schema").is_some());
    // Re-emission is canonical: parse(pretty(parse(x))) == parse(x).
    assert_eq!(Json::parse(&parsed.pretty()).unwrap(), parsed);
}
