//! Fixed-seed allocation-count determinism.
//!
//! The perf harness reports allocations-per-round through the counting
//! global allocator; that number is only a trustworthy regression canary
//! if it is an exact function of the seed. This test lives in its own
//! integration binary on purpose: it must be the only test in the
//! process, so no concurrently running test thread can allocate into the
//! shared counter between the two measured runs.

use agb_perf::alloc::{allocation_count, CountingAllocator};
use agb_perf::{run_scenario, ScenarioSpec};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "alloc-determinism".into(),
        n_nodes: 60,
        recovery: true,
        warmup_rounds: 2,
        measure_rounds: 5,
    }
}

#[test]
fn same_seed_same_allocation_count() {
    // Warm one run first so lazily initialised process state (thread
    // locals, allocator internals) does not skew the first measurement.
    let _ = run_scenario(&spec(), 7);

    let a = run_scenario(&spec(), 7);
    let b = run_scenario(&spec(), 7);

    assert!(a.allocations > 0, "counter must observe the run");
    assert_eq!(
        a.allocations, b.allocations,
        "allocation count must be an exact function of the seed"
    );
    assert_eq!(a.allocs_per_round, b.allocs_per_round);
    // And the run itself is deterministic.
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.sends, b.sends);

    // Different seeds are allowed to differ (and in practice do): the
    // counter tracks real work, not a constant.
    let c = run_scenario(&spec(), 8);
    assert_ne!(c.checksum, a.checksum);

    // The global counter is monotone across all of the above.
    assert!(allocation_count() > a.allocations);
}
