//! Property-based tests of the protocol building blocks.

use std::collections::HashSet;

use agb_core::{
    BuffAd, Event, EventBuffer, EventIdBuffer, KSmallestSet, MinBuffConfig, MinBuffEstimator,
    PurgeReason, TokenBucket,
};
use agb_types::{DurationMs, EventId, NodeId, Payload, TimeMs};
use proptest::prelude::*;

fn ev(origin: u32, seq: u64, age: u32) -> Event {
    Event::with_age(EventId::new(NodeId::new(origin), seq), age, Payload::new())
}

proptest! {
    /// The buffer never exceeds its capacity, no matter the insert stream.
    #[test]
    fn buffer_never_exceeds_capacity(
        capacity in 1usize..40,
        inserts in proptest::collection::vec((0u32..4, 0u64..200, 0u32..12), 0..200),
    ) {
        let mut buf = EventBuffer::new(capacity);
        for (origin, seq, age) in inserts {
            buf.insert(ev(origin, seq, age));
            prop_assert!(buf.len() <= capacity);
        }
    }

    /// Overflow eviction always removes a maximal-age event.
    #[test]
    fn buffer_evicts_a_maximal_age_event(
        capacity in 1usize..20,
        inserts in proptest::collection::vec((0u64..500, 0u32..12), 1..100),
    ) {
        let mut buf = EventBuffer::new(capacity);
        for (seq, age) in inserts {
            let ages_before: Vec<u32> = buf.iter().map(Event::age).collect();
            let max_before = ages_before.iter().copied().max().unwrap_or(0);
            let incoming = ev(0, seq, age);
            let was_new = !buf.contains(incoming.id());
            let purged = buf.insert(incoming);
            if was_new {
                for p in &purged {
                    prop_assert_eq!(p.reason, PurgeReason::Overflow);
                    prop_assert!(p.age >= max_before.min(p.age));
                    prop_assert!(p.age == max_before || p.age == age.max(max_before));
                }
            }
        }
    }

    /// `would_evict` predicts exactly what `set_capacity` then does.
    #[test]
    fn would_evict_predicts_shrink(
        capacity in 2usize..30,
        shrink_to in 0usize..30,
        inserts in proptest::collection::vec((0u64..100, 0u32..10), 0..60),
    ) {
        let mut buf = EventBuffer::new(capacity);
        for (seq, age) in inserts {
            buf.insert(ev(0, seq, age));
        }
        let predicted: Vec<EventId> = buf
            .would_evict(shrink_to, &agb_types::FastHashSet::default())
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let actual: Vec<EventId> = buf
            .set_capacity(shrink_to)
            .into_iter()
            .map(|p| p.id)
            .collect();
        prop_assert_eq!(predicted, actual);
    }

    /// Duplicate suppression remembers at most `capacity` ids, FIFO.
    #[test]
    fn id_buffer_bounded_and_exact(
        capacity in 1usize..50,
        ids in proptest::collection::vec(0u64..100, 0..200),
    ) {
        let mut buf = EventIdBuffer::new(capacity);
        let mut model: Vec<u64> = Vec::new(); // insertion-ordered, unique
        for seq in ids {
            let id = EventId::new(NodeId::new(0), seq);
            let was_new = buf.insert(id);
            let model_new = !model.contains(&seq);
            prop_assert_eq!(was_new, model_new);
            if model_new {
                model.push(seq);
                if model.len() > capacity {
                    model.remove(0);
                }
            }
            prop_assert!(buf.len() <= capacity);
        }
        for &seq in &model {
            prop_assert!(buf.contains(EventId::new(NodeId::new(0), seq)));
        }
    }

    /// Tokens never go negative and never exceed the bucket size; total
    /// acquisitions never exceed initial + accrued tokens.
    #[test]
    fn token_bucket_conservation(
        rate in 0.0f64..100.0,
        max in 1.0f64..32.0,
        steps in proptest::collection::vec(0u64..500, 1..100),
    ) {
        let mut bucket = TokenBucket::new(rate, max, TimeMs::ZERO);
        let mut now = 0u64;
        let mut acquired = 0u64;
        for step in steps {
            now += step;
            if bucket.try_acquire(TimeMs::from_millis(now)) {
                acquired += 1;
            }
            let tokens = bucket.tokens_unrefreshed();
            prop_assert!(tokens >= 0.0, "negative tokens {tokens}");
            prop_assert!(tokens <= max + 1e-9, "over-full {tokens} > {max}");
        }
        let accrued = max + rate * now as f64 / 1000.0;
        prop_assert!(
            (acquired as f64) <= accrued + 1e-6,
            "acquired {acquired} > accrued {accrued}"
        );
    }

    /// The k-smallest set is sorted, bounded, and node-deduplicated.
    #[test]
    fn k_smallest_invariants(
        track in 1usize..6,
        ads in proptest::collection::vec((0u32..10, 1u32..200), 0..100),
    ) {
        let mut set = KSmallestSet::new(track);
        for (node, capacity) in &ads {
            set.merge(BuffAd { node: NodeId::new(*node), capacity: *capacity });
        }
        let entries = set.entries();
        prop_assert!(entries.len() <= track);
        for w in entries.windows(2) {
            prop_assert!((w[0].capacity, w[0].node) <= (w[1].capacity, w[1].node));
        }
        let nodes: HashSet<NodeId> = entries.iter().map(|e| e.node).collect();
        prop_assert_eq!(nodes.len(), entries.len(), "duplicate node in set");
        // The smallest entry equals the global per-node minimum.
        if let Some(first) = entries.first() {
            let global_min = ads
                .iter()
                .map(|&(_, c)| c)
                .min()
                .expect("entries nonempty implies ads nonempty");
            prop_assert_eq!(first.capacity, global_min);
        }
    }

    /// The windowed estimate never exceeds own capacity and never drops
    /// below the smallest value ever ingested.
    #[test]
    fn minbuff_estimate_bounds(
        own in 10u32..100,
        events in proptest::collection::vec((0u64..6, 0u32..8, 1u32..150), 0..80),
    ) {
        let config = MinBuffConfig {
            sample_period: DurationMs::from_secs(5),
            window: 3,
            track: 1,
            floor: None,
        };
        let mut est = MinBuffEstimator::new(NodeId::new(0), own, config);
        let mut smallest_seen = own;
        for (period, node, capacity) in events {
            est.on_receive(period, &[BuffAd {
                node: NodeId::new(node + 1),
                capacity,
            }]);
            smallest_seen = smallest_seen.min(capacity);
            let e = est.estimate();
            prop_assert!(e <= own, "estimate {e} above own {own}");
            prop_assert!(e >= smallest_seen, "estimate {e} below floor {smallest_seen}");
        }
    }

    /// Ages only move up under merges and increments.
    #[test]
    fn event_age_is_monotone(
        start in 0u32..100,
        ops in proptest::collection::vec(proptest::option::of(0u32..150), 0..50),
    ) {
        let mut e = ev(0, 0, start);
        let mut last = e.age();
        for op in ops {
            match op {
                Some(other) => e.merge_age(other),
                None => e.increment_age(),
            }
            prop_assert!(e.age() >= last);
            last = e.age();
        }
    }
}
