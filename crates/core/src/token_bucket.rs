//! The token-bucket input throttle of Figure 3.
//!
//! The paper's pseudocode restores one token every `1000/rate` ms up to
//! `max`; this implementation refills continuously (fractional tokens) which
//! is equivalent in the limit and plays better with virtual time. A
//! `BROADCAST` call consumes one token; callers that find the bucket empty
//! queue the message (the application-blocking behaviour of Figure 3).

use agb_types::TimeMs;

/// Token bucket with a runtime-adjustable rate.
///
/// # Example
///
/// ```
/// use agb_core::TokenBucket;
/// use agb_types::TimeMs;
///
/// let mut b = TokenBucket::new(2.0, 5.0, TimeMs::ZERO);
/// assert!(b.try_acquire(TimeMs::ZERO)); // starts full
/// // rate 2 tokens/s: after 500 ms one token has been restored.
/// assert!(b.try_acquire(TimeMs::from_millis(500)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate_per_sec: f64,
    max_tokens: f64,
    tokens: f64,
    last_refill: TimeMs,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is negative/non-finite or `max_tokens < 1`.
    pub fn new(rate_per_sec: f64, max_tokens: f64, now: TimeMs) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec >= 0.0,
            "rate must be finite and non-negative"
        );
        assert!(
            max_tokens.is_finite() && max_tokens >= 1.0,
            "max_tokens must be >= 1"
        );
        TokenBucket {
            rate_per_sec,
            max_tokens,
            tokens: max_tokens,
            last_refill: now,
        }
    }

    /// Restores tokens accrued since the last refill.
    pub fn refill(&mut self, now: TimeMs) {
        let elapsed = now.since(self.last_refill);
        if elapsed.is_zero() {
            return;
        }
        self.last_refill = now;
        self.tokens =
            (self.tokens + self.rate_per_sec * elapsed.as_secs_f64()).min(self.max_tokens);
    }

    /// Attempts to consume one token; refills first.
    pub fn try_acquire(&mut self, now: TimeMs) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after an implicit refill).
    pub fn tokens(&mut self, now: TimeMs) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Tokens available without refilling (pure read).
    pub fn tokens_unrefreshed(&self) -> f64 {
        self.tokens
    }

    /// The bucket size.
    pub fn max_tokens(&self) -> f64 {
        self.max_tokens
    }

    /// The refill rate in tokens (messages) per second.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Adjusts the refill rate (the adaptive mechanism's knob). Accrued
    /// tokens are refilled at the old rate first.
    pub fn set_rate(&mut self, rate_per_sec: f64, now: TimeMs) {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec >= 0.0,
            "rate must be finite and non-negative"
        );
        self.refill(now);
        self.rate_per_sec = rate_per_sec;
    }

    /// Adjusts the bucket size, clamping current tokens to it.
    pub fn set_max_tokens(&mut self, max_tokens: f64) {
        assert!(
            max_tokens.is_finite() && max_tokens >= 1.0,
            "max_tokens must be >= 1"
        );
        self.max_tokens = max_tokens;
        self.tokens = self.tokens.min(max_tokens);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut b = TokenBucket::new(1.0, 3.0, TimeMs::ZERO);
        assert!(b.try_acquire(TimeMs::ZERO));
        assert!(b.try_acquire(TimeMs::ZERO));
        assert!(b.try_acquire(TimeMs::ZERO));
        assert!(!b.try_acquire(TimeMs::ZERO));
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(10.0, 5.0, TimeMs::ZERO);
        for _ in 0..5 {
            assert!(b.try_acquire(TimeMs::ZERO));
        }
        assert!(!b.try_acquire(TimeMs::ZERO));
        // 10 tokens/s -> one token per 100 ms.
        assert!(!b.try_acquire(TimeMs::from_millis(99)));
        assert!(b.try_acquire(TimeMs::from_millis(100)));
    }

    #[test]
    fn never_exceeds_max() {
        let mut b = TokenBucket::new(100.0, 2.0, TimeMs::ZERO);
        assert_eq!(b.tokens(TimeMs::from_secs(60)), 2.0);
    }

    #[test]
    fn never_goes_negative() {
        let mut b = TokenBucket::new(0.0, 1.0, TimeMs::ZERO);
        assert!(b.try_acquire(TimeMs::ZERO));
        for t in 0..100 {
            assert!(!b.try_acquire(TimeMs::from_millis(t)));
            assert!(b.tokens_unrefreshed() >= 0.0);
        }
    }

    #[test]
    fn set_rate_refills_at_old_rate_first() {
        let mut b = TokenBucket::new(10.0, 10.0, TimeMs::ZERO);
        for _ in 0..10 {
            assert!(b.try_acquire(TimeMs::ZERO));
        }
        // 500 ms at 10/s = 5 tokens accrued before the rate drops to 0.
        b.set_rate(0.0, TimeMs::from_millis(500));
        assert_eq!(b.tokens(TimeMs::from_secs(10)), 5.0);
        assert_eq!(b.rate(), 0.0);
    }

    #[test]
    fn set_max_clamps_tokens() {
        let mut b = TokenBucket::new(1.0, 10.0, TimeMs::ZERO);
        b.set_max_tokens(2.5);
        assert_eq!(b.max_tokens(), 2.5);
        assert_eq!(b.tokens(TimeMs::ZERO), 2.5);
    }

    #[test]
    fn zero_rate_bucket_is_static() {
        let mut b = TokenBucket::new(0.0, 2.0, TimeMs::ZERO);
        assert!(b.try_acquire(TimeMs::from_secs(1)));
        assert!(b.try_acquire(TimeMs::from_secs(2)));
        assert!(!b.try_acquire(TimeMs::from_secs(100)));
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn rejects_negative_rate() {
        let _ = TokenBucket::new(-1.0, 2.0, TimeMs::ZERO);
    }

    #[test]
    #[should_panic(expected = "max_tokens")]
    fn rejects_tiny_bucket() {
        let _ = TokenBucket::new(1.0, 0.5, TimeMs::ZERO);
    }
}
