//! Distributed discovery of resource availability — Figure 5(a).
//!
//! Every node advertises, in the header of its normal gossip messages, the
//! smallest buffer capacities it knows of for the current *sample period*
//! `s`. Receivers fold the advertisement into their own per-period estimate,
//! so the group-wide minimum spreads epidemically at no extra message cost.
//! The value actually used for congestion estimation is the minimum over a
//! window of the last `W` periods, which smooths the inaccurate estimates at
//! the start of each period while still letting stale minima expire when the
//! constrained node leaves or grows its buffer.
//!
//! §6 of the paper proposes tracking not just the minimum but the `m`
//! smallest buffers (optionally above a floor) so that one pathological node
//! cannot throttle the whole group; [`MinBuffEstimator`] implements the full
//! generalization and the classic behaviour is the `m = 1` special case.

use std::collections::VecDeque;

use agb_types::NodeId;

use crate::config::MinBuffConfig;

/// One advertised buffer capacity: which node, how many events it can hold.
///
/// Tagging values with the owning node is what makes the `m`-smallest
/// extension well-defined: repeated gossip of the same node's capacity must
/// not occupy several of the `m` tracked slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuffAd {
    /// The node whose capacity this is.
    pub node: NodeId,
    /// Its event-buffer capacity.
    pub capacity: u32,
}

/// Multiset of the `m` smallest known `(capacity, node)` pairs, deduplicated
/// by node (keeping the node's smallest advertised value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KSmallestSet {
    track: usize,
    entries: Vec<BuffAd>, // sorted by (capacity, node)
}

impl KSmallestSet {
    /// Creates an empty set tracking the `track` smallest entries.
    ///
    /// # Panics
    ///
    /// Panics if `track == 0`.
    pub fn new(track: usize) -> Self {
        assert!(track > 0, "must track at least one entry");
        KSmallestSet {
            track,
            entries: Vec::with_capacity(track + 1),
        }
    }

    /// Folds one advertisement in.
    pub fn merge(&mut self, ad: BuffAd) {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.node == ad.node) {
            if ad.capacity >= existing.capacity {
                return;
            }
            existing.capacity = ad.capacity;
        } else {
            self.entries.push(ad);
        }
        self.entries.sort_by_key(|e| (e.capacity, e.node));
        self.entries.truncate(self.track);
    }

    /// Folds a batch of advertisements in.
    pub fn merge_all<'a>(&mut self, ads: impl IntoIterator<Item = &'a BuffAd>) {
        for ad in ads {
            self.merge(*ad);
        }
    }

    /// The tracked entries, ascending by capacity.
    pub fn entries(&self) -> &[BuffAd] {
        &self.entries
    }

    /// Whether no advertisement has been merged yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The period-windowed min-buffer estimator of Figure 5(a), generalized to
/// the `m`-smallest criterion of §6.
///
/// # Example
///
/// ```
/// use agb_core::{BuffAd, MinBuffConfig, MinBuffEstimator};
/// use agb_types::{DurationMs, NodeId, TimeMs};
///
/// let config = MinBuffConfig {
///     sample_period: DurationMs::from_secs(6),
///     window: 2,
///     ..MinBuffConfig::default()
/// };
/// let mut est = MinBuffEstimator::new(NodeId::new(0), 90, config);
/// assert_eq!(est.estimate(), 90);
/// // A gossip message for the current period advertises a 45-event buffer.
/// est.on_receive(0, &[BuffAd { node: NodeId::new(7), capacity: 45 }]);
/// assert_eq!(est.estimate(), 45);
/// ```
#[derive(Debug, Clone)]
pub struct MinBuffEstimator {
    self_id: NodeId,
    own_capacity: u32,
    config: MinBuffConfig,
    current_period: u64,
    current: KSmallestSet,
    /// Completed periods, most recent last; holds at most `window - 1` sets.
    completed: VecDeque<KSmallestSet>,
}

impl MinBuffEstimator {
    /// Creates an estimator for a node with the given buffer capacity.
    pub fn new(self_id: NodeId, own_capacity: u32, config: MinBuffConfig) -> Self {
        let mut current = KSmallestSet::new(config.track);
        current.merge(BuffAd {
            node: self_id,
            capacity: own_capacity,
        });
        MinBuffEstimator {
            self_id,
            own_capacity,
            config,
            current_period: 0,
            current,
            completed: VecDeque::new(),
        }
    }

    /// The period index the estimator currently lives in.
    pub fn current_period(&self) -> u64 {
        self.current_period
    }

    /// Updates the node's own capacity (runtime buffer resize).
    pub fn set_own_capacity(&mut self, capacity: u32) {
        self.own_capacity = capacity;
        // A *decrease* must be visible immediately; an increase only takes
        // effect from the next period (the old, smaller value stays valid
        // for the current one — conservative by design).
        self.current.merge(BuffAd {
            node: self.self_id,
            capacity,
        });
    }

    /// The node's own capacity.
    pub fn own_capacity(&self) -> u32 {
        self.own_capacity
    }

    /// Advances the local clock; rolls the period over when `now` enters a
    /// new sample period. Returns `true` on rollover.
    pub fn on_tick(&mut self, now: agb_types::TimeMs) -> bool {
        let local = now.as_millis() / self.config.sample_period.as_millis().max(1);
        if local > self.current_period {
            self.rollover_to(local);
            true
        } else {
            false
        }
    }

    /// Ingests the `(s, minBuff)` header of a received gossip message.
    ///
    /// Messages from a *later* period advance the local period (the paper's
    /// loose clock synchronization); messages from the current period are
    /// merged; stale messages are ignored. When a `floor` is configured
    /// (§6 extension), advertisements below it are discarded at ingestion,
    /// so pathological nodes neither influence the estimate nor propagate
    /// further. Returns `true` if the period advanced.
    pub fn on_receive(&mut self, period: u64, ads: &[BuffAd]) -> bool {
        let mut rolled = false;
        if period > self.current_period {
            self.rollover_to(period);
            rolled = true;
        }
        if period == self.current_period {
            let floor = self.config.floor.unwrap_or(0);
            for ad in ads.iter().filter(|a| a.capacity >= floor) {
                self.current.merge(*ad);
            }
        }
        rolled
    }

    fn rollover_to(&mut self, period: u64) {
        let mut fresh = KSmallestSet::new(self.config.track);
        fresh.merge(BuffAd {
            node: self.self_id,
            capacity: self.own_capacity,
        });
        let finished = std::mem::replace(&mut self.current, fresh);
        self.completed.push_back(finished);
        while self.completed.len() > self.config.window.saturating_sub(1) {
            self.completed.pop_front();
        }
        self.current_period = period;
    }

    fn period_estimate(&self, set: &KSmallestSet) -> Option<u32> {
        // Below-floor values were already rejected at ingestion; the node's
        // own capacity is always present (merged unconditionally), so the
        // set is never empty after construction.
        let entries = set.entries();
        if entries.is_empty() {
            return None;
        }
        let k = self.config.track.min(entries.len());
        Some(entries[k - 1].capacity)
    }

    /// The capacity estimate to adapt against: the minimum of the per-period
    /// estimates over the window (current period included).
    pub fn estimate(&self) -> u32 {
        let current = self.period_estimate(&self.current);
        let completed = self
            .completed
            .iter()
            .filter_map(|s| self.period_estimate(s));
        completed.chain(current).min().unwrap_or(self.own_capacity)
    }

    /// The advertisement to stamp on outgoing gossip: the current period and
    /// its tracked smallest entries.
    pub fn advertisement(&self) -> (u64, Vec<BuffAd>) {
        (self.current_period, self.current.entries().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_types::{DurationMs, TimeMs};

    fn ad(node: u32, cap: u32) -> BuffAd {
        BuffAd {
            node: NodeId::new(node),
            capacity: cap,
        }
    }

    fn config(window: usize) -> MinBuffConfig {
        MinBuffConfig {
            sample_period: DurationMs::from_secs(6),
            window,
            track: 1,
            floor: None,
        }
    }

    #[test]
    fn starts_with_own_capacity() {
        let est = MinBuffEstimator::new(NodeId::new(0), 90, config(2));
        assert_eq!(est.estimate(), 90);
        let (period, ads) = est.advertisement();
        assert_eq!(period, 0);
        assert_eq!(ads, vec![ad(0, 90)]);
    }

    #[test]
    fn learns_smaller_capacity_from_gossip() {
        let mut est = MinBuffEstimator::new(NodeId::new(0), 90, config(2));
        est.on_receive(0, &[ad(5, 45)]);
        assert_eq!(est.estimate(), 45);
        // Larger values do not displace the minimum.
        est.on_receive(0, &[ad(6, 120)]);
        assert_eq!(est.estimate(), 45);
    }

    #[test]
    fn later_period_message_advances_period() {
        let mut est = MinBuffEstimator::new(NodeId::new(0), 90, config(2));
        let rolled = est.on_receive(3, &[ad(5, 45)]);
        assert!(rolled);
        assert_eq!(est.current_period(), 3);
        assert_eq!(est.estimate(), 45);
    }

    #[test]
    fn stale_period_message_is_ignored() {
        let mut est = MinBuffEstimator::new(NodeId::new(0), 90, config(2));
        est.on_receive(2, &[]);
        let rolled = est.on_receive(1, &[ad(5, 10)]);
        assert!(!rolled);
        assert_eq!(est.estimate(), 90);
    }

    #[test]
    fn tick_rolls_over_by_local_clock() {
        let mut est = MinBuffEstimator::new(NodeId::new(0), 90, config(2));
        assert!(!est.on_tick(TimeMs::from_secs(5)));
        assert!(est.on_tick(TimeMs::from_secs(6)));
        assert_eq!(est.current_period(), 1);
        // Clock does not move the period backwards after loose-sync advance.
        est.on_receive(9, &[]);
        assert!(!est.on_tick(TimeMs::from_secs(12)));
        assert_eq!(est.current_period(), 9);
    }

    #[test]
    fn window_expires_stale_minimum() {
        // Window of 2: the estimate covers the current and previous period.
        let mut est = MinBuffEstimator::new(NodeId::new(0), 90, config(2));
        est.on_receive(0, &[ad(5, 45)]);
        assert_eq!(est.estimate(), 45);
        // Period 1: node 5 is gone; 45 still within window (period 0).
        est.on_receive(1, &[]);
        assert_eq!(est.estimate(), 45);
        // Period 2: period 0 drops out; estimate recovers.
        est.on_receive(2, &[]);
        assert_eq!(est.estimate(), 90);
    }

    #[test]
    fn capacity_decrease_is_immediate_increase_is_lagged() {
        let mut est = MinBuffEstimator::new(NodeId::new(0), 90, config(2));
        est.set_own_capacity(45);
        assert_eq!(est.estimate(), 45);
        est.set_own_capacity(60);
        // The 45 from earlier this period still binds (conservative).
        assert_eq!(est.estimate(), 45);
        est.on_receive(1, &[]);
        assert_eq!(est.estimate(), 45); // previous period still in window
        est.on_receive(2, &[]);
        assert_eq!(est.estimate(), 60);
        assert_eq!(est.own_capacity(), 60);
    }

    #[test]
    fn k_smallest_dedupes_by_node() {
        let mut set = KSmallestSet::new(2);
        set.merge(ad(1, 45));
        set.merge(ad(1, 45));
        set.merge(ad(1, 50)); // larger value from same node: ignored
        assert_eq!(set.entries(), &[ad(1, 45)]);
        set.merge(ad(2, 40));
        set.merge(ad(3, 90));
        // Tracks the 2 smallest across distinct nodes.
        assert_eq!(set.entries(), &[ad(2, 40), ad(1, 45)]);
        assert!(!set.is_empty());
    }

    #[test]
    fn k_smallest_node_update_can_shrink() {
        let mut set = KSmallestSet::new(2);
        set.merge(ad(1, 45));
        set.merge(ad(2, 50));
        set.merge(ad(2, 30));
        assert_eq!(set.entries(), &[ad(2, 30), ad(1, 45)]);
    }

    #[test]
    fn m_of_two_ignores_single_outlier() {
        let cfg = MinBuffConfig {
            sample_period: DurationMs::from_secs(6),
            window: 1,
            track: 2,
            floor: None,
        };
        let mut est = MinBuffEstimator::new(NodeId::new(0), 90, cfg);
        est.on_receive(0, &[ad(1, 5)]); // one pathological node
                                        // 2nd smallest of {5, 90} is 90: the outlier alone cannot throttle.
        assert_eq!(est.estimate(), 90);
        est.on_receive(0, &[ad(2, 45)]);
        // 2nd smallest of {5, 45, 90} is 45.
        assert_eq!(est.estimate(), 45);
    }

    #[test]
    fn floor_filters_tiny_advertisements() {
        let cfg = MinBuffConfig {
            sample_period: DurationMs::from_secs(6),
            window: 1,
            track: 1,
            floor: Some(20),
        };
        let mut est = MinBuffEstimator::new(NodeId::new(0), 90, cfg);
        est.on_receive(0, &[ad(1, 5)]);
        // 5 is below the floor; the estimate stays at the smallest value
        // >= 20, which is our own 90.
        assert_eq!(est.estimate(), 90);
        est.on_receive(0, &[ad(2, 45)]);
        assert_eq!(est.estimate(), 45);
    }

    #[test]
    fn advertisement_reflects_current_period_only() {
        let mut est = MinBuffEstimator::new(NodeId::new(0), 90, config(3));
        est.on_receive(0, &[ad(1, 30)]);
        est.on_receive(1, &[]);
        let (period, ads) = est.advertisement();
        assert_eq!(period, 1);
        // New period: only own capacity so far.
        assert_eq!(ads, vec![ad(0, 90)]);
        // But the windowed estimate still remembers 30.
        assert_eq!(est.estimate(), 30);
    }

    #[test]
    #[should_panic(expected = "track")]
    fn zero_track_panics() {
        let _ = KSmallestSet::new(0);
    }
}
