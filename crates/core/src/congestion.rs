//! Local estimation of congestion — Figure 5(b).
//!
//! Given the group-wide minimum buffer estimate `minBuff`, every node can
//! compute, from purely local state, the ages of the events that a node with
//! exactly `minBuff` buffers *would have discarded*. The moving average of
//! those ages (`avgAge`) is the congestion signal: low average age means
//! events die young at the most constrained node, i.e. the system is
//! congested. Events already accounted for are remembered in `lost` so they
//! are never counted twice; the full local buffer is still used to store
//! events (only the *accounting* uses `minBuff`).

use agb_types::{EventId, Ewma};

use crate::buffer::EventBuffer;
use crate::config::CongestionConfig;

/// The `avgAge` congestion estimator.
///
/// # Example
///
/// ```
/// use agb_core::{CongestionConfig, CongestionEstimator, Event, EventBuffer};
/// use agb_types::{EventId, NodeId, Payload};
///
/// let config = CongestionConfig { alpha: 0.0, ..CongestionConfig::default() };
/// let mut est = CongestionEstimator::new(config);
/// let mut buf = EventBuffer::new(10);
/// buf.insert(Event::with_age(EventId::new(NodeId::new(0), 0), 6, Payload::new()));
/// buf.insert(Event::with_age(EventId::new(NodeId::new(0), 1), 2, Payload::new()));
/// // A node with a 1-event buffer would have dropped the age-6 event.
/// est.scan(&buf, 1, false);
/// assert_eq!(est.avg_age(), 6.0);
/// ```
#[derive(Debug, Clone)]
pub struct CongestionEstimator {
    config: CongestionConfig,
    avg_age: Ewma,
    lost: agb_types::FastHashSet<EventId>,
    drop_samples: u64,
    relief_samples: u64,
}

impl CongestionEstimator {
    /// Creates an estimator; `avgAge` starts at the configured initial
    /// value.
    pub fn new(config: CongestionConfig) -> Self {
        let avg_age = Ewma::new(config.alpha, config.initial_age);
        CongestionEstimator {
            config,
            avg_age,
            lost: agb_types::FastHashSet::default(),
            drop_samples: 0,
            relief_samples: 0,
        }
    }

    /// The would-drop scan, run after storing the events of each received
    /// gossip message: folds the ages of events a `min_buff`-sized buffer
    /// would evict into `avgAge`. This catches the events that survive in a
    /// local buffer *larger* than `minBuff` but would already be gone at
    /// the most constrained node; events the local buffer really evicted
    /// are accounted through [`CongestionEstimator::on_purged`].
    ///
    /// When there is nothing to drop (and `suppress_relief` is false, i.e.
    /// no real eviction just happened either) and `no_drop_relief` is
    /// enabled, the average instead drifts toward `relief_age` — the escape
    /// hatch that lets a sender rediscover headroom after congestion clears
    /// entirely (see docs/ARCHITECTURE.md for why the paper's verbatim rule can
    /// deadlock).
    pub fn scan(&mut self, buffer: &EventBuffer, min_buff: usize, suppress_relief: bool) {
        let would = buffer.would_evict(min_buff, &self.lost);
        if would.is_empty() {
            if self.config.no_drop_relief && !suppress_relief && buffer.len() <= min_buff {
                self.avg_age.update(self.config.relief_age);
                self.relief_samples += 1;
            }
            return;
        }
        for (id, age) in would {
            self.avg_age.update(f64::from(age));
            self.lost.insert(id);
            self.drop_samples += 1;
        }
    }

    /// Accounts an event that really left the local buffer.
    ///
    /// If it was already counted by a would-drop scan it is only removed
    /// from the `lost` bookkeeping; otherwise an *overflow* eviction is a
    /// genuine congestion signal and its age joins `avgAge`. (A node whose
    /// buffer is exactly `minBuff`-sized — the common homogeneous case —
    /// observes congestion through this path.) Age-cap removals are normal
    /// end of life and never count.
    pub fn on_purged(&mut self, purged: &crate::buffer::PurgedEvent) {
        if self.lost.remove(&purged.id) {
            return;
        }
        if purged.reason == crate::buffer::PurgeReason::Overflow {
            self.avg_age.update(f64::from(purged.age));
            self.drop_samples += 1;
        }
    }

    /// Current congestion signal: the moving average age of would-drop
    /// events.
    pub fn avg_age(&self) -> f64 {
        self.avg_age.value()
    }

    /// Number of would-drop age samples folded in.
    pub fn drop_samples(&self) -> u64 {
        self.drop_samples
    }

    /// Number of relief (no-drop) samples folded in.
    pub fn relief_samples(&self) -> u64 {
        self.relief_samples
    }

    /// Size of the already-counted set (diagnostics).
    pub fn lost_len(&self) -> usize {
        self.lost.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use agb_types::{NodeId, Payload};

    fn id(s: u64) -> EventId {
        EventId::new(NodeId::new(0), s)
    }

    fn ev(s: u64, age: u32) -> Event {
        Event::with_age(id(s), age, Payload::new())
    }

    fn config(alpha: f64) -> CongestionConfig {
        CongestionConfig {
            alpha,
            initial_age: 5.0,
            no_drop_relief: false,
            relief_age: 10.0,
        }
    }

    #[test]
    fn starts_at_initial_age() {
        let est = CongestionEstimator::new(config(0.9));
        assert_eq!(est.avg_age(), 5.0);
        assert_eq!(est.drop_samples(), 0);
    }

    #[test]
    fn counts_each_event_once() {
        let mut est = CongestionEstimator::new(config(0.0));
        let mut buf = EventBuffer::new(10);
        buf.insert(ev(0, 8));
        buf.insert(ev(1, 2));
        est.scan(&buf, 1, false);
        assert_eq!(est.avg_age(), 8.0);
        assert_eq!(est.drop_samples(), 1);
        assert_eq!(est.lost_len(), 1);
        // Second scan with the same state: the age-8 event is already in
        // `lost`, and the remaining single event fits in min_buff=1.
        est.scan(&buf, 1, false);
        assert_eq!(est.drop_samples(), 1);
    }

    #[test]
    fn scans_highest_ages_first() {
        let mut est = CongestionEstimator::new(config(0.0));
        let mut buf = EventBuffer::new(10);
        for (s, age) in [(0, 1), (1, 9), (2, 4)] {
            buf.insert(ev(s, age));
        }
        // min_buff = 1 -> two would-drops: ages 9 then 4; with alpha=0 the
        // average ends at the last sample.
        est.scan(&buf, 1, false);
        assert_eq!(est.drop_samples(), 2);
        assert_eq!(est.avg_age(), 4.0);
    }

    #[test]
    fn removal_allows_recount_of_slot_not_event() {
        let mut est = CongestionEstimator::new(config(0.0));
        let mut buf = EventBuffer::new(10);
        buf.insert(ev(0, 8));
        buf.insert(ev(1, 2));
        est.scan(&buf, 1, false);
        assert_eq!(est.lost_len(), 1);
        let samples = est.drop_samples();
        // The event really leaves the buffer now: pruned from `lost`,
        // not double counted.
        est.on_purged(&crate::buffer::PurgedEvent {
            id: id(0),
            age: 9,
            reason: crate::buffer::PurgeReason::Overflow,
        });
        assert_eq!(est.lost_len(), 0);
        assert_eq!(est.drop_samples(), samples);
    }

    #[test]
    fn real_overflow_purge_counts_when_not_prescanned() {
        let mut est = CongestionEstimator::new(config(0.0));
        est.on_purged(&crate::buffer::PurgedEvent {
            id: id(7),
            age: 3,
            reason: crate::buffer::PurgeReason::Overflow,
        });
        assert_eq!(est.avg_age(), 3.0);
        assert_eq!(est.drop_samples(), 1);
    }

    #[test]
    fn age_cap_purge_never_counts() {
        let mut est = CongestionEstimator::new(config(0.0));
        est.on_purged(&crate::buffer::PurgedEvent {
            id: id(7),
            age: 11,
            reason: crate::buffer::PurgeReason::AgeCap,
        });
        assert_eq!(est.avg_age(), 5.0);
        assert_eq!(est.drop_samples(), 0);
    }

    #[test]
    fn suppress_relief_blocks_drift() {
        let mut est = CongestionEstimator::new(CongestionConfig {
            alpha: 0.5,
            initial_age: 2.0,
            no_drop_relief: true,
            relief_age: 10.0,
        });
        let buf = EventBuffer::new(10);
        est.scan(&buf, 5, true);
        assert_eq!(est.avg_age(), 2.0);
        assert_eq!(est.relief_samples(), 0);
    }

    #[test]
    fn relief_drifts_toward_relief_age() {
        let mut est = CongestionEstimator::new(CongestionConfig {
            alpha: 0.5,
            initial_age: 2.0,
            no_drop_relief: true,
            relief_age: 10.0,
        });
        let buf = EventBuffer::new(10); // empty: nothing to drop
        est.scan(&buf, 5, false);
        assert_eq!(est.avg_age(), 6.0);
        est.scan(&buf, 5, false);
        assert_eq!(est.avg_age(), 8.0);
        assert_eq!(est.relief_samples(), 2);
        assert_eq!(est.drop_samples(), 0);
    }

    #[test]
    fn no_relief_when_disabled() {
        let mut est = CongestionEstimator::new(config(0.5));
        let buf = EventBuffer::new(10);
        est.scan(&buf, 5, false);
        assert_eq!(est.avg_age(), 5.0);
        assert_eq!(est.relief_samples(), 0);
    }

    #[test]
    fn no_relief_when_buffer_above_min_but_all_counted() {
        // Buffer holds 3 events, min_buff 1, but two are already in lost:
        // eligible (1) <= min_buff (1): no drops; relief requires
        // buffer.len() <= min_buff which is false -> no relief either.
        let mut est = CongestionEstimator::new(CongestionConfig {
            alpha: 0.0,
            initial_age: 5.0,
            no_drop_relief: true,
            relief_age: 10.0,
        });
        let mut buf = EventBuffer::new(10);
        for (s, age) in [(0, 9), (1, 8), (2, 1)] {
            buf.insert(ev(s, age));
        }
        est.scan(&buf, 1, false); // counts ages 9, 8
        let before = est.avg_age();
        est.scan(&buf, 1, false); // nothing new, no relief
        assert_eq!(est.avg_age(), before);
        assert_eq!(est.relief_samples(), 0);
    }

    #[test]
    fn ewma_smooths_with_alpha() {
        let mut est = CongestionEstimator::new(CongestionConfig {
            alpha: 0.9,
            initial_age: 5.0,
            no_drop_relief: false,
            relief_age: 10.0,
        });
        let mut buf = EventBuffer::new(10);
        buf.insert(ev(0, 10));
        est.scan(&buf, 0, false);
        // 0.9 * 5 + 0.1 * 10 = 5.5
        assert!((est.avg_age() - 5.5).abs() < 1e-12);
    }
}
