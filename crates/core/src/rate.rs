//! The sender rate controller — Figure 5(c).
//!
//! Every gossip round the sender compares the congestion signal `avgAge`
//! against two thresholds bracketing the critical age `a_crit`:
//!
//! * `avgAge < L` (low-age mark) — events die too young at the most
//!   constrained node: **decrease** the allowed rate multiplicatively.
//! * `avgAge > H` (high-age mark) *and* the current allowance is actually
//!   being used (low `avgTokens`) — there is headroom: **increase** the
//!   rate, but only with probability `γ`, so that a large sender population
//!   does not surge in lockstep.
//!
//! A high `avgTokens` (unused allowance) also forces a decrease: otherwise
//! an idle sender could bank an inflated allowance and later burst-congest
//! the system (§3.3).

use agb_types::{bernoulli, DetRng};

use crate::config::RateConfig;

/// Why the controller changed (or refused to change) the rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateChangeReason {
    /// `avgAge` fell below the low-age mark: the system is congested.
    Congestion,
    /// The allowance was not being used; reclaimed to prevent later bursts.
    UnusedAllowance,
    /// `avgAge` above the high-age mark with a fully used allowance.
    Headroom,
}

/// A rate adjustment performed by the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateChange {
    /// Rate before, messages/second.
    pub old: f64,
    /// Rate after, messages/second.
    pub new: f64,
    /// What triggered it.
    pub reason: RateChangeReason,
}

/// The threshold + randomized multiplicative-increase/decrease controller.
///
/// # Example
///
/// ```
/// use agb_core::{RateConfig, RateController};
/// use agb_types::DetRng;
/// use rand::SeedableRng;
///
/// let config = RateConfig {
///     low_age: 4.0,
///     high_age: 6.0,
///     delta_dec: 0.5,
///     gamma: 1.0,
///     ..RateConfig::default()
/// };
/// let mut ctl = RateController::new(10.0, config);
/// let mut rng = DetRng::seed_from_u64(0);
/// // Congested: avgAge below L.
/// let change = ctl.adjust(3.0, 0.0, 5.0, &mut rng).unwrap();
/// assert_eq!(change.new, 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct RateController {
    config: RateConfig,
    rate: f64,
}

impl RateController {
    /// Creates a controller starting at `initial_rate` messages/second
    /// (clamped into the configured bounds).
    pub fn new(initial_rate: f64, config: RateConfig) -> Self {
        let rate = initial_rate.clamp(config.min_rate, config.max_rate);
        RateController { config, rate }
    }

    /// The current allowed rate, messages/second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The active configuration.
    pub fn config(&self) -> &RateConfig {
        &self.config
    }

    /// Runs one adjustment round.
    ///
    /// * `avg_age` — the congestion signal from the estimator;
    /// * `avg_tokens` / `max_tokens` — the smoothed token-bucket level and
    ///   its capacity, measuring how much of the allowance is being used.
    ///
    /// Returns the change applied, if any.
    pub fn adjust(
        &mut self,
        avg_age: f64,
        avg_tokens: f64,
        max_tokens: f64,
        rng: &mut DetRng,
    ) -> Option<RateChange> {
        let unused = avg_tokens >= self.config.token_high_frac * max_tokens;
        let fully_used = avg_tokens <= self.config.token_low_frac * max_tokens;

        if avg_age <= self.config.low_age || unused {
            let reason = if avg_age <= self.config.low_age {
                RateChangeReason::Congestion
            } else {
                RateChangeReason::UnusedAllowance
            };
            return self.apply(self.rate * (1.0 - self.config.delta_dec), reason);
        }
        if avg_age >= self.config.high_age && fully_used && bernoulli(rng, self.config.gamma) {
            return self.apply(
                self.rate * (1.0 + self.config.delta_inc),
                RateChangeReason::Headroom,
            );
        }
        None
    }

    fn apply(&mut self, target: f64, reason: RateChangeReason) -> Option<RateChange> {
        let new = target.clamp(self.config.min_rate, self.config.max_rate);
        if (new - self.rate).abs() < f64::EPSILON {
            return None;
        }
        let change = RateChange {
            old: self.rate,
            new,
            reason,
        };
        self.rate = new;
        Some(change)
    }

    /// Overrides the rate directly (used by tests and by operators seeding
    /// a known-good rate).
    pub fn set_rate(&mut self, rate: f64) {
        self.rate = rate.clamp(self.config.min_rate, self.config.max_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(5)
    }

    fn config() -> RateConfig {
        RateConfig {
            low_age: 4.0,
            high_age: 6.0,
            delta_dec: 0.25,
            delta_inc: 0.10,
            gamma: 1.0, // deterministic increase for tests
            min_rate: 0.1,
            max_rate: 100.0,
            token_low_frac: 0.25,
            token_high_frac: 0.75,
        }
    }

    #[test]
    fn decreases_on_congestion() {
        let mut ctl = RateController::new(10.0, config());
        let change = ctl.adjust(3.0, 0.0, 4.0, &mut rng()).unwrap();
        assert_eq!(change.reason, RateChangeReason::Congestion);
        assert!((change.new - 7.5).abs() < 1e-12);
        assert_eq!(ctl.rate(), change.new);
    }

    #[test]
    fn decreases_on_unused_allowance_even_with_high_age() {
        let mut ctl = RateController::new(10.0, config());
        // avgAge says headroom, but the bucket is nearly full: reclaim.
        let change = ctl.adjust(9.0, 3.9, 4.0, &mut rng()).unwrap();
        assert_eq!(change.reason, RateChangeReason::UnusedAllowance);
        assert!(change.new < 10.0);
    }

    #[test]
    fn increases_on_headroom_with_full_usage() {
        let mut ctl = RateController::new(10.0, config());
        let change = ctl.adjust(7.0, 0.5, 4.0, &mut rng()).unwrap();
        assert_eq!(change.reason, RateChangeReason::Headroom);
        assert!((change.new - 11.0).abs() < 1e-12);
    }

    #[test]
    fn holds_in_deadband() {
        let mut ctl = RateController::new(10.0, config());
        // avgAge between L and H: no adjustment regardless of tokens.
        assert!(ctl.adjust(5.0, 0.0, 4.0, &mut rng()).is_none());
        assert!(ctl.adjust(5.0, 2.0, 4.0, &mut rng()).is_none());
        assert_eq!(ctl.rate(), 10.0);
    }

    #[test]
    fn no_increase_when_allowance_partially_used() {
        let mut ctl = RateController::new(10.0, config());
        // avgTokens in the middle: neither unused-decrease nor increase.
        assert!(ctl.adjust(9.0, 2.0, 4.0, &mut rng()).is_none());
    }

    #[test]
    fn respects_min_and_max() {
        let mut ctl = RateController::new(0.11, config());
        ctl.adjust(1.0, 0.0, 4.0, &mut rng());
        assert_eq!(ctl.rate(), 0.1);
        // Already at floor: further decreases are no-ops.
        assert!(ctl.adjust(1.0, 0.0, 4.0, &mut rng()).is_none());

        let mut hi = RateController::new(99.0, config());
        hi.adjust(9.0, 0.0, 4.0, &mut rng());
        hi.adjust(9.0, 0.0, 4.0, &mut rng());
        assert_eq!(hi.rate(), 100.0);
    }

    #[test]
    fn gamma_zero_never_increases() {
        let mut cfg = config();
        cfg.gamma = 0.0;
        let mut ctl = RateController::new(10.0, cfg);
        for _ in 0..100 {
            assert!(ctl.adjust(9.0, 0.0, 4.0, &mut rng()).is_none());
        }
    }

    #[test]
    fn gamma_fraction_increases_sometimes() {
        let mut cfg = config();
        cfg.gamma = 0.1;
        let mut ctl = RateController::new(1.0, cfg);
        let mut r = rng();
        let mut increases = 0;
        for _ in 0..1000 {
            if ctl.adjust(9.0, 0.0, 4.0, &mut r).is_some() {
                increases += 1;
            }
            ctl.set_rate(1.0);
        }
        assert!(
            (50..200).contains(&increases),
            "expected ~100 increases, got {increases}"
        );
    }

    #[test]
    fn initial_rate_is_clamped() {
        let ctl = RateController::new(1_000_000.0, config());
        assert_eq!(ctl.rate(), 100.0);
        let low = RateController::new(0.0, config());
        assert_eq!(low.rate(), 0.1);
        assert_eq!(low.config().min_rate, 0.1);
    }
}
