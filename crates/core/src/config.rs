//! Protocol configuration, mapping one-to-one onto the paper's parameters
//! (§3.4 "System configuration").

use agb_types::{ConfigError, ConfigResult, DurationMs};

/// Parameters of the base gossip algorithm (Figure 1).
///
/// | Field           | Paper symbol      |
/// |-----------------|-------------------|
/// | `fanout`        | `F`               |
/// | `gossip_period` | `T`               |
/// | `max_events`    | `|events|max`     |
/// | `max_event_ids` | `|eventIds|max`   |
/// | `age_cap`       | `k`               |
///
/// # Example
///
/// ```
/// use agb_core::GossipConfig;
///
/// let config = GossipConfig { fanout: 4, ..GossipConfig::default() };
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GossipConfig {
    /// Number of random peers gossiped to per round (`F`).
    pub fanout: usize,
    /// Gossip round period (`T`).
    pub gossip_period: DurationMs,
    /// Event-buffer capacity (`|events|max`) — the contended resource.
    pub max_events: usize,
    /// Duplicate-suppression digest capacity (`|eventIds|max`).
    pub max_event_ids: usize,
    /// Maximum age before an event is garbage-collected (`k`).
    pub age_cap: u32,
    /// Optional static input rate limit in msgs/s (the non-adaptive token
    /// bucket of Figure 3). `None` leaves the baseline unthrottled, as in
    /// the paper's lpbcast runs.
    pub static_rate: Option<f64>,
}

impl Default for GossipConfig {
    /// The paper's experimental configuration: fanout 4, 60-process groups;
    /// the gossip period is normalized to 1 s of virtual time (the paper's
    /// prototype used 5 s of wall-clock time — only the ratio of rate ×
    /// period to buffer size matters).
    fn default() -> Self {
        GossipConfig {
            fanout: 4,
            gossip_period: DurationMs::from_secs(1),
            max_events: 90,
            max_event_ids: 50_000,
            age_cap: 10,
            static_rate: None,
        }
    }
}

impl GossipConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> ConfigResult<()> {
        if self.fanout == 0 {
            return Err(ConfigError::new("fanout", "must be at least 1"));
        }
        if self.gossip_period.is_zero() {
            return Err(ConfigError::new("gossip_period", "must be non-zero"));
        }
        if self.max_events == 0 {
            return Err(ConfigError::new("max_events", "must be at least 1"));
        }
        if self.max_event_ids < self.max_events {
            return Err(ConfigError::new(
                "max_event_ids",
                "must be at least max_events (ids are cheaper than events)",
            ));
        }
        if self.age_cap == 0 {
            return Err(ConfigError::new("age_cap", "must be at least 1"));
        }
        if let Some(rate) = self.static_rate {
            if !rate.is_finite() || rate <= 0.0 {
                return Err(ConfigError::new(
                    "static_rate",
                    "must be finite and positive when set",
                ));
            }
        }
        Ok(())
    }
}

/// Parameters of the distributed min-buffer estimator (Figure 5(a) + §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinBuffConfig {
    /// Sample period `Ts`. §3.4: at least the critical age × gossip period,
    /// so that one node's minimum reaches everyone within a period.
    pub sample_period: DurationMs,
    /// Number of recent periods `W` whose minima are combined.
    pub window: usize,
    /// Track the `m` smallest buffers instead of the strict minimum
    /// (§6 extension); `1` reproduces the paper's mechanism.
    pub track: usize,
    /// Ignore advertised capacities below this floor (§6 extension).
    pub floor: Option<u32>,
}

impl Default for MinBuffConfig {
    fn default() -> Self {
        MinBuffConfig {
            sample_period: DurationMs::from_secs(6),
            window: 4,
            track: 1,
            floor: None,
        }
    }
}

impl MinBuffConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> ConfigResult<()> {
        if self.sample_period.is_zero() {
            return Err(ConfigError::new("sample_period", "must be non-zero"));
        }
        if self.window == 0 {
            return Err(ConfigError::new("window", "must be at least 1"));
        }
        if self.track == 0 {
            return Err(ConfigError::new("track", "must be at least 1"));
        }
        Ok(())
    }
}

/// Parameters of the congestion estimator (Figure 5(b)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionConfig {
    /// EWMA weight `α` for `avgAge` (§3.4 recommends close to 1; the paper
    /// uses 0.9).
    pub alpha: f64,
    /// Initial `avgAge` before any sample. Starting optimistic (at the
    /// relief age) avoids a cold-start decrease.
    pub initial_age: f64,
    /// Drift `avgAge` toward `relief_age` on receives with nothing to drop
    /// (see docs/ARCHITECTURE.md on why pure Figure 5(b) can wedge).
    pub no_drop_relief: bool,
    /// The optimistic age used by the relief drift; a natural choice is the
    /// age cap `k`.
    pub relief_age: f64,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig {
            alpha: 0.9,
            initial_age: 10.0,
            no_drop_relief: true,
            relief_age: 10.0,
        }
    }
}

impl CongestionConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> ConfigResult<()> {
        if !self.alpha.is_finite() || !(0.0..=1.0).contains(&self.alpha) {
            return Err(ConfigError::new("alpha", "must be within [0, 1]"));
        }
        if !self.initial_age.is_finite() || self.initial_age < 0.0 {
            return Err(ConfigError::new("initial_age", "must be non-negative"));
        }
        if !self.relief_age.is_finite() || self.relief_age < 0.0 {
            return Err(ConfigError::new("relief_age", "must be non-negative"));
        }
        Ok(())
    }
}

/// Parameters of the rate controller (Figure 5(c)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateConfig {
    /// Low-age mark `L`: decrease below this.
    pub low_age: f64,
    /// High-age mark `H`: increase above this (if the allowance is used).
    pub high_age: f64,
    /// Multiplicative decrease `δdec`.
    pub delta_dec: f64,
    /// Multiplicative increase `δinc`.
    pub delta_inc: f64,
    /// Probability `γ` that an eligible sender actually increases this
    /// round (de-synchronizes sender populations; the paper uses 0.1).
    pub gamma: f64,
    /// Rate floor, msgs/s (keeps senders probing even under congestion).
    pub min_rate: f64,
    /// Rate ceiling, msgs/s.
    pub max_rate: f64,
    /// `avgTokens ≤ token_low_frac × max` counts as "allowance fully used".
    pub token_low_frac: f64,
    /// `avgTokens ≥ token_high_frac × max` counts as "allowance unused".
    pub token_high_frac: f64,
}

impl Default for RateConfig {
    /// Thresholds bracket the critical age measured on the default
    /// simulator configuration (see `agb-experiments::calibrate`).
    fn default() -> Self {
        RateConfig {
            low_age: 5.0,
            high_age: 7.0,
            delta_dec: 0.25,
            delta_inc: 0.10,
            gamma: 0.1,
            min_rate: 0.05,
            max_rate: 10_000.0,
            token_low_frac: 0.25,
            token_high_frac: 0.75,
        }
    }
}

impl RateConfig {
    /// Validates parameter ranges and mutual consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> ConfigResult<()> {
        for (name, v) in [
            ("low_age", self.low_age),
            ("high_age", self.high_age),
            ("min_rate", self.min_rate),
            ("max_rate", self.max_rate),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ConfigError::new(name, "must be finite and non-negative"));
            }
        }
        if self.low_age > self.high_age {
            return Err(ConfigError::new(
                "low_age",
                "must not exceed high_age (§3.4: a considerable gap prevents oscillation)",
            ));
        }
        for (name, v) in [("delta_dec", self.delta_dec), ("delta_inc", self.delta_inc)] {
            if !v.is_finite() || !(0.0..1.0).contains(&v) {
                return Err(ConfigError::new(name, "must be within [0, 1)"));
            }
        }
        if !self.gamma.is_finite() || !(0.0..=1.0).contains(&self.gamma) {
            return Err(ConfigError::new("gamma", "must be within [0, 1]"));
        }
        if self.min_rate > self.max_rate {
            return Err(ConfigError::new("min_rate", "must not exceed max_rate"));
        }
        if !(0.0..=1.0).contains(&self.token_low_frac)
            || !(0.0..=1.0).contains(&self.token_high_frac)
        {
            return Err(ConfigError::new(
                "token_low_frac/token_high_frac",
                "must be within [0, 1]",
            ));
        }
        if self.token_low_frac > self.token_high_frac {
            return Err(ConfigError::new(
                "token_low_frac",
                "must not exceed token_high_frac",
            ));
        }
        Ok(())
    }
}

/// Full configuration of the adaptive mechanism (Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationConfig {
    /// Distributed min-buffer estimation (Figure 5(a)).
    pub min_buff: MinBuffConfig,
    /// Local congestion estimation (Figure 5(b)).
    pub congestion: CongestionConfig,
    /// Rate control (Figure 5(c)).
    pub rate: RateConfig,
    /// The sender's initial allowed rate, msgs/s.
    pub initial_rate: f64,
    /// Token bucket depth in messages (burst tolerance). The paper's `max`.
    pub bucket_capacity: f64,
    /// EWMA weight for `avgTokens` (usually the same `α` as `avgAge`).
    pub token_alpha: f64,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        AdaptationConfig {
            min_buff: MinBuffConfig::default(),
            congestion: CongestionConfig::default(),
            rate: RateConfig::default(),
            initial_rate: 1.0,
            bucket_capacity: 4.0,
            token_alpha: 0.9,
        }
    }
}

impl AdaptationConfig {
    /// Validates all sub-configurations.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> ConfigResult<()> {
        self.min_buff.validate()?;
        self.congestion.validate()?;
        self.rate.validate()?;
        if !self.initial_rate.is_finite() || self.initial_rate <= 0.0 {
            return Err(ConfigError::new("initial_rate", "must be positive"));
        }
        if !self.bucket_capacity.is_finite() || self.bucket_capacity < 1.0 {
            return Err(ConfigError::new("bucket_capacity", "must be at least 1"));
        }
        if !self.token_alpha.is_finite() || !(0.0..=1.0).contains(&self.token_alpha) {
            return Err(ConfigError::new("token_alpha", "must be within [0, 1]"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(GossipConfig::default().validate().is_ok());
        assert!(MinBuffConfig::default().validate().is_ok());
        assert!(CongestionConfig::default().validate().is_ok());
        assert!(RateConfig::default().validate().is_ok());
        assert!(AdaptationConfig::default().validate().is_ok());
    }

    #[test]
    fn gossip_config_rejects_bad_fields() {
        let mut c = GossipConfig::default();
        c.fanout = 0;
        assert_eq!(c.validate().unwrap_err().field(), "fanout");

        let mut c = GossipConfig::default();
        c.gossip_period = DurationMs::ZERO;
        assert_eq!(c.validate().unwrap_err().field(), "gossip_period");

        let mut c = GossipConfig::default();
        c.max_events = 0;
        assert_eq!(c.validate().unwrap_err().field(), "max_events");

        let mut c = GossipConfig::default();
        c.max_event_ids = c.max_events - 1;
        assert_eq!(c.validate().unwrap_err().field(), "max_event_ids");

        let mut c = GossipConfig::default();
        c.age_cap = 0;
        assert_eq!(c.validate().unwrap_err().field(), "age_cap");

        let mut c = GossipConfig::default();
        c.static_rate = Some(0.0);
        assert_eq!(c.validate().unwrap_err().field(), "static_rate");
    }

    #[test]
    fn rate_config_rejects_inverted_thresholds() {
        let mut c = RateConfig::default();
        c.low_age = 8.0;
        c.high_age = 6.0;
        assert_eq!(c.validate().unwrap_err().field(), "low_age");

        let mut c = RateConfig::default();
        c.min_rate = 50.0;
        c.max_rate = 10.0;
        assert_eq!(c.validate().unwrap_err().field(), "min_rate");

        let mut c = RateConfig::default();
        c.token_low_frac = 0.9;
        c.token_high_frac = 0.5;
        assert!(c.validate().is_err());

        let mut c = RateConfig::default();
        c.delta_dec = 1.0;
        assert_eq!(c.validate().unwrap_err().field(), "delta_dec");

        let mut c = RateConfig::default();
        c.gamma = 1.5;
        assert_eq!(c.validate().unwrap_err().field(), "gamma");
    }

    #[test]
    fn congestion_config_rejects_bad_alpha() {
        let mut c = CongestionConfig::default();
        c.alpha = 1.1;
        assert_eq!(c.validate().unwrap_err().field(), "alpha");
        let mut c = CongestionConfig::default();
        c.initial_age = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn minbuff_config_rejects_zeroes() {
        let mut c = MinBuffConfig::default();
        c.window = 0;
        assert_eq!(c.validate().unwrap_err().field(), "window");
        let mut c = MinBuffConfig::default();
        c.track = 0;
        assert_eq!(c.validate().unwrap_err().field(), "track");
        let mut c = MinBuffConfig::default();
        c.sample_period = DurationMs::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn adaptation_config_rejects_bad_top_level_fields() {
        let mut c = AdaptationConfig::default();
        c.initial_rate = -1.0;
        assert_eq!(c.validate().unwrap_err().field(), "initial_rate");
        let mut c = AdaptationConfig::default();
        c.bucket_capacity = 0.0;
        assert_eq!(c.validate().unwrap_err().field(), "bucket_capacity");
        let mut c = AdaptationConfig::default();
        c.token_alpha = 2.0;
        assert_eq!(c.validate().unwrap_err().field(), "token_alpha");
    }
}
