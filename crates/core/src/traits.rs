//! The protocol abstraction shared by the baseline and adaptive nodes.
//!
//! Both [`LpbcastNode`](crate::LpbcastNode) and
//! [`AdaptiveNode`](crate::AdaptiveNode) are *sans-IO state machines*: they
//! never touch sockets or clocks, they only transform
//! `(now, input) -> outgoing messages + protocol events`. The simulator and
//! the threaded runtime both drive them through this trait, which is how the
//! reproduction keeps the paper's "simulation predicts the implementation"
//! property.

use agb_types::{DurationMs, EventId, NodeId, Payload, TimeMs};

use crate::buffer::PurgeReason;
use crate::event::Event;
use crate::header::{GossipFrame, GossipMessage};
use crate::rate::RateChangeReason;

/// Result of offering a message to the broadcast primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// The message was admitted (token available) and entered the gossip
    /// buffer immediately.
    Admitted(EventId),
    /// The message is queued behind the token bucket; it will be admitted
    /// by a later round (Figure 3's blocking `wait`).
    Queued,
}

impl OfferOutcome {
    /// The admitted event id, if admission was immediate.
    pub fn admitted_id(self) -> Option<EventId> {
        match self {
            OfferOutcome::Admitted(id) => Some(id),
            OfferOutcome::Queued => None,
        }
    }
}

/// Everything observable that a protocol node does, in occurrence order.
///
/// The metrics layer consumes these to build the paper's figures; the
/// application layer consumes `Delivered` for its payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolEvent {
    /// A locally offered message passed the throttle and entered the gossip
    /// buffer (the "input" of Figures 6 and 7(a)).
    Admitted {
        /// The new event's id.
        id: EventId,
        /// Admission time.
        at: TimeMs,
    },
    /// An event was delivered to the application (first copy received, or
    /// self-delivery at the origin).
    Delivered {
        /// The delivered event (id, age at delivery = hops, payload).
        event: Event,
        /// The node the copy arrived from (self for origin delivery).
        from: NodeId,
        /// Delivery time.
        at: TimeMs,
    },
    /// An event left the gossip buffer.
    Dropped {
        /// The purged event's id.
        id: EventId,
        /// Its age at purge time — the raw congestion signal.
        age: u32,
        /// Overflow (congestion) or age cap (normal end of life).
        reason: PurgeReason,
        /// Purge time.
        at: TimeMs,
    },
    /// The adaptive controller changed the allowed sending rate
    /// (Figure 9(a)'s time series).
    RateChanged {
        /// Previous rate, msgs/s.
        old: f64,
        /// New rate, msgs/s.
        new: f64,
        /// What triggered the change.
        reason: RateChangeReason,
        /// Change time.
        at: TimeMs,
    },
    /// A new sample period started in the min-buffer estimator.
    PeriodRollover {
        /// The new period index.
        period: u64,
        /// The windowed capacity estimate after the rollover.
        estimate: u32,
        /// Rollover time.
        at: TimeMs,
    },
    /// The recovery layer sent a `Graft` pull request for missing events
    /// (`agb-recovery`).
    RecoveryRequested {
        /// The advertiser the request was sent to.
        to: NodeId,
        /// Number of missing ids requested.
        ids: usize,
        /// Request time.
        at: TimeMs,
    },
    /// The recovery layer answered a `Graft` from its retransmission
    /// cache.
    RecoveryServed {
        /// The requesting node.
        to: NodeId,
        /// Events found in the cache and retransmitted.
        events: usize,
        /// Requested ids no longer cached (the requester will retry
        /// elsewhere).
        missed: usize,
        /// Serve time.
        at: TimeMs,
    },
    /// A previously missing event arrived through a retransmission and was
    /// delivered.
    Recovered {
        /// The recovered event's id.
        id: EventId,
        /// The node that served the retransmission.
        from: NodeId,
        /// Recovery time.
        at: TimeMs,
    },
    /// A retransmitted event had already been received through regular
    /// gossip — wasted recovery bandwidth, tracked as a duplicate.
    RecoveryDuplicate {
        /// The redundant event's id.
        id: EventId,
        /// Arrival time.
        at: TimeMs,
    },
    /// Recovery of a missing event was abandoned after the retry budget
    /// was exhausted.
    RecoveryAbandoned {
        /// The unrecoverable event's id.
        id: EventId,
        /// Abandon time.
        at: TimeMs,
    },
}

/// A gossip broadcast protocol node as a pure state machine.
///
/// The driving harness must:
/// 1. call [`on_round`](GossipProtocol::on_round) every
///    [`gossip_period`](GossipProtocol::gossip_period) and transmit the
///    returned messages;
/// 2. call [`on_receive`](GossipProtocol::on_receive) for every message
///    received from the network;
/// 3. periodically [`drain_events`](GossipProtocol::drain_events) and hand
///    them to the application/metrics.
pub trait GossipProtocol {
    /// This node's identity.
    fn node_id(&self) -> NodeId;

    /// Offers an application message for broadcast (Figure 3's
    /// `BROADCAST`).
    fn offer(&mut self, payload: Payload, now: TimeMs) -> OfferOutcome;

    /// Runs one gossip round: ages, garbage collection, throttle
    /// bookkeeping, adaptation, and emission of gossip messages.
    fn on_round(&mut self, now: TimeMs) -> Vec<(NodeId, GossipMessage)>;

    /// Ingests one gossip message from the network.
    fn on_receive(&mut self, from: NodeId, msg: GossipMessage, now: TimeMs);

    /// Takes the protocol events accumulated since the last drain.
    fn drain_events(&mut self) -> Vec<ProtocolEvent>;

    /// Drains accumulated protocol events into a reusable buffer (the
    /// harness hot path: one scratch vector instead of an allocation per
    /// handler invocation). Appends without clearing `out`.
    fn drain_events_into(&mut self, out: &mut Vec<ProtocolEvent>) {
        let mut events = self.drain_events();
        out.append(&mut events);
    }

    /// Resizes the event buffer at runtime (the Figure 9 experiment).
    fn set_buffer_capacity(&mut self, capacity: usize, now: TimeMs);

    /// Current event-buffer capacity.
    fn buffer_capacity(&self) -> usize;

    /// Current event-buffer occupancy.
    fn buffer_len(&self) -> usize;

    /// The current allowed sending rate in msgs/s: `Some` for adaptive
    /// nodes, `None` for the unthrottled baseline.
    fn allowed_rate(&self) -> Option<f64>;

    /// Messages waiting behind the throttle.
    fn pending_len(&self) -> usize;

    /// The configured gossip period `T`.
    fn gossip_period(&self) -> DurationMs;

    /// The current congestion signal `avgAge` (adaptive nodes only).
    fn avg_age(&self) -> Option<f64> {
        None
    }

    /// The current smoothed token level `avgTokens` (adaptive nodes only).
    fn avg_tokens(&self) -> Option<f64> {
        None
    }

    /// The current group-minimum-buffer estimate (adaptive nodes only).
    fn min_buff_estimate(&self) -> Option<u32> {
        None
    }

    /// Snapshot of the node's current membership view (diagnostics and
    /// churn-convergence probes).
    fn membership_view(&self) -> Vec<NodeId> {
        Vec::new()
    }

    /// Gracefully leaves the group: returns farewell messages that flush
    /// the node's buffered events and carry its own unsubscription, so
    /// partial views across the group drop it through normal digest
    /// propagation (lpbcast's unsubscribe path). The harness must transmit
    /// the messages and then stop driving the node.
    fn leave(&mut self, now: TimeMs) -> Vec<(NodeId, GossipMessage)> {
        let _ = now;
        Vec::new()
    }

    /// Evicts a peer this node believes dead from its membership view,
    /// propagating the removal where the membership service supports it
    /// (the failure-detector hook of churn scenarios).
    fn evict_peer(&mut self, node: NodeId) {
        let _ = node;
    }

    /// Estimated resident memory per subsystem, as `(label, usage)`
    /// rows for the profiling plane's attribution table (agb-profile).
    /// Labels should be stable snake_case subsystem names; the default
    /// reports nothing.
    fn mem_breakdown(&self) -> Vec<(&'static str, agb_profile::MemUsage)> {
        Vec::new()
    }
}

/// A gossip node driven at the *frame* level: regular gossip messages plus
/// the recovery layer's pull frames ([`GossipFrame`]).
///
/// This is the interface the harnesses (simulator cluster, threaded
/// runtime) actually drive. Every [`GossipProtocol`] is a `FrameProtocol`
/// through the blanket impl below (recovery frames are ignored, outgoing
/// messages carry no digest); `agb-recovery`'s `RecoverableNode` wraps any
/// `GossipProtocol` and implements this trait with the full pull-based
/// anti-entropy behavior.
///
/// Unlike [`GossipProtocol::on_receive`],
/// [`on_receive`](FrameProtocol::on_receive) may return immediate reply
/// frames: pull requests and retransmissions are request/response traffic,
/// not periodic gossip.
pub trait FrameProtocol {
    /// This node's identity.
    fn node_id(&self) -> NodeId;

    /// Offers an application message for broadcast.
    fn offer(&mut self, payload: Payload, now: TimeMs) -> OfferOutcome;

    /// Runs one gossip round, emitting data frames (and any due recovery
    /// retries).
    fn on_round(&mut self, now: TimeMs) -> Vec<(NodeId, GossipFrame)>;

    /// Ingests one frame; returns immediate reply frames (empty for plain
    /// protocols).
    fn on_receive(
        &mut self,
        from: NodeId,
        frame: GossipFrame,
        now: TimeMs,
    ) -> Vec<(NodeId, GossipFrame)>;

    /// Takes the protocol events accumulated since the last drain.
    fn drain_events(&mut self) -> Vec<ProtocolEvent>;

    /// Drains accumulated protocol events into a reusable buffer;
    /// appends without clearing `out`.
    fn drain_events_into(&mut self, out: &mut Vec<ProtocolEvent>) {
        let mut events = self.drain_events();
        out.append(&mut events);
    }

    /// Resizes the event buffer at runtime.
    fn set_buffer_capacity(&mut self, capacity: usize, now: TimeMs);

    /// Current event-buffer capacity.
    fn buffer_capacity(&self) -> usize;

    /// Current event-buffer occupancy.
    fn buffer_len(&self) -> usize;

    /// The current allowed sending rate in msgs/s, if throttled.
    fn allowed_rate(&self) -> Option<f64>;

    /// Messages waiting behind the throttle.
    fn pending_len(&self) -> usize;

    /// The configured gossip period `T`.
    fn gossip_period(&self) -> DurationMs;

    /// The current congestion signal `avgAge` (adaptive nodes only).
    fn avg_age(&self) -> Option<f64> {
        None
    }

    /// The current smoothed token level `avgTokens` (adaptive nodes only).
    fn avg_tokens(&self) -> Option<f64> {
        None
    }

    /// The current group-minimum-buffer estimate (adaptive nodes only).
    fn min_buff_estimate(&self) -> Option<u32> {
        None
    }

    /// Snapshot of the node's current membership view.
    fn membership_view(&self) -> Vec<NodeId> {
        Vec::new()
    }

    /// Gracefully leaves the group (see [`GossipProtocol::leave`]); the
    /// returned frames must be transmitted before the node stops.
    fn leave(&mut self, now: TimeMs) -> Vec<(NodeId, GossipFrame)> {
        let _ = now;
        Vec::new()
    }

    /// Evicts a peer believed dead from the membership view.
    fn evict_peer(&mut self, node: NodeId) {
        let _ = node;
    }

    /// Estimated resident memory per subsystem (see
    /// [`GossipProtocol::mem_breakdown`]).
    fn mem_breakdown(&self) -> Vec<(&'static str, agb_profile::MemUsage)> {
        Vec::new()
    }
}

impl<P: GossipProtocol> FrameProtocol for P {
    fn node_id(&self) -> NodeId {
        GossipProtocol::node_id(self)
    }

    fn offer(&mut self, payload: Payload, now: TimeMs) -> OfferOutcome {
        GossipProtocol::offer(self, payload, now)
    }

    fn on_round(&mut self, now: TimeMs) -> Vec<(NodeId, GossipFrame)> {
        GossipProtocol::on_round(self, now)
            .into_iter()
            .map(|(to, msg)| (to, GossipFrame::plain(msg)))
            .collect()
    }

    fn on_receive(
        &mut self,
        from: NodeId,
        frame: GossipFrame,
        now: TimeMs,
    ) -> Vec<(NodeId, GossipFrame)> {
        if let GossipFrame::Gossip { msg, .. } = frame {
            GossipProtocol::on_receive(self, from, msg, now);
        }
        // Plain protocols ignore recovery control frames.
        Vec::new()
    }

    fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        GossipProtocol::drain_events(self)
    }

    fn drain_events_into(&mut self, out: &mut Vec<ProtocolEvent>) {
        GossipProtocol::drain_events_into(self, out);
    }

    fn set_buffer_capacity(&mut self, capacity: usize, now: TimeMs) {
        GossipProtocol::set_buffer_capacity(self, capacity, now);
    }

    fn buffer_capacity(&self) -> usize {
        GossipProtocol::buffer_capacity(self)
    }

    fn buffer_len(&self) -> usize {
        GossipProtocol::buffer_len(self)
    }

    fn allowed_rate(&self) -> Option<f64> {
        GossipProtocol::allowed_rate(self)
    }

    fn pending_len(&self) -> usize {
        GossipProtocol::pending_len(self)
    }

    fn gossip_period(&self) -> DurationMs {
        GossipProtocol::gossip_period(self)
    }

    fn avg_age(&self) -> Option<f64> {
        GossipProtocol::avg_age(self)
    }

    fn avg_tokens(&self) -> Option<f64> {
        GossipProtocol::avg_tokens(self)
    }

    fn min_buff_estimate(&self) -> Option<u32> {
        GossipProtocol::min_buff_estimate(self)
    }

    fn membership_view(&self) -> Vec<NodeId> {
        GossipProtocol::membership_view(self)
    }

    fn leave(&mut self, now: TimeMs) -> Vec<(NodeId, GossipFrame)> {
        GossipProtocol::leave(self, now)
            .into_iter()
            .map(|(to, msg)| (to, GossipFrame::plain(msg)))
            .collect()
    }

    fn evict_peer(&mut self, node: NodeId) {
        GossipProtocol::evict_peer(self, node);
    }

    fn mem_breakdown(&self) -> Vec<(&'static str, agb_profile::MemUsage)> {
        GossipProtocol::mem_breakdown(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_types::NodeId;

    #[test]
    fn offer_outcome_accessor() {
        let id = EventId::new(NodeId::new(0), 1);
        assert_eq!(OfferOutcome::Admitted(id).admitted_id(), Some(id));
        assert_eq!(OfferOutcome::Queued.admitted_id(), None);
    }
}
