//! The protocol abstraction shared by the baseline and adaptive nodes.
//!
//! Both [`LpbcastNode`](crate::LpbcastNode) and
//! [`AdaptiveNode`](crate::AdaptiveNode) are *sans-IO state machines*: they
//! never touch sockets or clocks, they only transform
//! `(now, input) -> outgoing messages + protocol events`. The simulator and
//! the threaded runtime both drive them through this trait, which is how the
//! reproduction keeps the paper's "simulation predicts the implementation"
//! property.

use agb_types::{DurationMs, EventId, NodeId, Payload, TimeMs};

use crate::buffer::PurgeReason;
use crate::event::Event;
use crate::header::GossipMessage;
use crate::rate::RateChangeReason;

/// Result of offering a message to the broadcast primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// The message was admitted (token available) and entered the gossip
    /// buffer immediately.
    Admitted(EventId),
    /// The message is queued behind the token bucket; it will be admitted
    /// by a later round (Figure 3's blocking `wait`).
    Queued,
}

impl OfferOutcome {
    /// The admitted event id, if admission was immediate.
    pub fn admitted_id(self) -> Option<EventId> {
        match self {
            OfferOutcome::Admitted(id) => Some(id),
            OfferOutcome::Queued => None,
        }
    }
}

/// Everything observable that a protocol node does, in occurrence order.
///
/// The metrics layer consumes these to build the paper's figures; the
/// application layer consumes `Delivered` for its payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolEvent {
    /// A locally offered message passed the throttle and entered the gossip
    /// buffer (the "input" of Figures 6 and 7(a)).
    Admitted {
        /// The new event's id.
        id: EventId,
        /// Admission time.
        at: TimeMs,
    },
    /// An event was delivered to the application (first copy received, or
    /// self-delivery at the origin).
    Delivered {
        /// The delivered event (id, age at delivery = hops, payload).
        event: Event,
        /// The node the copy arrived from (self for origin delivery).
        from: NodeId,
        /// Delivery time.
        at: TimeMs,
    },
    /// An event left the gossip buffer.
    Dropped {
        /// The purged event's id.
        id: EventId,
        /// Its age at purge time — the raw congestion signal.
        age: u32,
        /// Overflow (congestion) or age cap (normal end of life).
        reason: PurgeReason,
        /// Purge time.
        at: TimeMs,
    },
    /// The adaptive controller changed the allowed sending rate
    /// (Figure 9(a)'s time series).
    RateChanged {
        /// Previous rate, msgs/s.
        old: f64,
        /// New rate, msgs/s.
        new: f64,
        /// What triggered the change.
        reason: RateChangeReason,
        /// Change time.
        at: TimeMs,
    },
    /// A new sample period started in the min-buffer estimator.
    PeriodRollover {
        /// The new period index.
        period: u64,
        /// The windowed capacity estimate after the rollover.
        estimate: u32,
        /// Rollover time.
        at: TimeMs,
    },
}

/// A gossip broadcast protocol node as a pure state machine.
///
/// The driving harness must:
/// 1. call [`on_round`](GossipProtocol::on_round) every
///    [`gossip_period`](GossipProtocol::gossip_period) and transmit the
///    returned messages;
/// 2. call [`on_receive`](GossipProtocol::on_receive) for every message
///    received from the network;
/// 3. periodically [`drain_events`](GossipProtocol::drain_events) and hand
///    them to the application/metrics.
pub trait GossipProtocol {
    /// This node's identity.
    fn node_id(&self) -> NodeId;

    /// Offers an application message for broadcast (Figure 3's
    /// `BROADCAST`).
    fn offer(&mut self, payload: Payload, now: TimeMs) -> OfferOutcome;

    /// Runs one gossip round: ages, garbage collection, throttle
    /// bookkeeping, adaptation, and emission of gossip messages.
    fn on_round(&mut self, now: TimeMs) -> Vec<(NodeId, GossipMessage)>;

    /// Ingests one gossip message from the network.
    fn on_receive(&mut self, from: NodeId, msg: GossipMessage, now: TimeMs);

    /// Takes the protocol events accumulated since the last drain.
    fn drain_events(&mut self) -> Vec<ProtocolEvent>;

    /// Resizes the event buffer at runtime (the Figure 9 experiment).
    fn set_buffer_capacity(&mut self, capacity: usize, now: TimeMs);

    /// Current event-buffer capacity.
    fn buffer_capacity(&self) -> usize;

    /// Current event-buffer occupancy.
    fn buffer_len(&self) -> usize;

    /// The current allowed sending rate in msgs/s: `Some` for adaptive
    /// nodes, `None` for the unthrottled baseline.
    fn allowed_rate(&self) -> Option<f64>;

    /// Messages waiting behind the throttle.
    fn pending_len(&self) -> usize;

    /// The configured gossip period `T`.
    fn gossip_period(&self) -> DurationMs;

    /// The current congestion signal `avgAge` (adaptive nodes only).
    fn avg_age(&self) -> Option<f64> {
        None
    }

    /// The current smoothed token level `avgTokens` (adaptive nodes only).
    fn avg_tokens(&self) -> Option<f64> {
        None
    }

    /// The current group-minimum-buffer estimate (adaptive nodes only).
    fn min_buff_estimate(&self) -> Option<u32> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_types::NodeId;

    #[test]
    fn offer_outcome_accessor() {
        let id = EventId::new(NodeId::new(0), 1);
        assert_eq!(OfferOutcome::Admitted(id).admitted_id(), Some(id));
        assert_eq!(OfferOutcome::Queued.admitted_id(), None);
    }
}
