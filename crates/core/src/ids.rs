//! The bounded duplicate-suppression digest (`eventIds` in Figure 1).

use std::collections::VecDeque;

use agb_types::{EventId, FastHashSet};

/// FIFO-bounded set of already-seen event identifiers.
///
/// Figure 1 garbage-collects `eventIds` by removing the *oldest* elements
/// when the bound is exceeded; ids are much cheaper than events, so this
/// buffer is typically far larger than the event buffer. Evicting an id too
/// early can cause a circulating copy to be re-delivered — the paper accepts
/// this, and so do we (the metrics layer counts deliveries once per node).
///
/// # Example
///
/// ```
/// use agb_core::EventIdBuffer;
/// use agb_types::{EventId, NodeId};
///
/// let mut ids = EventIdBuffer::new(2);
/// let id = |s| EventId::new(NodeId::new(0), s);
/// assert!(ids.insert(id(0)));
/// assert!(!ids.insert(id(0))); // duplicate
/// ids.insert(id(1));
/// ids.insert(id(2)); // evicts id(0)
/// assert!(!ids.contains(id(0)));
/// assert!(ids.contains(id(2)));
/// ```
#[derive(Debug, Clone)]
pub struct EventIdBuffer {
    capacity: usize,
    order: VecDeque<EventId>,
    set: FastHashSet<EventId>,
}

impl EventIdBuffer {
    /// Creates a buffer remembering at most `capacity` ids.
    ///
    /// Storage grows on demand: a large-scale simulation hosts one of
    /// these per node, and eager per-node reservations of the full bound
    /// dominate resident memory long before the dedup window fills.
    pub fn new(capacity: usize) -> Self {
        EventIdBuffer {
            capacity,
            order: VecDeque::new(),
            set: FastHashSet::default(),
        }
    }

    /// Records `id` as seen. Returns `true` if it was new, `false` if it was
    /// already known (i.e. the incoming event is a duplicate).
    pub fn insert(&mut self, id: EventId) -> bool {
        if self.capacity == 0 {
            return true; // Degenerate: remembers nothing, everything is new.
        }
        if !self.set.insert(id) {
            return false;
        }
        self.order.push_back(id);
        while self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }

    /// Whether `id` has been seen (and not yet evicted).
    pub fn contains(&self, id: EventId) -> bool {
        self.set.contains(&id)
    }

    /// Number of remembered ids.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no ids are remembered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl agb_profile::MemReport for EventIdBuffer {
    fn mem_usage(&self) -> agb_profile::MemUsage {
        // Each remembered id lives twice: once in the FIFO order queue
        // and once in the dedup set (plus hash-table slot overhead).
        let per_id = (2 * std::mem::size_of::<EventId>() + 8) as u64;
        agb_profile::MemUsage::new(self.order.len() as u64 * per_id, self.order.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_types::NodeId;

    fn id(s: u64) -> EventId {
        EventId::new(NodeId::new(1), s)
    }

    #[test]
    fn detects_duplicates() {
        let mut b = EventIdBuffer::new(10);
        assert!(b.insert(id(1)));
        assert!(!b.insert(id(1)));
        assert!(b.contains(id(1)));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn evicts_fifo_when_full() {
        let mut b = EventIdBuffer::new(3);
        for s in 0..5 {
            b.insert(id(s));
        }
        assert_eq!(b.len(), 3);
        assert!(!b.contains(id(0)));
        assert!(!b.contains(id(1)));
        assert!(b.contains(id(2)));
        assert!(b.contains(id(4)));
    }

    #[test]
    fn evicted_id_reads_as_new_again() {
        let mut b = EventIdBuffer::new(1);
        b.insert(id(0));
        b.insert(id(1)); // evicts 0
        assert!(b.insert(id(0)), "evicted id must be accepted as new");
    }

    #[test]
    fn zero_capacity_never_remembers() {
        let mut b = EventIdBuffer::new(0);
        assert!(b.insert(id(0)));
        assert!(b.insert(id(0)));
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 0);
    }
}
