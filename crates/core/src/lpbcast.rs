//! The baseline gossip broadcast algorithm — Figure 1 (lpbcast).
//!
//! Every received event is buffered and delivered; every `T` ms each node
//! increments the ages of its buffered events, garbage-collects events past
//! the age cap `k`, and forwards its entire buffer to `F` randomly selected
//! peers. Buffer overflow evicts the highest-age events first. Duplicate
//! delivery is suppressed with a bounded `eventIds` digest.
//!
//! Optionally, a *static* token bucket (Figure 3) throttles the local input
//! rate — the naive a-priori calibration whose shortcomings motivate the
//! adaptive mechanism.

use std::collections::VecDeque;

use agb_membership::GossipMembership;
use agb_types::{DetRng, DurationMs, EventId, NodeId, Payload, TimeMs};

use crate::buffer::{EventBuffer, PurgedEvent};
use crate::config::GossipConfig;
use crate::event::Event;
use crate::header::GossipMessage;
use crate::ids::EventIdBuffer;
use crate::token_bucket::TokenBucket;
use crate::traits::{GossipProtocol, OfferOutcome, ProtocolEvent};

/// What happened while ingesting one gossip message (consumed by the
/// adaptive wrapper's congestion accounting).
#[derive(Debug, Clone, Default)]
pub struct ReceiveReport {
    /// Events newly stored (and delivered) from this message.
    pub newly_stored: usize,
    /// Duplicate events whose age was max-merged.
    pub duplicates: usize,
    /// Events evicted by overflow while storing this message.
    pub purged: Vec<PurgedEvent>,
}

/// The lpbcast state machine of Figure 1.
///
/// Generic over the membership service `S` (full or partial view).
///
/// # Example
///
/// ```
/// use agb_core::{GossipConfig, GossipProtocol, LpbcastNode};
/// use agb_membership::FullView;
/// use agb_types::{DetRng, NodeId, Payload, TimeMs};
/// use rand::SeedableRng;
///
/// let mut node = LpbcastNode::new(
///     NodeId::new(0),
///     GossipConfig::default(),
///     FullView::new(10),
///     DetRng::seed_from_u64(1),
/// );
/// node.offer(Payload::from_static(b"hello"), TimeMs::ZERO);
/// let out = node.on_round(TimeMs::from_secs(1));
/// assert_eq!(out.len(), 4); // fanout
/// ```
#[derive(Debug)]
pub struct LpbcastNode<S> {
    id: NodeId,
    config: GossipConfig,
    membership: S,
    rng: DetRng,
    events: EventBuffer,
    ids: EventIdBuffer,
    next_seq: u64,
    round: u64,
    bucket: Option<TokenBucket>,
    pending: VecDeque<Payload>,
    out_events: Vec<ProtocolEvent>,
    removals: Vec<PurgedEvent>,
}

impl<S: GossipMembership> LpbcastNode<S> {
    /// Creates a node.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation; construct configs through
    /// [`GossipConfig::validate`] first when handling untrusted input.
    pub fn new(id: NodeId, config: GossipConfig, membership: S, rng: DetRng) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid GossipConfig: {e}"));
        let bucket = config
            .static_rate
            .map(|r| TokenBucket::new(r, (r * 2.0).max(2.0), TimeMs::ZERO));
        LpbcastNode {
            id,
            events: EventBuffer::new(config.max_events),
            ids: EventIdBuffer::new(config.max_event_ids),
            config,
            membership,
            rng,
            next_seq: 0,
            round: 0,
            bucket,
            pending: VecDeque::new(),
            out_events: Vec::new(),
            removals: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// Immutable view of the event buffer (used by the congestion
    /// estimator's would-drop scan).
    pub fn buffer(&self) -> &EventBuffer {
        &self.events
    }

    /// Gossip rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The membership service.
    pub fn membership(&self) -> &S {
        &self.membership
    }

    /// Mutable membership access (e.g. to inject subscriptions).
    pub fn membership_mut(&mut self) -> &mut S {
        &mut self.membership
    }

    /// Every event removed from the buffer since the last call (consumed
    /// by the adaptive wrapper's congestion accounting).
    pub fn take_removals(&mut self) -> Vec<PurgedEvent> {
        std::mem::take(&mut self.removals)
    }

    /// Broadcasts unconditionally (no throttle): assigns the next sequence
    /// number, buffers, self-delivers.
    pub fn broadcast_now(&mut self, payload: Payload, now: TimeMs) -> EventId {
        let id = EventId::new(self.id, self.next_seq);
        self.next_seq += 1;
        let event = Event::new(id, payload);
        self.ids.insert(id);
        self.out_events
            .push(ProtocolEvent::Admitted { id, at: now });
        self.out_events.push(ProtocolEvent::Delivered {
            event: event.clone(),
            from: self.id,
            at: now,
        });
        let purged = self.events.insert(event);
        self.record_purges(purged, now);
        id
    }

    fn record_purges(&mut self, purged: Vec<PurgedEvent>, now: TimeMs) {
        for p in purged {
            self.removals.push(p);
            self.out_events.push(ProtocolEvent::Dropped {
                id: p.id,
                age: p.age,
                reason: p.reason,
                at: now,
            });
        }
    }

    /// Ingests a gossip message, returning what changed (Figure 1 receive
    /// handler).
    pub fn receive(&mut self, from: NodeId, msg: GossipMessage, now: TimeMs) -> ReceiveReport {
        let mut report = ReceiveReport::default();
        self.membership
            .observe_gossip(from, &msg.membership, &mut self.rng);
        for event in &msg.events {
            // Most circulating copies are duplicates of events still
            // buffered: probe the small, hot buffer map first, and
            // consult the (much larger) seen-id set only on a miss.
            // Identical to the id-set-first order whenever the id
            // window outlives buffered events (all shipped configs:
            // max_event_ids >> max_events x age_cap). In the degenerate
            // case where FIFO id eviction outpaces the buffer, this
            // order additionally suppresses a redundant re-delivery of
            // an event that is demonstrably still buffered.
            if self.events.merge_age(event.id(), event.age()) {
                report.duplicates += 1;
                continue;
            }
            if self.ids.insert(event.id()) {
                report.newly_stored += 1;
                self.out_events.push(ProtocolEvent::Delivered {
                    event: event.clone(),
                    from,
                    at: now,
                });
                let purged = self.events.insert(event.clone());
                report.purged.extend(purged.iter().cloned());
                self.record_purges(purged, now);
            } else {
                report.duplicates += 1;
            }
        }
        report
    }

    /// Runs the periodic part of Figure 1: age updates, age-cap garbage
    /// collection, admission of throttled messages, and gossip emission.
    pub fn run_round(&mut self, now: TimeMs) -> Vec<(NodeId, GossipMessage)> {
        self.round += 1;
        self.membership.on_round();
        self.events.increment_ages();
        let expired = self.events.purge_age_cap(self.config.age_cap);
        self.record_purges(expired, now);
        self.admit_pending(now);
        self.emit(now)
    }

    fn admit_pending(&mut self, now: TimeMs) {
        if self.bucket.is_none() {
            // Unthrottled: pending is only populated when a bucket exists,
            // but drain defensively.
            while let Some(p) = self.pending.pop_front() {
                self.broadcast_now(p, now);
            }
            return;
        }
        while !self.pending.is_empty() {
            let admitted = self
                .bucket
                .as_mut()
                .expect("bucket present")
                .try_acquire(now);
            if !admitted {
                break;
            }
            let payload = self.pending.pop_front().expect("non-empty");
            self.broadcast_now(payload, now);
        }
    }

    fn emit(&mut self, _now: TimeMs) -> Vec<(NodeId, GossipMessage)> {
        let targets = self
            .membership
            .sample(&mut self.rng, self.config.fanout, self.id);
        if targets.is_empty() {
            return Vec::new();
        }
        // One shared snapshot backs all F outgoing copies.
        let events = self.events.snapshot_shared();
        targets
            .into_iter()
            .map(|t| {
                let membership = self.membership.make_digest(&mut self.rng);
                (
                    t,
                    GossipMessage {
                        sender: self.id,
                        sample_period: 0,
                        min_buffs: Vec::new(),
                        events: events.clone(),
                        membership,
                    },
                )
            })
            .collect()
    }
}

impl<S: GossipMembership> GossipProtocol for LpbcastNode<S> {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn offer(&mut self, payload: Payload, now: TimeMs) -> OfferOutcome {
        if self.bucket.is_none() {
            return OfferOutcome::Admitted(self.broadcast_now(payload, now));
        }
        // Tokens accrue continuously: drain older queued messages first so
        // the queue empties at the static rate, not once per round.
        self.admit_pending(now);
        if self.pending.is_empty()
            && self
                .bucket
                .as_mut()
                .expect("bucket present")
                .try_acquire(now)
        {
            OfferOutcome::Admitted(self.broadcast_now(payload, now))
        } else {
            self.pending.push_back(payload);
            OfferOutcome::Queued
        }
    }

    fn on_round(&mut self, now: TimeMs) -> Vec<(NodeId, GossipMessage)> {
        self.run_round(now)
    }

    fn on_receive(&mut self, from: NodeId, msg: GossipMessage, now: TimeMs) {
        self.receive(from, msg, now);
    }

    fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut self.out_events)
    }

    fn drain_events_into(&mut self, out: &mut Vec<ProtocolEvent>) {
        out.append(&mut self.out_events);
    }

    fn set_buffer_capacity(&mut self, capacity: usize, now: TimeMs) {
        let purged = self.events.set_capacity(capacity);
        self.record_purges(purged, now);
    }

    fn buffer_capacity(&self) -> usize {
        self.events.capacity()
    }

    fn buffer_len(&self) -> usize {
        self.events.len()
    }

    fn allowed_rate(&self) -> Option<f64> {
        self.config.static_rate
    }

    fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn gossip_period(&self) -> DurationMs {
        self.config.gossip_period
    }

    fn membership_view(&self) -> Vec<NodeId> {
        self.membership.view()
    }

    fn leave(&mut self, now: TimeMs) -> Vec<(NodeId, GossipMessage)> {
        let _ = now;
        let targets = self
            .membership
            .sample(&mut self.rng, self.config.fanout, self.id);
        if targets.is_empty() {
            return Vec::new();
        }
        // The farewell flushes the remaining buffer (a leaver must not take
        // undisseminated events with it) and carries the node's own
        // TTL-bounded unsubscription instead of the usual digest;
        // receivers drop the leaver from their views and keep propagating
        // the removal until the rumor's TTL runs out.
        let events = self.events.snapshot_shared();
        let farewell = self.membership.make_leave_digest();
        targets
            .into_iter()
            .map(|t| {
                (
                    t,
                    GossipMessage {
                        sender: self.id,
                        sample_period: 0,
                        min_buffs: Vec::new(),
                        events: events.clone(),
                        membership: farewell.clone(),
                    },
                )
            })
            .collect()
    }

    fn evict_peer(&mut self, node: NodeId) {
        self.membership.evict(node, &mut self.rng);
    }

    fn mem_breakdown(&self) -> Vec<(&'static str, agb_profile::MemUsage)> {
        use agb_profile::{MemReport, MemUsage};
        let pending_bytes: u64 = self
            .pending
            .iter()
            .map(|p| (p.len() + std::mem::size_of::<Payload>()) as u64)
            .sum();
        let view = self.membership.view_size() as u64;
        vec![
            ("event_buffer", self.events.mem_usage()),
            ("event_ids", self.ids.mem_usage()),
            (
                "pending_offers",
                MemUsage::new(pending_bytes, self.pending.len() as u64),
            ),
            (
                "membership_view",
                MemUsage::new(view * std::mem::size_of::<NodeId>() as u64, view),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::PurgeReason;
    use agb_membership::FullView;
    use rand::SeedableRng;

    fn node(id: u32, config: GossipConfig) -> LpbcastNode<FullView> {
        LpbcastNode::new(
            NodeId::new(id),
            config,
            FullView::new(8),
            DetRng::seed_from_u64(u64::from(id) + 100),
        )
    }

    fn default_node(id: u32) -> LpbcastNode<FullView> {
        node(id, GossipConfig::default())
    }

    fn msg_with(events: Vec<Event>) -> GossipMessage {
        GossipMessage {
            sender: NodeId::new(7),
            sample_period: 0,
            min_buffs: vec![],
            events: events.into(),
            membership: Default::default(),
        }
    }

    #[test]
    fn broadcast_self_delivers_and_buffers() {
        let mut n = default_node(0);
        let id = n.broadcast_now(Payload::from_static(b"x"), TimeMs::ZERO);
        assert_eq!(id, EventId::new(NodeId::new(0), 0));
        assert_eq!(n.buffer_len(), 1);
        let events = n.drain_events();
        assert!(matches!(events[0], ProtocolEvent::Admitted { .. }));
        assert!(matches!(
            &events[1],
            ProtocolEvent::Delivered { event, from, .. }
                if event.id() == id && *from == NodeId::new(0)
        ));
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut n = default_node(0);
        let a = n.broadcast_now(Payload::new(), TimeMs::ZERO);
        let b = n.broadcast_now(Payload::new(), TimeMs::ZERO);
        assert_eq!(a.seq() + 1, b.seq());
    }

    #[test]
    fn round_emits_fanout_messages_with_full_buffer() {
        let mut n = default_node(0);
        n.broadcast_now(Payload::new(), TimeMs::ZERO);
        n.broadcast_now(Payload::new(), TimeMs::ZERO);
        let out = n.on_round(TimeMs::from_secs(1));
        assert_eq!(out.len(), 4);
        for (target, msg) in &out {
            assert_ne!(*target, NodeId::new(0));
            assert_eq!(msg.events.len(), 2);
            assert_eq!(msg.sender, NodeId::new(0));
            assert!(!msg.is_adaptive());
        }
    }

    #[test]
    fn ages_increment_each_round() {
        let mut n = default_node(0);
        n.broadcast_now(Payload::new(), TimeMs::ZERO);
        n.on_round(TimeMs::from_secs(1));
        n.on_round(TimeMs::from_secs(2));
        let out = n.on_round(TimeMs::from_secs(3));
        assert_eq!(out[0].1.events[0].age(), 3);
    }

    #[test]
    fn receive_delivers_new_suppresses_duplicates() {
        let mut n = default_node(1);
        let e = Event::with_age(EventId::new(NodeId::new(2), 0), 2, Payload::new());
        let report = n.receive(NodeId::new(2), msg_with(vec![e.clone()]), TimeMs::ZERO);
        assert_eq!(report.newly_stored, 1);
        assert_eq!(report.duplicates, 0);
        // Same event again: duplicate, age merged.
        let mut older = e.clone();
        older.merge_age(5);
        let report = n.receive(NodeId::new(3), msg_with(vec![older]), TimeMs::ZERO);
        assert_eq!(report.duplicates, 1);
        let delivered: Vec<_> = n
            .drain_events()
            .into_iter()
            .filter(|ev| matches!(ev, ProtocolEvent::Delivered { .. }))
            .collect();
        assert_eq!(delivered.len(), 1, "duplicate must not be re-delivered");
        // Age was max-merged into the buffered copy.
        assert_eq!(n.buffer().snapshot()[0].age(), 5);
    }

    #[test]
    fn age_cap_garbage_collects() {
        let mut cfg = GossipConfig::default();
        cfg.age_cap = 2;
        let mut n = node(0, cfg);
        n.broadcast_now(Payload::new(), TimeMs::ZERO);
        n.on_round(TimeMs::from_secs(1)); // age 1
        n.on_round(TimeMs::from_secs(2)); // age 2
        assert_eq!(n.buffer_len(), 1);
        n.on_round(TimeMs::from_secs(3)); // age 3 > cap: purged
        assert_eq!(n.buffer_len(), 0);
        let drops: Vec<_> = n
            .drain_events()
            .into_iter()
            .filter_map(|ev| match ev {
                ProtocolEvent::Dropped { reason, age, .. } => Some((reason, age)),
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![(PurgeReason::AgeCap, 3)]);
    }

    #[test]
    fn overflow_purges_and_reports() {
        let mut cfg = GossipConfig::default();
        cfg.max_events = 2;
        cfg.max_event_ids = 100;
        let mut n = node(0, cfg);
        // Two old events, then a fresh one overflows the buffer.
        n.receive(
            NodeId::new(2),
            msg_with(vec![
                Event::with_age(EventId::new(NodeId::new(2), 0), 6, Payload::new()),
                Event::with_age(EventId::new(NodeId::new(2), 1), 3, Payload::new()),
            ]),
            TimeMs::ZERO,
        );
        let report = n.receive(
            NodeId::new(3),
            msg_with(vec![Event::with_age(
                EventId::new(NodeId::new(3), 0),
                0,
                Payload::new(),
            )]),
            TimeMs::ZERO,
        );
        assert_eq!(report.purged.len(), 1);
        assert_eq!(report.purged[0].age, 6);
        assert_eq!(n.take_removals().len(), 1);
    }

    #[test]
    fn static_rate_throttles_offers() {
        let mut cfg = GossipConfig::default();
        cfg.static_rate = Some(1.0); // 1 msg/s, bucket depth 2
        let mut n = node(0, cfg);
        // Bucket starts full (2 tokens).
        assert!(matches!(
            n.offer(Payload::new(), TimeMs::ZERO),
            OfferOutcome::Admitted(_)
        ));
        assert!(matches!(
            n.offer(Payload::new(), TimeMs::ZERO),
            OfferOutcome::Admitted(_)
        ));
        assert_eq!(n.offer(Payload::new(), TimeMs::ZERO), OfferOutcome::Queued);
        assert_eq!(n.pending_len(), 1);
        // One second later the round admits the queued message.
        n.on_round(TimeMs::from_secs(1));
        assert_eq!(n.pending_len(), 0);
        let admitted = n
            .drain_events()
            .into_iter()
            .filter(|e| matches!(e, ProtocolEvent::Admitted { .. }))
            .count();
        assert_eq!(admitted, 3);
    }

    #[test]
    fn unthrottled_offer_admits_immediately() {
        let mut n = default_node(0);
        for _ in 0..100 {
            assert!(matches!(
                n.offer(Payload::new(), TimeMs::ZERO),
                OfferOutcome::Admitted(_)
            ));
        }
        assert_eq!(n.pending_len(), 0);
        assert_eq!(n.allowed_rate(), None);
    }

    #[test]
    fn ordering_preserved_behind_throttle() {
        let mut cfg = GossipConfig::default();
        cfg.static_rate = Some(2.0);
        let mut n = node(0, cfg);
        let mut expected = Vec::new();
        for i in 0..10u8 {
            let payload = Payload::copy_from_slice(&[i]);
            expected.push(payload.clone());
            n.offer(payload, TimeMs::ZERO);
        }
        for s in 1..10 {
            n.on_round(TimeMs::from_secs(s));
        }
        let admitted: Vec<Payload> = n
            .drain_events()
            .into_iter()
            .filter_map(|e| match e {
                ProtocolEvent::Delivered { event, .. } => Some(event.payload().clone()),
                _ => None,
            })
            .collect();
        assert_eq!(admitted, expected);
    }

    #[test]
    fn set_buffer_capacity_purges_excess() {
        let mut n = default_node(0);
        for _ in 0..10 {
            n.broadcast_now(Payload::new(), TimeMs::ZERO);
        }
        n.set_buffer_capacity(4, TimeMs::from_secs(1));
        assert_eq!(n.buffer_capacity(), 4);
        assert_eq!(n.buffer_len(), 4);
        let drops = n
            .drain_events()
            .into_iter()
            .filter(|e| matches!(e, ProtocolEvent::Dropped { .. }))
            .count();
        assert_eq!(drops, 6);
    }

    #[test]
    fn emit_samples_distinct_targets() {
        let mut n = default_node(0);
        n.broadcast_now(Payload::new(), TimeMs::ZERO);
        for _ in 0..20 {
            let out = n.on_round(TimeMs::from_secs(1));
            let mut targets: Vec<NodeId> = out.iter().map(|(t, _)| *t).collect();
            targets.sort();
            targets.dedup();
            assert_eq!(targets.len(), 4);
        }
    }

    #[test]
    fn leave_flushes_buffer_and_carries_own_unsubscription() {
        use agb_membership::{PartialView, PartialViewConfig};
        let mut rng = DetRng::seed_from_u64(9);
        let view = PartialView::with_initial_peers(
            NodeId::new(0),
            PartialViewConfig::default(),
            (1..=6u32).map(NodeId::new),
            &mut rng,
        );
        let mut n = LpbcastNode::new(
            NodeId::new(0),
            GossipConfig::default(),
            view,
            DetRng::seed_from_u64(1),
        );
        n.broadcast_now(Payload::from_static(b"x"), TimeMs::ZERO);
        let out = GossipProtocol::leave(&mut n, TimeMs::from_secs(1));
        assert_eq!(out.len(), 4, "farewell goes to F peers");
        for (_, msg) in &out {
            assert_eq!(msg.events.len(), 1, "buffer flushed into farewell");
            assert_eq!(msg.membership.unsubs.len(), 1);
            assert_eq!(msg.membership.unsubs[0].node, NodeId::new(0));
            assert!(msg.membership.unsubs[0].ttl > 0);
            assert!(msg.membership.subs.is_empty());
        }
    }

    #[test]
    fn evict_peer_removes_from_partial_view() {
        use agb_membership::{PartialView, PartialViewConfig};
        let mut rng = DetRng::seed_from_u64(9);
        let view = PartialView::with_initial_peers(
            NodeId::new(0),
            PartialViewConfig::default(),
            [NodeId::new(1), NodeId::new(2)],
            &mut rng,
        );
        let mut n = LpbcastNode::new(
            NodeId::new(0),
            GossipConfig::default(),
            view,
            DetRng::seed_from_u64(1),
        );
        assert!(GossipProtocol::membership_view(&n).contains(&NodeId::new(2)));
        GossipProtocol::evict_peer(&mut n, NodeId::new(2));
        assert!(!GossipProtocol::membership_view(&n).contains(&NodeId::new(2)));
        // Full views are static: eviction is a no-op there.
        let mut full = default_node(0);
        GossipProtocol::evict_peer(&mut full, NodeId::new(2));
        assert!(GossipProtocol::membership_view(&full).contains(&NodeId::new(2)));
    }

    #[test]
    fn gossip_period_accessor() {
        let n = default_node(0);
        assert_eq!(n.gossip_period(), DurationMs::from_secs(1));
        assert_eq!(n.node_id(), NodeId::new(0));
        assert_eq!(n.buffer_capacity(), 90);
    }
}
