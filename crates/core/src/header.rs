//! The gossip message exchanged between nodes.

use agb_membership::MembershipDigest;
use agb_types::NodeId;

use crate::event::Event;
use crate::minbuff::BuffAd;

/// One gossip message: the sender's buffered events plus the small control
/// header that the adaptive mechanism piggybacks on every data message
/// (Figure 5(a): the sample period `s` and the sender's current-period
/// minimum-buffer estimate).
///
/// The mechanism deliberately adds **no extra messages** — only these header
/// fields — which is what preserves gossip's scalability.
///
/// # Example
///
/// ```
/// use agb_core::{BuffAd, Event, GossipMessage};
/// use agb_types::{EventId, NodeId, Payload};
///
/// let msg = GossipMessage {
///     sender: NodeId::new(3),
///     sample_period: 7,
///     min_buffs: vec![BuffAd { node: NodeId::new(9), capacity: 45 }],
///     events: vec![Event::new(EventId::new(NodeId::new(3), 0), Payload::new())],
///     membership: Default::default(),
/// };
/// assert_eq!(msg.min_buff(), Some(45));
/// assert!(msg.wire_size() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GossipMessage {
    /// The gossiping node.
    pub sender: NodeId,
    /// The sender's current sample period index `s` (Figure 5(a)).
    /// Zero when the sender runs the non-adaptive baseline.
    pub sample_period: u64,
    /// The sender's estimate of the `m` smallest buffer capacities in the
    /// group for period `s`, ascending. Baseline lpbcast sends an empty
    /// vector; the paper's mechanism sends one entry (`minBuff_s`); the §6
    /// extension sends `m > 1`.
    pub min_buffs: Vec<BuffAd>,
    /// The sender's buffered events.
    pub events: Vec<Event>,
    /// Piggybacked membership updates (lpbcast subscriptions).
    pub membership: MembershipDigest,
}

impl GossipMessage {
    /// Approximate wire size in bytes (header + events + membership ids).
    pub fn wire_size(&self) -> usize {
        let header = 4 /* sender */ + 8 /* period */ + 2 + 8 * self.min_buffs.len();
        let events: usize = self.events.iter().map(Event::wire_size).sum();
        let membership = 4 * self.membership.len();
        header + events + membership + 4 /* counts */
    }

    /// The sender's single-value min-buffer estimate (the smallest entry),
    /// if present.
    pub fn min_buff(&self) -> Option<u32> {
        self.min_buffs.first().map(|a| a.capacity)
    }

    /// Whether this message carries adaptive control information.
    pub fn is_adaptive(&self) -> bool {
        !self.min_buffs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_types::{EventId, Payload};

    fn base() -> GossipMessage {
        GossipMessage {
            sender: NodeId::new(0),
            sample_period: 0,
            min_buffs: vec![],
            events: vec![],
            membership: MembershipDigest::default(),
        }
    }

    #[test]
    fn wire_size_grows_with_events() {
        let empty = base();
        let mut one = base();
        one.events
            .push(Event::new(EventId::new(NodeId::new(0), 0), Payload::new()));
        assert!(one.wire_size() > empty.wire_size());
    }

    #[test]
    fn min_buff_accessor_and_adaptive_flag() {
        let mut msg = base();
        assert_eq!(msg.min_buff(), None);
        assert!(!msg.is_adaptive());
        msg.min_buffs = vec![
            BuffAd {
                node: NodeId::new(4),
                capacity: 45,
            },
            BuffAd {
                node: NodeId::new(5),
                capacity: 60,
            },
        ];
        assert_eq!(msg.min_buff(), Some(45));
        assert!(msg.is_adaptive());
    }
}
