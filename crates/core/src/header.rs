//! The gossip message exchanged between nodes, and the framed wire
//! vocabulary of the pull-based recovery layer (`agb-recovery`).

use agb_membership::MembershipDigest;
use agb_types::{EventId, NodeId};

use crate::event::{Event, EventList};
use crate::minbuff::BuffAd;

/// One gossip message: the sender's buffered events plus the small control
/// header that the adaptive mechanism piggybacks on every data message
/// (Figure 5(a): the sample period `s` and the sender's current-period
/// minimum-buffer estimate).
///
/// The mechanism deliberately adds **no extra messages** — only these header
/// fields — which is what preserves gossip's scalability.
///
/// # Example
///
/// ```
/// use agb_core::{BuffAd, Event, GossipMessage};
/// use agb_types::{EventId, NodeId, Payload};
///
/// let msg = GossipMessage {
///     sender: NodeId::new(3),
///     sample_period: 7,
///     min_buffs: vec![BuffAd { node: NodeId::new(9), capacity: 45 }],
///     events: vec![Event::new(EventId::new(NodeId::new(3), 0), Payload::new())].into(),
///     membership: Default::default(),
/// };
/// assert_eq!(msg.min_buff(), Some(45));
/// assert!(msg.wire_size() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GossipMessage {
    /// The gossiping node.
    pub sender: NodeId,
    /// The sender's current sample period index `s` (Figure 5(a)).
    /// Zero when the sender runs the non-adaptive baseline.
    pub sample_period: u64,
    /// The sender's estimate of the `m` smallest buffer capacities in the
    /// group for period `s`, ascending. Baseline lpbcast sends an empty
    /// vector; the paper's mechanism sends one entry (`minBuff_s`); the §6
    /// extension sends `m > 1`.
    pub min_buffs: Vec<BuffAd>,
    /// The sender's buffered events — a shared snapshot: the same
    /// [`EventList`] backs every copy of this round's gossip to all `F`
    /// targets.
    pub events: EventList,
    /// Piggybacked membership updates (lpbcast subscriptions).
    pub membership: MembershipDigest,
}

impl GossipMessage {
    /// Approximate wire size in bytes (header + events + membership ids).
    pub fn wire_size(&self) -> usize {
        let header = 4 /* sender */ + 8 /* period */ + 2 + 8 * self.min_buffs.len();
        let events: usize = self.events.iter().map(Event::wire_size).sum();
        let membership = 4 * self.membership.len();
        header + events + membership + 4 /* counts */
    }

    /// The sender's single-value min-buffer estimate (the smallest entry),
    /// if present.
    pub fn min_buff(&self) -> Option<u32> {
        self.min_buffs.first().map(|a| a.capacity)
    }

    /// Whether this message carries adaptive control information.
    pub fn is_adaptive(&self) -> bool {
        !self.min_buffs.is_empty()
    }
}

/// Compact advertisement of recently-seen event identifiers, piggybacked
/// on gossip data messages by the recovery layer (`agb-recovery`).
///
/// Ids are far cheaper than events (16 bytes each), so a node can keep
/// advertising an event long after purging it from its gossip buffer —
/// which is exactly the window in which lpbcast loses atomicity and a
/// pull-based repair can win it back.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IHaveDigest {
    /// Recently-seen event ids, most recent last.
    pub ids: Vec<EventId>,
}

impl IHaveDigest {
    /// Approximate wire size in bytes (count + 12 bytes per id).
    pub fn wire_size(&self) -> usize {
        2 + 12 * self.ids.len()
    }
}

/// Pull request for events the sender detected as missing after seeing
/// them advertised in an [`IHaveDigest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraftRequest {
    /// The requesting node.
    pub sender: NodeId,
    /// The missing event ids.
    pub ids: Vec<EventId>,
}

impl GraftRequest {
    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        4 + 2 + 12 * self.ids.len()
    }
}

/// Reply to a [`GraftRequest`], serving events from the responder's
/// bounded retransmission cache.
#[derive(Debug, Clone, PartialEq)]
pub struct Retransmission {
    /// The responding node.
    pub sender: NodeId,
    /// The recovered events (requested ids the responder still holds).
    pub events: Vec<Event>,
}

impl Retransmission {
    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        let events: usize = self.events.iter().map(Event::wire_size).sum();
        4 + 4 + events
    }
}

/// One frame on the wire when the recovery layer is active.
///
/// The recovery mechanism adds exactly one piggybacked digest to each
/// data message and two *pull* frame kinds; harnesses that run without
/// recovery only ever see [`GossipFrame::Gossip`] with `ihave: None`.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipFrame {
    /// A regular gossip data message, with an optional piggybacked
    /// recently-seen digest.
    Gossip {
        /// The base protocol's message.
        msg: GossipMessage,
        /// The recovery layer's piggybacked digest, if active.
        ihave: Option<IHaveDigest>,
    },
    /// A retransmission request for missing events.
    Graft(GraftRequest),
    /// A retransmission serving previously missed events.
    Retransmit(Retransmission),
}

impl GossipFrame {
    /// Wraps a plain gossip message (no recovery digest).
    pub fn plain(msg: GossipMessage) -> Self {
        GossipFrame::Gossip { msg, ihave: None }
    }

    /// An empty gossip frame used as an explicit heartbeat: carries no
    /// events, only the sender identity — enough for a receiver's
    /// failure detector to record the arrival while the normal receive
    /// path treats it as a no-op gossip.
    pub fn heartbeat(sender: NodeId) -> Self {
        GossipFrame::plain(GossipMessage {
            sender,
            sample_period: 0,
            min_buffs: Vec::new(),
            events: Default::default(),
            membership: Default::default(),
        })
    }

    /// The node that emitted this frame.
    pub fn sender(&self) -> NodeId {
        match self {
            GossipFrame::Gossip { msg, .. } => msg.sender,
            GossipFrame::Graft(g) => g.sender,
            GossipFrame::Retransmit(r) => r.sender,
        }
    }

    /// Whether this frame belongs to the recovery control plane (rather
    /// than regular gossip data traffic).
    pub fn is_recovery_control(&self) -> bool {
        matches!(self, GossipFrame::Graft(_) | GossipFrame::Retransmit(_))
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        1 + match self {
            GossipFrame::Gossip { msg, ihave } => {
                msg.wire_size() + ihave.as_ref().map_or(0, IHaveDigest::wire_size)
            }
            GossipFrame::Graft(g) => g.wire_size(),
            GossipFrame::Retransmit(r) => r.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_types::{EventId, Payload};

    fn base() -> GossipMessage {
        GossipMessage {
            sender: NodeId::new(0),
            sample_period: 0,
            min_buffs: vec![],
            events: Default::default(),
            membership: MembershipDigest::default(),
        }
    }

    #[test]
    fn wire_size_grows_with_events() {
        let empty = base();
        let mut one = base();
        one.events = vec![Event::new(EventId::new(NodeId::new(0), 0), Payload::new())].into();
        assert!(one.wire_size() > empty.wire_size());
    }

    #[test]
    fn min_buff_accessor_and_adaptive_flag() {
        let mut msg = base();
        assert_eq!(msg.min_buff(), None);
        assert!(!msg.is_adaptive());
        msg.min_buffs = vec![
            BuffAd {
                node: NodeId::new(4),
                capacity: 45,
            },
            BuffAd {
                node: NodeId::new(5),
                capacity: 60,
            },
        ];
        assert_eq!(msg.min_buff(), Some(45));
        assert!(msg.is_adaptive());
    }

    #[test]
    fn frame_sender_and_kind() {
        let gossip = GossipFrame::plain(base());
        assert_eq!(gossip.sender(), NodeId::new(0));
        assert!(!gossip.is_recovery_control());

        let graft = GossipFrame::Graft(GraftRequest {
            sender: NodeId::new(4),
            ids: vec![EventId::new(NodeId::new(1), 9)],
        });
        assert_eq!(graft.sender(), NodeId::new(4));
        assert!(graft.is_recovery_control());

        let retransmit = GossipFrame::Retransmit(Retransmission {
            sender: NodeId::new(5),
            events: vec![],
        });
        assert_eq!(retransmit.sender(), NodeId::new(5));
        assert!(retransmit.is_recovery_control());
    }

    #[test]
    fn frame_wire_sizes_grow_with_content() {
        let empty = GossipFrame::plain(base());
        let with_digest = GossipFrame::Gossip {
            msg: base(),
            ihave: Some(IHaveDigest {
                ids: vec![EventId::new(NodeId::new(0), 0); 8],
            }),
        };
        assert!(with_digest.wire_size() > empty.wire_size());

        let small = GraftRequest {
            sender: NodeId::new(0),
            ids: vec![],
        };
        let big = GraftRequest {
            sender: NodeId::new(0),
            ids: vec![EventId::new(NodeId::new(0), 0); 4],
        };
        assert!(big.wire_size() > small.wire_size());
    }
}
