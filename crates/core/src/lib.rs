//! Gossip-based broadcast with decentralized rate adaptation.
//!
//! This crate reproduces the protocol contribution of *Adaptive Gossip-Based
//! Broadcast* (Rodrigues, Handurukande, Pereira, Guerraoui, Kermarrec — IEEE
//! DSN 2003):
//!
//! * [`LpbcastNode`] — the baseline probabilistic broadcast of Figure 1
//!   (buffer, gossip to `F` random peers every `T` ms, age-based garbage
//!   collection), with the optional *static* token-bucket throttle of
//!   Figure 3;
//! * [`AdaptiveNode`] — the paper's contribution (Figure 5): the same
//!   algorithm plus a distributed minimum-buffer estimator, a local
//!   drop-age congestion estimator, and a randomized
//!   multiplicative-increase/decrease rate controller, all piggybacked on
//!   normal gossip traffic with **zero additional messages**;
//! * the building blocks ([`EventBuffer`], [`TokenBucket`],
//!   [`MinBuffEstimator`], [`CongestionEstimator`], [`RateController`]) as
//!   public, individually testable components, so the mechanism can be
//!   grafted onto *other* gossip algorithms, as §5 of the paper suggests.
//!
//! Both protocols are **sans-IO state machines** behind the
//! [`GossipProtocol`] trait: the deterministic simulator (`agb-sim` +
//! `agb-workload`) and the threaded socket runtime (`agb-runtime`) drive
//! exactly the same code.
//!
//! # Quickstart
//!
//! ```
//! use agb_core::{AdaptationConfig, AdaptiveNode, GossipConfig, GossipProtocol, ProtocolEvent};
//! use agb_membership::FullView;
//! use agb_types::{DetRng, NodeId, Payload, TimeMs};
//! use rand::SeedableRng;
//!
//! // Two adaptive nodes in a 2-node group, wired by hand.
//! let mk = |i: u32| AdaptiveNode::new(
//!     NodeId::new(i),
//!     GossipConfig::default(),
//!     AdaptationConfig::default(),
//!     FullView::new(2),
//!     DetRng::seed_from_u64(i.into()),
//! );
//! let (mut a, mut b) = (mk(0), mk(1));
//!
//! a.offer(Payload::from_static(b"hello"), TimeMs::ZERO);
//! for (to, msg) in a.on_round(TimeMs::from_secs(1)) {
//!     assert_eq!(to, NodeId::new(1));
//!     b.on_receive(NodeId::new(0), msg, TimeMs::from_secs(1));
//! }
//! let delivered = b.drain_events().into_iter().any(|e| matches!(
//!     e,
//!     ProtocolEvent::Delivered { event, .. } if event.payload().as_ref() == b"hello"
//! ));
//! assert!(delivered);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod buffer;
mod config;
mod congestion;
mod event;
mod header;
mod ids;
mod lpbcast;
mod minbuff;
mod rate;
mod token_bucket;
mod traits;

pub use adaptive::AdaptiveNode;
pub use buffer::{EventBuffer, PurgeReason, PurgedEvent};
pub use config::{AdaptationConfig, CongestionConfig, GossipConfig, MinBuffConfig, RateConfig};
pub use congestion::CongestionEstimator;
pub use event::{Event, EventList};
pub use header::{GossipFrame, GossipMessage, GraftRequest, IHaveDigest, Retransmission};
pub use ids::EventIdBuffer;
pub use lpbcast::{LpbcastNode, ReceiveReport};
pub use minbuff::{BuffAd, KSmallestSet, MinBuffEstimator};
pub use rate::{RateChange, RateChangeReason, RateController};
pub use token_bucket::TokenBucket;
pub use traits::{FrameProtocol, GossipProtocol, OfferOutcome, ProtocolEvent};
