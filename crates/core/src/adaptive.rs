//! The adaptive gossip broadcast node — the composition of Figure 5.
//!
//! [`AdaptiveNode`] wraps the baseline [`LpbcastNode`] and adds the three
//! mechanisms of the paper:
//!
//! * **Figure 5(a)** — a [`MinBuffEstimator`] that discovers the smallest
//!   buffer in the group by piggybacking `(s, minBuff_s)` on every outgoing
//!   gossip message and folding in the values received;
//! * **Figure 5(b)** — a [`CongestionEstimator`] that, after every received
//!   gossip message, accounts the ages of events a `minBuff`-sized buffer
//!   would have dropped, maintaining the `avgAge` congestion signal;
//! * **Figure 5(c)** — a [`RateController`] driving a [`TokenBucket`] that
//!   throttles locally offered broadcasts, with `avgTokens` measuring how
//!   much of the allowance the application actually uses.
//!
//! The node stores events using its **full local buffer** — only the
//! congestion *accounting* pretends the buffer were `minBuff` — so nodes
//! with spare memory still contribute their redundancy to the group
//! (§3.2, validated by Figure 9's heterogeneous runs).

use std::collections::VecDeque;

use agb_membership::GossipMembership;
use agb_types::{DetRng, DurationMs, Ewma, NodeId, Payload, TimeMs};

use crate::config::{AdaptationConfig, GossipConfig};
use crate::congestion::CongestionEstimator;
use crate::header::GossipMessage;
use crate::lpbcast::LpbcastNode;
use crate::minbuff::MinBuffEstimator;
use crate::rate::RateController;
use crate::token_bucket::TokenBucket;
use crate::traits::{GossipProtocol, OfferOutcome, ProtocolEvent};

/// The adaptive gossip broadcast state machine (lpbcast + Figure 5).
///
/// # Example
///
/// ```
/// use agb_core::{AdaptationConfig, AdaptiveNode, GossipConfig, GossipProtocol};
/// use agb_membership::FullView;
/// use agb_types::{DetRng, NodeId, Payload, TimeMs};
/// use rand::SeedableRng;
///
/// let mut node = AdaptiveNode::new(
///     NodeId::new(0),
///     GossipConfig::default(),
///     AdaptationConfig::default(),
///     FullView::new(10),
///     DetRng::seed_from_u64(1),
/// );
/// node.offer(Payload::from_static(b"hi"), TimeMs::ZERO);
/// let out = node.on_round(TimeMs::from_secs(1));
/// // Outgoing messages carry the adaptive header.
/// assert!(out.iter().all(|(_, m)| m.is_adaptive()));
/// ```
#[derive(Debug)]
pub struct AdaptiveNode<S> {
    inner: LpbcastNode<S>,
    config: AdaptationConfig,
    min_buff: MinBuffEstimator,
    congestion: CongestionEstimator,
    controller: RateController,
    bucket: TokenBucket,
    avg_tokens: Ewma,
    pending: VecDeque<Payload>,
    rng: DetRng,
    out_events: Vec<ProtocolEvent>,
}

impl<S: GossipMembership> AdaptiveNode<S> {
    /// Creates an adaptive node.
    ///
    /// # Panics
    ///
    /// Panics if either configuration fails validation; validate
    /// untrusted configs with [`GossipConfig::validate`] /
    /// [`AdaptationConfig::validate`] first.
    pub fn new(
        id: NodeId,
        gossip: GossipConfig,
        adaptation: AdaptationConfig,
        membership: S,
        mut rng: DetRng,
    ) -> Self {
        adaptation
            .validate()
            .unwrap_or_else(|e| panic!("invalid AdaptationConfig: {e}"));
        let mut gossip = gossip;
        // The adaptive throttle replaces any static rate limit.
        gossip.static_rate = None;
        let capacity = gossip.max_events as u32;
        let inner_seed: u64 = rand::RngExt::random(&mut rng);
        let inner_rng = <DetRng as rand::SeedableRng>::seed_from_u64(inner_seed);
        let inner = LpbcastNode::new(id, gossip, membership, inner_rng);
        let min_buff = MinBuffEstimator::new(id, capacity, adaptation.min_buff);
        let congestion = CongestionEstimator::new(adaptation.congestion);
        let controller = RateController::new(adaptation.initial_rate, adaptation.rate);
        let bucket = TokenBucket::new(controller.rate(), adaptation.bucket_capacity, TimeMs::ZERO);
        let avg_tokens = Ewma::new(adaptation.token_alpha, 0.0);
        AdaptiveNode {
            inner,
            config: adaptation,
            min_buff,
            congestion,
            controller,
            bucket,
            avg_tokens,
            pending: VecDeque::new(),
            rng,
            out_events: Vec::new(),
        }
    }

    /// The adaptation configuration in force.
    pub fn adaptation_config(&self) -> &AdaptationConfig {
        &self.config
    }

    /// The wrapped baseline node.
    pub fn inner(&self) -> &LpbcastNode<S> {
        &self.inner
    }

    /// Current congestion signal `avgAge`.
    pub fn avg_age(&self) -> f64 {
        self.congestion.avg_age()
    }

    /// Current smoothed token level `avgTokens`.
    pub fn avg_tokens(&self) -> f64 {
        self.avg_tokens.value()
    }

    /// Current group-wide minimum-buffer estimate.
    pub fn min_buff_estimate(&self) -> u32 {
        self.min_buff.estimate()
    }

    /// Current sample period index `s`.
    pub fn sample_period(&self) -> u64 {
        self.min_buff.current_period()
    }

    /// Routes real buffer removals into the congestion estimator; returns
    /// whether any of them was an overflow eviction.
    fn sync_removals(&mut self) -> bool {
        let mut overflow = false;
        for purged in self.inner.take_removals() {
            overflow |= purged.reason == crate::buffer::PurgeReason::Overflow;
            self.congestion.on_purged(&purged);
        }
        overflow
    }

    fn admit_pending(&mut self, now: TimeMs) {
        while !self.pending.is_empty() && self.bucket.try_acquire(now) {
            let payload = self.pending.pop_front().expect("non-empty");
            self.inner.broadcast_now(payload, now);
            self.sync_removals();
        }
    }
}

impl<S: GossipMembership> GossipProtocol for AdaptiveNode<S> {
    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn offer(&mut self, payload: Payload, now: TimeMs) -> OfferOutcome {
        // Tokens accrue continuously: drain older queued messages first so
        // the queue empties at the allowed rate, not once per round.
        self.admit_pending(now);
        if self.pending.is_empty() && self.bucket.try_acquire(now) {
            let id = self.inner.broadcast_now(payload, now);
            self.sync_removals();
            OfferOutcome::Admitted(id)
        } else {
            self.pending.push_back(payload);
            OfferOutcome::Queued
        }
    }

    fn on_round(&mut self, now: TimeMs) -> Vec<(NodeId, GossipMessage)> {
        // 1. Sample-period bookkeeping (Figure 5(a), local clock).
        if self.min_buff.on_tick(now) {
            self.out_events.push(ProtocolEvent::PeriodRollover {
                period: self.min_buff.current_period(),
                estimate: self.min_buff.estimate(),
                at: now,
            });
        }

        // 2. Admit queued broadcasts as tokens allow (Figure 3).
        self.admit_pending(now);

        // 3. Sample allowance usage after admissions (Figure 5(c)'s
        //    avgTokens: full bucket = unused allowance).
        let tokens = self.bucket.tokens(now);
        self.avg_tokens.update(tokens);

        // 4. Adjust the allowed rate (Figure 5(c)).
        if let Some(change) = self.controller.adjust(
            self.congestion.avg_age(),
            self.avg_tokens.value(),
            self.bucket.max_tokens(),
            &mut self.rng,
        ) {
            self.bucket.set_rate(change.new, now);
            self.out_events.push(ProtocolEvent::RateChanged {
                old: change.old,
                new: change.new,
                reason: change.reason,
                at: now,
            });
        }

        // 5. Base-protocol round (ages, GC, emission), then stamp the
        //    adaptive header on every outgoing message.
        let mut out = self.inner.run_round(now);
        self.sync_removals();
        let (period, ads) = self.min_buff.advertisement();
        for (_, msg) in &mut out {
            msg.sample_period = period;
            msg.min_buffs = ads.clone();
        }
        out
    }

    fn on_receive(&mut self, from: NodeId, msg: GossipMessage, now: TimeMs) {
        // Figure 5(a): fold the sender's advertisement into the period
        // estimate (adopting a later period if the sender is ahead).
        if msg.is_adaptive() {
            let rolled = self.min_buff.on_receive(msg.sample_period, &msg.min_buffs);
            if rolled {
                self.out_events.push(ProtocolEvent::PeriodRollover {
                    period: self.min_buff.current_period(),
                    estimate: self.min_buff.estimate(),
                    at: now,
                });
            }
        }
        // Figure 1 receive path.
        self.inner.receive(from, msg, now);
        let overflowed = self.sync_removals();
        // Figure 5(b): would-drop accounting against the minBuff estimate.
        // Real evictions already updated avgAge via sync_removals; they
        // also suppress the no-drop relief for this message.
        self.congestion.scan(
            self.inner.buffer(),
            self.min_buff.estimate() as usize,
            overflowed,
        );
    }

    fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        let mut events = Vec::new();
        self.drain_events_into(&mut events);
        events
    }

    fn drain_events_into(&mut self, out: &mut Vec<ProtocolEvent>) {
        self.inner.drain_events_into(out);
        out.append(&mut self.out_events);
    }

    fn set_buffer_capacity(&mut self, capacity: usize, now: TimeMs) {
        self.inner.set_buffer_capacity(capacity, now);
        self.sync_removals();
        self.min_buff.set_own_capacity(capacity as u32);
    }

    fn buffer_capacity(&self) -> usize {
        self.inner.buffer_capacity()
    }

    fn buffer_len(&self) -> usize {
        self.inner.buffer_len()
    }

    fn allowed_rate(&self) -> Option<f64> {
        Some(self.controller.rate())
    }

    fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn gossip_period(&self) -> DurationMs {
        self.inner.gossip_period()
    }

    fn avg_age(&self) -> Option<f64> {
        Some(self.congestion.avg_age())
    }

    fn avg_tokens(&self) -> Option<f64> {
        Some(self.avg_tokens.value())
    }

    fn min_buff_estimate(&self) -> Option<u32> {
        Some(self.min_buff.estimate())
    }

    fn membership_view(&self) -> Vec<NodeId> {
        self.inner.membership_view()
    }

    fn leave(&mut self, now: TimeMs) -> Vec<(NodeId, GossipMessage)> {
        self.inner.leave(now)
    }

    fn evict_peer(&mut self, node: NodeId) {
        self.inner.evict_peer(node);
    }

    fn mem_breakdown(&self) -> Vec<(&'static str, agb_profile::MemUsage)> {
        // The adaptive layer's own throttle queue reports under the same
        // label as the inner node's; the profiling table merges rows.
        let mut rows = self.inner.mem_breakdown();
        let pending_bytes: u64 = self
            .pending
            .iter()
            .map(|p| (p.len() + std::mem::size_of::<Payload>()) as u64)
            .sum();
        rows.push((
            "pending_offers",
            agb_profile::MemUsage::new(pending_bytes, self.pending.len() as u64),
        ));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CongestionConfig, MinBuffConfig, RateConfig};
    use crate::event::Event;
    use crate::minbuff::BuffAd;
    use agb_membership::FullView;
    use agb_types::EventId;
    use rand::SeedableRng;

    fn adaptive(id: u32, gossip: GossipConfig, adapt: AdaptationConfig) -> AdaptiveNode<FullView> {
        AdaptiveNode::new(
            NodeId::new(id),
            gossip,
            adapt,
            FullView::new(8),
            DetRng::seed_from_u64(u64::from(id) + 7),
        )
    }

    fn default_adaptive(id: u32) -> AdaptiveNode<FullView> {
        adaptive(id, GossipConfig::default(), AdaptationConfig::default())
    }

    fn remote_msg(period: u64, min: u32, events: Vec<Event>) -> GossipMessage {
        GossipMessage {
            sender: NodeId::new(7),
            sample_period: period,
            min_buffs: vec![BuffAd {
                node: NodeId::new(7),
                capacity: min,
            }],
            events: events.into(),
            membership: Default::default(),
        }
    }

    #[test]
    fn outgoing_messages_carry_adaptive_header() {
        let mut n = default_adaptive(0);
        n.offer(Payload::new(), TimeMs::ZERO);
        let out = n.on_round(TimeMs::from_secs(1));
        assert!(!out.is_empty());
        for (_, msg) in &out {
            assert!(msg.is_adaptive());
            assert_eq!(msg.min_buff(), Some(90));
        }
    }

    #[test]
    fn learns_min_buff_from_peers() {
        let mut n = default_adaptive(0);
        assert_eq!(n.min_buff_estimate(), 90);
        n.on_receive(NodeId::new(7), remote_msg(0, 45, vec![]), TimeMs::ZERO);
        assert_eq!(n.min_buff_estimate(), 45);
        // And re-advertises the learned minimum.
        let out = n.on_round(TimeMs::from_secs(1));
        assert_eq!(out[0].1.min_buff(), Some(45));
    }

    #[test]
    fn offer_admits_until_bucket_empty_then_queues() {
        let mut adapt = AdaptationConfig::default();
        adapt.initial_rate = 1.0;
        adapt.bucket_capacity = 2.0;
        let mut n = adaptive(0, GossipConfig::default(), adapt);
        assert!(matches!(
            n.offer(Payload::new(), TimeMs::ZERO),
            OfferOutcome::Admitted(_)
        ));
        assert!(matches!(
            n.offer(Payload::new(), TimeMs::ZERO),
            OfferOutcome::Admitted(_)
        ));
        assert_eq!(n.offer(Payload::new(), TimeMs::ZERO), OfferOutcome::Queued);
        assert_eq!(n.pending_len(), 1);
        n.on_round(TimeMs::from_secs(1));
        assert_eq!(n.pending_len(), 0);
    }

    #[test]
    fn congestion_decreases_allowed_rate() {
        let mut adapt = AdaptationConfig::default();
        adapt.initial_rate = 10.0;
        adapt.congestion = CongestionConfig {
            alpha: 0.0, // track samples immediately
            initial_age: 10.0,
            no_drop_relief: false,
            relief_age: 10.0,
        };
        adapt.rate = RateConfig {
            low_age: 4.0,
            high_age: 6.0,
            delta_dec: 0.5,
            ..RateConfig::default()
        };
        let mut gossip = GossipConfig::default();
        gossip.max_events = 10;
        let mut n = adaptive(0, gossip, adapt);
        // Keep the bucket busy so "unused allowance" never triggers.
        for _ in 0..50 {
            n.offer(Payload::new(), TimeMs::ZERO);
        }
        //

        // A peer claims minBuff = 2; our buffer holds young events, so the
        // would-drop ages are low -> congestion.
        let events: Vec<Event> = (0..6)
            .map(|s| Event::with_age(EventId::new(NodeId::new(7), s), 1, Payload::new()))
            .collect();
        n.on_receive(NodeId::new(7), remote_msg(0, 2, events), TimeMs::ZERO);
        assert!(n.avg_age() < 4.0);
        let before = n.allowed_rate().unwrap();
        n.on_round(TimeMs::from_secs(1));
        let after = n.allowed_rate().unwrap();
        assert!(after < before, "rate must drop: {before} -> {after}");
        // And the change was reported.
        let changed = n
            .drain_events()
            .iter()
            .any(|e| matches!(e, ProtocolEvent::RateChanged { .. }));
        assert!(changed);
    }

    #[test]
    fn unused_allowance_decays_rate() {
        let mut adapt = AdaptationConfig::default();
        adapt.initial_rate = 50.0;
        // avgAge stays at its (high) initial value: no congestion signal.
        let mut n = adaptive(0, GossipConfig::default(), adapt);
        // Never offer anything; the bucket fills and stays full.
        for s in 1..=30 {
            n.on_round(TimeMs::from_secs(s));
        }
        assert!(
            n.allowed_rate().unwrap() < 50.0,
            "idle sender must not keep its inflated allowance"
        );
    }

    #[test]
    fn headroom_with_busy_sender_increases_rate() {
        let mut adapt = AdaptationConfig::default();
        adapt.initial_rate = 2.0;
        adapt.rate = RateConfig {
            low_age: 4.0,
            high_age: 6.0,
            gamma: 1.0, // deterministic increases
            ..RateConfig::default()
        };
        // avgAge starts at 10 (> H). Keep the sender saturated.
        let mut n = adaptive(0, GossipConfig::default(), adapt);
        let mut now = TimeMs::ZERO;
        let mut last = 2.0;
        for s in 1..=20 {
            for _ in 0..10 {
                n.offer(Payload::new(), now);
            }
            now = TimeMs::from_secs(s);
            n.on_round(now);
            let r = n.allowed_rate().unwrap();
            assert!(r >= last, "rate should be non-decreasing: {last} -> {r}");
            last = r;
        }
        assert!(last > 2.0);
    }

    #[test]
    fn buffer_resize_propagates_to_estimator() {
        let mut n = default_adaptive(0);
        n.set_buffer_capacity(45, TimeMs::ZERO);
        assert_eq!(n.buffer_capacity(), 45);
        assert_eq!(n.min_buff_estimate(), 45);
        let out = n.on_round(TimeMs::from_secs(1));
        assert_eq!(out[0].1.min_buff(), Some(45));
    }

    #[test]
    fn period_rollover_emits_event() {
        let mut n = default_adaptive(0);
        // Default sample period: 6 s.
        n.on_round(TimeMs::from_secs(1));
        let rollovers = n
            .drain_events()
            .iter()
            .filter(|e| matches!(e, ProtocolEvent::PeriodRollover { .. }))
            .count();
        assert_eq!(rollovers, 0);
        n.on_round(TimeMs::from_secs(6));
        let rollovers = n
            .drain_events()
            .iter()
            .filter(|e| matches!(e, ProtocolEvent::PeriodRollover { .. }))
            .count();
        assert_eq!(rollovers, 1);
        assert_eq!(n.sample_period(), 1);
    }

    #[test]
    fn adopts_later_period_from_message() {
        let mut n = default_adaptive(0);
        n.on_receive(NodeId::new(7), remote_msg(5, 60, vec![]), TimeMs::ZERO);
        assert_eq!(n.sample_period(), 5);
        let rolled = n
            .drain_events()
            .iter()
            .any(|e| matches!(e, ProtocolEvent::PeriodRollover { period: 5, .. }));
        assert!(rolled);
    }

    #[test]
    fn stale_min_expires_after_window() {
        let mut adapt = AdaptationConfig::default();
        adapt.min_buff = MinBuffConfig {
            window: 2,
            ..MinBuffConfig::default()
        };
        let mut n = adaptive(0, GossipConfig::default(), adapt);
        n.on_receive(NodeId::new(7), remote_msg(0, 45, vec![]), TimeMs::ZERO);
        assert_eq!(n.min_buff_estimate(), 45);
        // Periods 1 and 2 arrive with no 45-advertisement.
        n.on_receive(NodeId::new(7), remote_msg(1, 90, vec![]), TimeMs::ZERO);
        assert_eq!(n.min_buff_estimate(), 45, "still within window");
        n.on_receive(NodeId::new(7), remote_msg(2, 90, vec![]), TimeMs::ZERO);
        assert_eq!(n.min_buff_estimate(), 90, "stale minimum expired");
    }

    #[test]
    fn baseline_messages_do_not_disturb_estimator() {
        let mut n = default_adaptive(0);
        let baseline = GossipMessage {
            sender: NodeId::new(3),
            sample_period: 0,
            min_buffs: vec![],
            events: Default::default(),
            membership: Default::default(),
        };
        n.on_receive(NodeId::new(3), baseline, TimeMs::ZERO);
        assert_eq!(n.min_buff_estimate(), 90);
    }

    #[test]
    fn drain_merges_inner_and_adaptive_events() {
        let mut n = default_adaptive(0);
        n.offer(Payload::new(), TimeMs::ZERO);
        n.on_round(TimeMs::from_secs(6));
        let events = n.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, ProtocolEvent::Delivered { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, ProtocolEvent::PeriodRollover { .. })));
        assert!(n.drain_events().is_empty());
    }
}
