//! Broadcast events and their ages.

use std::sync::Arc;

use agb_types::{EventId, Payload};

/// A broadcast event as buffered and gossiped by the protocol (Figure 1's
/// `e`): identifier, age, and opaque payload.
///
/// **Age** is the paper's central bookkeeping device: it counts how many
/// gossip rounds a copy of the event has lived through, which tracks how
/// many node-to-node forwarding steps the event has taken and therefore how
/// widely it has been disseminated. Ages are max-merged across duplicate
/// copies, so the age at any node lower-bounds the global dissemination
/// level.
///
/// # Example
///
/// ```
/// use agb_core::Event;
/// use agb_types::{EventId, NodeId, Payload};
///
/// let mut e = Event::new(EventId::new(NodeId::new(1), 0), Payload::from_static(b"tick"));
/// assert_eq!(e.age(), 0);
/// e.increment_age();
/// e.merge_age(5);
/// assert_eq!(e.age(), 5);
/// e.merge_age(2); // lower ages never win
/// assert_eq!(e.age(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    id: EventId,
    age: u32,
    payload: Payload,
}

impl Event {
    /// Creates a fresh event with age zero.
    pub fn new(id: EventId, payload: Payload) -> Self {
        Event {
            id,
            age: 0,
            payload,
        }
    }

    /// Creates an event with an explicit age (used when decoding from the
    /// wire).
    pub fn with_age(id: EventId, age: u32, payload: Payload) -> Self {
        Event { id, age, payload }
    }

    /// The globally unique event identifier.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// Current age in gossip rounds / forwarding hops.
    pub fn age(&self) -> u32 {
        self.age
    }

    /// The opaque application payload.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// Increments the age by one round (Figure 1, "update ages").
    pub fn increment_age(&mut self) {
        self.age = self.age.saturating_add(1);
    }

    /// Max-merges the age of a duplicate copy (Figure 1, receive path).
    pub fn merge_age(&mut self, other_age: u32) {
        self.age = self.age.max(other_age);
    }

    /// Approximate wire size in bytes: id (origin u32 + seq u64) + age (u32)
    /// + payload.
    pub fn wire_size(&self) -> usize {
        4 + 8 + 4 + self.payload.len()
    }
}

/// An immutable, cheaply clonable list of events — the payload of a
/// gossip message.
///
/// lpbcast forwards the *same* buffer snapshot to `F` peers every round;
/// with a plain `Vec<Event>` that meant `F` deep copies per node per
/// round, which profiling showed was the single largest cost at 10k+
/// simulated nodes. `EventList` shares one snapshot allocation across all
/// `F` outgoing messages (and across the in-flight copies in the
/// simulator's event queue); receivers iterate it by reference and clone
/// only the events they actually store.
///
/// # Example
///
/// ```
/// use agb_core::{Event, EventList};
/// use agb_types::{EventId, NodeId, Payload};
///
/// let list: EventList = vec![Event::new(
///     EventId::new(NodeId::new(1), 0),
///     Payload::from_static(b"x"),
/// )]
/// .into();
/// let shared = list.clone(); // no deep copy
/// assert_eq!(shared.len(), 1);
/// assert_eq!(shared[0].id(), list[0].id());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventList(Arc<[Event]>);

impl EventList {
    /// The empty list.
    pub fn new() -> Self {
        EventList(Arc::from(Vec::new()))
    }

    /// The events as a slice.
    pub fn as_slice(&self) -> &[Event] {
        &self.0
    }
}

impl Default for EventList {
    fn default() -> Self {
        EventList::new()
    }
}

impl From<Vec<Event>> for EventList {
    fn from(events: Vec<Event>) -> Self {
        EventList(events.into())
    }
}

impl From<&[Event]> for EventList {
    fn from(events: &[Event]) -> Self {
        EventList(events.into())
    }
}

impl FromIterator<Event> for EventList {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        EventList(iter.into_iter().collect())
    }
}

impl std::ops::Deref for EventList {
    type Target = [Event];

    fn deref(&self) -> &[Event] {
        &self.0
    }
}

impl IntoIterator for EventList {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    /// Iterates owned events (clones out of the shared slice; meant for
    /// tests and cold paths — hot paths iterate by reference).
    fn into_iter(self) -> Self::IntoIter {
        Vec::from(&*self.0).into_iter()
    }
}

impl<'a> IntoIterator for &'a EventList {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl PartialEq<Vec<Event>> for EventList {
    fn eq(&self, other: &Vec<Event>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<EventList> for Vec<Event> {
    fn eq(&self, other: &EventList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_types::NodeId;

    fn id(n: u32, s: u64) -> EventId {
        EventId::new(NodeId::new(n), s)
    }

    #[test]
    fn event_list_shares_storage() {
        let list: EventList = vec![Event::new(id(0, 0), Payload::new())].into();
        let shared = list.clone();
        assert_eq!(list, shared);
        assert!(std::ptr::eq(list.as_slice(), shared.as_slice()));
        assert_eq!(list.len(), 1);
        assert!(!list.is_empty());
        assert!(EventList::default().is_empty());
    }

    #[test]
    fn event_list_compares_with_vec() {
        let events = vec![Event::new(id(0, 1), Payload::new())];
        let list: EventList = events.clone().into();
        assert_eq!(list, events);
        assert_eq!(events, list);
        let collected: EventList = events.iter().cloned().collect();
        assert_eq!(collected, list);
    }

    #[test]
    fn new_event_has_age_zero() {
        let e = Event::new(id(0, 1), Payload::new());
        assert_eq!(e.age(), 0);
        assert_eq!(e.id(), id(0, 1));
        assert!(e.payload().is_empty());
    }

    #[test]
    fn age_increments_and_saturates() {
        let mut e = Event::with_age(id(0, 0), u32::MAX - 1, Payload::new());
        e.increment_age();
        assert_eq!(e.age(), u32::MAX);
        e.increment_age();
        assert_eq!(e.age(), u32::MAX);
    }

    #[test]
    fn merge_takes_maximum() {
        let mut e = Event::with_age(id(0, 0), 3, Payload::new());
        e.merge_age(7);
        assert_eq!(e.age(), 7);
        e.merge_age(1);
        assert_eq!(e.age(), 7);
    }

    #[test]
    fn wire_size_counts_payload() {
        let e = Event::new(id(0, 0), Payload::from_static(b"12345"));
        assert_eq!(e.wire_size(), 16 + 5);
    }
}
