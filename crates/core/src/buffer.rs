//! The bounded, age-purged event buffer (`events` in Figure 1).
//!
//! When the buffer overflows, the *oldest* events — those with the highest
//! age, i.e. the most widely disseminated ones — are discarded first, the
//! age-based purging heuristic of Kouznetsov et al. (SRDS 2001) that the
//! paper adopts. The ages of overflow victims are the raw material of the
//! congestion signal in the adaptive mechanism.

use agb_types::{EventId, FastHashMap, FastHashSet};

use crate::event::Event;

/// An event purged from the buffer, with the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PurgedEvent {
    /// The purged event's id.
    pub id: EventId,
    /// Its age at purge time.
    pub age: u32,
    /// Why it was purged.
    pub reason: PurgeReason,
}

/// Why an event left the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PurgeReason {
    /// Evicted because the buffer exceeded its capacity — the congestion
    /// signal.
    Overflow,
    /// Removed because its age exceeded the age cap `k` — normal end of
    /// life after (presumed) full dissemination.
    AgeCap,
}

#[derive(Debug, Clone)]
struct Slot {
    event: Event,
    inserted: u64,
}

/// Bounded buffer of events with age-based eviction (highest age first,
/// FIFO among equal ages).
///
/// Capacity is dynamic: the paper's Figure 9 experiment shrinks and grows
/// node buffers at runtime, which maps to [`EventBuffer::set_capacity`].
///
/// # Example
///
/// ```
/// use agb_core::{Event, EventBuffer};
/// use agb_types::{EventId, NodeId, Payload};
///
/// let mut buf = EventBuffer::new(2);
/// let id = |s| EventId::new(NodeId::new(0), s);
/// buf.insert(Event::with_age(id(0), 5, Payload::new()));
/// buf.insert(Event::with_age(id(1), 1, Payload::new()));
/// let purged = buf.insert(Event::with_age(id(2), 3, Payload::new()));
/// // Overflow evicts the highest-age event (age 5).
/// assert_eq!(purged.len(), 1);
/// assert_eq!(purged[0].age, 5);
/// assert_eq!(buf.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct EventBuffer {
    /// Slots stored inline in the map: the dedup/merge probe on the
    /// receive hot path touches exactly one table, which matters at 10k+
    /// nodes where every probe is a cold cache access.
    slots: FastHashMap<EventId, Slot>,
    capacity: usize,
    next_seq: u64,
}

impl EventBuffer {
    /// Creates a buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventBuffer {
            slots: FastHashMap::default(),
            capacity,
            next_seq: 0,
        }
    }

    /// Current capacity (the node's `|events|max`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Changes the capacity at runtime. If the buffer shrinks below the
    /// current occupancy, the overflow victims are returned.
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<PurgedEvent> {
        self.capacity = capacity;
        self.evict_overflow()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `id` is currently buffered.
    pub fn contains(&self, id: EventId) -> bool {
        self.slots.contains_key(&id)
    }

    /// Inserts a new event; if the buffer overflows, evicts the oldest
    /// (highest-age) events and returns them.
    ///
    /// Inserting an id that is already buffered max-merges the age instead
    /// (duplicate handling of Figure 1).
    pub fn insert(&mut self, event: Event) -> Vec<PurgedEvent> {
        if let Some(slot) = self.slots.get_mut(&event.id()) {
            slot.event.merge_age(event.age());
            return Vec::new();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.insert(
            event.id(),
            Slot {
                event,
                inserted: seq,
            },
        );
        self.evict_overflow()
    }

    /// Max-merges the age of a buffered duplicate; returns whether the id
    /// was present.
    pub fn merge_age(&mut self, id: EventId, age: u32) -> bool {
        match self.slots.get_mut(&id) {
            Some(slot) => {
                slot.event.merge_age(age);
                true
            }
            None => false,
        }
    }

    /// Increments the age of every buffered event by one round.
    pub fn increment_ages(&mut self) {
        for slot in self.slots.values_mut() {
            slot.event.increment_age();
        }
    }

    /// Removes all events whose age exceeds `age_cap` (Figure 1's `k`)
    /// and returns them.
    pub fn purge_age_cap(&mut self, age_cap: u32) -> Vec<PurgedEvent> {
        let victims: Vec<EventId> = self
            .slots
            .iter()
            .filter(|(_, s)| s.event.age() > age_cap)
            .map(|(&id, _)| id)
            .collect();
        let mut purged: Vec<PurgedEvent> = victims
            .into_iter()
            .map(|id| {
                let slot = self.slots.remove(&id).expect("victim present");
                PurgedEvent {
                    id,
                    age: slot.event.age(),
                    reason: PurgeReason::AgeCap,
                }
            })
            .collect();
        // Deterministic reporting order regardless of storage order.
        purged.sort_by_key(|p| p.id);
        purged
    }

    fn evict_overflow(&mut self) -> Vec<PurgedEvent> {
        let mut purged = Vec::new();
        while self.slots.len() > self.capacity {
            // Victim: highest age, FIFO (earliest insertion) among equal
            // ages, then smallest id — the age-based purging heuristic
            // with a fully deterministic tiebreak.
            let victim = self
                .slots
                .iter()
                .max_by(|(ida, a), (idb, b)| {
                    a.event
                        .age()
                        .cmp(&b.event.age())
                        .then_with(|| b.inserted.cmp(&a.inserted))
                        .then_with(|| idb.cmp(ida))
                })
                .map(|(&id, _)| id)
                .expect("non-empty: len > capacity >= 0");
            let slot = self.slots.remove(&victim).expect("victim present");
            purged.push(PurgedEvent {
                id: victim,
                age: slot.event.age(),
                reason: PurgeReason::Overflow,
            });
        }
        purged
    }

    /// The ages of the `count` events that would be evicted if the capacity
    /// were smaller — the would-drop scan of Figure 5(b). Skips ids in
    /// `already_counted`. Returns `(id, age)` pairs in eviction order.
    pub fn would_evict(
        &self,
        hypothetical_capacity: usize,
        already_counted: &FastHashSet<EventId>,
    ) -> Vec<(EventId, u32)> {
        // Fast path for the common case (nothing already counted): the
        // scan runs once per received message, so the eligibility count
        // must not probe the counted set per buffered event when that
        // set is empty.
        let eligible = if already_counted.is_empty() {
            self.slots.len()
        } else {
            self.slots
                .values()
                .filter(|s| !already_counted.contains(&s.event.id()))
                .count()
        };
        if eligible <= hypothetical_capacity {
            return Vec::new();
        }
        let excess = eligible - hypothetical_capacity;
        let mut candidates: Vec<&Slot> = self
            .slots
            .values()
            .filter(|s| !already_counted.contains(&s.event.id()))
            .collect();
        // Eviction order: highest age first, then FIFO, then id.
        candidates.sort_by(|a, b| {
            b.event
                .age()
                .cmp(&a.event.age())
                .then_with(|| a.inserted.cmp(&b.inserted))
                .then_with(|| a.event.id().cmp(&b.event.id()))
        });
        candidates
            .into_iter()
            .take(excess)
            .map(|slot| (slot.event.id(), slot.event.age()))
            .collect()
    }

    /// Snapshot of the buffered events (for gossip emission), in insertion
    /// order for determinism.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out);
        out
    }

    /// Writes the insertion-ordered snapshot into a reusable buffer (the
    /// per-round emission path; avoids allocating a fresh vector every
    /// gossip round).
    pub fn snapshot_into(&self, out: &mut Vec<Event>) {
        out.clear();
        let mut slots: Vec<&Slot> = self.slots.values().collect();
        slots.sort_by_key(|s| s.inserted);
        out.extend(slots.into_iter().map(|s| s.event.clone()));
    }

    /// The insertion-ordered snapshot as a shared [`EventList`](crate::EventList): one
    /// allocation backs every gossip copy emitted this round.
    pub fn snapshot_shared(&self) -> crate::event::EventList {
        let mut slots: Vec<&Slot> = self.slots.values().collect();
        slots.sort_by_key(|s| s.inserted);
        slots.into_iter().map(|s| s.event.clone()).collect()
    }

    /// Iterates over buffered events in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.slots.values().map(|s| &s.event)
    }
}

impl agb_profile::MemReport for EventBuffer {
    fn mem_usage(&self) -> agb_profile::MemUsage {
        let slot = (std::mem::size_of::<EventId>() + std::mem::size_of::<Slot>()) as u64;
        let payloads: u64 = self
            .slots
            .values()
            .map(|s| s.event.payload().len() as u64)
            .sum();
        agb_profile::MemUsage::new(
            self.slots.len() as u64 * slot + payloads,
            self.slots.len() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_types::{NodeId, Payload};

    fn ev(seq: u64, age: u32) -> Event {
        Event::with_age(EventId::new(NodeId::new(0), seq), age, Payload::new())
    }

    #[test]
    fn insert_within_capacity_never_purges() {
        let mut buf = EventBuffer::new(3);
        assert!(buf.insert(ev(0, 0)).is_empty());
        assert!(buf.insert(ev(1, 0)).is_empty());
        assert!(buf.insert(ev(2, 0)).is_empty());
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
    }

    #[test]
    fn overflow_evicts_highest_age_first() {
        let mut buf = EventBuffer::new(2);
        buf.insert(ev(0, 2));
        buf.insert(ev(1, 9));
        let purged = buf.insert(ev(2, 0));
        assert_eq!(purged.len(), 1);
        assert_eq!(purged[0].age, 9);
        assert_eq!(purged[0].reason, PurgeReason::Overflow);
        assert!(buf.contains(EventId::new(NodeId::new(0), 0)));
        assert!(buf.contains(EventId::new(NodeId::new(0), 2)));
    }

    #[test]
    fn overflow_tie_breaks_fifo() {
        let mut buf = EventBuffer::new(2);
        buf.insert(ev(0, 5)); // inserted first
        buf.insert(ev(1, 5));
        let purged = buf.insert(ev(2, 0));
        // Equal ages: the earlier-inserted one goes first.
        assert_eq!(purged[0].id, EventId::new(NodeId::new(0), 0));
    }

    #[test]
    fn duplicate_insert_merges_age() {
        let mut buf = EventBuffer::new(2);
        buf.insert(ev(0, 1));
        let purged = buf.insert(ev(0, 6));
        assert!(purged.is_empty());
        assert_eq!(buf.len(), 1);
        let snap = buf.snapshot();
        assert_eq!(snap[0].age(), 6);
    }

    #[test]
    fn merge_age_reports_presence() {
        let mut buf = EventBuffer::new(2);
        buf.insert(ev(0, 1));
        assert!(buf.merge_age(EventId::new(NodeId::new(0), 0), 4));
        assert!(!buf.merge_age(EventId::new(NodeId::new(0), 99), 4));
        assert_eq!(buf.snapshot()[0].age(), 4);
    }

    #[test]
    fn increment_ages_touches_all() {
        let mut buf = EventBuffer::new(4);
        buf.insert(ev(0, 0));
        buf.insert(ev(1, 3));
        buf.increment_ages();
        let mut ages: Vec<u32> = buf.iter().map(Event::age).collect();
        ages.sort_unstable();
        assert_eq!(ages, vec![1, 4]);
    }

    #[test]
    fn age_cap_purges_only_old_events() {
        let mut buf = EventBuffer::new(10);
        buf.insert(ev(0, 3));
        buf.insert(ev(1, 10));
        buf.insert(ev(2, 11));
        let purged = buf.purge_age_cap(10);
        assert_eq!(purged.len(), 1);
        assert_eq!(purged[0].id, EventId::new(NodeId::new(0), 2));
        assert_eq!(purged[0].reason, PurgeReason::AgeCap);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let mut buf = EventBuffer::new(4);
        for (seq, age) in [(0, 1), (1, 7), (2, 3), (3, 5)] {
            buf.insert(ev(seq, age));
        }
        let purged = buf.set_capacity(2);
        assert_eq!(buf.capacity(), 2);
        let ages: Vec<u32> = purged.iter().map(|p| p.age).collect();
        assert_eq!(ages, vec![7, 5]);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn would_evict_matches_actual_eviction_order() {
        let mut buf = EventBuffer::new(10);
        for (seq, age) in [(0, 1), (1, 7), (2, 3), (3, 5)] {
            buf.insert(ev(seq, age));
        }
        let empty = FastHashSet::default();
        let would = buf.would_evict(2, &empty);
        let ages: Vec<u32> = would.iter().map(|&(_, a)| a).collect();
        assert_eq!(ages, vec![7, 5]);
        // Shrinking for real gives the same victims.
        let purged = buf.set_capacity(2);
        let actual: Vec<EventId> = purged.iter().map(|p| p.id).collect();
        let predicted: Vec<EventId> = would.iter().map(|&(id, _)| id).collect();
        assert_eq!(actual, predicted);
    }

    #[test]
    fn would_evict_skips_already_counted() {
        let mut buf = EventBuffer::new(10);
        for (seq, age) in [(0, 9), (1, 8), (2, 1)] {
            buf.insert(ev(seq, age));
        }
        let mut counted = FastHashSet::default();
        counted.insert(EventId::new(NodeId::new(0), 0));
        // Eligible = {1, 2}; capacity 1 -> one victim: age 8.
        let would = buf.would_evict(1, &counted);
        assert_eq!(would.len(), 1);
        assert_eq!(would[0].1, 8);
    }

    #[test]
    fn would_evict_none_when_under_capacity() {
        let mut buf = EventBuffer::new(10);
        buf.insert(ev(0, 1));
        let empty = FastHashSet::default();
        assert!(buf.would_evict(5, &empty).is_empty());
        assert!(buf.would_evict(1, &empty).is_empty());
    }

    #[test]
    fn snapshot_is_insertion_ordered() {
        let mut buf = EventBuffer::new(5);
        for seq in [3, 1, 2] {
            buf.insert(ev(seq, 0));
        }
        let ids: Vec<u64> = buf.snapshot().iter().map(|e| e.id().seq()).collect();
        assert_eq!(ids, vec![3, 1, 2]);
    }

    #[test]
    fn zero_capacity_buffer_rejects_everything() {
        let mut buf = EventBuffer::new(0);
        let purged = buf.insert(ev(0, 2));
        assert_eq!(purged.len(), 1);
        assert!(buf.is_empty());
    }
}
