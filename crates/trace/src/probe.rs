//! The harness-side trace producer.
//!
//! A [`TraceProbe`] sits next to one protocol node inside a driving
//! harness (simulator cluster node, runtime node loop, Maelstrom
//! adapter) and turns what the harness already observes — outgoing
//! frames, drained [`ProtocolEvent`]s, lifecycle actions — into
//! [`TraceRecord`]s. Records accumulate in a local buffer so nodes can
//! stay `Send` and be driven on worker threads; the harness drains the
//! buffer into a shared [`TraceSink`](crate::TraceSink) at its canonical
//! merge point (the simulator's post-event hook, the runtime's metrics
//! flush), which is what keeps the trace stream deterministic under
//! sharded execution.
//!
//! The probe is purely observational: it never touches protocol state,
//! draws randomness, or sends messages, so engine results are identical
//! with tracing on and off.

use std::sync::Arc;

use agb_core::{GossipFrame, ProtocolEvent, PurgeReason};
use agb_types::{EventId, NodeId, TimeMs};

use crate::config::TraceConfig;
use crate::record::{DropCause, TraceKind, TraceRecord};

/// Per-node trace producer. See the module docs above.
#[derive(Debug)]
pub struct TraceProbe {
    config: TraceConfig,
    node: NodeId,
    round: u32,
    /// Incoming sampled event ids of the frame currently being handled,
    /// used to detect redundant arrivals (scratch; cleared per message).
    incoming: Vec<(EventId, u32)>,
    /// Topology region per dense node id, shared across a harness's
    /// probes. `None` (the default) disables cross-partition accounting.
    regions: Option<Arc<[u32]>>,
    pending: Vec<TraceRecord>,
}

impl TraceProbe {
    /// Creates a probe for `node` under `config`.
    pub fn new(config: TraceConfig, node: NodeId) -> Self {
        TraceProbe {
            config,
            node,
            round: 0,
            incoming: Vec::new(),
            regions: None,
            pending: Vec::new(),
        }
    }

    /// Arms cross-partition accounting: `regions[i]` is the topology
    /// region of dense node id `i`. Outgoing gossip frames whose target
    /// lives in a different region than this probe's node produce a
    /// [`TraceKind::CrossPartition`] record (one per frame — the unit of
    /// inter-region link cost). Out-of-range ids count as region 0.
    pub fn set_regions(&mut self, regions: Arc<[u32]>) {
        self.regions = Some(regions);
    }

    /// The region map, if cross-partition accounting is armed.
    pub fn regions(&self) -> Option<&Arc<[u32]>> {
        self.regions.as_ref()
    }

    /// Whether this probe records anything at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The probe's sampling/ring configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Buffered records awaiting a flush.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Drains buffered records in observation order. The harness must
    /// call this at its canonical merge point and feed the records to
    /// the shared sink in the returned order.
    pub fn drain_pending(&mut self) -> impl Iterator<Item = TraceRecord> + '_ {
        self.pending.drain(..)
    }

    fn push(&mut self, at: TimeMs, kind: TraceKind) {
        if let Some(id) = kind.event_id() {
            if !self.config.traces(id) {
                return;
            }
        }
        self.pending.push(TraceRecord {
            node: self.node,
            at,
            round: self.round,
            kind,
        });
    }

    /// Observes one completed gossip round: the frames the protocol
    /// emitted (relay copies and piggybacked `IHave` digests) plus a
    /// buffer-occupancy snapshot. Call after `on_round`, passing the
    /// returned frames and the post-round buffer state.
    pub fn on_round(
        &mut self,
        at: TimeMs,
        frames: &[(NodeId, GossipFrame)],
        buffer_len: usize,
        buffer_capacity: usize,
    ) {
        if !self.config.enabled {
            return;
        }
        self.round += 1;
        self.observe_frames(at, frames);
        self.push(
            at,
            TraceKind::BufferOccupancy {
                len: buffer_len as u32,
                capacity: buffer_capacity as u32,
            },
        );
    }

    /// Observes outgoing frames outside the regular round path (leave
    /// farewells, immediate recovery replies). Data frames become
    /// `Relay`/`IHave` records; `Graft`/`Retransmit` frames are skipped
    /// here because the richer [`ProtocolEvent`]s
    /// (`RecoveryRequested`/`RecoveryServed`) already cover them.
    pub fn observe_frames(&mut self, at: TimeMs, frames: &[(NodeId, GossipFrame)]) {
        if !self.config.enabled {
            return;
        }
        for (to, frame) in frames {
            if let GossipFrame::Gossip { msg, ihave } = frame {
                if let Some(regions) = &self.regions {
                    let region_of = |n: NodeId| regions.get(n.index()).copied().unwrap_or(0);
                    let target_region = region_of(*to);
                    if target_region != region_of(self.node) {
                        self.push(
                            at,
                            TraceKind::CrossPartition {
                                to: *to,
                                region: target_region,
                            },
                        );
                    }
                }
                for event in &msg.events {
                    self.push(
                        at,
                        TraceKind::Relay {
                            id: event.id(),
                            to: *to,
                            age: event.age(),
                        },
                    );
                }
                if let Some(digest) = ihave {
                    if !digest.ids.is_empty() {
                        self.push(
                            at,
                            TraceKind::IHave {
                                to: *to,
                                ids: digest.ids.len() as u32,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Starts observing one incoming frame: remembers its sampled event
    /// ids so [`on_received`](Self::on_received) can tell first
    /// deliveries from redundant arrivals. Call before handing the frame
    /// to the protocol.
    pub fn on_message(&mut self, frame: &GossipFrame) {
        if !self.config.enabled {
            return;
        }
        self.incoming.clear();
        if let GossipFrame::Gossip { msg, .. } = frame {
            for event in &msg.events {
                if self.config.traces(event.id()) {
                    self.incoming.push((event.id(), event.age()));
                }
            }
        }
    }

    /// Finishes observing the frame begun by [`on_message`](Self::on_message)
    /// (`from` = its sender): flags every incoming sampled id the
    /// protocol did *not* deliver as a redundant arrival. `events` must
    /// be the protocol events drained for exactly this handler
    /// invocation — the same slice passed to
    /// [`on_events`](Self::on_events), which this method does *not*
    /// call.
    pub fn on_received(&mut self, at: TimeMs, from: NodeId, events: &[ProtocolEvent]) {
        if !self.config.enabled {
            return;
        }
        for idx in 0..self.incoming.len() {
            let (id, _) = self.incoming[idx];
            let delivered = events.iter().any(|e| match e {
                ProtocolEvent::Delivered { event, .. } => event.id() == id,
                ProtocolEvent::Recovered { id: rid, at: _, .. } => *rid == id,
                _ => false,
            });
            if !delivered {
                self.push(at, TraceKind::Duplicate { id, from });
            }
        }
        self.incoming.clear();
    }

    /// Maps drained [`ProtocolEvent`]s into trace records (admissions,
    /// deliveries, buffer drops, recovery traffic). Call once per
    /// handler invocation with that invocation's drained events; inside
    /// a receive handler, follow with [`on_received`](Self::on_received) on the same slice
    /// to detect duplicates.
    pub fn on_events(&mut self, events: &[ProtocolEvent]) {
        if !self.config.enabled {
            return;
        }
        for event in events {
            match event {
                ProtocolEvent::Admitted { id, at } => {
                    self.push(*at, TraceKind::Publish { id: *id });
                }
                ProtocolEvent::Delivered { event, from, at } => {
                    self.push(
                        *at,
                        TraceKind::Deliver {
                            id: event.id(),
                            from: *from,
                            hops: event.age(),
                        },
                    );
                }
                ProtocolEvent::Dropped {
                    id,
                    age,
                    reason,
                    at,
                    ..
                } => {
                    let cause = match reason {
                        PurgeReason::AgeCap => DropCause::Age,
                        PurgeReason::Overflow => DropCause::Size,
                    };
                    self.push(
                        *at,
                        TraceKind::Drop {
                            id: Some(*id),
                            age: *age,
                            cause,
                        },
                    );
                }
                ProtocolEvent::RecoveryRequested { to, ids, at } => {
                    self.push(
                        *at,
                        TraceKind::Graft {
                            to: *to,
                            ids: *ids as u32,
                        },
                    );
                }
                ProtocolEvent::RecoveryServed {
                    to,
                    events,
                    missed,
                    at,
                } => {
                    self.push(
                        *at,
                        TraceKind::Retransmit {
                            to: *to,
                            events: *events as u32,
                            missed: *missed as u32,
                        },
                    );
                }
                ProtocolEvent::Recovered { id, from, at } => {
                    self.push(
                        *at,
                        TraceKind::Recovered {
                            id: *id,
                            from: *from,
                        },
                    );
                }
                ProtocolEvent::RecoveryDuplicate { id, at } => {
                    self.push(*at, TraceKind::RecoveryDuplicate { id: *id });
                }
                ProtocolEvent::RecoveryAbandoned { id, at } => {
                    self.push(*at, TraceKind::RecoveryAbandoned { id: *id });
                }
                // Rate/estimator adjustments are adaptation telemetry, not
                // dissemination causality; the metrics layer owns them.
                ProtocolEvent::RateChanged { .. } | ProtocolEvent::PeriodRollover { .. } => {}
            }
        }
    }

    /// Records sender-side throttle suppressions (offers refused because
    /// the backlog was full): `n` congestion drops at `at`.
    pub fn on_congestion_drops(&mut self, at: TimeMs, n: u64) {
        if !self.config.enabled {
            return;
        }
        for _ in 0..n {
            self.push(
                at,
                TraceKind::Drop {
                    id: None,
                    age: 0,
                    cause: DropCause::Congestion,
                },
            );
        }
    }

    /// Records a crash of this node (state lost).
    pub fn on_crash(&mut self, at: TimeMs) {
        if self.config.enabled {
            self.push(at, TraceKind::Crash);
        }
    }

    /// Records a restart of this node. Resets the round counter — the
    /// restarted protocol starts its rounds from scratch.
    pub fn on_restart(&mut self, at: TimeMs) {
        if self.config.enabled {
            self.round = 0;
            self.push(at, TraceKind::Restart);
        }
    }

    /// Records a membership-view size change.
    pub fn on_view_change(&mut self, at: TimeMs, view_size: usize) {
        if self.config.enabled {
            self.push(
                at,
                TraceKind::ViewChange {
                    view_size: view_size as u32,
                },
            );
        }
    }

    /// Records the φ-accrual detector first suspecting `peer`.
    pub fn on_suspect(&mut self, at: TimeMs, peer: NodeId) {
        if self.config.enabled {
            self.push(at, TraceKind::Suspect { peer });
        }
    }

    /// Records the detector condemning `peer` and this node evicting it.
    pub fn on_detector_evict(&mut self, at: TimeMs, peer: NodeId) {
        if self.config.enabled {
            self.push(at, TraceKind::DetectorEvict { peer });
        }
    }

    /// Records an explicit heartbeat sent to a ring successor that
    /// regular gossip did not cover this round.
    pub fn on_heartbeat(&mut self, at: TimeMs, to: NodeId) {
        if self.config.enabled {
            self.push(at, TraceKind::Heartbeat { to });
        }
    }

    /// Records `n` frames shed by an overloaded queue in the given
    /// priority class (0 = app, 1 = recovery, 2 = control).
    pub fn on_sheds(&mut self, at: TimeMs, class: u8, n: u64) {
        if !self.config.enabled {
            return;
        }
        for _ in 0..n {
            self.push(at, TraceKind::Shed { class });
        }
    }

    /// Records a previously evicted `peer` being readmitted on fresh
    /// traffic.
    pub fn on_rejoin(&mut self, at: TimeMs, peer: NodeId) {
        if self.config.enabled {
            self.push(at, TraceKind::Rejoin { peer });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_core::{Event, GossipMessage};
    use agb_types::Payload;

    fn id(n: u32, s: u64) -> EventId {
        EventId::new(NodeId::new(n), s)
    }

    fn gossip_frame(sender: u32, ids: &[EventId]) -> GossipFrame {
        GossipFrame::plain(GossipMessage {
            sender: NodeId::new(sender),
            sample_period: 0,
            min_buffs: vec![],
            events: ids.iter().map(|&i| Event::new(i, Payload::new())).collect(),
            membership: Default::default(),
        })
    }

    #[test]
    fn disabled_probe_records_nothing() {
        let mut p = TraceProbe::new(TraceConfig::disabled(), NodeId::new(0));
        p.on_round(
            TimeMs::ZERO,
            &[(NodeId::new(1), gossip_frame(0, &[id(0, 0)]))],
            1,
            10,
        );
        p.on_events(&[ProtocolEvent::Admitted {
            id: id(0, 0),
            at: TimeMs::ZERO,
        }]);
        p.on_crash(TimeMs::ZERO);
        assert_eq!(p.pending_len(), 0);
    }

    #[test]
    fn round_output_becomes_relays_and_occupancy() {
        let mut p = TraceProbe::new(TraceConfig::enabled(), NodeId::new(0));
        let frames = vec![
            (NodeId::new(1), gossip_frame(0, &[id(0, 0), id(2, 5)])),
            (NodeId::new(2), gossip_frame(0, &[id(0, 0)])),
        ];
        p.on_round(TimeMs::from_secs(1), &frames, 2, 30);
        let recs: Vec<TraceRecord> = p.drain_pending().collect();
        let relays = recs
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::Relay { .. }))
            .count();
        assert_eq!(relays, 3);
        assert!(matches!(
            recs.last().unwrap().kind,
            TraceKind::BufferOccupancy {
                len: 2,
                capacity: 30
            }
        ));
        assert!(recs.iter().all(|r| r.round == 1));
    }

    #[test]
    fn undelivered_incoming_ids_become_duplicates() {
        let mut p = TraceProbe::new(TraceConfig::enabled(), NodeId::new(3));
        let fresh = id(0, 0);
        let stale = id(0, 1);
        p.on_message(&gossip_frame(1, &[fresh, stale]));
        let events = vec![ProtocolEvent::Delivered {
            event: Event::new(fresh, Payload::new()),
            from: NodeId::new(1),
            at: TimeMs::from_secs(2),
        }];
        p.on_events(&events);
        p.on_received(TimeMs::from_secs(2), NodeId::new(1), &events);
        let recs: Vec<TraceRecord> = p.drain_pending().collect();
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0].kind, TraceKind::Deliver { id, .. } if id == fresh));
        assert!(
            matches!(recs[1].kind, TraceKind::Duplicate { id, from } if id == stale && from == NodeId::new(1))
        );
    }

    #[test]
    fn sampling_filters_id_bearing_records_only() {
        let config = TraceConfig::enabled().with_sample_one_in(u64::MAX);
        let mut p = TraceProbe::new(config, NodeId::new(0));
        p.on_round(
            TimeMs::ZERO,
            &[(NodeId::new(1), gossip_frame(0, &[id(0, 0)]))],
            1,
            10,
        );
        p.on_crash(TimeMs::ZERO);
        let recs: Vec<TraceRecord> = p.drain_pending().collect();
        // The relay was sampled out; occupancy and crash survive.
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0].kind, TraceKind::BufferOccupancy { .. }));
        assert!(matches!(recs[1].kind, TraceKind::Crash));
    }

    #[test]
    fn region_map_counts_cross_partition_frames() {
        let mut p = TraceProbe::new(TraceConfig::enabled(), NodeId::new(0));
        // Nodes 0-1 in region 0, node 2 in region 1.
        p.set_regions(Arc::from(vec![0u32, 0, 1]));
        assert!(p.regions().is_some());
        let frames = vec![
            (NodeId::new(1), gossip_frame(0, &[id(0, 0)])), // intra-region
            (NodeId::new(2), gossip_frame(0, &[id(0, 0)])), // cross-region
            (NodeId::new(9), gossip_frame(0, &[id(0, 0)])), // out of range -> region 0
        ];
        p.on_round(TimeMs::from_secs(1), &frames, 0, 10);
        let crossings: Vec<(NodeId, u32)> = p
            .drain_pending()
            .filter_map(|r| match r.kind {
                TraceKind::CrossPartition { to, region } => Some((to, region)),
                _ => None,
            })
            .collect();
        assert_eq!(crossings, vec![(NodeId::new(2), 1)]);
        // Without a region map the kind is never produced.
        let mut bare = TraceProbe::new(TraceConfig::enabled(), NodeId::new(0));
        bare.on_round(TimeMs::from_secs(1), &frames, 0, 10);
        assert!(bare
            .drain_pending()
            .all(|r| !matches!(r.kind, TraceKind::CrossPartition { .. })));
    }

    #[test]
    fn restart_resets_the_round_counter() {
        let mut p = TraceProbe::new(TraceConfig::enabled(), NodeId::new(0));
        p.on_round(TimeMs::from_secs(1), &[], 0, 10);
        p.on_round(TimeMs::from_secs(2), &[], 0, 10);
        p.on_crash(TimeMs::from_secs(3));
        p.on_restart(TimeMs::from_secs(4));
        p.on_round(TimeMs::from_secs(5), &[], 0, 10);
        let rounds: Vec<u32> = p.drain_pending().map(|r| r.round).collect();
        assert_eq!(rounds, vec![1, 2, 2, 0, 1]);
    }

    #[test]
    fn protocol_events_map_to_the_taxonomy() {
        let mut p = TraceProbe::new(TraceConfig::enabled(), NodeId::new(0));
        let at = TimeMs::from_secs(1);
        p.on_events(&[
            ProtocolEvent::Admitted { id: id(0, 0), at },
            ProtocolEvent::Dropped {
                id: id(0, 0),
                age: 10,
                reason: PurgeReason::AgeCap,
                at,
            },
            ProtocolEvent::Dropped {
                id: id(0, 1),
                age: 2,
                reason: PurgeReason::Overflow,
                at,
            },
            ProtocolEvent::RecoveryRequested {
                to: NodeId::new(2),
                ids: 3,
                at,
            },
            ProtocolEvent::RateChanged {
                old: 1.0,
                new: 2.0,
                reason: agb_core::RateChangeReason::Headroom,
                at,
            },
        ]);
        let kinds: Vec<&'static str> = p.drain_pending().map(|r| r.kind.label()).collect();
        assert_eq!(kinds, vec!["publish", "drop", "drop", "graft"]);
    }
}
