//! Deterministic causal dissemination tracing for the gossip stack.
//!
//! Aggregate metrics (`agb-metrics`) say *that* a configuration delivered
//! 97% of its messages; this crate says *how*: which hops carried each
//! event, which copies were redundant, which buffer purged it and why,
//! and which `Graft` round-trip repaired it. The pieces:
//!
//! * [`TraceRecord`] / [`TraceKind`] — typed protocol-level events
//!   (Publish, Relay, Deliver, Duplicate, Drop by cause, IHave / Graft /
//!   Retransmit round-trips, view changes, crash/restart, buffer
//!   occupancy), each stamped with time, gossip round, the observing
//!   node, and — where applicable — peer, event id and hop count.
//! * [`TraceSink`] + [`Recorder`] — the consumer interface and its
//!   standard implementation: a bounded ring of raw records plus
//!   streaming aggregates (per-kind [`TraceCounts`], fixed-bucket
//!   [`Histogram`]s for delivery latency in rounds, hops-to-delivery,
//!   buffer occupancy and recovery RTT, and per-event-id dissemination
//!   [`TreeBuilder`] stats), folded into an order-sensitive FNV digest.
//! * [`TraceProbe`] — the harness-side producer: maps
//!   [`ProtocolEvent`](agb_core::ProtocolEvent)s and observed
//!   [`GossipFrame`](agb_core::GossipFrame)s into records, buffering
//!   them locally so a `Send` node can be driven on worker threads and
//!   flushed into the shared [`Recorder`] at the engine's canonical
//!   merge point (the same post-event-hook path `agb-metrics` uses).
//!   With the deterministic sharded engine this makes the trace stream —
//!   and therefore the digest — bit-identical at every `AGB_THREADS`.
//! * [`TraceConfig::sample_one_in`] — deterministic event-id sampling so
//!   tracing stays viable at n10000: the traced subset is a pure
//!   function of the event id, never of arrival order or thread count.
//! * [`TraceSummary`] — the post-run report (schema `agb-trace/v1`),
//!   JSON-serializable with a stable digest for CI replay comparison.
//!
//! Tracing is disabled by default and adds only a branch per handler
//! when off; recording never feeds back into protocol or engine state,
//! so engine checksums are identical with tracing on and off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod histogram;
mod probe;
mod record;
mod recorder;
mod summary;
mod tree;

pub use config::TraceConfig;
pub use histogram::Histogram;
pub use probe::TraceProbe;
pub use record::{DropCause, TraceKind, TraceRecord, TraceSink};
pub use recorder::{Recorder, TraceCounts};
pub use summary::{TraceSummary, TRACE_SCHEMA};
pub use tree::{EventTreeSummary, TreeBuilder, TreeStats};
