//! The typed trace vocabulary: records, kinds, drop causes, and the sink
//! trait harnesses feed.

use agb_types::{EventId, NodeId, TimeMs};

/// Why an event left a gossip buffer (or never entered one).
///
/// The paper's central claim is that these three causes have very
/// different meanings: `Age` is the normal end of life, `Size` is the
/// congestion signal the adaptive mechanism reacts to, and `Congestion`
/// is the throttle doing its job at the sender before an event ever
/// reaches a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropCause {
    /// Purged by the age cap — the event lived its full dissemination
    /// window (`PurgeReason::AgeCap`).
    Age,
    /// Evicted by buffer overflow — the raw congestion signal
    /// (`PurgeReason::Overflow`).
    Size,
    /// Suppressed at the sender: an offered message was refused because
    /// the throttle backlog was full. The message has no event id (it
    /// was never admitted).
    Congestion,
}

impl DropCause {
    /// Stable lowercase label (JSON fields, dashboard rows, digests).
    pub fn label(self) -> &'static str {
        match self {
            DropCause::Age => "age",
            DropCause::Size => "size",
            DropCause::Congestion => "congestion",
        }
    }
}

/// What happened, as observed at one node.
///
/// Per-event-id kinds (everything carrying an `id`) are subject to
/// [`TraceConfig::sample_one_in`](crate::TraceConfig::sample_one_in);
/// node-lifecycle and round-trip kinds are always recorded while tracing
/// is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A locally offered message was admitted into the gossip buffer at
    /// its origin.
    Publish {
        /// The new event's id.
        id: EventId,
    },
    /// The observing node forwarded a buffered copy of `id` to `to` in a
    /// gossip round.
    Relay {
        /// The forwarded event's id.
        id: EventId,
        /// The gossip target.
        to: NodeId,
        /// The copy's age (hops lived) when forwarded.
        age: u32,
    },
    /// First copy of `id` reached the observing node and was delivered
    /// to the application.
    Deliver {
        /// The delivered event's id.
        id: EventId,
        /// The node the winning copy arrived from (self at the origin).
        from: NodeId,
        /// The copy's age at delivery — its hop count through the
        /// dissemination tree.
        hops: u32,
    },
    /// A redundant copy of `id` arrived after delivery (max-merged into
    /// the buffered copy's age, otherwise wasted bandwidth).
    Duplicate {
        /// The redundant event's id.
        id: EventId,
        /// The node the redundant copy arrived from.
        from: NodeId,
    },
    /// An event was dropped — see [`DropCause`] for the taxonomy.
    Drop {
        /// The dropped event's id; `None` for congestion drops, which
        /// suppress a message before it is assigned an id.
        id: Option<EventId>,
        /// The copy's age at drop time (0 for congestion drops).
        age: u32,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// The recovery layer advertised recently-seen ids to a peer
    /// (piggybacked `IHave` digest).
    IHave {
        /// The digest's destination.
        to: NodeId,
        /// Number of ids advertised.
        ids: u32,
    },
    /// The observing node sent a `Graft` pull request for missing
    /// events. Opens a recovery round-trip; the matching
    /// [`Recovered`](TraceKind::Recovered) closes it.
    Graft {
        /// The advertiser asked to retransmit.
        to: NodeId,
        /// Number of missing ids requested.
        ids: u32,
    },
    /// The observing node answered a `Graft` from its retransmission
    /// cache.
    Retransmit {
        /// The requesting node.
        to: NodeId,
        /// Events served from the cache.
        events: u32,
        /// Requested ids no longer cached.
        missed: u32,
    },
    /// A previously missing event arrived via retransmission and was
    /// delivered — a recovery round-trip completed.
    Recovered {
        /// The repaired event's id.
        id: EventId,
        /// The node that served the retransmission.
        from: NodeId,
    },
    /// A retransmitted event had already arrived through regular gossip
    /// — wasted recovery bandwidth.
    RecoveryDuplicate {
        /// The redundant event's id.
        id: EventId,
    },
    /// Recovery of a missing event was abandoned after the retry budget
    /// ran out — a real delivery gap.
    RecoveryAbandoned {
        /// The unrecoverable event's id.
        id: EventId,
    },
    /// The observing node's membership view changed size (join, leave,
    /// eviction, partial-view churn).
    ViewChange {
        /// The view size after the change.
        view_size: u32,
    },
    /// The observing node crashed (state lost).
    Crash,
    /// The observing node restarted after a crash.
    Restart,
    /// Buffer occupancy snapshot, taken once per gossip round.
    BufferOccupancy {
        /// Events currently buffered.
        len: u32,
        /// Buffer capacity at snapshot time.
        capacity: u32,
    },
    /// An outgoing gossip frame crossed a topology-region boundary (rack,
    /// cluster, site). The raw signal for locality-bias effectiveness:
    /// counted per frame, not per event, because the expensive resource is
    /// the inter-region link. Never recorded unless the probe was given a
    /// region map.
    CrossPartition {
        /// The frame's destination in the foreign region.
        to: NodeId,
        /// The destination's region label.
        region: u32,
    },
    /// The φ-accrual detector crossed the suspicion threshold for a
    /// monitored peer (first φ ≥ suspect level; cleared silently if
    /// traffic resumes).
    Suspect {
        /// The suspected peer.
        peer: NodeId,
    },
    /// The φ-accrual detector condemned a peer (φ ≥ eviction level) and
    /// the observing node evicted it from its local view.
    DetectorEvict {
        /// The evicted peer.
        peer: NodeId,
    },
    /// The observing node sent an explicit heartbeat to a ring successor
    /// that regular gossip did not cover this round (the detector's
    /// liveness fallback).
    Heartbeat {
        /// The heartbeat's destination.
        to: NodeId,
    },
    /// An overloaded queue shed a frame (priority shedding: control >
    /// recovery > app; the label records the shed class).
    Shed {
        /// Shed class: 0 = app, 1 = recovery, 2 = control.
        class: u8,
    },
    /// A previously evicted peer showed fresh traffic and was readmitted
    /// by the detector.
    Rejoin {
        /// The returning peer.
        peer: NodeId,
    },
}

impl TraceKind {
    /// The event id this record is about, if it carries one (the
    /// sampling unit).
    pub fn event_id(&self) -> Option<EventId> {
        match self {
            TraceKind::Publish { id }
            | TraceKind::Relay { id, .. }
            | TraceKind::Deliver { id, .. }
            | TraceKind::Duplicate { id, .. }
            | TraceKind::Recovered { id, .. }
            | TraceKind::RecoveryDuplicate { id }
            | TraceKind::RecoveryAbandoned { id } => Some(*id),
            TraceKind::Drop { id, .. } => *id,
            _ => None,
        }
    }

    /// Stable kind label (dashboard rows, JSON taxonomy, digests).
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Publish { .. } => "publish",
            TraceKind::Relay { .. } => "relay",
            TraceKind::Deliver { .. } => "deliver",
            TraceKind::Duplicate { .. } => "duplicate",
            TraceKind::Drop { .. } => "drop",
            TraceKind::IHave { .. } => "ihave",
            TraceKind::Graft { .. } => "graft",
            TraceKind::Retransmit { .. } => "retransmit",
            TraceKind::Recovered { .. } => "recovered",
            TraceKind::RecoveryDuplicate { .. } => "recovery_duplicate",
            TraceKind::RecoveryAbandoned { .. } => "recovery_abandoned",
            TraceKind::ViewChange { .. } => "view_change",
            TraceKind::Crash => "crash",
            TraceKind::Restart => "restart",
            TraceKind::BufferOccupancy { .. } => "buffer_occupancy",
            TraceKind::CrossPartition { .. } => "cross_partition",
            TraceKind::Suspect { .. } => "suspect",
            TraceKind::DetectorEvict { .. } => "detector_evict",
            TraceKind::Heartbeat { .. } => "heartbeat",
            TraceKind::Shed { .. } => "shed",
            TraceKind::Rejoin { .. } => "rejoin",
        }
    }

    /// A small stable discriminant for digest folding.
    pub(crate) fn tag(&self) -> u64 {
        match self {
            TraceKind::Publish { .. } => 1,
            TraceKind::Relay { .. } => 2,
            TraceKind::Deliver { .. } => 3,
            TraceKind::Duplicate { .. } => 4,
            TraceKind::Drop { .. } => 5,
            TraceKind::IHave { .. } => 6,
            TraceKind::Graft { .. } => 7,
            TraceKind::Retransmit { .. } => 8,
            TraceKind::Recovered { .. } => 9,
            TraceKind::RecoveryDuplicate { .. } => 10,
            TraceKind::RecoveryAbandoned { .. } => 11,
            TraceKind::ViewChange { .. } => 12,
            TraceKind::Crash => 13,
            TraceKind::Restart => 14,
            TraceKind::BufferOccupancy { .. } => 15,
            TraceKind::CrossPartition { .. } => 16,
            TraceKind::Suspect { .. } => 17,
            TraceKind::DetectorEvict { .. } => 18,
            TraceKind::Heartbeat { .. } => 19,
            TraceKind::Shed { .. } => 20,
            TraceKind::Rejoin { .. } => 21,
        }
    }
}

/// One trace record: a [`TraceKind`] stamped with where and when it was
/// observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The observing node.
    pub node: NodeId,
    /// Virtual (simulator) or wall-clock (runtime) time of observation.
    pub at: TimeMs,
    /// The observing node's gossip-round counter at observation time
    /// (0 before the first round).
    pub round: u32,
    /// What happened.
    pub kind: TraceKind,
}

/// Consumer of trace records.
///
/// [`Recorder`](crate::Recorder) is the standard implementation;
/// harnesses and tests can substitute their own (e.g. a line printer or
/// a counting stub). Implementations must not feed back into protocol
/// state: tracing is observational by contract, which is what keeps
/// engine checksums identical with tracing on and off.
pub trait TraceSink {
    /// Consumes one record. Called in the engine's canonical merge order.
    fn record(&mut self, record: TraceRecord);

    /// Consumes a batch in order (override when batching is cheaper).
    fn record_all(&mut self, records: impl IntoIterator<Item = TraceRecord>)
    where
        Self: Sized,
    {
        for r in records {
            self.record(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32, s: u64) -> EventId {
        EventId::new(NodeId::new(n), s)
    }

    #[test]
    fn event_id_accessor_covers_id_bearing_kinds() {
        assert_eq!(
            TraceKind::Publish { id: id(1, 2) }.event_id(),
            Some(id(1, 2))
        );
        assert_eq!(
            TraceKind::Drop {
                id: Some(id(3, 4)),
                age: 2,
                cause: DropCause::Size,
            }
            .event_id(),
            Some(id(3, 4))
        );
        assert_eq!(
            TraceKind::Drop {
                id: None,
                age: 0,
                cause: DropCause::Congestion,
            }
            .event_id(),
            None
        );
        assert_eq!(TraceKind::Crash.event_id(), None);
        assert_eq!(TraceKind::ViewChange { view_size: 9 }.event_id(), None);
    }

    #[test]
    fn labels_and_tags_are_distinct() {
        let kinds = [
            TraceKind::Publish { id: id(0, 0) },
            TraceKind::Relay {
                id: id(0, 0),
                to: NodeId::new(1),
                age: 0,
            },
            TraceKind::Deliver {
                id: id(0, 0),
                from: NodeId::new(1),
                hops: 1,
            },
            TraceKind::Duplicate {
                id: id(0, 0),
                from: NodeId::new(1),
            },
            TraceKind::Drop {
                id: None,
                age: 0,
                cause: DropCause::Congestion,
            },
            TraceKind::IHave {
                to: NodeId::new(1),
                ids: 3,
            },
            TraceKind::Graft {
                to: NodeId::new(1),
                ids: 3,
            },
            TraceKind::Retransmit {
                to: NodeId::new(1),
                events: 2,
                missed: 1,
            },
            TraceKind::Recovered {
                id: id(0, 0),
                from: NodeId::new(1),
            },
            TraceKind::RecoveryDuplicate { id: id(0, 0) },
            TraceKind::RecoveryAbandoned { id: id(0, 0) },
            TraceKind::ViewChange { view_size: 4 },
            TraceKind::Crash,
            TraceKind::Restart,
            TraceKind::BufferOccupancy {
                len: 5,
                capacity: 30,
            },
            TraceKind::CrossPartition {
                to: NodeId::new(1),
                region: 2,
            },
            TraceKind::Suspect {
                peer: NodeId::new(1),
            },
            TraceKind::DetectorEvict {
                peer: NodeId::new(1),
            },
            TraceKind::Heartbeat { to: NodeId::new(1) },
            TraceKind::Shed { class: 0 },
            TraceKind::Rejoin {
                peer: NodeId::new(1),
            },
        ];
        let mut labels: Vec<_> = kinds.iter().map(TraceKind::label).collect();
        let mut tags: Vec<_> = kinds.iter().map(TraceKind::tag).collect();
        labels.sort_unstable();
        labels.dedup();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(labels.len(), kinds.len());
        assert_eq!(tags.len(), kinds.len());
    }

    #[test]
    fn drop_cause_labels() {
        assert_eq!(DropCause::Age.label(), "age");
        assert_eq!(DropCause::Size.label(), "size");
        assert_eq!(DropCause::Congestion.label(), "congestion");
    }
}
