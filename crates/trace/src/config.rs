//! Tracing configuration: the on/off switch, deterministic event-id
//! sampling, and the raw-record ring capacity.

use agb_types::{fnv1a, EventId};

/// Configuration for a tracing run.
///
/// The default is **disabled**: harnesses carry a `TraceConfig`
/// unconditionally and pay only an `enabled` branch per handler
/// invocation when tracing is off.
///
/// # Sampling
///
/// At n10000 every event generates thousands of per-copy records; full
/// tracing would dominate the run. [`sample_one_in`](Self::sample_one_in)
/// keeps tracing viable at scale by restricting *per-event-id* records
/// (Publish/Relay/Deliver/Duplicate/recovery repairs and id-carrying
/// drops) to a deterministic subset of event ids: an id is traced iff
/// `fnv1a(origin, seq) % k == 0`. The subset is a pure function of the
/// id — never of arrival order, node, or thread count — so sampled
/// traces stay bit-identical across `AGB_THREADS` settings and runs.
/// Records that carry no event id (view changes, crash/restart, buffer
/// occupancy, graft/retransmit round-trip summaries) are always recorded
/// while tracing is enabled.
///
/// # Example
///
/// ```
/// use agb_trace::TraceConfig;
/// use agb_types::{EventId, NodeId};
///
/// let all = TraceConfig::enabled();
/// assert!(all.traces(EventId::new(NodeId::new(3), 17)));
///
/// let sampled = TraceConfig::enabled().with_sample_one_in(4);
/// let traced = (0..100)
///     .filter(|&seq| sampled.traces(EventId::new(NodeId::new(0), seq)))
///     .count();
/// assert!(traced > 0 && traced < 100);
///
/// assert!(!TraceConfig::disabled().traces(EventId::new(NodeId::new(0), 0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When `false`, probes emit nothing and the recorder
    /// is never consulted.
    pub enabled: bool,
    /// Trace only event ids whose hash falls in a `1/k` bucket
    /// (see type-level docs). `0` and `1` both mean "trace every id".
    pub sample_one_in: u64,
    /// Maximum raw [`TraceRecord`](crate::TraceRecord)s retained by the
    /// ring buffer; older records are evicted first (aggregates —
    /// histograms, counts, trees, the digest — still see every record).
    pub ring_capacity: usize,
}

impl TraceConfig {
    /// Default ring capacity: enough for a full 60-node paper-scale run,
    /// small enough to be irrelevant at n10000 with sampling on.
    pub const DEFAULT_RING_CAPACITY: usize = 65_536;

    /// Tracing off (the default; zero overhead beyond one branch).
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            sample_one_in: 1,
            ring_capacity: Self::DEFAULT_RING_CAPACITY,
        }
    }

    /// Tracing on, every event id traced, default ring capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Returns this config with event-id sampling set to one-in-`k`.
    pub fn with_sample_one_in(mut self, k: u64) -> Self {
        self.sample_one_in = k;
        self
    }

    /// Returns this config with the raw-record ring capacity set.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Whether per-event records for `id` should be traced under this
    /// config. Deterministic: depends only on the config and the id.
    pub fn traces(&self, id: EventId) -> bool {
        self.enabled
            && (self.sample_one_in <= 1 || sample_key(id).is_multiple_of(self.sample_one_in))
    }

    /// The sampling hash key for an event id: FNV-1a over its origin and
    /// sequence number. `traces(id)` holds iff
    /// `sample_key(id) % sample_one_in == 0` — exposed so tests can
    /// enumerate the exact subset a sampling rate selects.
    pub fn sample_key(id: EventId) -> u64 {
        sample_key(id)
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The sampling hash key for an event id: FNV-1a over its origin and
/// sequence number. Exposed so tests can enumerate the exact subset
/// `sample_one_in(k)` selects.
pub(crate) fn sample_key(id: EventId) -> u64 {
    let mut bytes = [0u8; 12];
    bytes[..4].copy_from_slice(&id.origin().as_u32().to_le_bytes());
    bytes[4..].copy_from_slice(&id.seq().to_le_bytes());
    fnv1a(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_types::NodeId;

    #[test]
    fn default_is_disabled() {
        let c = TraceConfig::default();
        assert!(!c.enabled);
        assert!(!c.traces(EventId::new(NodeId::new(0), 0)));
    }

    #[test]
    fn sample_one_in_one_traces_everything() {
        let c = TraceConfig::enabled();
        for seq in 0..256 {
            assert!(c.traces(EventId::new(NodeId::new(seq as u32 % 7), seq)));
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_id() {
        let c = TraceConfig::enabled().with_sample_one_in(3);
        let id = EventId::new(NodeId::new(5), 99);
        let first = c.traces(id);
        for _ in 0..10 {
            assert_eq!(c.traces(id), first);
        }
    }

    #[test]
    fn sampling_matches_the_hash_bucket_exactly() {
        let k = 5;
        let c = TraceConfig::enabled().with_sample_one_in(k);
        for seq in 0..512 {
            let id = EventId::new(NodeId::new(2), seq);
            assert_eq!(c.traces(id), sample_key(id).is_multiple_of(k), "{id}");
        }
    }
}
