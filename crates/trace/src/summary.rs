//! The post-run trace report: one summary per traced run, JSON-shaped
//! for `TRACE.json` (schema [`TRACE_SCHEMA`]).

use agb_types::json::Json;

use crate::histogram::Histogram;
use crate::recorder::{Recorder, TraceCounts, FNV_PRIME};
use crate::tree::TreeStats;

/// Schema identifier written into `TRACE.json`.
pub const TRACE_SCHEMA: &str = "agb-trace/v1";

/// Everything a traced run reports: per-kind counts (the drop taxonomy),
/// the four standard histograms, dissemination-tree statistics, ring
/// accounting, and a stable digest over the whole trace.
///
/// Built from a [`Recorder`] with [`Recorder::summary`]; serialized into
/// `TRACE.json` by the `repro trace` harness.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// What was traced (e.g. the protocol flavor name).
    pub label: String,
    /// Per-kind record counts.
    pub counts: TraceCounts,
    /// Delivery latency in gossip rounds.
    pub latency: Histogram,
    /// Hops-to-delivery.
    pub hops: Histogram,
    /// Buffer occupancy snapshots.
    pub occupancy: Histogram,
    /// Recovery round-trip time, ms.
    pub recovery_rtt: Histogram,
    /// Dissemination-tree aggregates.
    pub tree: TreeStats,
    /// Raw records still in the ring.
    pub records_retained: usize,
    /// Raw records evicted from the ring (aggregates still saw them).
    pub records_evicted: u64,
    /// Stable FNV-1a digest: the recorder's streaming record digest
    /// folded with every aggregate. Identical traces yield identical
    /// digests across runs and `AGB_THREADS` settings.
    pub digest: u64,
}

impl TraceSummary {
    /// JSON form (stable key order; the digest is a hex string because
    /// JSON numbers lose u64 precision).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::Str(self.label.clone())),
            ("counts", self.counts.to_json()),
            (
                "histograms",
                Json::obj([
                    ("delivery_latency_rounds", self.latency.to_json()),
                    ("hops_to_delivery", self.hops.to_json()),
                    ("buffer_occupancy", self.occupancy.to_json()),
                    ("recovery_rtt_ms", self.recovery_rtt.to_json()),
                ]),
            ),
            ("tree", self.tree.to_json()),
            ("records_retained", Json::from(self.records_retained)),
            ("records_evicted", Json::from(self.records_evicted)),
            ("digest", Json::Str(format!("{:#018x}", self.digest))),
        ])
    }
}

impl Recorder {
    /// Snapshots this recorder into a [`TraceSummary`] labeled `label`.
    pub fn summary(&self, label: &str) -> TraceSummary {
        let tree = self.trees().stats();
        let mut digest = self.digest();
        let mut mix = |w: u64| {
            digest ^= w;
            digest = digest.wrapping_mul(FNV_PRIME);
        };
        self.counts().fold_digest(&mut mix);
        self.latency().fold_digest(&mut mix);
        self.hops().fold_digest(&mut mix);
        self.occupancy().fold_digest(&mut mix);
        self.recovery_rtt().fold_digest(&mut mix);
        tree.fold_digest(&mut mix);
        TraceSummary {
            label: label.to_string(),
            counts: *self.counts(),
            latency: self.latency().clone(),
            hops: self.hops().clone(),
            occupancy: self.occupancy().clone(),
            recovery_rtt: self.recovery_rtt().clone(),
            tree,
            records_retained: self.records().count(),
            records_evicted: self.evicted(),
            digest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{TraceKind, TraceRecord, TraceSink};
    use crate::TraceConfig;
    use agb_types::{EventId, NodeId, TimeMs};

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::new(TraceConfig::enabled());
        let id = EventId::new(NodeId::new(0), 0);
        r.record(TraceRecord {
            node: NodeId::new(0),
            at: TimeMs::from_secs(1),
            round: 1,
            kind: TraceKind::Publish { id },
        });
        r.record(TraceRecord {
            node: NodeId::new(2),
            at: TimeMs::from_secs(3),
            round: 3,
            kind: TraceKind::Deliver {
                id,
                from: NodeId::new(0),
                hops: 1,
            },
        });
        r
    }

    #[test]
    fn summary_json_has_schema_shape() {
        let s = sample_recorder().summary("adaptive");
        let j = s.to_json();
        assert_eq!(j.get("label").unwrap().as_str(), Some("adaptive"));
        assert_eq!(
            j.get("counts").unwrap().get("publishes").unwrap().as_u64(),
            Some(1)
        );
        assert!(j
            .get("histograms")
            .unwrap()
            .get("delivery_latency_rounds")
            .is_some());
        assert_eq!(
            j.get("tree").unwrap().get("deliveries").unwrap().as_u64(),
            Some(1)
        );
        let digest = j.get("digest").unwrap().as_str().unwrap();
        assert!(digest.starts_with("0x") && digest.len() == 18, "{digest}");
    }

    #[test]
    fn identical_traces_summarize_identically() {
        let a = sample_recorder().summary("x");
        let b = sample_recorder().summary("x");
        assert_eq!(a, b);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.to_json().pretty(), b.to_json().pretty());
    }

    #[test]
    fn summary_digest_depends_on_aggregates_too() {
        let plain = sample_recorder();
        let mut extra = sample_recorder();
        extra.record(TraceRecord {
            node: NodeId::new(5),
            at: TimeMs::from_secs(4),
            round: 4,
            kind: TraceKind::BufferOccupancy {
                len: 3,
                capacity: 30,
            },
        });
        assert_ne!(plain.summary("x").digest, extra.summary("x").digest);
    }
}
