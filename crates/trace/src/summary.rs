//! The post-run trace report: one summary per traced run, JSON-shaped
//! for `TRACE.json` (schema [`TRACE_SCHEMA`]).

use agb_types::json::Json;

use crate::histogram::Histogram;
use crate::recorder::{Recorder, TraceCounts, FNV_OFFSET, FNV_PRIME};
use crate::tree::TreeStats;

/// Schema identifier written into `TRACE.json`.
pub const TRACE_SCHEMA: &str = "agb-trace/v1";

/// Everything a traced run reports: per-kind counts (the drop taxonomy),
/// the four standard histograms, dissemination-tree statistics, ring
/// accounting, and a stable digest over the whole trace.
///
/// Built from a [`Recorder`] with [`Recorder::summary`]; serialized into
/// `TRACE.json` by the `repro trace` harness.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// What was traced (e.g. the protocol flavor name).
    pub label: String,
    /// Per-kind record counts.
    pub counts: TraceCounts,
    /// Delivery latency in gossip rounds.
    pub latency: Histogram,
    /// Hops-to-delivery.
    pub hops: Histogram,
    /// Buffer occupancy snapshots.
    pub occupancy: Histogram,
    /// Recovery round-trip time, ms.
    pub recovery_rtt: Histogram,
    /// Dissemination-tree aggregates.
    pub tree: TreeStats,
    /// Raw records still in the ring.
    pub records_retained: usize,
    /// Raw records evicted from the ring (aggregates still saw them).
    pub records_evicted: u64,
    /// Whether the trace's timestamps came from a wall clock (the
    /// threaded runtime) rather than simulated time. Wall-clock traces
    /// carry real scheduling jitter, so their [`digest`](Self::digest)
    /// is **not** comparable across runs — compare
    /// [`stable_digest`](Self::stable_digest) instead.
    pub wall_clock: bool,
    /// Full FNV-1a digest: the recorder's streaming record digest
    /// (which mixes every record's absolute timestamp) folded with
    /// every aggregate. Identical traces yield identical digests
    /// across runs and `AGB_THREADS` settings — but only when
    /// timestamps are deterministic (`wall_clock == false`).
    pub digest: u64,
    /// Timestamp-shift-invariant FNV-1a digest over the aggregates
    /// only: counts, the four histograms (whose observations are all
    /// time *differences* or sizes), and tree statistics. Two traces
    /// of the same behavior whose records differ only by when the
    /// clock started yield the same `stable_digest`. This is the
    /// digest CI compares for wall-clock runs.
    pub stable_digest: u64,
}

impl TraceSummary {
    /// Marks this summary as wall-clock-timed (see
    /// [`wall_clock`](Self::wall_clock)). The threaded runtime calls
    /// this; simulation traces stay at the default `false`.
    #[must_use]
    pub fn mark_wall_clock(mut self) -> Self {
        self.wall_clock = true;
        self
    }

    /// JSON form (stable key order; the digests are hex strings because
    /// JSON numbers lose u64 precision).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::Str(self.label.clone())),
            ("counts", self.counts.to_json()),
            (
                "histograms",
                Json::obj([
                    ("delivery_latency_rounds", self.latency.to_json()),
                    ("hops_to_delivery", self.hops.to_json()),
                    ("buffer_occupancy", self.occupancy.to_json()),
                    ("recovery_rtt_ms", self.recovery_rtt.to_json()),
                ]),
            ),
            ("tree", self.tree.to_json()),
            ("records_retained", Json::from(self.records_retained)),
            ("records_evicted", Json::from(self.records_evicted)),
            ("wall_clock", Json::Bool(self.wall_clock)),
            ("digest", Json::Str(format!("{:#018x}", self.digest))),
            (
                "stable_digest",
                Json::Str(format!("{:#018x}", self.stable_digest)),
            ),
        ])
    }
}

impl Recorder {
    /// Snapshots this recorder into a [`TraceSummary`] labeled `label`.
    pub fn summary(&self, label: &str) -> TraceSummary {
        let tree = self.trees().stats();
        // The aggregate fold is computed twice: once seeded with the
        // record-stream digest (which mixes absolute timestamps) for
        // the full digest, and once from the bare FNV offset for the
        // shift-invariant stable digest. Every aggregate observes only
        // time *differences* (latency, RTT) or sizes, so the stable
        // fold survives a constant clock offset.
        let fold_aggregates = |seed: u64| {
            let mut digest = seed;
            let mut mix = |w: u64| {
                digest ^= w;
                digest = digest.wrapping_mul(FNV_PRIME);
            };
            self.counts().fold_digest(&mut mix);
            self.latency().fold_digest(&mut mix);
            self.hops().fold_digest(&mut mix);
            self.occupancy().fold_digest(&mut mix);
            self.recovery_rtt().fold_digest(&mut mix);
            tree.fold_digest(&mut mix);
            digest
        };
        let digest = fold_aggregates(self.digest());
        let stable_digest = fold_aggregates(FNV_OFFSET);
        TraceSummary {
            label: label.to_string(),
            counts: *self.counts(),
            latency: self.latency().clone(),
            hops: self.hops().clone(),
            occupancy: self.occupancy().clone(),
            recovery_rtt: self.recovery_rtt().clone(),
            tree,
            records_retained: self.records().count(),
            records_evicted: self.evicted(),
            wall_clock: false,
            digest,
            stable_digest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{TraceKind, TraceRecord, TraceSink};
    use crate::TraceConfig;
    use agb_types::{EventId, NodeId, TimeMs};

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::new(TraceConfig::enabled());
        let id = EventId::new(NodeId::new(0), 0);
        r.record(TraceRecord {
            node: NodeId::new(0),
            at: TimeMs::from_secs(1),
            round: 1,
            kind: TraceKind::Publish { id },
        });
        r.record(TraceRecord {
            node: NodeId::new(2),
            at: TimeMs::from_secs(3),
            round: 3,
            kind: TraceKind::Deliver {
                id,
                from: NodeId::new(0),
                hops: 1,
            },
        });
        r
    }

    #[test]
    fn summary_json_has_schema_shape() {
        let s = sample_recorder().summary("adaptive");
        let j = s.to_json();
        assert_eq!(j.get("label").unwrap().as_str(), Some("adaptive"));
        assert_eq!(
            j.get("counts").unwrap().get("publishes").unwrap().as_u64(),
            Some(1)
        );
        assert!(j
            .get("histograms")
            .unwrap()
            .get("delivery_latency_rounds")
            .is_some());
        assert_eq!(
            j.get("tree").unwrap().get("deliveries").unwrap().as_u64(),
            Some(1)
        );
        let digest = j.get("digest").unwrap().as_str().unwrap();
        assert!(digest.starts_with("0x") && digest.len() == 18, "{digest}");
    }

    #[test]
    fn identical_traces_summarize_identically() {
        let a = sample_recorder().summary("x");
        let b = sample_recorder().summary("x");
        assert_eq!(a, b);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.to_json().pretty(), b.to_json().pretty());
    }

    fn shifted_recorder(offset_secs: u64) -> Recorder {
        let mut r = Recorder::new(TraceConfig::enabled());
        let id = EventId::new(NodeId::new(0), 0);
        r.record(TraceRecord {
            node: NodeId::new(0),
            at: TimeMs::from_secs(1 + offset_secs),
            round: 1,
            kind: TraceKind::Publish { id },
        });
        r.record(TraceRecord {
            node: NodeId::new(2),
            at: TimeMs::from_secs(3 + offset_secs),
            round: 3,
            kind: TraceKind::Deliver {
                id,
                from: NodeId::new(0),
                hops: 1,
            },
        });
        r
    }

    #[test]
    fn stable_digest_survives_a_clock_shift() {
        let base = shifted_recorder(0).summary("x");
        let shifted = shifted_recorder(1_000).summary("x");
        // Same behavior, clock started 1000 s later: the full digest
        // diverges (it mixes absolute timestamps), the stable one holds.
        assert_ne!(base.digest, shifted.digest);
        assert_eq!(base.stable_digest, shifted.stable_digest);
    }

    #[test]
    fn stable_digest_still_sees_behavior_changes() {
        let base = shifted_recorder(0).summary("x");
        let mut other = shifted_recorder(0);
        other.record(TraceRecord {
            node: NodeId::new(4),
            at: TimeMs::from_secs(5),
            round: 5,
            kind: TraceKind::Crash,
        });
        assert_ne!(base.stable_digest, other.summary("x").stable_digest);
    }

    #[test]
    fn wall_clock_marker_defaults_off_and_marks_on() {
        let s = sample_recorder().summary("x");
        assert!(!s.wall_clock);
        assert_eq!(s.to_json().get("wall_clock"), Some(&Json::Bool(false)));
        let marked = s.mark_wall_clock();
        assert!(marked.wall_clock);
        let j = marked.to_json();
        assert_eq!(j.get("wall_clock"), Some(&Json::Bool(true)));
        let stable = j.get("stable_digest").unwrap().as_str().unwrap();
        assert!(stable.starts_with("0x") && stable.len() == 18, "{stable}");
    }

    #[test]
    fn summary_digest_depends_on_aggregates_too() {
        let plain = sample_recorder();
        let mut extra = sample_recorder();
        extra.record(TraceRecord {
            node: NodeId::new(5),
            at: TimeMs::from_secs(4),
            round: 4,
            kind: TraceKind::BufferOccupancy {
                len: 3,
                capacity: 30,
            },
        });
        assert_ne!(plain.summary("x").digest, extra.summary("x").digest);
    }
}
