//! The standard trace sink: bounded raw-record ring + streaming
//! aggregates + order-sensitive digest.

use std::collections::VecDeque;

use agb_types::json::Json;
use agb_types::{DurationMs, FastHashMap, NodeId, TimeMs};

use crate::config::TraceConfig;
use crate::histogram::Histogram;
use crate::record::{DropCause, TraceKind, TraceRecord, TraceSink};
use crate::tree::TreeBuilder;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Per-kind record counts — the trace's drop taxonomy and traffic
/// summary in one flat struct.
///
/// Also used standalone (without a full [`Recorder`]) where only counts
/// are wanted, e.g. the Maelstrom harness's per-workload trace summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// Admissions at origins.
    pub publishes: u64,
    /// Forwarded copies.
    pub relays: u64,
    /// First deliveries.
    pub delivers: u64,
    /// Redundant gossip arrivals.
    pub duplicates: u64,
    /// Age-cap purges.
    pub drops_age: u64,
    /// Buffer-overflow evictions.
    pub drops_size: u64,
    /// Sender-side throttle suppressions.
    pub drops_congestion: u64,
    /// `IHave` digests piggybacked.
    pub ihaves: u64,
    /// `Graft` pull requests sent.
    pub grafts: u64,
    /// `Graft` replies served.
    pub retransmits: u64,
    /// Deliveries repaired through recovery.
    pub recovered: u64,
    /// Retransmissions that arrived after regular gossip already had.
    pub recovery_duplicates: u64,
    /// Events whose recovery ran out of retries.
    pub recovery_abandoned: u64,
    /// Membership-view size changes.
    pub view_changes: u64,
    /// Node crashes.
    pub crashes: u64,
    /// Node restarts.
    pub restarts: u64,
    /// Gossip frames sent across a topology-region boundary (only
    /// tallied when the probe carries a region map).
    pub cross_partition_msgs: u64,
    /// φ-accrual suspicion onsets.
    pub suspects: u64,
    /// Detector-driven evictions.
    pub detector_evicts: u64,
    /// Explicit heartbeats sent (gossip did not cover the link).
    pub heartbeats: u64,
    /// Frames shed by overloaded queues.
    pub sheds: u64,
    /// Evicted peers readmitted on fresh traffic.
    pub rejoins: u64,
}

impl TraceCounts {
    /// Tallies one record kind.
    pub fn observe(&mut self, kind: &TraceKind) {
        match kind {
            TraceKind::Publish { .. } => self.publishes += 1,
            TraceKind::Relay { .. } => self.relays += 1,
            TraceKind::Deliver { .. } => self.delivers += 1,
            TraceKind::Duplicate { .. } => self.duplicates += 1,
            TraceKind::Drop { cause, .. } => match cause {
                DropCause::Age => self.drops_age += 1,
                DropCause::Size => self.drops_size += 1,
                DropCause::Congestion => self.drops_congestion += 1,
            },
            TraceKind::IHave { .. } => self.ihaves += 1,
            TraceKind::Graft { .. } => self.grafts += 1,
            TraceKind::Retransmit { .. } => self.retransmits += 1,
            TraceKind::Recovered { .. } => self.recovered += 1,
            TraceKind::RecoveryDuplicate { .. } => self.recovery_duplicates += 1,
            TraceKind::RecoveryAbandoned { .. } => self.recovery_abandoned += 1,
            TraceKind::ViewChange { .. } => self.view_changes += 1,
            TraceKind::Crash => self.crashes += 1,
            TraceKind::Restart => self.restarts += 1,
            TraceKind::BufferOccupancy { .. } => {}
            TraceKind::CrossPartition { .. } => self.cross_partition_msgs += 1,
            TraceKind::Suspect { .. } => self.suspects += 1,
            TraceKind::DetectorEvict { .. } => self.detector_evicts += 1,
            TraceKind::Heartbeat { .. } => self.heartbeats += 1,
            TraceKind::Shed { .. } => self.sheds += 1,
            TraceKind::Rejoin { .. } => self.rejoins += 1,
        }
    }

    /// Element-wise sum (aggregating per-node or per-workload counts).
    pub fn merge(&mut self, other: &TraceCounts) {
        self.publishes += other.publishes;
        self.relays += other.relays;
        self.delivers += other.delivers;
        self.duplicates += other.duplicates;
        self.drops_age += other.drops_age;
        self.drops_size += other.drops_size;
        self.drops_congestion += other.drops_congestion;
        self.ihaves += other.ihaves;
        self.grafts += other.grafts;
        self.retransmits += other.retransmits;
        self.recovered += other.recovered;
        self.recovery_duplicates += other.recovery_duplicates;
        self.recovery_abandoned += other.recovery_abandoned;
        self.view_changes += other.view_changes;
        self.crashes += other.crashes;
        self.restarts += other.restarts;
        self.cross_partition_msgs += other.cross_partition_msgs;
        self.suspects += other.suspects;
        self.detector_evicts += other.detector_evicts;
        self.heartbeats += other.heartbeats;
        self.sheds += other.sheds;
        self.rejoins += other.rejoins;
    }

    /// Total records tallied (excluding occupancy snapshots, which are
    /// not counted).
    pub fn total(&self) -> u64 {
        self.as_pairs().iter().map(|&(_, v)| v).sum()
    }

    /// All drops, across the taxonomy.
    pub fn drops(&self) -> u64 {
        self.drops_age + self.drops_size + self.drops_congestion
    }

    /// `(label, count)` pairs in stable declaration order.
    pub fn as_pairs(&self) -> [(&'static str, u64); 22] {
        [
            ("publishes", self.publishes),
            ("relays", self.relays),
            ("delivers", self.delivers),
            ("duplicates", self.duplicates),
            ("drops_age", self.drops_age),
            ("drops_size", self.drops_size),
            ("drops_congestion", self.drops_congestion),
            ("ihaves", self.ihaves),
            ("grafts", self.grafts),
            ("retransmits", self.retransmits),
            ("recovered", self.recovered),
            ("recovery_duplicates", self.recovery_duplicates),
            ("recovery_abandoned", self.recovery_abandoned),
            ("view_changes", self.view_changes),
            ("crashes", self.crashes),
            ("restarts", self.restarts),
            ("cross_partition_msgs", self.cross_partition_msgs),
            ("suspects", self.suspects),
            ("detector_evicts", self.detector_evicts),
            ("heartbeats", self.heartbeats),
            ("sheds", self.sheds),
            ("rejoins", self.rejoins),
        ]
    }

    /// JSON object with one field per counter (stable key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.as_pairs()
                .into_iter()
                .map(|(k, v)| (k.to_string(), Json::from(v)))
                .collect(),
        )
    }

    /// Folds the counts into a digest accumulator.
    pub fn fold_digest(&self, mix: &mut impl FnMut(u64)) {
        for (_, v) in self.as_pairs() {
            mix(v);
        }
    }
}

/// The standard [`TraceSink`]: keeps the most recent raw records in a
/// bounded ring and folds *every* record — including ones later evicted
/// from the ring — into streaming aggregates:
///
/// * [`TraceCounts`] per kind (the drop taxonomy),
/// * fixed-bucket [`Histogram`]s for delivery latency in gossip rounds,
///   hops-to-delivery, buffer occupancy, and recovery round-trip time,
/// * per-event dissemination trees ([`TreeBuilder`]),
/// * an order-sensitive FNV-1a [`digest`](Recorder::digest) over the
///   full record stream.
///
/// Records must arrive in the engine's canonical merge order; under the
/// deterministic sharded simulator that makes the digest bit-identical
/// at every `AGB_THREADS` setting.
#[derive(Debug)]
pub struct Recorder {
    config: TraceConfig,
    round: DurationMs,
    ring: VecDeque<TraceRecord>,
    evicted: u64,
    counts: TraceCounts,
    latency: Histogram,
    hops: Histogram,
    occupancy: Histogram,
    recovery_rtt: Histogram,
    trees: TreeBuilder,
    /// Open `Graft` round trips: (requester, advertiser) -> request time.
    outstanding: FastHashMap<(NodeId, NodeId), TimeMs>,
    digest: u64,
}

impl Recorder {
    /// Creates a recorder for `config`, assuming a 1-second gossip round
    /// for the latency conversion (override with
    /// [`with_round`](Self::with_round)).
    pub fn new(config: TraceConfig) -> Self {
        Recorder {
            config,
            round: DurationMs::from_secs(1),
            ring: VecDeque::new(),
            evicted: 0,
            counts: TraceCounts::default(),
            latency: Histogram::new(
                "delivery_latency_rounds",
                &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0],
            ),
            hops: Histogram::new(
                "hops_to_delivery",
                &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0],
            ),
            occupancy: Histogram::new(
                "buffer_occupancy",
                &[5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0],
            ),
            recovery_rtt: Histogram::new(
                "recovery_rtt_ms",
                &[50.0, 100.0, 200.0, 400.0, 800.0, 1_600.0, 3_200.0, 6_400.0],
            ),
            trees: TreeBuilder::new(),
            outstanding: FastHashMap::default(),
            digest: FNV_OFFSET,
        }
    }

    /// Sets the gossip period used to convert delivery latency from
    /// milliseconds to rounds.
    pub fn with_round(mut self, round: DurationMs) -> Self {
        self.round = round;
        self
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Records retained in the ring (most recent last).
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Records folded into aggregates but evicted from the ring.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Per-kind counts (the drop taxonomy lives here).
    pub fn counts(&self) -> &TraceCounts {
        &self.counts
    }

    /// Delivery latency in gossip rounds (publish → first delivery).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Hops-to-delivery (the delivered copy's age).
    pub fn hops(&self) -> &Histogram {
        &self.hops
    }

    /// Buffer occupancy snapshots (one per node per round).
    pub fn occupancy(&self) -> &Histogram {
        &self.occupancy
    }

    /// Recovery round-trip time (`Graft` sent → event recovered), ms.
    pub fn recovery_rtt(&self) -> &Histogram {
        &self.recovery_rtt
    }

    /// The dissemination-tree builder.
    pub fn trees(&self) -> &TreeBuilder {
        &self.trees
    }

    /// Streaming FNV-1a digest over every record seen, in order.
    /// Identical streams — across runs and thread counts — yield
    /// identical digests.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Estimated resident footprint of the retained ring and the open
    /// recovery round-trip table (the recorder's two growable stores).
    fn estimated_bytes(&self) -> u64 {
        let ring = self.ring.len() * std::mem::size_of::<TraceRecord>();
        let outstanding =
            self.outstanding.len() * (std::mem::size_of::<((NodeId, NodeId), TimeMs)>() + 8);
        (ring + outstanding) as u64
    }

    fn mix(&mut self, word: u64) {
        self.digest ^= word;
        self.digest = self.digest.wrapping_mul(FNV_PRIME);
    }

    fn fold_record(&mut self, r: &TraceRecord) {
        self.mix(r.kind.tag());
        self.mix(u64::from(r.node.as_u32()));
        self.mix(r.at.as_millis());
        self.mix(u64::from(r.round));
        if let Some(id) = r.kind.event_id() {
            self.mix(u64::from(id.origin().as_u32()));
            self.mix(id.seq());
        }
        match &r.kind {
            TraceKind::Relay { to, age, .. } => {
                self.mix(u64::from(to.as_u32()));
                self.mix(u64::from(*age));
            }
            TraceKind::Deliver { from, hops, .. } => {
                self.mix(u64::from(from.as_u32()));
                self.mix(u64::from(*hops));
            }
            TraceKind::Duplicate { from, .. } | TraceKind::Recovered { from, .. } => {
                self.mix(u64::from(from.as_u32()));
            }
            TraceKind::Drop { age, cause, .. } => {
                self.mix(u64::from(*age));
                self.mix(*cause as u64);
            }
            TraceKind::IHave { to, ids } | TraceKind::Graft { to, ids } => {
                self.mix(u64::from(to.as_u32()));
                self.mix(u64::from(*ids));
            }
            TraceKind::Retransmit { to, events, missed } => {
                self.mix(u64::from(to.as_u32()));
                self.mix(u64::from(*events));
                self.mix(u64::from(*missed));
            }
            TraceKind::ViewChange { view_size } => self.mix(u64::from(*view_size)),
            TraceKind::BufferOccupancy { len, capacity } => {
                self.mix(u64::from(*len));
                self.mix(u64::from(*capacity));
            }
            TraceKind::CrossPartition { to, region } => {
                self.mix(u64::from(to.as_u32()));
                self.mix(u64::from(*region));
            }
            _ => {}
        }
    }

    fn aggregate(&mut self, r: &TraceRecord) {
        match &r.kind {
            TraceKind::Deliver { id, hops, .. } => {
                self.hops.observe(f64::from(*hops));
                if let Some(published) = self.trees.publish_at(*id) {
                    let ms = r.at.since(published).as_millis() as f64;
                    let round = self.round.as_millis().max(1) as f64;
                    self.latency.observe(ms / round);
                }
            }
            TraceKind::BufferOccupancy { len, .. } => {
                self.occupancy.observe(f64::from(*len));
            }
            TraceKind::Graft { to, .. } => {
                // Latest request wins: retries restart the RTT clock.
                self.outstanding.insert((r.node, *to), r.at);
            }
            TraceKind::Recovered { from, .. } => {
                if let Some(sent) = self.outstanding.remove(&(r.node, *from)) {
                    self.recovery_rtt
                        .observe(r.at.since(sent).as_millis() as f64);
                }
            }
            TraceKind::Crash => {
                // Crashed state is lost; forget its open round trips.
                self.outstanding
                    .retain(|&(requester, _), _| requester != r.node);
            }
            _ => {}
        }
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, record: TraceRecord) {
        self.fold_record(&record);
        self.counts.observe(&record.kind);
        self.trees.observe(&record);
        self.aggregate(&record);
        if self.config.ring_capacity == 0 {
            self.evicted += 1;
            return;
        }
        if self.ring.len() == self.config.ring_capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(record);
    }
}

impl agb_profile::MemReport for Recorder {
    fn mem_usage(&self) -> agb_profile::MemUsage {
        agb_profile::MemUsage::new(
            self.estimated_bytes(),
            self.ring.len() as u64 + self.outstanding.len() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_types::EventId;

    fn rec(node: u32, at_ms: u64, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            node: NodeId::new(node),
            at: TimeMs::from_millis(at_ms),
            round: (at_ms / 1_000) as u32,
            kind,
        }
    }

    fn id(n: u32, s: u64) -> EventId {
        EventId::new(NodeId::new(n), s)
    }

    #[test]
    fn latency_is_measured_from_publish_in_rounds() {
        let mut r = Recorder::new(TraceConfig::enabled());
        let e = id(0, 0);
        r.record(rec(0, 1_000, TraceKind::Publish { id: e }));
        r.record(rec(
            3,
            4_000,
            TraceKind::Deliver {
                id: e,
                from: NodeId::new(1),
                hops: 2,
            },
        ));
        assert_eq!(r.latency().count(), 1);
        assert_eq!(r.latency().mean(), Some(3.0));
        assert_eq!(r.hops().mean(), Some(2.0));
    }

    #[test]
    fn recovery_rtt_matches_graft_to_recovered() {
        let mut r = Recorder::new(TraceConfig::enabled());
        r.record(rec(
            2,
            5_000,
            TraceKind::Graft {
                to: NodeId::new(7),
                ids: 1,
            },
        ));
        r.record(rec(
            2,
            5_800,
            TraceKind::Recovered {
                id: id(0, 3),
                from: NodeId::new(7),
            },
        ));
        assert_eq!(r.recovery_rtt().count(), 1);
        assert_eq!(r.recovery_rtt().mean(), Some(800.0));
        // A second Recovered with no open graft records nothing.
        r.record(rec(
            2,
            6_000,
            TraceKind::Recovered {
                id: id(0, 4),
                from: NodeId::new(7),
            },
        ));
        assert_eq!(r.recovery_rtt().count(), 1);
    }

    #[test]
    fn crash_voids_open_round_trips() {
        let mut r = Recorder::new(TraceConfig::enabled());
        r.record(rec(
            2,
            5_000,
            TraceKind::Graft {
                to: NodeId::new(7),
                ids: 1,
            },
        ));
        r.record(rec(2, 5_500, TraceKind::Crash));
        r.record(rec(
            2,
            9_000,
            TraceKind::Recovered {
                id: id(0, 3),
                from: NodeId::new(7),
            },
        ));
        assert_eq!(r.recovery_rtt().count(), 0);
        assert_eq!(r.counts().crashes, 1);
    }

    #[test]
    fn ring_evicts_oldest_but_aggregates_keep_counting() {
        let mut r = Recorder::new(TraceConfig::enabled().with_ring_capacity(2));
        for seq in 0..5 {
            r.record(rec(0, seq, TraceKind::Publish { id: id(0, seq) }));
        }
        assert_eq!(r.records().count(), 2);
        assert_eq!(r.evicted(), 3);
        assert_eq!(r.counts().publishes, 5);
        assert_eq!(r.trees().event_count(), 5);
        let retained: Vec<u64> = r
            .records()
            .filter_map(|rec| rec.kind.event_id())
            .map(|e| e.seq())
            .collect();
        assert_eq!(retained, vec![3, 4]);
    }

    #[test]
    fn digest_is_order_sensitive_and_reproducible() {
        let a = {
            let mut r = Recorder::new(TraceConfig::enabled());
            r.record(rec(0, 0, TraceKind::Publish { id: id(0, 0) }));
            r.record(rec(1, 1, TraceKind::Publish { id: id(1, 0) }));
            r.digest()
        };
        let b = {
            let mut r = Recorder::new(TraceConfig::enabled());
            r.record(rec(0, 0, TraceKind::Publish { id: id(0, 0) }));
            r.record(rec(1, 1, TraceKind::Publish { id: id(1, 0) }));
            r.digest()
        };
        let swapped = {
            let mut r = Recorder::new(TraceConfig::enabled());
            r.record(rec(1, 1, TraceKind::Publish { id: id(1, 0) }));
            r.record(rec(0, 0, TraceKind::Publish { id: id(0, 0) }));
            r.digest()
        };
        assert_eq!(a, b);
        assert_ne!(a, swapped);
    }

    #[test]
    fn counts_merge_and_total() {
        let mut a = TraceCounts::default();
        a.observe(&TraceKind::Publish { id: id(0, 0) });
        a.observe(&TraceKind::Drop {
            id: None,
            age: 0,
            cause: DropCause::Congestion,
        });
        let mut b = TraceCounts::default();
        b.observe(&TraceKind::Crash);
        a.merge(&b);
        assert_eq!(a.publishes, 1);
        assert_eq!(a.drops_congestion, 1);
        assert_eq!(a.crashes, 1);
        assert_eq!(a.total(), 3);
        assert_eq!(a.drops(), 1);
        let j = a.to_json();
        assert_eq!(j.get("publishes").unwrap().as_u64(), Some(1));
    }
}
