//! Post-run reconstruction of per-event causal dissemination trees.
//!
//! Every delivered copy of an event names the node the winning copy
//! arrived from, so the set of `Deliver` records for one event id *is*
//! its first-delivery spanning tree (parent = `from`, depth = `hops`).
//! Relay records add the outgoing side: how many copies each node
//! forwarded. The builder folds the trace stream into per-event
//! aggregates and summarizes them as [`TreeStats`]: spanning-tree depth,
//! redundancy ratio (arrivals per useful delivery), and the relay
//! fan-out distribution.

use agb_types::json::Json;
use agb_types::{EventId, FastHashMap, NodeId, TimeMs};

use crate::histogram::Histogram;
use crate::record::{TraceKind, TraceRecord};

/// Aggregated dissemination facts for one event id.
#[derive(Debug, Clone, Default)]
struct EventTree {
    /// Origin node, once a `Publish` record is seen.
    origin: Option<NodeId>,
    /// Admission time at the origin (the latency clock's zero).
    publish_at: Option<TimeMs>,
    /// First deliveries (gossip `Deliver` + recovery `Recovered`) — the
    /// spanning tree's node count.
    deliveries: u32,
    /// Redundant arrivals (`Duplicate` + `RecoveryDuplicate`).
    duplicates: u32,
    /// Deliveries repaired by the recovery layer.
    recovered: u32,
    /// Deepest delivery hop count — the spanning tree's depth.
    max_hops: u32,
    /// Outgoing relay copies per forwarding node (fan-out).
    relays_by_node: FastHashMap<NodeId, u32>,
}

/// Per-event summary exposed for dashboards (sorted, deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventTreeSummary {
    /// The event.
    pub id: EventId,
    /// Spanning-tree size: nodes that delivered the event.
    pub deliveries: u32,
    /// Redundant arrivals.
    pub duplicates: u32,
    /// Deliveries repaired through recovery.
    pub recovered: u32,
    /// Spanning-tree depth (deepest delivery's hop count).
    pub depth: u32,
    /// Total relay copies sent for this event across all nodes.
    pub relays: u32,
}

/// Aggregate dissemination-tree statistics over all traced events.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Events with at least one trace record.
    pub events: u64,
    /// Events that reached at least one node.
    pub delivered_events: u64,
    /// First deliveries across all events (spanning-tree nodes).
    pub deliveries: u64,
    /// Redundant arrivals across all events.
    pub duplicates: u64,
    /// Deliveries repaired by the recovery layer.
    pub recovered: u64,
    /// Relay copies sent across all events.
    pub relays: u64,
    /// Mean spanning-tree depth over delivered events.
    pub mean_depth: f64,
    /// Deepest spanning tree observed.
    pub max_depth: u32,
    /// Arrivals per useful delivery: `(deliveries + duplicates) /
    /// deliveries`. 1.0 is a perfect tree; gossip's redundancy is the
    /// price of its fault tolerance.
    pub redundancy: f64,
    /// Distribution of per-node relay fan-out (copies of one event one
    /// node forwarded).
    pub fanout: Histogram,
}

impl TreeStats {
    /// JSON form (stable key order).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("events", Json::from(self.events)),
            ("delivered_events", Json::from(self.delivered_events)),
            ("deliveries", Json::from(self.deliveries)),
            ("duplicates", Json::from(self.duplicates)),
            ("recovered", Json::from(self.recovered)),
            ("relays", Json::from(self.relays)),
            ("mean_depth", Json::Num(self.mean_depth)),
            ("max_depth", Json::from(u64::from(self.max_depth))),
            ("redundancy", Json::Num(self.redundancy)),
            ("fanout", self.fanout.to_json()),
        ])
    }

    /// Folds the stats into a digest accumulator.
    pub(crate) fn fold_digest(&self, mix: &mut impl FnMut(u64)) {
        mix(self.events);
        mix(self.delivered_events);
        mix(self.deliveries);
        mix(self.duplicates);
        mix(self.recovered);
        mix(self.relays);
        mix(u64::from(self.max_depth));
        mix(self.redundancy.to_bits());
        self.fanout.fold_digest(mix);
    }
}

/// Streams trace records into per-event dissemination trees.
///
/// # Example
///
/// ```
/// use agb_trace::{TraceKind, TraceRecord, TreeBuilder};
/// use agb_types::{EventId, NodeId, TimeMs};
///
/// let origin = NodeId::new(0);
/// let id = EventId::new(origin, 0);
/// let mut trees = TreeBuilder::new();
/// let stamp = |node, kind| TraceRecord { node, at: TimeMs::ZERO, round: 0, kind };
/// trees.observe(&stamp(origin, TraceKind::Publish { id }));
/// trees.observe(&stamp(origin, TraceKind::Deliver { id, from: origin, hops: 0 }));
/// trees.observe(&stamp(NodeId::new(1), TraceKind::Deliver { id, from: origin, hops: 1 }));
/// trees.observe(&stamp(NodeId::new(1), TraceKind::Duplicate { id, from: origin }));
///
/// let stats = trees.stats();
/// assert_eq!(stats.deliveries, 2);
/// assert_eq!(stats.max_depth, 1);
/// assert_eq!(stats.redundancy, 1.5); // 3 arrivals / 2 deliveries
/// ```
#[derive(Debug, Clone, Default)]
pub struct TreeBuilder {
    trees: FastHashMap<EventId, EventTree>,
}

impl TreeBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record into its event's tree. Records without an event
    /// id are ignored.
    pub fn observe(&mut self, record: &TraceRecord) {
        match &record.kind {
            TraceKind::Publish { id } => {
                let t = self.trees.entry(*id).or_default();
                t.origin = Some(record.node);
                t.publish_at = Some(record.at);
            }
            TraceKind::Relay { id, .. } => {
                let t = self.trees.entry(*id).or_default();
                *t.relays_by_node.entry(record.node).or_insert(0) += 1;
            }
            TraceKind::Deliver { id, hops, .. } => {
                let t = self.trees.entry(*id).or_default();
                t.deliveries += 1;
                t.max_hops = t.max_hops.max(*hops);
            }
            TraceKind::Duplicate { id, .. } | TraceKind::RecoveryDuplicate { id } => {
                self.trees.entry(*id).or_default().duplicates += 1;
            }
            TraceKind::Recovered { id, .. } => {
                let t = self.trees.entry(*id).or_default();
                t.deliveries += 1;
                t.recovered += 1;
            }
            _ => {}
        }
    }

    /// Number of distinct event ids observed.
    pub fn event_count(&self) -> usize {
        self.trees.len()
    }

    /// Admission time of `id` at its origin, if a `Publish` was traced
    /// (the delivery-latency clock's zero).
    pub fn publish_at(&self, id: EventId) -> Option<TimeMs> {
        self.trees.get(&id).and_then(|t| t.publish_at)
    }

    /// Per-event summaries, sorted by event id (deterministic output
    /// regardless of hash-map iteration order).
    pub fn per_event(&self) -> Vec<EventTreeSummary> {
        let mut out: Vec<EventTreeSummary> = self
            .trees
            .iter()
            .map(|(&id, t)| EventTreeSummary {
                id,
                deliveries: t.deliveries,
                duplicates: t.duplicates,
                recovered: t.recovered,
                depth: t.max_hops,
                relays: t.relays_by_node.values().sum(),
            })
            .collect();
        out.sort_unstable_by_key(|s| s.id);
        out
    }

    /// Aggregate statistics over all traced events.
    ///
    /// Every aggregate is order-independent (integer sums, maxima, and
    /// integer-valued histogram samples), so the result is deterministic
    /// even though the underlying maps iterate in hash order.
    pub fn stats(&self) -> TreeStats {
        let mut deliveries = 0u64;
        let mut duplicates = 0u64;
        let mut recovered = 0u64;
        let mut relays = 0u64;
        let mut delivered_events = 0u64;
        let mut depth_sum = 0u64;
        let mut max_depth = 0u32;
        let mut fanout = Histogram::new("relay_fanout", &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0]);
        for t in self.trees.values() {
            deliveries += u64::from(t.deliveries);
            duplicates += u64::from(t.duplicates);
            recovered += u64::from(t.recovered);
            if t.deliveries > 0 {
                delivered_events += 1;
                depth_sum += u64::from(t.max_hops);
                max_depth = max_depth.max(t.max_hops);
            }
            for &n in t.relays_by_node.values() {
                relays += u64::from(n);
                fanout.observe(f64::from(n));
            }
        }
        let mean_depth = if delivered_events > 0 {
            depth_sum as f64 / delivered_events as f64
        } else {
            0.0
        };
        let redundancy = if deliveries > 0 {
            (deliveries + duplicates) as f64 / deliveries as f64
        } else {
            0.0
        };
        TreeStats {
            events: self.trees.len() as u64,
            delivered_events,
            deliveries,
            duplicates,
            recovered,
            relays,
            mean_depth,
            max_depth,
            redundancy,
            fanout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            node: NodeId::new(node),
            at: TimeMs::ZERO,
            round: 0,
            kind,
        }
    }

    fn id(n: u32, s: u64) -> EventId {
        EventId::new(NodeId::new(n), s)
    }

    #[test]
    fn relays_accumulate_fanout_per_node() {
        let mut b = TreeBuilder::new();
        let e = id(0, 0);
        for to in 1..4 {
            b.observe(&rec(
                0,
                TraceKind::Relay {
                    id: e,
                    to: NodeId::new(to),
                    age: 1,
                },
            ));
        }
        b.observe(&rec(
            2,
            TraceKind::Relay {
                id: e,
                to: NodeId::new(5),
                age: 2,
            },
        ));
        let stats = b.stats();
        assert_eq!(stats.relays, 4);
        // Two forwarding nodes: one with fan-out 3, one with fan-out 1.
        assert_eq!(stats.fanout.count(), 2);
        assert_eq!(stats.fanout.max(), Some(3.0));
    }

    #[test]
    fn recovered_counts_as_delivery() {
        let mut b = TreeBuilder::new();
        let e = id(0, 0);
        b.observe(&rec(
            1,
            TraceKind::Recovered {
                id: e,
                from: NodeId::new(2),
            },
        ));
        b.observe(&rec(1, TraceKind::RecoveryDuplicate { id: e }));
        let stats = b.stats();
        assert_eq!(stats.deliveries, 1);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.redundancy, 2.0);
    }

    #[test]
    fn per_event_is_sorted_by_id() {
        let mut b = TreeBuilder::new();
        for n in [3u32, 1, 2] {
            b.observe(&rec(n, TraceKind::Publish { id: id(n, 0) }));
        }
        let ids: Vec<EventId> = b.per_event().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![id(1, 0), id(2, 0), id(3, 0)]);
    }

    #[test]
    fn publish_at_feeds_the_latency_clock() {
        let mut b = TreeBuilder::new();
        let e = id(0, 7);
        assert_eq!(b.publish_at(e), None);
        b.observe(&TraceRecord {
            node: NodeId::new(0),
            at: TimeMs::from_millis(1_500),
            round: 1,
            kind: TraceKind::Publish { id: e },
        });
        assert_eq!(b.publish_at(e), Some(TimeMs::from_millis(1_500)));
    }

    #[test]
    fn empty_builder_has_zeroed_stats() {
        let stats = TreeBuilder::new().stats();
        assert_eq!(stats.events, 0);
        assert_eq!(stats.redundancy, 0.0);
        assert_eq!(stats.mean_depth, 0.0);
    }
}
