//! Fixed-bucket histograms for trace aggregates.

use agb_types::json::Json;

/// A histogram over fixed, caller-supplied bucket upper bounds.
///
/// Buckets are `(-inf, b0], (b0, b1], …, (b_{n-1}, +inf)`: `n` bounds
/// produce `n + 1` counters, the last catching overflow. Bounds are fixed
/// at construction so two runs (or two protocols in one report) bucket
/// identically and their histograms diff cleanly — the same reason the
/// metrics layer bins time series on a fixed grid.
///
/// Alongside the counters the histogram tracks count, sum, min and max of
/// the raw samples, so means are exact even though percentiles are
/// bucket-resolution approximations.
///
/// # Example
///
/// ```
/// use agb_trace::Histogram;
///
/// let mut h = Histogram::new("hops", &[1.0, 2.0, 4.0, 8.0]);
/// for hops in [1.0, 1.0, 2.0, 3.0, 5.0] {
///     h.observe(hops);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.mean(), Some(2.4));
/// assert_eq!(h.max(), Some(5.0));
/// assert!(h.quantile(0.5).unwrap() <= 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    name: &'static str,
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given bucket upper bounds
    /// (must be strictly ascending; checked in debug builds).
    pub fn new(name: &'static str, bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            name,
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The histogram's name (report row / JSON key).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample. Non-finite samples are ignored (they carry no
    /// bucket and would poison the running sum).
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean of the raw samples, if any were observed.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest observed sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed sample.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// first bucket whose cumulative count reaches `q * count`. The
    /// overflow bucket reports the observed maximum.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; last = overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rows for a dashboard table: `(bucket label, count)` for every
    /// non-empty bucket.
    pub fn rows(&self) -> Vec<(String, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(idx, &c)| {
                let label = if idx < self.bounds.len() {
                    format!("<= {}", trim_f64(self.bounds[idx]))
                } else {
                    format!("> {}", trim_f64(*self.bounds.last().unwrap_or(&0.0)))
                };
                (label, c)
            })
            .collect()
    }

    /// JSON form: name, bounds, per-bucket counts, and the running
    /// aggregates (stable key order via [`Json::obj`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            (
                "bounds",
                Json::Arr(self.bounds.iter().map(|&b| Json::Num(b)).collect()),
            ),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::from(c)).collect()),
            ),
            ("count", Json::from(self.count)),
            ("sum", Json::Num(self.sum)),
            ("mean", self.mean().map_or(Json::Null, Json::Num)),
            ("min", self.min().map_or(Json::Null, Json::Num)),
            ("max", self.max().map_or(Json::Null, Json::Num)),
            ("p50", self.quantile(0.5).map_or(Json::Null, Json::Num)),
            ("p99", self.quantile(0.99).map_or(Json::Null, Json::Num)),
        ])
    }

    /// Folds the histogram's counters into a digest accumulator
    /// (order-stable: bucket index order).
    pub(crate) fn fold_digest(&self, mix: &mut impl FnMut(u64)) {
        mix(self.count);
        mix(self.sum.to_bits());
        for &c in &self.counts {
            mix(c);
        }
    }
}

fn trim_f64(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_inclusive_upper_bounds() {
        let mut h = Histogram::new("t", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.0);
        h.observe(1.5);
        h.observe(2.0);
        h.observe(9.0);
        assert_eq!(h.bucket_counts(), &[2, 2, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(9.0));
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new("t", &[1.0]);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.rows().is_empty());
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut h = Histogram::new("t", &[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        h.observe(0.5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Some(0.5));
    }

    #[test]
    fn quantile_walks_cumulative_counts() {
        let mut h = Histogram::new("t", &[1.0, 2.0, 4.0]);
        for v in [0.5, 0.5, 1.5, 3.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.4), Some(1.0));
        assert_eq!(h.quantile(0.6), Some(2.0));
        assert_eq!(h.quantile(0.8), Some(4.0));
        // Overflow bucket reports the true max.
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn rows_label_overflow_and_skip_empty() {
        let mut h = Histogram::new("t", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(5.0);
        let rows = h.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], ("<= 1".to_string(), 1));
        assert_eq!(rows[1], ("> 2".to_string(), 1));
    }

    #[test]
    fn json_has_stable_shape() {
        let mut h = Histogram::new("latency_rounds", &[1.0]);
        h.observe(0.5);
        let j = h.to_json();
        assert_eq!(j.get("name").unwrap().as_str(), Some("latency_rounds"));
        assert_eq!(j.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("mean").unwrap().as_f64(), Some(0.5));
        assert_eq!(j.get("p50").unwrap().as_f64(), Some(1.0));
    }
}
