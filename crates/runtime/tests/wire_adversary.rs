//! Property-based tests of the frame codec under the byte-level
//! adversary (`agb-failure`): every mutation class the adversary can
//! apply — bit flips, truncation, duplication, reordering — against
//! arbitrary full [`GossipFrame`]s, asserting the decoder is panic-free
//! and never confuses a damaged frame with a *different* valid one.

use agb_core::{BuffAd, Event, GossipFrame, GossipMessage, GraftRequest, IHaveDigest};
use agb_failure::{AdversaryConfig, ByteAdversary, Mutation};
use agb_membership::{MembershipDigest, Unsubscription};
use agb_runtime::wire::{decode_frame, encode_frame};
use agb_types::{DetRng, DurationMs, EventId, NodeId, Payload};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_event() -> impl Strategy<Value = Event> {
    (
        0u32..64,
        0u64..10_000,
        0u32..64,
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(origin, seq, age, payload)| {
            Event::with_age(
                EventId::new(NodeId::new(origin), seq),
                age,
                Payload::from(payload),
            )
        })
}

fn arb_message() -> impl Strategy<Value = GossipMessage> {
    (
        0u32..64,
        0u64..1_000,
        proptest::collection::vec((0u32..64, 1u32..1_000), 0..4),
        proptest::collection::vec(arb_event(), 0..24),
        proptest::collection::vec(0u32..64, 0..6),
        proptest::collection::vec((0u32..64, 1u32..32), 0..6),
    )
        .prop_map(
            |(sender, period, ads, events, subs, unsubs)| GossipMessage {
                sender: NodeId::new(sender),
                sample_period: period,
                min_buffs: ads
                    .into_iter()
                    .map(|(node, capacity)| BuffAd {
                        node: NodeId::new(node),
                        capacity,
                    })
                    .collect(),
                events: events.into(),
                membership: MembershipDigest {
                    subs: subs.into_iter().map(NodeId::new).collect(),
                    unsubs: unsubs
                        .into_iter()
                        .map(|(node, ttl)| Unsubscription {
                            node: NodeId::new(node),
                            ttl,
                        })
                        .collect(),
                },
            },
        )
}

fn arb_frame() -> impl Strategy<Value = GossipFrame> {
    use agb_core::Retransmission;
    (
        arb_message(),
        proptest::option::of(proptest::collection::vec((0u32..64, 0u64..10_000), 0..32)),
        0u8..3,
        0u32..64,
        proptest::collection::vec(arb_event(), 0..8),
    )
        .prop_map(|(msg, digest, kind, sender, events)| {
            let ids = |pairs: Vec<(u32, u64)>| -> Vec<EventId> {
                pairs
                    .into_iter()
                    .map(|(o, s)| EventId::new(NodeId::new(o), s))
                    .collect()
            };
            match kind {
                0 => GossipFrame::Gossip {
                    msg,
                    ihave: digest.map(|d| IHaveDigest { ids: ids(d) }),
                },
                1 => GossipFrame::Graft(GraftRequest {
                    sender: NodeId::new(sender),
                    ids: digest.map(ids).unwrap_or_default(),
                }),
                _ => GossipFrame::Retransmit(Retransmission {
                    sender: NodeId::new(sender),
                    events,
                }),
            }
        })
}

/// An adversary that always damages the payload (bit flips and
/// truncation in a 2:1 mix — the two destructive mutation classes).
fn destructive_adversary() -> ByteAdversary {
    ByteAdversary::new(AdversaryConfig {
        corrupt: 1.0,
        truncate: 0.5,
        duplicate: 0.0,
        reorder: 0.0,
        reorder_delay: DurationMs::from_millis(0),
    })
}

/// An adversary drawing from every mutation class.
fn mixed_adversary() -> ByteAdversary {
    ByteAdversary::new(AdversaryConfig {
        corrupt: 0.4,
        truncate: 0.2,
        duplicate: 0.2,
        reorder: 0.2,
        reorder_delay: DurationMs::from_millis(50),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Destructively mutated frames never panic the decoder, and a frame
    /// that still decodes is never confused with a *different* valid
    /// frame: either the damage is detected (`Err`) or — when the flipped
    /// bits happen to cancel out into a consistent encoding — the decoded
    /// value must be structurally valid on its own terms. Truncation in
    /// particular must always be detected.
    #[test]
    fn mutated_frames_never_confuse_the_decoder(frame in arb_frame(), seed in 0u64..1_000_000) {
        let bytes = encode_frame(&frame).to_vec();
        let mut rng = DetRng::seed_from_u64(seed);
        let adversary = destructive_adversary();
        let mut damaged = bytes.clone();
        let mutation = adversary.mutate(&mut damaged, &mut rng);
        prop_assert_ne!(mutation, Mutation::None, "corrupt=1.0 always acts");
        if mutation == Mutation::Truncated {
            prop_assert!(damaged.len() < bytes.len());
            prop_assert!(decode_frame(&damaged).is_err(), "truncation must be detected");
        } else if let Ok(decoded) = decode_frame(&damaged) {
            // Bit flips: the checksum trailer catches essentially all of
            // them; if one ever slips through it must decode into a frame
            // whose re-encoding reproduces the damaged bytes exactly —
            // i.e. a genuine alternative encoding, not a misparse.
            prop_assert_eq!(encode_frame(&decoded).to_vec(), damaged);
        }
    }

    /// The non-destructive mutation classes (duplicate, reorder) leave
    /// the bytes intact, so the frame must still decode to the original;
    /// destructive classes must never yield a silently different frame.
    #[test]
    fn mutation_classes_behave_as_labeled(frame in arb_frame(), seed in 0u64..1_000_000) {
        let bytes = encode_frame(&frame).to_vec();
        let mut rng = DetRng::seed_from_u64(seed);
        let adversary = mixed_adversary();
        let mut damaged = bytes.clone();
        match adversary.mutate(&mut damaged, &mut rng) {
            Mutation::None | Mutation::Duplicated | Mutation::Reordered(_) => {
                prop_assert_eq!(&damaged, &bytes);
                prop_assert_eq!(decode_frame(&damaged).expect("intact"), frame);
            }
            Mutation::Truncated => {
                prop_assert!(decode_frame(&damaged).is_err());
            }
            Mutation::Corrupted => {
                prop_assert_ne!(&damaged, &bytes);
                if let Ok(decoded) = decode_frame(&damaged) {
                    prop_assert_eq!(encode_frame(&decoded).to_vec(), damaged);
                }
            }
        }
    }

    /// Repeated mutation rounds (a worst-case link) still never panic the
    /// decoder, even as damage compounds.
    #[test]
    fn compounded_damage_is_panic_free(frame in arb_frame(), seed in 0u64..1_000_000) {
        let mut bytes = encode_frame(&frame).to_vec();
        let mut rng = DetRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        let adversary = destructive_adversary();
        for _ in 0..4 {
            adversary.mutate(&mut bytes, &mut rng);
            let _ = decode_frame(&bytes); // must return, not panic
            if bytes.is_empty() {
                break;
            }
        }
    }

    /// The clean round-trip stays a fixed point under zero-rate
    /// adversaries: an inert config never touches the bytes.
    #[test]
    fn inert_adversary_is_a_fixed_point(frame in arb_frame(), seed in 0u64..1_000_000) {
        let bytes = encode_frame(&frame).to_vec();
        let mut rng = DetRng::seed_from_u64(seed);
        let adversary = ByteAdversary::new(AdversaryConfig {
            corrupt: 0.0,
            truncate: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_delay: DurationMs::from_millis(0),
        });
        let mut untouched = bytes.clone();
        prop_assert_eq!(adversary.mutate(&mut untouched, &mut rng), Mutation::None);
        prop_assert_eq!(&untouched, &bytes);
        prop_assert_eq!(decode_frame(&untouched).expect("clean"), frame);
    }
}
