//! Property-based tests of the wire codec: arbitrary messages round-trip,
//! arbitrary bytes never panic the decoder, fragmentation preserves
//! content.

use agb_core::{BuffAd, Event, GossipMessage};
use agb_membership::{MembershipDigest, Unsubscription};
use agb_runtime::wire::{decode, encode, split_for_datagram};
use agb_types::{EventId, NodeId, Payload};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    (
        0u32..64,
        0u64..10_000,
        0u32..64,
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(origin, seq, age, payload)| {
            Event::with_age(
                EventId::new(NodeId::new(origin), seq),
                age,
                Payload::from(payload),
            )
        })
}

fn arb_message() -> impl Strategy<Value = GossipMessage> {
    (
        0u32..64,
        0u64..1_000,
        proptest::collection::vec((0u32..64, 1u32..1_000), 0..4),
        proptest::collection::vec(arb_event(), 0..24),
        proptest::collection::vec(0u32..64, 0..6),
        proptest::collection::vec((0u32..64, 1u32..32), 0..6),
    )
        .prop_map(
            |(sender, period, ads, events, subs, unsubs)| GossipMessage {
                sender: NodeId::new(sender),
                sample_period: period,
                min_buffs: ads
                    .into_iter()
                    .map(|(node, capacity)| BuffAd {
                        node: NodeId::new(node),
                        capacity,
                    })
                    .collect(),
                events: events.into(),
                membership: MembershipDigest {
                    subs: subs.into_iter().map(NodeId::new).collect(),
                    unsubs: unsubs
                        .into_iter()
                        .map(|(node, ttl)| Unsubscription {
                            node: NodeId::new(node),
                            ttl,
                        })
                        .collect(),
                },
            },
        )
}

proptest! {
    #[test]
    fn roundtrip_is_identity(msg in arb_message()) {
        let decoded = decode(&encode(&msg)).expect("roundtrip");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes); // must return Err, not panic
    }

    #[test]
    fn truncation_always_errors(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let bytes = encode(&msg);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn fragmentation_preserves_events(msg in arb_message(), max in 128usize..2048) {
        let frags = split_for_datagram(&msg, max);
        prop_assert!(!frags.is_empty());
        let mut events = Vec::new();
        for f in &frags {
            let m = decode(f).expect("fragment decodes");
            prop_assert_eq!(m.sender, msg.sender);
            prop_assert_eq!(m.sample_period, msg.sample_period);
            prop_assert_eq!(&m.min_buffs, &msg.min_buffs);
            events.extend(m.events);
        }
        prop_assert_eq!(events, msg.events);
        // Fragments respect the bound unless a single event exceeds it.
        for f in &frags {
            if f.len() > max {
                let m = decode(f).expect("fragment decodes");
                prop_assert_eq!(m.events.len(), 1, "only oversized singletons may exceed max");
            }
        }
    }
}

fn arb_frame() -> impl Strategy<Value = agb_core::GossipFrame> {
    use agb_core::{GossipFrame, GraftRequest, IHaveDigest, Retransmission};
    (
        arb_message(),
        proptest::option::of(proptest::collection::vec((0u32..64, 0u64..10_000), 0..32)),
        0u8..3,
        0u32..64,
        proptest::collection::vec(arb_event(), 0..8),
    )
        .prop_map(|(msg, digest, kind, sender, events)| {
            let ids = |pairs: Vec<(u32, u64)>| -> Vec<EventId> {
                pairs
                    .into_iter()
                    .map(|(o, s)| EventId::new(NodeId::new(o), s))
                    .collect()
            };
            match kind {
                0 => GossipFrame::Gossip {
                    msg,
                    ihave: digest.map(|d| IHaveDigest { ids: ids(d) }),
                },
                1 => GossipFrame::Graft(GraftRequest {
                    sender: NodeId::new(sender),
                    ids: digest.map(ids).unwrap_or_default(),
                }),
                _ => GossipFrame::Retransmit(Retransmission {
                    sender: NodeId::new(sender),
                    events,
                }),
            }
        })
}

proptest! {
    #[test]
    fn frame_roundtrip_is_identity(frame in arb_frame()) {
        use agb_runtime::wire::{decode_frame, encode_frame};
        let decoded = decode_frame(&encode_frame(&frame)).expect("roundtrip");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn frame_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = agb_runtime::wire::decode_frame(&bytes); // must return Err, not panic
    }

    #[test]
    fn frame_fragmentation_preserves_events(frame in arb_frame(), max in 128usize..2048) {
        use agb_core::GossipFrame;
        use agb_runtime::wire::{decode_frame, split_frame_for_datagram};
        let frags = split_frame_for_datagram(&frame, max);
        prop_assert!(!frags.is_empty());
        let mut events = Vec::new();
        for f in &frags {
            match decode_frame(f).expect("fragment decodes") {
                GossipFrame::Gossip { msg, .. } => events.extend(msg.events),
                GossipFrame::Retransmit(r) => events.extend(r.events),
                GossipFrame::Graft(_) => {}
            }
        }
        let original: Vec<_> = match &frame {
            GossipFrame::Gossip { msg, .. } => msg.events.as_slice().to_vec(),
            GossipFrame::Retransmit(r) => r.events.clone(),
            GossipFrame::Graft(_) => vec![],
        };
        prop_assert_eq!(events, original);
    }
}

// The pooled/interned codec paths must be indistinguishable from the
// legacy ones: pooled encoding byte-for-byte, interned decoding
// value-for-value, across arbitrary messages and frames.
proptest! {
    #[test]
    fn pooled_encode_matches_legacy_byte_for_byte(
        msgs in proptest::collection::vec(arb_message(), 1..6),
    ) {
        use agb_runtime::wire::FrameEncoder;
        let mut encoder = FrameEncoder::default();
        // Sequential reuse of the same pooled buffer must never leak
        // state between frames.
        for msg in &msgs {
            prop_assert_eq!(encoder.encode_message(msg), encode(msg));
            let frame = agb_core::GossipFrame::plain(msg.clone());
            prop_assert_eq!(
                encoder.encode(&frame),
                agb_runtime::wire::encode_frame(&frame)
            );
        }
    }

    #[test]
    fn pooled_frame_encode_matches_legacy_byte_for_byte(
        frames in proptest::collection::vec(arb_frame(), 1..6),
    ) {
        use agb_runtime::wire::{encode_frame, FrameEncoder};
        let mut encoder = FrameEncoder::default();
        for frame in &frames {
            prop_assert_eq!(encoder.encode(frame), encode_frame(frame));
        }
    }

    #[test]
    fn interned_decode_matches_legacy(msg in arb_message()) {
        use agb_runtime::wire::decode_interned;
        let bytes = encode(&msg);
        let mut interner = agb_types::PayloadInterner::new(1024);
        let interned = decode_interned(&bytes, &mut interner).expect("decodes");
        let legacy = decode(&bytes).expect("decodes");
        prop_assert_eq!(&interned, &legacy);
        // Decoding the same bytes again serves payloads from the intern
        // table and still matches.
        let again = decode_interned(&bytes, &mut interner).expect("decodes");
        prop_assert_eq!(again, legacy);
    }

    #[test]
    fn interned_frame_decode_matches_legacy(frame in arb_frame()) {
        use agb_runtime::wire::{decode_frame, decode_frame_interned, encode_frame};
        let bytes = encode_frame(&frame);
        let mut interner = agb_types::PayloadInterner::new(1024);
        let interned = decode_frame_interned(&bytes, &mut interner).expect("decodes");
        prop_assert_eq!(interned, decode_frame(&bytes).expect("decodes"));
    }

    #[test]
    fn pooled_split_respects_bound_and_content(frame in arb_frame(), max in 128usize..2048) {
        use agb_core::GossipFrame;
        use agb_runtime::wire::{decode_frame, FrameEncoder};
        let mut encoder = FrameEncoder::default();
        let frags = encoder.split_for_datagram(&frame, max);
        prop_assert!(!frags.is_empty());
        let mut events = Vec::new();
        for f in &frags {
            match decode_frame(f).expect("fragment decodes") {
                GossipFrame::Gossip { msg, .. } => events.extend(msg.events),
                GossipFrame::Retransmit(r) => events.extend(r.events),
                GossipFrame::Graft(_) => {}
            }
        }
        let original: Vec<_> = match &frame {
            GossipFrame::Gossip { msg, .. } => msg.events.as_slice().to_vec(),
            GossipFrame::Retransmit(r) => r.events.clone(),
            GossipFrame::Graft(_) => vec![],
        };
        prop_assert_eq!(events, original);
    }
}
