//! Datagram transports for the threaded runtime.
//!
//! Two implementations behind one trait:
//!
//! * [`UdpTransport`] — one UDP socket per node on 127.0.0.1, the moral
//!   equivalent of the paper's 60 workstations on an Ethernet LAN;
//! * [`ChannelTransport`] — in-process crossbeam channels, for fast tests
//!   and CI environments without network access.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

use agb_types::NodeId;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// A best-effort datagram channel between the nodes of one cluster.
///
/// Sends never block and may silently drop (UDP semantics); receives are
/// bounded waits.
pub trait Transport: Send + 'static {
    /// Sends one datagram to `to` (best effort).
    fn send(&self, to: NodeId, bytes: Bytes);

    /// Waits up to `timeout` for one datagram.
    fn recv_timeout(&self, timeout: Duration) -> Option<Bytes>;
}

/// UDP-socket transport over the loopback interface.
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    peers: Arc<Vec<SocketAddr>>,
    recv_buf_size: usize,
}

/// The UDP datagram payload bound used when splitting gossip messages.
pub const MAX_DATAGRAM: usize = 60 * 1024;

impl UdpTransport {
    /// Binds one socket per node on OS-assigned loopback ports and returns
    /// the per-node transports.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn bind_cluster(n_nodes: usize) -> io::Result<Vec<UdpTransport>> {
        let mut sockets = Vec::with_capacity(n_nodes);
        let mut addrs = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let socket = UdpSocket::bind(("127.0.0.1", 0))?;
            addrs.push(socket.local_addr()?);
            sockets.push(socket);
        }
        let peers = Arc::new(addrs);
        sockets
            .into_iter()
            .map(|socket| {
                socket.set_nonblocking(false)?;
                Ok(UdpTransport {
                    socket,
                    peers: Arc::clone(&peers),
                    recv_buf_size: 64 * 1024,
                })
            })
            .collect()
    }
}

impl Transport for UdpTransport {
    fn send(&self, to: NodeId, bytes: Bytes) {
        if let Some(addr) = self.peers.get(to.index()) {
            // Best effort: ignore transient send failures (full buffers),
            // exactly like a lossy network.
            let _ = self.socket.send_to(&bytes, addr);
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Bytes> {
        // A zero timeout would put the socket in nonblocking mode forever.
        let timeout = timeout.max(Duration::from_millis(1));
        if self.socket.set_read_timeout(Some(timeout)).is_err() {
            return None;
        }
        let mut buf = vec![0u8; self.recv_buf_size];
        match self.socket.recv_from(&mut buf) {
            Ok((n, _)) => {
                buf.truncate(n);
                Some(Bytes::from(buf))
            }
            Err(_) => None,
        }
    }
}

/// In-process channel transport.
#[derive(Debug, Clone)]
pub struct ChannelTransport {
    rx: Receiver<Bytes>,
    txs: Arc<Vec<Sender<Bytes>>>,
}

impl ChannelTransport {
    /// Creates a fully connected cluster of channel transports.
    pub fn cluster(n_nodes: usize) -> Vec<ChannelTransport> {
        let mut txs = Vec::with_capacity(n_nodes);
        let mut rxs = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let txs = Arc::new(txs);
        rxs.into_iter()
            .map(|rx| ChannelTransport {
                rx,
                txs: Arc::clone(&txs),
            })
            .collect()
    }
}

impl Transport for ChannelTransport {
    fn send(&self, to: NodeId, bytes: Bytes) {
        if let Some(tx) = self.txs.get(to.index()) {
            let _ = tx.send(bytes);
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Bytes> {
        match self.rx.recv_timeout(timeout) {
            Ok(b) => Some(b),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_transport_delivers() {
        let cluster = ChannelTransport::cluster(3);
        cluster[0].send(NodeId::new(2), Bytes::from_static(b"hello"));
        let got = cluster[2].recv_timeout(Duration::from_millis(100));
        assert_eq!(got, Some(Bytes::from_static(b"hello")));
        // Nothing for node 1.
        assert_eq!(cluster[1].recv_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn channel_send_to_unknown_node_is_noop() {
        let cluster = ChannelTransport::cluster(1);
        cluster[0].send(NodeId::new(9), Bytes::from_static(b"x"));
    }

    #[test]
    fn udp_transport_roundtrip() {
        let cluster = UdpTransport::bind_cluster(2).expect("bind loopback");
        cluster[0].send(NodeId::new(1), Bytes::from_static(b"ping"));
        let got = cluster[1].recv_timeout(Duration::from_millis(500));
        assert_eq!(got, Some(Bytes::from_static(b"ping")));
    }

    #[test]
    fn udp_recv_times_out_quietly() {
        let cluster = UdpTransport::bind_cluster(1).expect("bind loopback");
        let got = cluster[0].recv_timeout(Duration::from_millis(20));
        assert_eq!(got, None);
    }
}
