//! Datagram transports for the threaded runtime.
//!
//! Two implementations behind one trait:
//!
//! * [`UdpTransport`] — one UDP socket per node, the moral equivalent of
//!   the paper's 60 workstations on an Ethernet LAN; binds loopback by
//!   default, any local interface via
//!   [`bind_cluster_on`](UdpTransport::bind_cluster_on);
//! * [`ChannelTransport`] — in-process crossbeam channels, for fast tests
//!   and CI environments without network access.

use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use agb_types::NodeId;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// Why a datagram could not be handed to the transport.
///
/// Delivery stays best effort — a frame the transport *accepted* may
/// still be lost — but a frame the transport *refused* is observable, so
/// the node loop can count refusals instead of silently swallowing them.
#[derive(Debug)]
pub enum TransportError {
    /// The datagram exceeds the transport's size bound and was refused
    /// before hitting the socket (a UDP `send` of this size would fail
    /// or fragment unpredictably).
    Oversize {
        /// The attempted datagram length.
        len: usize,
        /// The transport's bound ([`MAX_DATAGRAM`]).
        max: usize,
    },
    /// The destination is not a member of this cluster's peer table.
    UnknownPeer(NodeId),
    /// The OS socket send failed (buffer exhaustion, interface down…).
    Io(io::Error),
}

impl TransportError {
    /// A stable short label for the error class — the `cause` label of
    /// the `agb_socket_send_errors_total` telemetry series.
    pub fn cause_label(&self) -> &'static str {
        match self {
            TransportError::Oversize { .. } => "oversize",
            TransportError::UnknownPeer(_) => "unknown_peer",
            TransportError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Oversize { len, max } => {
                write!(f, "datagram of {len} bytes exceeds the {max}-byte bound")
            }
            TransportError::UnknownPeer(n) => write!(f, "unknown peer {}", n.index()),
            TransportError::Io(e) => write!(f, "socket send failed: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Outcome of one bounded receive wait.
///
/// Distinguishes "the network was quiet" from "this transport can never
/// produce another datagram" — conflating the two turns a torn-down peer
/// channel into an infinite quiet-timeout loop in the node loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvOutcome {
    /// One datagram arrived.
    Datagram(Bytes),
    /// Nothing arrived within the timeout; try again later.
    Timeout,
    /// The transport is permanently closed (every sender endpoint is
    /// gone). The node loop should exit, not spin.
    Closed,
}

/// A best-effort datagram channel between the nodes of one cluster.
///
/// An accepted send may still be dropped in flight (UDP semantics); a
/// refused send reports why. Receives are bounded waits.
pub trait Transport: Send + 'static {
    /// Sends one datagram to `to` (best effort once accepted).
    ///
    /// # Errors
    ///
    /// [`TransportError`] when the transport refuses the datagram:
    /// oversized, unknown destination, or socket failure.
    fn send(&self, to: NodeId, bytes: Bytes) -> Result<(), TransportError>;

    /// Waits up to `timeout` for one datagram, reporting whether a quiet
    /// wait can ever succeed again.
    fn recv_outcome(&self, timeout: Duration) -> RecvOutcome;

    /// Waits up to `timeout` for one datagram ([`recv_outcome`]
    /// flattened; `Closed` looks like a quiet timeout here).
    ///
    /// [`recv_outcome`]: Transport::recv_outcome
    fn recv_timeout(&self, timeout: Duration) -> Option<Bytes> {
        match self.recv_outcome(timeout) {
            RecvOutcome::Datagram(b) => Some(b),
            RecvOutcome::Timeout | RecvOutcome::Closed => None,
        }
    }
}

/// UDP-socket transport.
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    peers: Arc<Vec<SocketAddr>>,
    recv_buf_size: usize,
    /// The read timeout currently armed on the socket. `set_read_timeout`
    /// is a syscall per call otherwise — the node loop calls
    /// `recv_outcome` with the same ~5 ms slice thousands of times per
    /// second, so re-arm only when the requested timeout changes.
    armed_timeout: Mutex<Option<Duration>>,
    /// `set_read_timeout` syscalls issued (regression guard).
    rearms: AtomicU64,
}

/// The UDP datagram payload bound used when splitting gossip messages.
pub const MAX_DATAGRAM: usize = 60 * 1024;

impl UdpTransport {
    /// Binds one socket per node on OS-assigned loopback ports and returns
    /// the per-node transports.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn bind_cluster(n_nodes: usize) -> io::Result<Vec<UdpTransport>> {
        Self::bind_cluster_on(IpAddr::V4(Ipv4Addr::LOCALHOST), n_nodes)
    }

    /// Binds one socket per node on `addr` (port OS-assigned) — loopback
    /// for single-host runs, a real interface address to take the cluster
    /// onto a LAN.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn bind_cluster_on(addr: IpAddr, n_nodes: usize) -> io::Result<Vec<UdpTransport>> {
        let mut sockets = Vec::with_capacity(n_nodes);
        let mut addrs = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let socket = UdpSocket::bind((addr, 0))?;
            addrs.push(socket.local_addr()?);
            sockets.push(socket);
        }
        let peers = Arc::new(addrs);
        sockets
            .into_iter()
            .map(|socket| {
                socket.set_nonblocking(false)?;
                Ok(UdpTransport {
                    socket,
                    peers: Arc::clone(&peers),
                    recv_buf_size: 64 * 1024,
                    armed_timeout: Mutex::new(None),
                    rearms: AtomicU64::new(0),
                })
            })
            .collect()
    }

    /// This node's bound socket address (the OS-chosen port).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures from the OS.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The full cluster's socket addresses, indexed by node.
    pub fn peer_addrs(&self) -> &[SocketAddr] {
        &self.peers
    }

    /// How many `set_read_timeout` syscalls this transport has issued.
    /// Steady-state receiving with a constant timeout costs exactly one.
    pub fn rearm_count(&self) -> u64 {
        self.rearms.load(Ordering::Relaxed)
    }

    /// Arms the socket read timeout only when it differs from what is
    /// already armed.
    fn arm_timeout(&self, timeout: Duration) -> io::Result<()> {
        let mut armed = self.armed_timeout.lock().expect("timeout lock");
        if *armed == Some(timeout) {
            return Ok(());
        }
        self.socket.set_read_timeout(Some(timeout))?;
        self.rearms.fetch_add(1, Ordering::Relaxed);
        *armed = Some(timeout);
        Ok(())
    }
}

impl Transport for UdpTransport {
    fn send(&self, to: NodeId, bytes: Bytes) -> Result<(), TransportError> {
        if bytes.len() > MAX_DATAGRAM {
            return Err(TransportError::Oversize {
                len: bytes.len(),
                max: MAX_DATAGRAM,
            });
        }
        let addr = self
            .peers
            .get(to.index())
            .ok_or(TransportError::UnknownPeer(to))?;
        match self.socket.send_to(&bytes, addr) {
            Ok(_) => Ok(()),
            Err(e) => Err(TransportError::Io(e)),
        }
    }

    fn recv_outcome(&self, timeout: Duration) -> RecvOutcome {
        // A zero timeout would put the socket in nonblocking mode forever.
        let timeout = timeout.max(Duration::from_millis(1));
        if self.arm_timeout(timeout).is_err() {
            return RecvOutcome::Timeout;
        }
        let mut buf = vec![0u8; self.recv_buf_size];
        match self.socket.recv_from(&mut buf) {
            Ok((n, _)) => {
                buf.truncate(n);
                RecvOutcome::Datagram(Bytes::from(buf))
            }
            // UDP sockets have no peer lifetime: every error here (the
            // timeout included) is a quiet wait, never terminal.
            Err(_) => RecvOutcome::Timeout,
        }
    }
}

/// In-process channel transport.
#[derive(Debug, Clone)]
pub struct ChannelTransport {
    rx: Receiver<Bytes>,
    txs: Arc<Vec<Sender<Bytes>>>,
}

impl ChannelTransport {
    /// Creates a fully connected cluster of channel transports.
    pub fn cluster(n_nodes: usize) -> Vec<ChannelTransport> {
        let mut txs = Vec::with_capacity(n_nodes);
        let mut rxs = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let txs = Arc::new(txs);
        rxs.into_iter()
            .map(|rx| ChannelTransport {
                rx,
                txs: Arc::clone(&txs),
            })
            .collect()
    }
}

impl Transport for ChannelTransport {
    fn send(&self, to: NodeId, bytes: Bytes) -> Result<(), TransportError> {
        // Enforce the same datagram bound as UDP so oversize bugs surface
        // in socket-free CI runs too.
        if bytes.len() > MAX_DATAGRAM {
            return Err(TransportError::Oversize {
                len: bytes.len(),
                max: MAX_DATAGRAM,
            });
        }
        let tx = self
            .txs
            .get(to.index())
            .ok_or(TransportError::UnknownPeer(to))?;
        tx.send(bytes).map_err(|_| {
            TransportError::Io(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "receiver disconnected",
            ))
        })
    }

    fn recv_outcome(&self, timeout: Duration) -> RecvOutcome {
        match self.rx.recv_timeout(timeout) {
            Ok(b) => RecvOutcome::Datagram(b),
            // Every transport shares one sender table (self-send
            // included), so crossbeam's `Disconnected` can never fire
            // while this receiver is alive. Teardown is detected through
            // the table's reference count instead: when this transport
            // holds the last reference, every peer that could have sent
            // to it is gone and quiet waits can never succeed again.
            Err(RecvTimeoutError::Timeout) => {
                if Arc::strong_count(&self.txs) == 1 {
                    RecvOutcome::Closed
                } else {
                    RecvOutcome::Timeout
                }
            }
            Err(RecvTimeoutError::Disconnected) => RecvOutcome::Closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_transport_delivers() {
        let cluster = ChannelTransport::cluster(3);
        cluster[0]
            .send(NodeId::new(2), Bytes::from_static(b"hello"))
            .unwrap();
        let got = cluster[2].recv_timeout(Duration::from_millis(100));
        assert_eq!(got, Some(Bytes::from_static(b"hello")));
        // Nothing for node 1.
        assert_eq!(cluster[1].recv_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn channel_send_to_unknown_node_reports() {
        let cluster = ChannelTransport::cluster(1);
        let err = cluster[0]
            .send(NodeId::new(9), Bytes::from_static(b"x"))
            .unwrap_err();
        assert!(matches!(err, TransportError::UnknownPeer(n) if n.index() == 9));
        assert_eq!(err.cause_label(), "unknown_peer");
    }

    #[test]
    fn oversized_datagrams_are_refused_not_truncated() {
        let big = Bytes::from(vec![0u8; MAX_DATAGRAM + 1]);
        let channel = ChannelTransport::cluster(2);
        let err = channel[0].send(NodeId::new(1), big.clone()).unwrap_err();
        assert!(matches!(err, TransportError::Oversize { len, max }
            if len == MAX_DATAGRAM + 1 && max == MAX_DATAGRAM));
        assert_eq!(err.cause_label(), "oversize");
        // Nothing partial arrived.
        assert_eq!(channel[1].recv_timeout(Duration::from_millis(10)), None);

        let udp = UdpTransport::bind_cluster(2).expect("bind loopback");
        let err = udp[0].send(NodeId::new(1), big).unwrap_err();
        assert!(matches!(err, TransportError::Oversize { .. }));
        assert_eq!(udp[1].recv_timeout(Duration::from_millis(20)), None);
    }

    #[test]
    fn udp_transport_roundtrip() {
        let cluster = UdpTransport::bind_cluster(2).expect("bind loopback");
        cluster[0]
            .send(NodeId::new(1), Bytes::from_static(b"ping"))
            .unwrap();
        let got = cluster[1].recv_timeout(Duration::from_millis(500));
        assert_eq!(got, Some(Bytes::from_static(b"ping")));
    }

    #[test]
    fn udp_exposes_bound_addresses() {
        let cluster = UdpTransport::bind_cluster_on(IpAddr::V4(Ipv4Addr::LOCALHOST), 3)
            .expect("bind loopback");
        let addrs: Vec<SocketAddr> = cluster[0].peer_addrs().to_vec();
        assert_eq!(addrs.len(), 3);
        for (t, expect) in cluster.iter().zip(&addrs) {
            assert_eq!(t.local_addr().unwrap(), *expect);
            assert!(expect.port() != 0, "OS assigned a real port");
        }
    }

    #[test]
    fn udp_recv_times_out_quietly() {
        let cluster = UdpTransport::bind_cluster(1).expect("bind loopback");
        let got = cluster[0].recv_timeout(Duration::from_millis(20));
        assert_eq!(got, None);
        // And the outcome API agrees: quiet, not closed.
        assert_eq!(
            cluster[0].recv_outcome(Duration::from_millis(10)),
            RecvOutcome::Timeout
        );
    }

    #[test]
    fn udp_rearms_read_timeout_only_on_change() {
        let cluster = UdpTransport::bind_cluster(1).expect("bind loopback");
        let t = &cluster[0];
        assert_eq!(t.rearm_count(), 0);
        for _ in 0..5 {
            let _ = t.recv_timeout(Duration::from_millis(5));
        }
        assert_eq!(t.rearm_count(), 1, "constant timeout arms exactly once");
        let _ = t.recv_timeout(Duration::from_millis(9));
        assert_eq!(t.rearm_count(), 2, "a new timeout re-arms");
        let _ = t.recv_timeout(Duration::from_millis(5));
        let _ = t.recv_timeout(Duration::from_millis(5));
        assert_eq!(
            t.rearm_count(),
            3,
            "returning to a prior timeout re-arms once"
        );
        // Sub-millisecond requests clamp to 1 ms and share one arming.
        let _ = t.recv_timeout(Duration::ZERO);
        let _ = t.recv_timeout(Duration::from_micros(10));
        assert_eq!(t.rearm_count(), 4);
    }

    #[test]
    fn channel_disconnect_is_terminal_not_quiet() {
        let mut cluster = ChannelTransport::cluster(2);
        let receiver = cluster.pop().expect("node 1");
        // While peers hold sender halves the channel is merely quiet.
        assert_eq!(
            receiver.recv_outcome(Duration::from_millis(5)),
            RecvOutcome::Timeout
        );
        // Tear down every other transport: the cluster is gone.
        drop(cluster);
        assert_eq!(
            receiver.recv_outcome(Duration::from_millis(5)),
            RecvOutcome::Closed
        );
        // The flattened legacy view still reads None.
        assert_eq!(receiver.recv_timeout(Duration::from_millis(5)), None);
    }
}
