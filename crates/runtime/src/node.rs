//! The per-node runtime thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use agb_core::{FrameProtocol, GossipFrame};
use agb_failure::{ByteAdversary, Mutation, PhiDetector, Verdict};
use agb_metrics::MetricsCollector;
use agb_trace::{Recorder, TraceProbe, TraceSink};
use agb_types::{bernoulli, DetRng, NodeId, Payload, TimeMs};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::telemetry::{stamp_payload, LifecycleKind, NodeTelemetry, ShedClass};
use crate::transport::{RecvOutcome, Transport, TransportError, MAX_DATAGRAM};
use crate::wire;

/// Control-plane commands accepted by a running node.
#[derive(Debug)]
pub enum Command {
    /// Offer a payload for broadcast.
    Offer(Payload),
    /// Resize the event buffer (the Figure 9 runtime experiment).
    Resize(usize),
    /// Crash-stop: the node stops gossiping, receiving and offering, but
    /// keeps its state for a later [`Command::Recover`].
    Crash,
    /// Resume after a [`Command::Crash`], state intact.
    Recover,
    /// Restart with state loss: the protocol state machine is rebuilt from
    /// the node's factory (see [`NodeRuntime::rebuild`]) and the node
    /// resumes. Falls back to [`Command::Recover`] when no factory is
    /// installed.
    Restart,
    /// Graceful leave: emit farewell frames (flushing the buffer and, with
    /// partial views, propagating the unsubscription), then go silent.
    Leave,
}

/// Handle to a spawned node thread.
pub struct NodeHandle {
    /// The node's identity.
    pub node: NodeId,
    pub(crate) cmd_tx: Sender<Command>,
    pub(crate) join: JoinHandle<()>,
}

impl NodeHandle {
    /// Sends a control command; returns `false` if the node has stopped.
    pub fn command(&self, cmd: Command) -> bool {
        self.cmd_tx.send(cmd).is_ok()
    }
}

/// Parameters for one node thread.
pub struct NodeRuntime {
    /// The protocol state machine to drive (plain or recovery-wrapped).
    pub protocol: Box<dyn FrameProtocol + Send>,
    /// Offered load in msgs/s (0 = pure receiver), constant pacing.
    pub offered_rate: f64,
    /// Payload attached to offered messages.
    pub payload: Payload,
    /// Blocking-application backlog bound.
    pub max_backlog: usize,
    /// Factory rebuilding the protocol from scratch, used by
    /// [`Command::Restart`] to model restart-with-state-loss.
    pub rebuild: Option<Box<dyn Fn() -> Box<dyn FrameProtocol + Send> + Send>>,
    /// Causal-trace probe. A disabled probe records nothing and the loop
    /// takes none of the tracing branches.
    pub probe: TraceProbe,
    /// Wall-clock telemetry handles. A disabled instance records nothing
    /// and paced offers are not latency-stamped.
    pub telemetry: NodeTelemetry,
    /// Sender-side injected datagram loss probability in `[0, 1)` — a
    /// deterministic harness for exercising the recovery plane over real
    /// transports.
    pub loss: f64,
    /// RNG stream driving the loss draws.
    pub loss_rng: DetRng,
    /// φ-accrual failure detector (`None` = detection plane off). Fed
    /// by every decoded frame; verdicts drive `evict_peer` on the
    /// protocol.
    pub detector: Option<PhiDetector>,
    /// Ring successors owed a heartbeat whenever a round's regular
    /// gossip does not cover them (empty when the detection plane is
    /// off; see [`agb_failure::ring_successors`]).
    pub heartbeat_targets: Vec<NodeId>,
    /// Egress byte adversary harness (`None` = clean wire): mutates
    /// encoded datagrams before they reach the transport.
    pub adversary: Option<ByteAdversary>,
    /// RNG stream driving the adversary's fault draws.
    pub adversary_rng: DetRng,
    /// Bound on frames queued for transmission inside one loop
    /// iteration; beyond it the egress queue sheds in priority order
    /// (control > recovery > app).
    pub egress_capacity: usize,
    /// Record node-loop iteration times and egress-queue dwell into the
    /// telemetry plane (requires telemetry; off = no extra clock reads
    /// on the loop).
    pub profile: bool,
}

/// Maximum resend attempts of one retried frame.
const MAX_RETRIES: u32 = 4;
/// First-retry backoff; doubles per attempt up to [`RETRY_CAP`].
const RETRY_BASE: Duration = Duration::from_millis(10);
/// Backoff ceiling.
const RETRY_CAP: Duration = Duration::from_millis(160);
/// Default egress bound when the caller passes 0.
const DEFAULT_EGRESS_CAPACITY: usize = 1024;

/// The egress priority class of a frame: graft requests steer recovery
/// (control), retransmissions repair gaps (recovery), regular gossip
/// carries the app payload and is shed first under overload.
fn frame_class(frame: &GossipFrame) -> ShedClass {
    match frame {
        GossipFrame::Gossip { .. } => ShedClass::App,
        GossipFrame::Retransmit(_) => ShedClass::Recovery,
        GossipFrame::Graft(_) => ShedClass::Control,
    }
}

/// A frame awaiting a backed-off resend after an I/O send failure.
struct Retry {
    to: NodeId,
    frame: GossipFrame,
    attempts: u32,
    due: Instant,
}

/// The node's send side: bounded priority queues with overload
/// shedding, capped-exponential-backoff retries for control/recovery
/// frames, the injected-loss harness, and the byte adversary (with its
/// reorder hold-back buffer).
struct Egress {
    /// Per-class frame queues, indexed by [`ShedClass::as_u8`]
    /// (app, recovery, control). Entries carry their enqueue instant so
    /// the flush can report queue dwell to the telemetry plane.
    queues: [VecDeque<(NodeId, GossipFrame, Instant)>; 3],
    /// Whether flushes report queue dwell (the profiling handle).
    profiling: bool,
    capacity: usize,
    retries: Vec<Retry>,
    /// Datagrams the adversary held back for reordering, with their
    /// release times.
    holdback: Vec<(Instant, NodeId, Bytes)>,
    encoder: wire::FrameEncoder,
    loss: f64,
    loss_rng: DetRng,
    adversary: Option<ByteAdversary>,
    adversary_rng: DetRng,
}

impl Egress {
    fn new(
        capacity: usize,
        profiling: bool,
        loss: f64,
        loss_rng: DetRng,
        adversary: Option<ByteAdversary>,
        adversary_rng: DetRng,
    ) -> Self {
        Egress {
            queues: Default::default(),
            profiling,
            capacity: if capacity == 0 {
                DEFAULT_EGRESS_CAPACITY
            } else {
                capacity
            },
            retries: Vec::new(),
            holdback: Vec::new(),
            encoder: wire::FrameEncoder::default(),
            loss,
            loss_rng,
            adversary,
            adversary_rng,
        }
    }

    /// Queues one frame, shedding under overload: the victim is the
    /// oldest frame of the lowest-priority backlogged class at or below
    /// the incoming class — an app frame arriving into a queue full of
    /// higher classes sheds itself.
    fn enqueue(
        &mut self,
        to: NodeId,
        frame: GossipFrame,
        at: TimeMs,
        probe: &mut TraceProbe,
        telemetry: &NodeTelemetry,
    ) {
        const CLASSES: [ShedClass; 3] = [ShedClass::App, ShedClass::Recovery, ShedClass::Control];
        let class = frame_class(&frame);
        let idx = class.as_u8() as usize;
        let total: usize = self.queues.iter().map(VecDeque::len).sum();
        if total >= self.capacity {
            match (0..=idx).find(|&i| !self.queues[i].is_empty()) {
                Some(victim) => {
                    self.queues[victim].pop_front();
                    probe.on_sheds(at, victim as u8, 1);
                    telemetry.on_shed(CLASSES[victim]);
                }
                None => {
                    probe.on_sheds(at, class.as_u8(), 1);
                    telemetry.on_shed(class);
                    return;
                }
            }
        }
        self.queues[idx].push_back((to, frame, Instant::now()));
    }

    /// Transmits everything queued, highest class first. Control and
    /// recovery frames whose send fails with an I/O error are scheduled
    /// for a backed-off retry; app frames are best-effort (the gossip
    /// redundancy already covers them).
    fn flush<T: Transport>(&mut self, transport: &T, telemetry: &NodeTelemetry) {
        for idx in (0..3).rev() {
            while let Some((to, frame, queued_at)) = self.queues[idx].pop_front() {
                if self.profiling {
                    telemetry.on_egress_dwell(queued_at.elapsed().as_secs_f64());
                }
                let io_failed = self.transmit(transport, telemetry, to, &frame);
                if io_failed && idx >= 1 {
                    self.schedule_retry(to, frame, 0);
                }
            }
        }
    }

    fn schedule_retry(&mut self, to: NodeId, frame: GossipFrame, attempts: u32) {
        let backoff = RETRY_CAP.min(RETRY_BASE * 2u32.saturating_pow(attempts));
        self.retries.push(Retry {
            to,
            frame,
            attempts: attempts + 1,
            due: Instant::now() + backoff,
        });
    }

    /// Releases due hold-back datagrams and re-sends due retries. Called
    /// once per loop iteration.
    fn pump<T: Transport>(&mut self, transport: &T, telemetry: &NodeTelemetry) {
        let now = Instant::now();
        let mut i = 0;
        while i < self.holdback.len() {
            if self.holdback[i].0 <= now {
                let (_, to, bytes) = self.holdback.swap_remove(i);
                // Already counted as sent when held back; only failures
                // are news here.
                if let Err(e) = transport.send(to, bytes) {
                    telemetry.on_send_error(&e);
                }
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.retries.len() {
            if self.retries[i].due <= now {
                let r = self.retries.swap_remove(i);
                telemetry.on_send_retry();
                let io_failed = self.transmit(transport, telemetry, r.to, &r.frame);
                if io_failed && r.attempts < MAX_RETRIES {
                    self.schedule_retry(r.to, r.frame, r.attempts);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Encodes `frame`, applies the injected-loss harness and the byte
    /// adversary, and hands each fragment to the transport, counting
    /// outcomes into the telemetry plane. Returns whether any fragment
    /// failed with an I/O error (the retryable cause).
    fn transmit<T: Transport>(
        &mut self,
        transport: &T,
        telemetry: &NodeTelemetry,
        to: NodeId,
        frame: &GossipFrame,
    ) -> bool {
        let mut io_failed = false;
        for frag in self.encoder.split_for_datagram(frame, MAX_DATAGRAM) {
            if self.loss > 0.0 && bernoulli(&mut self.loss_rng, self.loss) {
                telemetry.on_loss();
                continue;
            }
            let frag = match &self.adversary {
                Some(adv) => {
                    let mut bytes = frag.to_vec();
                    match adv.mutate(&mut bytes, &mut self.adversary_rng) {
                        Mutation::None => frag,
                        // The mangled datagram still goes out — the
                        // receiver's checksum is what must reject it.
                        Mutation::Corrupted | Mutation::Truncated => Bytes::from(bytes),
                        Mutation::Duplicated => {
                            io_failed |= send_raw(transport, telemetry, frame, to, frag.clone());
                            frag
                        }
                        Mutation::Reordered(delay) => {
                            // Count the send now (the frame was accepted
                            // for transmission); release later.
                            telemetry.on_sent(frame, frag.len());
                            self.holdback
                                .push((Instant::now() + delay.to_std(), to, frag));
                            continue;
                        }
                    }
                }
                None => frag,
            };
            io_failed |= send_raw(transport, telemetry, frame, to, frag);
        }
        io_failed
    }
}

/// Sends one encoded fragment, counting the outcome. Returns whether
/// the send failed with an I/O error.
fn send_raw<T: Transport>(
    transport: &T,
    telemetry: &NodeTelemetry,
    frame: &GossipFrame,
    to: NodeId,
    bytes: Bytes,
) -> bool {
    let len = bytes.len();
    match transport.send(to, bytes) {
        Ok(()) => {
            telemetry.on_sent(frame, len);
            false
        }
        Err(e) => {
            let retryable = matches!(e, TransportError::Io(_));
            telemetry.on_send_error(&e);
            retryable
        }
    }
}

/// An empty gossip frame used as an explicit heartbeat (see
/// [`GossipFrame::heartbeat`]).
fn heartbeat_frame(sender: NodeId) -> GossipFrame {
    GossipFrame::heartbeat(sender)
}

/// Spawns the node's event loop on a dedicated OS thread.
///
/// The loop multiplexes: datagram reception (bounded waits), the periodic
/// gossip round at the protocol's configured period, control commands, and
/// constant-rate local offers. All protocol events are drained into the
/// shared collector.
#[allow(clippy::too_many_arguments)] // the node's full wiring, spelled out
pub fn spawn_node<T: Transport>(
    id: NodeId,
    runtime: NodeRuntime,
    transport: T,
    metrics: Arc<Mutex<MetricsCollector>>,
    trace: Option<Arc<Mutex<Recorder>>>,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
    cmd_rx: Receiver<Command>,
    cmd_tx: Sender<Command>,
) -> NodeHandle {
    let join = std::thread::Builder::new()
        .name(format!("agb-node-{}", id.index()))
        .spawn(move || {
            node_loop(
                id, runtime, transport, metrics, trace, epoch, shutdown, cmd_rx,
            )
        })
        .expect("spawn node thread");
    NodeHandle {
        node: id,
        cmd_tx,
        join,
    }
}

#[allow(clippy::too_many_arguments)] // mirrors spawn_node's wiring
fn node_loop<T: Transport>(
    id: NodeId,
    mut runtime: NodeRuntime,
    transport: T,
    metrics: Arc<Mutex<MetricsCollector>>,
    trace: Option<Arc<Mutex<Recorder>>>,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
    cmd_rx: Receiver<Command>,
) {
    let period = runtime.protocol.gossip_period().to_std();
    // Stagger rounds by node index to avoid synchronized bursts, like the
    // unsynchronized processes of the paper's testbed.
    let phase = period.mul_f64((id.index() % 16) as f64 / 16.0);
    let mut next_round = epoch + period + phase;
    let offer_gap = if runtime.offered_rate > 0.0 {
        Some(Duration::from_secs_f64(1.0 / runtime.offered_rate))
    } else {
        None
    };
    let mut next_offer = offer_gap.map(|g| epoch + g);

    let now_ms = |at: Instant| TimeMs::from_millis(at.duration_since(epoch).as_millis() as u64);
    // The send side: priority queues + shedding + retries + the
    // loss/adversary harnesses (owns the pooled frame encoder).
    let profiling = runtime.profile && runtime.telemetry.enabled();
    let mut egress = Egress::new(
        runtime.egress_capacity,
        profiling,
        runtime.loss,
        runtime.loss_rng.clone(),
        runtime.adversary.take(),
        runtime.adversary_rng.clone(),
    );
    // Bounded small: entries pin their payload bytes until the table's
    // wholesale reset, so a long-lived node must not retain tens of
    // thousands of distinct datagram-sized payloads.
    let mut interner = agb_types::PayloadInterner::new(1024);
    // Crash-stopped (or departed) until further command: datagrams are
    // drained and discarded, rounds and offers are suppressed.
    let mut down = false;
    // Previous iteration's wake instant; each loop top closes out the
    // prior iteration (including its bounded recv wait) into the
    // loop-iteration histogram.
    let mut iter_started: Option<Instant> = None;

    while !shutdown.load(Ordering::Relaxed) {
        if profiling {
            let woke = Instant::now();
            if let Some(t0) = iter_started {
                runtime
                    .telemetry
                    .on_loop_iteration(woke.duration_since(t0).as_secs_f64());
            }
            iter_started = Some(woke);
        }

        // 0. Release due reorder hold-backs and backed-off retries.
        egress.pump(&transport, &runtime.telemetry);

        // 1. Control commands.
        while let Ok(cmd) = cmd_rx.try_recv() {
            let now = now_ms(Instant::now());
            match cmd {
                Command::Offer(payload) => {
                    if !down {
                        runtime.protocol.offer(payload, now);
                    }
                }
                Command::Resize(cap) => {
                    runtime.protocol.set_buffer_capacity(cap, now);
                }
                Command::Crash => {
                    runtime.probe.on_crash(now);
                    runtime.telemetry.on_lifecycle(LifecycleKind::Crash);
                    down = true;
                }
                Command::Recover => {
                    runtime.probe.on_restart(now);
                    runtime.telemetry.on_lifecycle(LifecycleKind::Recover);
                    down = false;
                    next_round = Instant::now() + period;
                    if let Some(gap) = offer_gap {
                        next_offer = Some(Instant::now() + gap);
                    }
                }
                Command::Restart => {
                    if let Some(rebuild) = &runtime.rebuild {
                        runtime.protocol = rebuild();
                    }
                    runtime.probe.on_restart(now);
                    runtime.telemetry.on_lifecycle(LifecycleKind::Restart);
                    down = false;
                    next_round = Instant::now() + period;
                    if let Some(gap) = offer_gap {
                        next_offer = Some(Instant::now() + gap);
                    }
                }
                Command::Leave => {
                    let farewells = runtime.protocol.leave(now);
                    runtime.probe.observe_frames(now, &farewells);
                    runtime.telemetry.on_lifecycle(LifecycleKind::Leave);
                    for (to, frame) in farewells {
                        egress.enqueue(to, frame, now, &mut runtime.probe, &runtime.telemetry);
                    }
                    egress.flush(&transport, &runtime.telemetry);
                    down = true;
                }
            }
        }

        if down {
            // Keep the socket drained (datagrams addressed to a crashed
            // node are lost, not queued) and the command channel
            // responsive.
            if let RecvOutcome::Closed = transport.recv_outcome(Duration::from_millis(5)) {
                runtime.telemetry.on_recv_closed();
                break;
            }
            continue;
        }

        // 2. Paced local offers (blocking-application semantics: skip when
        //    the protocol backlog is full).
        if let (Some(gap), Some(next)) = (offer_gap, next_offer) {
            let mut at = next;
            while at <= Instant::now() {
                if runtime.protocol.pending_len() < runtime.max_backlog.max(1) {
                    // Under telemetry, stamp the send time into the payload
                    // so the delivering node can measure end-to-end latency.
                    let payload = if runtime.telemetry.enabled() {
                        stamp_payload(&runtime.payload, epoch)
                            .unwrap_or_else(|| runtime.payload.clone())
                    } else {
                        runtime.payload.clone()
                    };
                    runtime.protocol.offer(payload, now_ms(at));
                } else {
                    // Blocking application refused an offer: a congestion
                    // drop in the trace taxonomy.
                    runtime.probe.on_congestion_drops(now_ms(at), 1);
                    runtime.telemetry.on_offer_refused();
                    runtime.telemetry.on_congestion_drop();
                }
                at += gap;
            }
            next_offer = Some(at);
        }

        // 3. Receive until the next round deadline (bounded slice so
        //    commands stay responsive).
        let now_instant = Instant::now();
        let until_round = next_round.saturating_duration_since(now_instant);
        let slice = until_round.min(Duration::from_millis(5));
        match transport.recv_outcome(slice) {
            RecvOutcome::Datagram(bytes) => {
                match wire::decode_frame_interned(&bytes, &mut interner) {
                    Ok(frame) => {
                        let from = frame.sender();
                        runtime.probe.on_message(&frame);
                        runtime.telemetry.on_received(&frame, bytes.len());
                        let at = now_ms(Instant::now());
                        // Every decoded frame is an arrival sample for the
                        // detector — gossip piggybacks the liveness signal.
                        if let Some(det) = runtime.detector.as_mut() {
                            if let Some(Verdict::Rejoin(peer)) = det.observe(from, at) {
                                runtime.probe.on_rejoin(at, peer);
                            }
                        }
                        let replies = runtime.protocol.on_receive(from, frame, at);
                        for (to, reply) in replies {
                            egress.enqueue(to, reply, at, &mut runtime.probe, &runtime.telemetry);
                        }
                        egress.flush(&transport, &runtime.telemetry);
                        if runtime.probe.enabled() {
                            // Drain per datagram so the probe can attribute the
                            // events (and detect duplicates) to this sender.
                            let events = runtime.protocol.drain_events();
                            runtime.probe.on_events(&events);
                            runtime.probe.on_received(at, from, &events);
                            runtime.telemetry.on_events(&events);
                            if !events.is_empty() {
                                metrics.lock().on_events(id, &events);
                            }
                        }
                    }
                    Err(_) => {
                        // Corrupt datagram: drop, like the network would — but
                        // count it, unlike the network. The checksum trailer
                        // guarantees this path never misdelivers an
                        // adversary-mangled frame.
                        runtime.telemetry.on_decode_error();
                    }
                }
            }
            RecvOutcome::Timeout => {}
            RecvOutcome::Closed => {
                // Terminal transport teardown: no peer can reach this
                // node again, so the loop ends.
                runtime.telemetry.on_recv_closed();
                break;
            }
        }

        // 4. Gossip round.
        if Instant::now() >= next_round {
            let at = now_ms(next_round);
            let out = runtime.protocol.on_round(at);
            if runtime.probe.enabled() {
                runtime.probe.on_round(
                    at,
                    &out,
                    runtime.protocol.buffer_len(),
                    runtime.protocol.buffer_capacity(),
                );
            }
            if runtime.telemetry.enabled() {
                runtime.telemetry.on_round(
                    runtime.protocol.buffer_len(),
                    runtime.protocol.buffer_capacity(),
                );
            }
            // Heartbeat fallback: ring successors the regular gossip did
            // not cover this round still get an (empty) liveness frame,
            // so their detectors keep seeing ~one arrival per period.
            if !runtime.heartbeat_targets.is_empty() {
                for i in 0..runtime.heartbeat_targets.len() {
                    let hb = runtime.heartbeat_targets[i];
                    if !out.iter().any(|&(to, _)| to == hb) {
                        runtime.probe.on_heartbeat(at, hb);
                        runtime.telemetry.on_heartbeat();
                        egress.enqueue(
                            hb,
                            heartbeat_frame(id),
                            at,
                            &mut runtime.probe,
                            &runtime.telemetry,
                        );
                    }
                }
            }
            for (to, frame) in out {
                egress.enqueue(to, frame, at, &mut runtime.probe, &runtime.telemetry);
            }
            egress.flush(&transport, &runtime.telemetry);
            // Judge the monitored peers once per round; eviction removes
            // the condemned peer from this node's view through the same
            // path a scripted eviction uses.
            if let Some(det) = runtime.detector.as_mut() {
                for verdict in det.check(at) {
                    match verdict {
                        Verdict::Suspect(peer) => {
                            runtime.probe.on_suspect(at, peer);
                            runtime.telemetry.on_suspect();
                        }
                        Verdict::Evict(peer) => {
                            runtime.protocol.evict_peer(peer);
                            runtime.probe.on_detector_evict(at, peer);
                            runtime.telemetry.on_detector_evict();
                        }
                        Verdict::Rejoin(peer) => {
                            runtime.probe.on_rejoin(at, peer);
                        }
                    }
                }
            }
            next_round += period;
        }

        // 5. Drain protocol events into the shared collector, and flush
        //    any buffered trace records into the shared recorder.
        let events = runtime.protocol.drain_events();
        if !events.is_empty() {
            runtime.probe.on_events(&events);
            runtime.telemetry.on_events(&events);
            let mut m = metrics.lock();
            m.on_events(id, &events);
        }
        if runtime.telemetry.enabled() {
            runtime
                .telemetry
                .set_queue_depth(cmd_rx.len() + runtime.protocol.pending_len());
        }
        if runtime.probe.pending_len() > 0 {
            if let Some(recorder) = &trace {
                let mut r = recorder.lock();
                for record in runtime.probe.drain_pending() {
                    r.record(record);
                }
            } else {
                runtime.probe.drain_pending().for_each(drop);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use agb_core::{GossipConfig, LpbcastNode};
    use agb_membership::FullView;
    use agb_types::{DetRng, DurationMs};
    use crossbeam::channel::unbounded;
    use rand::SeedableRng;

    #[test]
    fn two_nodes_exchange_a_broadcast() {
        let n = 2;
        let transports = ChannelTransport::cluster(n);
        let metrics = Arc::new(Mutex::new(MetricsCollector::new(
            n,
            DurationMs::from_millis(100),
        )));
        let shutdown = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();

        let mut handles = Vec::new();
        for (i, transport) in transports.into_iter().enumerate() {
            let id = NodeId::new(i as u32);
            let mut gossip = GossipConfig::default();
            gossip.gossip_period = DurationMs::from_millis(30);
            let protocol = Box::new(LpbcastNode::new(
                id,
                gossip,
                FullView::new(n),
                DetRng::seed_from_u64(i as u64),
            ));
            let (tx, rx) = unbounded();
            handles.push(spawn_node(
                id,
                NodeRuntime {
                    protocol,
                    offered_rate: 0.0,
                    payload: Payload::new(),
                    max_backlog: 2,
                    rebuild: None,
                    probe: TraceProbe::new(agb_trace::TraceConfig::disabled(), id),
                    telemetry: NodeTelemetry::disabled(),
                    loss: 0.0,
                    loss_rng: DetRng::seed_from_u64(0),
                    detector: None,
                    heartbeat_targets: vec![],
                    adversary: None,
                    adversary_rng: DetRng::seed_from_u64(0),
                    egress_capacity: 0,
                    profile: false,
                },
                transport,
                Arc::clone(&metrics),
                None,
                epoch,
                Arc::clone(&shutdown),
                rx,
                tx,
            ));
        }

        assert!(handles[0].command(Command::Offer(Payload::from_static(b"hi"))));
        std::thread::sleep(Duration::from_millis(400));
        shutdown.store(true, Ordering::Relaxed);
        for h in handles {
            h.join.join().unwrap();
        }
        let m = metrics.lock();
        let report = m.deliveries().atomicity(0.95, None);
        assert_eq!(report.messages, 1);
        assert_eq!(report.avg_receiver_fraction, 1.0, "both nodes deliver");
    }
}
