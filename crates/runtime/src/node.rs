//! The per-node runtime thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use agb_core::{FrameProtocol, GossipFrame};
use agb_metrics::MetricsCollector;
use agb_trace::{Recorder, TraceProbe, TraceSink};
use agb_types::{bernoulli, DetRng, NodeId, Payload, TimeMs};
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::telemetry::{stamp_payload, LifecycleKind, NodeTelemetry};
use crate::transport::{Transport, MAX_DATAGRAM};
use crate::wire;

/// Control-plane commands accepted by a running node.
#[derive(Debug)]
pub enum Command {
    /// Offer a payload for broadcast.
    Offer(Payload),
    /// Resize the event buffer (the Figure 9 runtime experiment).
    Resize(usize),
    /// Crash-stop: the node stops gossiping, receiving and offering, but
    /// keeps its state for a later [`Command::Recover`].
    Crash,
    /// Resume after a [`Command::Crash`], state intact.
    Recover,
    /// Restart with state loss: the protocol state machine is rebuilt from
    /// the node's factory (see [`NodeRuntime::rebuild`]) and the node
    /// resumes. Falls back to [`Command::Recover`] when no factory is
    /// installed.
    Restart,
    /// Graceful leave: emit farewell frames (flushing the buffer and, with
    /// partial views, propagating the unsubscription), then go silent.
    Leave,
}

/// Handle to a spawned node thread.
pub struct NodeHandle {
    /// The node's identity.
    pub node: NodeId,
    pub(crate) cmd_tx: Sender<Command>,
    pub(crate) join: JoinHandle<()>,
}

impl NodeHandle {
    /// Sends a control command; returns `false` if the node has stopped.
    pub fn command(&self, cmd: Command) -> bool {
        self.cmd_tx.send(cmd).is_ok()
    }
}

/// Parameters for one node thread.
pub struct NodeRuntime {
    /// The protocol state machine to drive (plain or recovery-wrapped).
    pub protocol: Box<dyn FrameProtocol + Send>,
    /// Offered load in msgs/s (0 = pure receiver), constant pacing.
    pub offered_rate: f64,
    /// Payload attached to offered messages.
    pub payload: Payload,
    /// Blocking-application backlog bound.
    pub max_backlog: usize,
    /// Factory rebuilding the protocol from scratch, used by
    /// [`Command::Restart`] to model restart-with-state-loss.
    pub rebuild: Option<Box<dyn Fn() -> Box<dyn FrameProtocol + Send> + Send>>,
    /// Causal-trace probe. A disabled probe records nothing and the loop
    /// takes none of the tracing branches.
    pub probe: TraceProbe,
    /// Wall-clock telemetry handles. A disabled instance records nothing
    /// and paced offers are not latency-stamped.
    pub telemetry: NodeTelemetry,
    /// Sender-side injected datagram loss probability in `[0, 1)` — a
    /// deterministic harness for exercising the recovery plane over real
    /// transports.
    pub loss: f64,
    /// RNG stream driving the loss draws.
    pub loss_rng: DetRng,
}

/// Encodes `frame`, applies the injected-loss harness, and hands each
/// fragment to the transport, counting outcomes into the telemetry
/// plane. Accepted fragments count as sent; refused ones by cause.
fn transmit<T: Transport>(
    transport: &T,
    encoder: &mut wire::FrameEncoder,
    telemetry: &NodeTelemetry,
    loss: f64,
    loss_rng: &mut DetRng,
    to: NodeId,
    frame: &GossipFrame,
) {
    for frag in encoder.split_for_datagram(frame, MAX_DATAGRAM) {
        if loss > 0.0 && bernoulli(loss_rng, loss) {
            telemetry.on_loss();
            continue;
        }
        let len = frag.len();
        match transport.send(to, frag) {
            Ok(()) => telemetry.on_sent(frame, len),
            Err(e) => telemetry.on_send_error(&e),
        }
    }
}

/// Spawns the node's event loop on a dedicated OS thread.
///
/// The loop multiplexes: datagram reception (bounded waits), the periodic
/// gossip round at the protocol's configured period, control commands, and
/// constant-rate local offers. All protocol events are drained into the
/// shared collector.
#[allow(clippy::too_many_arguments)] // the node's full wiring, spelled out
pub fn spawn_node<T: Transport>(
    id: NodeId,
    runtime: NodeRuntime,
    transport: T,
    metrics: Arc<Mutex<MetricsCollector>>,
    trace: Option<Arc<Mutex<Recorder>>>,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
    cmd_rx: Receiver<Command>,
    cmd_tx: Sender<Command>,
) -> NodeHandle {
    let join = std::thread::Builder::new()
        .name(format!("agb-node-{}", id.index()))
        .spawn(move || {
            node_loop(
                id, runtime, transport, metrics, trace, epoch, shutdown, cmd_rx,
            )
        })
        .expect("spawn node thread");
    NodeHandle {
        node: id,
        cmd_tx,
        join,
    }
}

#[allow(clippy::too_many_arguments)] // mirrors spawn_node's wiring
fn node_loop<T: Transport>(
    id: NodeId,
    mut runtime: NodeRuntime,
    transport: T,
    metrics: Arc<Mutex<MetricsCollector>>,
    trace: Option<Arc<Mutex<Recorder>>>,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
    cmd_rx: Receiver<Command>,
) {
    let period = runtime.protocol.gossip_period().to_std();
    // Stagger rounds by node index to avoid synchronized bursts, like the
    // unsynchronized processes of the paper's testbed.
    let phase = period.mul_f64((id.index() % 16) as f64 / 16.0);
    let mut next_round = epoch + period + phase;
    let offer_gap = if runtime.offered_rate > 0.0 {
        Some(Duration::from_secs_f64(1.0 / runtime.offered_rate))
    } else {
        None
    };
    let mut next_offer = offer_gap.map(|g| epoch + g);

    let now_ms = |at: Instant| TimeMs::from_millis(at.duration_since(epoch).as_millis() as u64);
    // Pooled wire buffers: frames encode into recycled scratch, and
    // decoded payloads intern into shared handles.
    let mut encoder = wire::FrameEncoder::default();
    // Bounded small: entries pin their payload bytes until the table's
    // wholesale reset, so a long-lived node must not retain tens of
    // thousands of distinct datagram-sized payloads.
    let mut interner = agb_types::PayloadInterner::new(1024);
    // Crash-stopped (or departed) until further command: datagrams are
    // drained and discarded, rounds and offers are suppressed.
    let mut down = false;

    while !shutdown.load(Ordering::Relaxed) {
        // 1. Control commands.
        while let Ok(cmd) = cmd_rx.try_recv() {
            let now = now_ms(Instant::now());
            match cmd {
                Command::Offer(payload) => {
                    if !down {
                        runtime.protocol.offer(payload, now);
                    }
                }
                Command::Resize(cap) => {
                    runtime.protocol.set_buffer_capacity(cap, now);
                }
                Command::Crash => {
                    runtime.probe.on_crash(now);
                    runtime.telemetry.on_lifecycle(LifecycleKind::Crash);
                    down = true;
                }
                Command::Recover => {
                    runtime.probe.on_restart(now);
                    runtime.telemetry.on_lifecycle(LifecycleKind::Recover);
                    down = false;
                    next_round = Instant::now() + period;
                    if let Some(gap) = offer_gap {
                        next_offer = Some(Instant::now() + gap);
                    }
                }
                Command::Restart => {
                    if let Some(rebuild) = &runtime.rebuild {
                        runtime.protocol = rebuild();
                    }
                    runtime.probe.on_restart(now);
                    runtime.telemetry.on_lifecycle(LifecycleKind::Restart);
                    down = false;
                    next_round = Instant::now() + period;
                    if let Some(gap) = offer_gap {
                        next_offer = Some(Instant::now() + gap);
                    }
                }
                Command::Leave => {
                    let farewells = runtime.protocol.leave(now);
                    runtime.probe.observe_frames(now, &farewells);
                    runtime.telemetry.on_lifecycle(LifecycleKind::Leave);
                    for (to, frame) in farewells {
                        transmit(
                            &transport,
                            &mut encoder,
                            &runtime.telemetry,
                            runtime.loss,
                            &mut runtime.loss_rng,
                            to,
                            &frame,
                        );
                    }
                    down = true;
                }
            }
        }

        if down {
            // Keep the socket drained (datagrams addressed to a crashed
            // node are lost, not queued) and the command channel
            // responsive.
            let _ = transport.recv_timeout(Duration::from_millis(5));
            continue;
        }

        // 2. Paced local offers (blocking-application semantics: skip when
        //    the protocol backlog is full).
        if let (Some(gap), Some(next)) = (offer_gap, next_offer) {
            let mut at = next;
            while at <= Instant::now() {
                if runtime.protocol.pending_len() < runtime.max_backlog.max(1) {
                    // Under telemetry, stamp the send time into the payload
                    // so the delivering node can measure end-to-end latency.
                    let payload = if runtime.telemetry.enabled() {
                        stamp_payload(&runtime.payload, epoch)
                            .unwrap_or_else(|| runtime.payload.clone())
                    } else {
                        runtime.payload.clone()
                    };
                    runtime.protocol.offer(payload, now_ms(at));
                } else {
                    // Blocking application refused an offer: a congestion
                    // drop in the trace taxonomy.
                    runtime.probe.on_congestion_drops(now_ms(at), 1);
                    runtime.telemetry.on_offer_refused();
                    runtime.telemetry.on_congestion_drop();
                }
                at += gap;
            }
            next_offer = Some(at);
        }

        // 3. Receive until the next round deadline (bounded slice so
        //    commands stay responsive).
        let now_instant = Instant::now();
        let until_round = next_round.saturating_duration_since(now_instant);
        let slice = until_round.min(Duration::from_millis(5));
        if let Some(bytes) = transport.recv_timeout(slice) {
            match wire::decode_frame_interned(&bytes, &mut interner) {
                Ok(frame) => {
                    let from = frame.sender();
                    runtime.probe.on_message(&frame);
                    runtime.telemetry.on_received(&frame, bytes.len());
                    let at = now_ms(Instant::now());
                    let replies = runtime.protocol.on_receive(from, frame, at);
                    for (to, reply) in replies {
                        transmit(
                            &transport,
                            &mut encoder,
                            &runtime.telemetry,
                            runtime.loss,
                            &mut runtime.loss_rng,
                            to,
                            &reply,
                        );
                    }
                    if runtime.probe.enabled() {
                        // Drain per datagram so the probe can attribute the
                        // events (and detect duplicates) to this sender.
                        let events = runtime.protocol.drain_events();
                        runtime.probe.on_events(&events);
                        runtime.probe.on_received(at, from, &events);
                        runtime.telemetry.on_events(&events);
                        if !events.is_empty() {
                            metrics.lock().on_events(id, &events);
                        }
                    }
                }
                Err(_) => {
                    // Corrupt datagram: drop, like the network would — but
                    // count it, unlike the network.
                    runtime.telemetry.on_decode_error();
                }
            }
        }

        // 4. Gossip round.
        if Instant::now() >= next_round {
            let at = now_ms(next_round);
            let out = runtime.protocol.on_round(at);
            if runtime.probe.enabled() {
                runtime.probe.on_round(
                    at,
                    &out,
                    runtime.protocol.buffer_len(),
                    runtime.protocol.buffer_capacity(),
                );
            }
            if runtime.telemetry.enabled() {
                runtime.telemetry.on_round(
                    runtime.protocol.buffer_len(),
                    runtime.protocol.buffer_capacity(),
                );
            }
            for (to, frame) in out {
                transmit(
                    &transport,
                    &mut encoder,
                    &runtime.telemetry,
                    runtime.loss,
                    &mut runtime.loss_rng,
                    to,
                    &frame,
                );
            }
            next_round += period;
        }

        // 5. Drain protocol events into the shared collector, and flush
        //    any buffered trace records into the shared recorder.
        let events = runtime.protocol.drain_events();
        if !events.is_empty() {
            runtime.probe.on_events(&events);
            runtime.telemetry.on_events(&events);
            let mut m = metrics.lock();
            m.on_events(id, &events);
        }
        if runtime.telemetry.enabled() {
            runtime
                .telemetry
                .set_queue_depth(cmd_rx.len() + runtime.protocol.pending_len());
        }
        if runtime.probe.pending_len() > 0 {
            if let Some(recorder) = &trace {
                let mut r = recorder.lock();
                for record in runtime.probe.drain_pending() {
                    r.record(record);
                }
            } else {
                runtime.probe.drain_pending().for_each(drop);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use agb_core::{GossipConfig, LpbcastNode};
    use agb_membership::FullView;
    use agb_types::{DetRng, DurationMs};
    use crossbeam::channel::unbounded;
    use rand::SeedableRng;

    #[test]
    fn two_nodes_exchange_a_broadcast() {
        let n = 2;
        let transports = ChannelTransport::cluster(n);
        let metrics = Arc::new(Mutex::new(MetricsCollector::new(
            n,
            DurationMs::from_millis(100),
        )));
        let shutdown = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();

        let mut handles = Vec::new();
        for (i, transport) in transports.into_iter().enumerate() {
            let id = NodeId::new(i as u32);
            let mut gossip = GossipConfig::default();
            gossip.gossip_period = DurationMs::from_millis(30);
            let protocol = Box::new(LpbcastNode::new(
                id,
                gossip,
                FullView::new(n),
                DetRng::seed_from_u64(i as u64),
            ));
            let (tx, rx) = unbounded();
            handles.push(spawn_node(
                id,
                NodeRuntime {
                    protocol,
                    offered_rate: 0.0,
                    payload: Payload::new(),
                    max_backlog: 2,
                    rebuild: None,
                    probe: TraceProbe::new(agb_trace::TraceConfig::disabled(), id),
                    telemetry: NodeTelemetry::disabled(),
                    loss: 0.0,
                    loss_rng: DetRng::seed_from_u64(0),
                },
                transport,
                Arc::clone(&metrics),
                None,
                epoch,
                Arc::clone(&shutdown),
                rx,
                tx,
            ));
        }

        assert!(handles[0].command(Command::Offer(Payload::from_static(b"hi"))));
        std::thread::sleep(Duration::from_millis(400));
        shutdown.store(true, Ordering::Relaxed);
        for h in handles {
            h.join.join().unwrap();
        }
        let m = metrics.lock();
        let report = m.deliveries().atomicity(0.95, None);
        assert_eq!(report.messages, 1);
        assert_eq!(report.avg_receiver_fraction, 1.0, "both nodes deliver");
    }
}
