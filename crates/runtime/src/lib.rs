//! Threaded real-time runtime for the gossip protocols.
//!
//! The paper validated its simulations with "a full implementation, based
//! on Java 2 Standard Edition ... deployed on 60 workstations connected by
//! an Ethernet local area network". This crate is that prototype, rebuilt:
//! each node is an OS thread driving the *same* sans-IO protocol state
//! machines as the simulator, exchanging datagrams over real UDP sockets on
//! the loopback interface (or in-process channels for CI).
//!
//! Because time here is wall-clock, experiments scale the gossip period
//! down (the protocol's dynamics depend on rounds, not on seconds), exactly
//! as one would when porting a 5-second-period LAN deployment into a test
//! harness.
//!
//! # Example
//!
//! ```no_run
//! use std::time::Duration;
//! use agb_runtime::{RuntimeCluster, RuntimeClusterConfig};
//!
//! let cluster = RuntimeCluster::start(RuntimeClusterConfig::quick(8, 1)).unwrap();
//! cluster.run_for(Duration::from_millis(500));
//! let metrics = cluster.stop();
//! println!("{} messages", metrics.deliveries().message_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod node;
pub mod telemetry;
mod transport;
pub mod wire;

pub use cluster::{RuntimeCluster, RuntimeClusterConfig, TransportKind};
pub use node::{Command, NodeHandle, NodeRuntime};
pub use telemetry::{read_stamp, stamp_payload, LifecycleKind, NodeTelemetry, STAMP_LEN};
pub use transport::{ChannelTransport, Transport, TransportError, UdpTransport, MAX_DATAGRAM};
