//! Per-node wall-clock instrumentation: the runtime side of
//! `agb-telemetry`.
//!
//! Each node thread owns a [`NodeTelemetry`] holding pre-registered
//! handles into that node's metric registry, so the hot loop records with
//! relaxed atomics and never touches the registry mutex. A disabled
//! instance is a `None` and every hook is a no-op branch.

use std::collections::HashMap;
use std::time::Instant;

use agb_core::{GossipFrame, ProtocolEvent, PurgeReason};
use agb_telemetry::{
    dwell_seconds_bounds, latency_seconds_bounds, names, Counter, Gauge, Registry, WallHistogram,
};
use agb_types::{NodeId, Payload};

use crate::transport::TransportError;

/// Marker prefix of latency-stamped payloads (see [`stamp_payload`]).
const STAMP_MAGIC: [u8; 4] = *b"AGBT";

/// Bytes a payload needs for a latency stamp: 4 magic + 8 millis.
pub const STAMP_LEN: usize = 12;

/// Stamps `template` with the current send time: the first [`STAMP_LEN`]
/// bytes become a magic marker plus milliseconds since `epoch`,
/// little-endian. Returns `None` when the payload is too small to carry
/// a stamp (the caller sends the template unmodified).
///
/// Every node of a cluster shares one process-wide `epoch`, so a stamp
/// read on delivery ([`read_stamp`]) measures true end-to-end wall-clock
/// latency without any cross-host clock agreement.
pub fn stamp_payload(template: &Payload, epoch: Instant) -> Option<Payload> {
    if template.len() < STAMP_LEN {
        return None;
    }
    let mut bytes = template.to_vec();
    bytes[..4].copy_from_slice(&STAMP_MAGIC);
    let millis = epoch.elapsed().as_millis() as u64;
    bytes[4..STAMP_LEN].copy_from_slice(&millis.to_le_bytes());
    Some(Payload::from(bytes))
}

/// Reads a [`stamp_payload`] stamp back: the send time in milliseconds
/// since the cluster epoch, or `None` if the payload is unstamped.
pub fn read_stamp(payload: &[u8]) -> Option<u64> {
    if payload.len() < STAMP_LEN || payload[..4] != STAMP_MAGIC {
        return None;
    }
    let mut millis = [0u8; 8];
    millis.copy_from_slice(&payload[4..STAMP_LEN]);
    Some(u64::from_le_bytes(millis))
}

/// A node's pre-registered metric handles (no-op when disabled).
pub struct NodeTelemetry {
    inner: Option<Box<Cells>>,
}

struct Cells {
    epoch: Instant,
    sent_gossip: Counter,
    sent_graft: Counter,
    sent_retransmit: Counter,
    received_gossip: Counter,
    received_graft: Counter,
    received_retransmit: Counter,
    bytes_sent: Counter,
    bytes_received: Counter,
    send_err_io: Counter,
    send_err_oversize: Counter,
    send_err_unknown: Counter,
    decode_errors: Counter,
    loss_injected: Counter,
    publishes: Counter,
    deliveries: Counter,
    drops_age: Counter,
    drops_size: Counter,
    drops_congestion: Counter,
    rec_graft: Counter,
    rec_retransmit: Counter,
    rec_recovered: Counter,
    rec_duplicate: Counter,
    rec_abandoned: Counter,
    lifecycle_crash: Counter,
    lifecycle_recover: Counter,
    lifecycle_restart: Counter,
    lifecycle_leave: Counter,
    rounds: Counter,
    offers_refused: Counter,
    suspicions: Counter,
    detector_evictions: Counter,
    heartbeats: Counter,
    shed_app: Counter,
    shed_recovery: Counter,
    shed_control: Counter,
    send_retries: Counter,
    recv_closed: Counter,
    delivery_latency: WallHistogram,
    recovery_rtt: WallHistogram,
    loop_iteration: WallHistogram,
    egress_dwell: WallHistogram,
    buffer_events: Gauge,
    buffer_capacity: Gauge,
    event_queue_depth: Gauge,
    /// Open `Graft` round trips: advertiser -> request time.
    outstanding: HashMap<u32, Instant>,
}

impl NodeTelemetry {
    /// The no-op instance: every hook is one branch on `None`.
    pub fn disabled() -> Self {
        NodeTelemetry { inner: None }
    }

    /// Registers this node's series in `registry` and keeps the handles.
    pub fn new(registry: &Registry, node: NodeId, epoch: Instant) -> Self {
        let node_s = node.index().to_string();
        let n = node_s.as_str();
        let counter =
            |name, help, labels: &[(&'static str, &str)]| registry.counter(name, help, labels);
        let by_node: &[(&'static str, &str)] = &[("node", n)];
        let cells = Cells {
            epoch,
            sent_gossip: counter(
                names::MESSAGES_SENT,
                names::help::MESSAGES_SENT,
                &[("node", n), ("kind", "gossip")],
            ),
            sent_graft: counter(
                names::MESSAGES_SENT,
                names::help::MESSAGES_SENT,
                &[("node", n), ("kind", "graft")],
            ),
            sent_retransmit: counter(
                names::MESSAGES_SENT,
                names::help::MESSAGES_SENT,
                &[("node", n), ("kind", "retransmit")],
            ),
            received_gossip: counter(
                names::MESSAGES_RECEIVED,
                names::help::MESSAGES_RECEIVED,
                &[("node", n), ("kind", "gossip")],
            ),
            received_graft: counter(
                names::MESSAGES_RECEIVED,
                names::help::MESSAGES_RECEIVED,
                &[("node", n), ("kind", "graft")],
            ),
            received_retransmit: counter(
                names::MESSAGES_RECEIVED,
                names::help::MESSAGES_RECEIVED,
                &[("node", n), ("kind", "retransmit")],
            ),
            bytes_sent: counter(names::BYTES_SENT, names::help::BYTES_SENT, by_node),
            bytes_received: counter(names::BYTES_RECEIVED, names::help::BYTES_RECEIVED, by_node),
            send_err_io: counter(
                names::SEND_ERRORS,
                names::help::SEND_ERRORS,
                &[("node", n), ("cause", "io")],
            ),
            send_err_oversize: counter(
                names::SEND_ERRORS,
                names::help::SEND_ERRORS,
                &[("node", n), ("cause", "oversize")],
            ),
            send_err_unknown: counter(
                names::SEND_ERRORS,
                names::help::SEND_ERRORS,
                &[("node", n), ("cause", "unknown_peer")],
            ),
            decode_errors: counter(names::DECODE_ERRORS, names::help::DECODE_ERRORS, by_node),
            loss_injected: counter(names::LOSS_INJECTED, names::help::LOSS_INJECTED, by_node),
            publishes: counter(names::PUBLISHES, names::help::PUBLISHES, by_node),
            deliveries: counter(names::DELIVERIES, names::help::DELIVERIES, by_node),
            drops_age: counter(
                names::DROPS,
                names::help::DROPS,
                &[("node", n), ("cause", "age")],
            ),
            drops_size: counter(
                names::DROPS,
                names::help::DROPS,
                &[("node", n), ("cause", "size")],
            ),
            drops_congestion: counter(
                names::DROPS,
                names::help::DROPS,
                &[("node", n), ("cause", "congestion")],
            ),
            rec_graft: counter(
                names::RECOVERY_EVENTS,
                names::help::RECOVERY_EVENTS,
                &[("node", n), ("kind", "graft")],
            ),
            rec_retransmit: counter(
                names::RECOVERY_EVENTS,
                names::help::RECOVERY_EVENTS,
                &[("node", n), ("kind", "retransmit")],
            ),
            rec_recovered: counter(
                names::RECOVERY_EVENTS,
                names::help::RECOVERY_EVENTS,
                &[("node", n), ("kind", "recovered")],
            ),
            rec_duplicate: counter(
                names::RECOVERY_EVENTS,
                names::help::RECOVERY_EVENTS,
                &[("node", n), ("kind", "duplicate")],
            ),
            rec_abandoned: counter(
                names::RECOVERY_EVENTS,
                names::help::RECOVERY_EVENTS,
                &[("node", n), ("kind", "abandoned")],
            ),
            lifecycle_crash: counter(
                names::LIFECYCLE,
                names::help::LIFECYCLE,
                &[("node", n), ("kind", "crash")],
            ),
            lifecycle_recover: counter(
                names::LIFECYCLE,
                names::help::LIFECYCLE,
                &[("node", n), ("kind", "recover")],
            ),
            lifecycle_restart: counter(
                names::LIFECYCLE,
                names::help::LIFECYCLE,
                &[("node", n), ("kind", "restart")],
            ),
            lifecycle_leave: counter(
                names::LIFECYCLE,
                names::help::LIFECYCLE,
                &[("node", n), ("kind", "leave")],
            ),
            rounds: counter(names::ROUNDS, names::help::ROUNDS, by_node),
            offers_refused: counter(names::OFFERS_REFUSED, names::help::OFFERS_REFUSED, by_node),
            suspicions: counter(names::SUSPICIONS, names::help::SUSPICIONS, by_node),
            detector_evictions: counter(
                names::DETECTOR_EVICTIONS,
                names::help::DETECTOR_EVICTIONS,
                by_node,
            ),
            heartbeats: counter(names::HEARTBEATS, names::help::HEARTBEATS, by_node),
            shed_app: counter(
                names::SHEDS,
                names::help::SHEDS,
                &[("node", n), ("class", "app")],
            ),
            shed_recovery: counter(
                names::SHEDS,
                names::help::SHEDS,
                &[("node", n), ("class", "recovery")],
            ),
            shed_control: counter(
                names::SHEDS,
                names::help::SHEDS,
                &[("node", n), ("class", "control")],
            ),
            send_retries: counter(names::SEND_RETRIES, names::help::SEND_RETRIES, by_node),
            recv_closed: counter(names::RECV_CLOSED, names::help::RECV_CLOSED, by_node),
            delivery_latency: registry.histogram(
                names::DELIVERY_LATENCY_SECONDS,
                names::help::DELIVERY_LATENCY_SECONDS,
                by_node,
                &latency_seconds_bounds(),
            ),
            recovery_rtt: registry.histogram(
                names::RECOVERY_RTT_SECONDS,
                names::help::RECOVERY_RTT_SECONDS,
                by_node,
                &latency_seconds_bounds(),
            ),
            // µs-scale internals get the dwell preset: against the
            // latency bounds every sample lands in the first bucket.
            loop_iteration: registry.histogram(
                names::LOOP_ITERATION_SECONDS,
                names::help::LOOP_ITERATION_SECONDS,
                by_node,
                &dwell_seconds_bounds(),
            ),
            egress_dwell: registry.histogram(
                names::EGRESS_DWELL_SECONDS,
                names::help::EGRESS_DWELL_SECONDS,
                by_node,
                &dwell_seconds_bounds(),
            ),
            buffer_events: registry.gauge(
                names::BUFFER_EVENTS,
                names::help::BUFFER_EVENTS,
                by_node,
            ),
            buffer_capacity: registry.gauge(
                names::BUFFER_CAPACITY,
                names::help::BUFFER_CAPACITY,
                by_node,
            ),
            event_queue_depth: registry.gauge(
                names::EVENT_QUEUE_DEPTH,
                names::help::EVENT_QUEUE_DEPTH,
                by_node,
            ),
            outstanding: HashMap::new(),
        };
        NodeTelemetry {
            inner: Some(Box::new(cells)),
        }
    }

    /// Whether recording is active (disabled instances skip payload
    /// stamping too).
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// One fragment was accepted by the transport.
    pub fn on_sent(&self, frame: &GossipFrame, len: usize) {
        if let Some(c) = &self.inner {
            match frame {
                GossipFrame::Gossip { .. } => c.sent_gossip.inc(),
                GossipFrame::Graft(_) => c.sent_graft.inc(),
                GossipFrame::Retransmit(_) => c.sent_retransmit.inc(),
            }
            c.bytes_sent.add(len as u64);
        }
    }

    /// The transport refused a fragment.
    pub fn on_send_error(&self, err: &TransportError) {
        if let Some(c) = &self.inner {
            match err {
                TransportError::Io(_) => c.send_err_io.inc(),
                TransportError::Oversize { .. } => c.send_err_oversize.inc(),
                TransportError::UnknownPeer(_) => c.send_err_unknown.inc(),
            }
        }
    }

    /// The loss harness dropped a fragment before the transport.
    pub fn on_loss(&self) {
        if let Some(c) = &self.inner {
            c.loss_injected.inc();
        }
    }

    /// One datagram decoded into a frame.
    pub fn on_received(&self, frame: &GossipFrame, len: usize) {
        if let Some(c) = &self.inner {
            match frame {
                GossipFrame::Gossip { .. } => c.received_gossip.inc(),
                GossipFrame::Graft(_) => c.received_graft.inc(),
                GossipFrame::Retransmit(_) => c.received_retransmit.inc(),
            }
            c.bytes_received.add(len as u64);
        }
    }

    /// One datagram failed frame decoding.
    pub fn on_decode_error(&self) {
        if let Some(c) = &self.inner {
            c.decode_errors.inc();
        }
    }

    /// One gossip round ran; snapshots buffer occupancy.
    pub fn on_round(&self, buffer_len: usize, buffer_capacity: usize) {
        if let Some(c) = &self.inner {
            c.rounds.inc();
            c.buffer_events.set(buffer_len as i64);
            c.buffer_capacity.set(buffer_capacity as i64);
        }
    }

    /// A paced offer was refused by the blocking-application backlog.
    pub fn on_offer_refused(&self) {
        if let Some(c) = &self.inner {
            c.offers_refused.inc();
        }
    }

    /// A lifecycle command was processed.
    pub fn on_lifecycle(&self, kind: LifecycleKind) {
        if let Some(c) = &self.inner {
            match kind {
                LifecycleKind::Crash => c.lifecycle_crash.inc(),
                LifecycleKind::Recover => c.lifecycle_recover.inc(),
                LifecycleKind::Restart => c.lifecycle_restart.inc(),
                LifecycleKind::Leave => c.lifecycle_leave.inc(),
            }
        }
    }

    /// Updates the node-loop backlog gauge.
    pub fn set_queue_depth(&self, depth: usize) {
        if let Some(c) = &self.inner {
            c.event_queue_depth.set(depth as i64);
        }
    }

    /// Folds drained protocol events: deliveries (with end-to-end latency
    /// when the payload carries a stamp), drops by cause, the recovery
    /// plane, and graft→recovered wall-clock round trips.
    pub fn on_events(&mut self, events: &[ProtocolEvent]) {
        let Some(c) = &mut self.inner else {
            return;
        };
        let now = Instant::now();
        let now_ms = now.duration_since(c.epoch).as_millis() as u64;
        for event in events {
            match event {
                ProtocolEvent::Admitted { .. } => c.publishes.inc(),
                ProtocolEvent::Delivered { event, .. } => {
                    c.deliveries.inc();
                    if let Some(sent_ms) = read_stamp(event.payload()) {
                        let secs = now_ms.saturating_sub(sent_ms) as f64 / 1_000.0;
                        c.delivery_latency.observe(secs);
                    }
                }
                ProtocolEvent::Dropped { reason, .. } => match reason {
                    PurgeReason::AgeCap => c.drops_age.inc(),
                    PurgeReason::Overflow => c.drops_size.inc(),
                },
                ProtocolEvent::RecoveryRequested { to, .. } => {
                    c.rec_graft.inc();
                    // Latest request wins: retries restart the RTT clock.
                    c.outstanding.insert(to.as_u32(), now);
                }
                ProtocolEvent::RecoveryServed { .. } => c.rec_retransmit.inc(),
                ProtocolEvent::Recovered { from, .. } => {
                    c.rec_recovered.inc();
                    if let Some(sent) = c.outstanding.remove(&from.as_u32()) {
                        c.recovery_rtt
                            .observe(now.duration_since(sent).as_secs_f64());
                    }
                }
                ProtocolEvent::RecoveryDuplicate { .. } => c.rec_duplicate.inc(),
                ProtocolEvent::RecoveryAbandoned { .. } => c.rec_abandoned.inc(),
                ProtocolEvent::RateChanged { .. } | ProtocolEvent::PeriodRollover { .. } => {}
            }
        }
    }

    /// One full node-loop iteration completed (wake to sleep), in
    /// seconds.
    pub fn on_loop_iteration(&self, secs: f64) {
        if let Some(c) = &self.inner {
            c.loop_iteration.observe(secs);
        }
    }

    /// One frame left the egress queue for the transport after dwelling
    /// `secs` seconds since enqueue.
    pub fn on_egress_dwell(&self, secs: f64) {
        if let Some(c) = &self.inner {
            c.egress_dwell.observe(secs);
        }
    }

    /// A throttled offer was refused at the node loop (counted as a
    /// congestion drop, matching the trace taxonomy).
    pub fn on_congestion_drop(&self) {
        if let Some(c) = &self.inner {
            c.drops_congestion.inc();
        }
    }

    /// The φ-accrual detector first suspected a peer.
    pub fn on_suspect(&self) {
        if let Some(c) = &self.inner {
            c.suspicions.inc();
        }
    }

    /// The detector condemned a peer and this node evicted it.
    pub fn on_detector_evict(&self) {
        if let Some(c) = &self.inner {
            c.detector_evictions.inc();
        }
    }

    /// An explicit heartbeat was sent to a ring successor that gossip
    /// did not cover this round.
    pub fn on_heartbeat(&self) {
        if let Some(c) = &self.inner {
            c.heartbeats.inc();
        }
    }

    /// An overloaded egress queue shed a frame of the given class.
    pub fn on_shed(&self, class: ShedClass) {
        if let Some(c) = &self.inner {
            match class {
                ShedClass::App => c.shed_app.inc(),
                ShedClass::Recovery => c.shed_recovery.inc(),
                ShedClass::Control => c.shed_control.inc(),
            }
        }
    }

    /// A recovery-class frame was re-sent after a backed-off retry.
    pub fn on_send_retry(&self) {
        if let Some(c) = &self.inner {
            c.send_retries.inc();
        }
    }

    /// The transport reported terminal teardown to the node loop.
    pub fn on_recv_closed(&self) {
        if let Some(c) = &self.inner {
            c.recv_closed.inc();
        }
    }
}

/// Egress priority classes, highest shed-resistance last: under
/// overload the queue sheds `App` first, then `Recovery`; `Control`
/// frames (membership, graft requests) go last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedClass {
    /// Regular gossip data frames.
    App,
    /// Retransmissions and recovery replies.
    Recovery,
    /// Membership and graft-request frames.
    Control,
}

impl ShedClass {
    /// Stable lowercase label (metric `class` label, trace class byte).
    pub fn label(self) -> &'static str {
        match self {
            ShedClass::App => "app",
            ShedClass::Recovery => "recovery",
            ShedClass::Control => "control",
        }
    }

    /// The trace-record class byte (0 = app, 1 = recovery, 2 = control).
    pub fn as_u8(self) -> u8 {
        match self {
            ShedClass::App => 0,
            ShedClass::Recovery => 1,
            ShedClass::Control => 2,
        }
    }
}

/// Lifecycle transition kinds, matching the `kind` label of
/// `agb_lifecycle_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleKind {
    /// Crash-stop (state kept).
    Crash,
    /// Resume after a crash.
    Recover,
    /// Restart with state loss.
    Restart,
    /// Graceful leave.
    Leave,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stamp_round_trips_and_needs_room() {
        let epoch = Instant::now();
        let small = Payload::from(vec![0u8; STAMP_LEN - 1]);
        assert!(stamp_payload(&small, epoch).is_none());
        let template = Payload::from(vec![0u8; 64]);
        let stamped = stamp_payload(&template, epoch).expect("room for a stamp");
        assert_eq!(stamped.len(), 64, "stamping preserves the size");
        let sent = read_stamp(&stamped).expect("stamped");
        assert!(sent < 1_000, "stamped within this test's first second");
        // Unstamped payloads read as None, not garbage latencies.
        assert_eq!(read_stamp(&template), None);
        assert_eq!(read_stamp(b"AGB"), None);
    }

    #[test]
    fn disabled_instance_is_inert() {
        let mut t = NodeTelemetry::disabled();
        assert!(!t.enabled());
        t.on_decode_error();
        t.on_round(3, 10);
        t.on_events(&[]);
        t.set_queue_depth(5);
    }

    #[test]
    fn events_fold_into_counters_and_latency() {
        use agb_core::Event;
        use agb_types::{EventId, TimeMs};

        let registry = Registry::new();
        let epoch = Instant::now() - Duration::from_millis(500);
        let mut t = NodeTelemetry::new(&registry, NodeId::new(2), epoch);
        assert!(t.enabled());

        // A stamped payload "sent" 500 ms ago (at the epoch).
        let template = Payload::from(vec![0u8; 32]);
        let stamped = stamp_payload(&template, epoch).unwrap();
        // Rewrite the stamp to exactly 0 ms (the epoch itself).
        let mut bytes = stamped.to_vec();
        bytes[4..STAMP_LEN].copy_from_slice(&0u64.to_le_bytes());
        let event = Event::new(EventId::new(NodeId::new(0), 1), Payload::from(bytes));

        let id = EventId::new(NodeId::new(0), 1);
        t.on_events(&[
            ProtocolEvent::Admitted {
                id,
                at: TimeMs::from_millis(0),
            },
            ProtocolEvent::Delivered {
                event,
                from: NodeId::new(0),
                at: TimeMs::from_millis(500),
            },
            ProtocolEvent::Dropped {
                id,
                age: 9,
                reason: PurgeReason::Overflow,
                at: TimeMs::from_millis(500),
            },
        ]);

        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::PUBLISHES, &[("node", "2")]), Some(1));
        assert_eq!(snap.counter(names::DELIVERIES, &[("node", "2")]), Some(1));
        assert_eq!(
            snap.counter(names::DROPS, &[("cause", "size"), ("node", "2")]),
            Some(1)
        );
        let lat = snap
            .histogram_merged(names::DELIVERY_LATENCY_SECONDS)
            .unwrap();
        assert_eq!(lat.count, 1);
        assert!(
            lat.sum >= 0.5,
            "observed ~0.5 s of latency, got {}",
            lat.sum
        );
    }

    #[test]
    fn recovery_rtt_pairs_graft_with_recovered() {
        use agb_types::{EventId, TimeMs};

        let registry = Registry::new();
        let mut t = NodeTelemetry::new(&registry, NodeId::new(0), Instant::now());
        let peer = NodeId::new(7);
        t.on_events(&[ProtocolEvent::RecoveryRequested {
            to: peer,
            ids: 2,
            at: TimeMs::from_millis(0),
        }]);
        t.on_events(&[ProtocolEvent::Recovered {
            id: EventId::new(NodeId::new(1), 4),
            from: peer,
            at: TimeMs::from_millis(10),
        }]);
        // A second Recovered with no open graft records nothing.
        t.on_events(&[ProtocolEvent::Recovered {
            id: EventId::new(NodeId::new(1), 5),
            from: peer,
            at: TimeMs::from_millis(20),
        }]);
        let snap = registry.snapshot();
        let rtt = snap.histogram_merged(names::RECOVERY_RTT_SECONDS).unwrap();
        assert_eq!(rtt.count, 1);
        assert_eq!(
            snap.counter(
                names::RECOVERY_EVENTS,
                &[("kind", "recovered"), ("node", "0")]
            ),
            Some(2)
        );
    }

    #[test]
    fn send_errors_count_by_cause() {
        let registry = Registry::new();
        let t = NodeTelemetry::new(&registry, NodeId::new(1), Instant::now());
        t.on_send_error(&TransportError::Oversize { len: 99, max: 10 });
        t.on_send_error(&TransportError::UnknownPeer(NodeId::new(9)));
        t.on_send_error(&TransportError::Io(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            "full",
        )));
        t.on_send_error(&TransportError::Io(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            "full",
        )));
        let snap = registry.snapshot();
        let series = |cause| snap.counter(names::SEND_ERRORS, &[("cause", cause), ("node", "1")]);
        assert_eq!(series("oversize"), Some(1));
        assert_eq!(series("unknown_peer"), Some(1));
        assert_eq!(series("io"), Some(2));
    }
}
