//! Multi-threaded clusters: the reproduction of the paper's prototype
//! deployment ("60 processes ... deployed on 60 workstations").

use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use agb_core::{AdaptationConfig, AdaptiveNode, FrameProtocol, GossipConfig, LpbcastNode};
use agb_failure::{
    ring_monitors, ring_successors, AdversaryConfig, ByteAdversary, DetectorConfig, PhiDetector,
};
use agb_membership::FullView;
use agb_metrics::MetricsCollector;
use agb_profile::ProfileConfig;
use agb_recovery::{boxed_frame_protocol, RecoveryConfig};
use agb_telemetry::{Registry, TelemetryConfig, TelemetryServer};
use agb_trace::{Recorder, TraceConfig, TraceProbe, TraceSummary};
use agb_types::{DetRng, DurationMs, NodeId, Payload, SeedSequence, TimeMs};
use crossbeam::channel::unbounded;
use parking_lot::Mutex;

use crate::node::{spawn_node, Command, NodeHandle, NodeRuntime};
use crate::telemetry::NodeTelemetry;
use crate::transport::{ChannelTransport, Transport, UdpTransport};

/// Transport selection for a runtime cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// One UDP socket per node on 127.0.0.1.
    Udp,
    /// In-process channels (no sockets; for CI).
    Channel,
}

/// Configuration of a threaded cluster.
#[derive(Debug, Clone)]
pub struct RuntimeClusterConfig {
    /// Number of node threads.
    pub n_nodes: usize,
    /// Seed for per-node RNG streams.
    pub seed: u64,
    /// Run the adaptive protocol instead of baseline lpbcast.
    pub adaptive: bool,
    /// Base gossip parameters. For wall-clock practicality, scale the
    /// paper's periods down (e.g. 100 ms instead of 5 s) — the protocol
    /// dynamics depend on rounds, not seconds.
    pub gossip: GossipConfig,
    /// Adaptation parameters (when `adaptive`).
    pub adaptation: AdaptationConfig,
    /// Nodes `0..n_senders` publish.
    pub n_senders: usize,
    /// Aggregate offered load, msgs/s, split across senders.
    pub offered_rate: f64,
    /// Payload size in bytes.
    pub payload_size: usize,
    /// Transport selection.
    pub transport: TransportKind,
    /// Metrics bin width.
    pub metrics_bin: DurationMs,
    /// Pull-based recovery layer (`agb-recovery`): `Some` wraps every
    /// node in a `RecoverableNode`.
    pub recovery: Option<RecoveryConfig>,
    /// Causal-trace capture (`agb-trace`). Unlike the simulator, records
    /// carry wall-clock timestamps relative to the cluster epoch, so the
    /// digest is not reproducible across runs — use the counters and
    /// histograms, not the digest, when asserting on threaded runs.
    pub trace: TraceConfig,
    /// Interface address the UDP transports bind (loopback by default;
    /// a real interface address takes the cluster onto a LAN). Ports are
    /// always OS-assigned — read the chosen ones back with
    /// [`RuntimeCluster::node_addrs`].
    pub bind_addr: IpAddr,
    /// Sender-side injected datagram loss probability in `[0, 1)`,
    /// drawn from a per-node deterministic RNG stream — exercises the
    /// recovery plane over real transports without an unreliable network.
    pub loss: f64,
    /// Wall-clock telemetry plane (`agb-telemetry`): per-node metric
    /// registries and, optionally, one exposition endpoint per node.
    pub telemetry: TelemetryConfig,
    /// φ-accrual failure detection (`agb-failure`): `Some` gives every
    /// node a ring-monitor detector fed by decoded frames, plus the
    /// heartbeat fallback for uncovered links; detector evictions flow
    /// through the protocol's own `evict_peer` path.
    pub detector: Option<DetectorConfig>,
    /// Sender-side byte-level adversary (`agb-failure`): encoded
    /// datagrams are mangled before they reach the transport, proving
    /// the hardened decode path panic-free over real sockets.
    pub adversary: Option<AdversaryConfig>,
    /// Per-node egress queue bound in frames (`0` = default). Overflow
    /// sheds in priority order: app before recovery before control.
    pub egress_capacity: usize,
    /// Runtime profiling handle (`agb-profile`): when enabled (and
    /// telemetry is on), node loops record per-iteration wall time and
    /// egress-queue dwell into the telemetry registry as histograms, so
    /// live scrapes see profile data too. Off by default — the loop
    /// then takes no extra clock reads.
    pub profile: ProfileConfig,
}

impl RuntimeClusterConfig {
    /// A small channel-transport cluster with scaled-down timing, suitable
    /// for tests.
    pub fn quick(n_nodes: usize, seed: u64) -> Self {
        let mut gossip = GossipConfig::default();
        gossip.gossip_period = DurationMs::from_millis(50);
        RuntimeClusterConfig {
            n_nodes,
            seed,
            adaptive: false,
            gossip,
            adaptation: AdaptationConfig::default(),
            n_senders: 1,
            offered_rate: 5.0,
            payload_size: 16,
            transport: TransportKind::Channel,
            metrics_bin: DurationMs::from_millis(250),
            recovery: None,
            trace: TraceConfig::disabled(),
            bind_addr: IpAddr::V4(Ipv4Addr::LOCALHOST),
            loss: 0.0,
            telemetry: TelemetryConfig::disabled(),
            detector: None,
            adversary: None,
            egress_capacity: 0,
            profile: ProfileConfig::disabled(),
        }
    }
}

/// Builds one node's protocol state machine (initial spawn and the
/// restart-with-state-loss factory share this).
fn build_protocol(
    config: &RuntimeClusterConfig,
    id: NodeId,
    rng: DetRng,
) -> Box<dyn FrameProtocol + Send> {
    if config.adaptive {
        boxed_frame_protocol(
            AdaptiveNode::new(
                id,
                config.gossip.clone(),
                config.adaptation.clone(),
                FullView::new(config.n_nodes),
                rng,
            ),
            config.recovery.clone(),
        )
    } else {
        boxed_frame_protocol(
            LpbcastNode::new(
                id,
                config.gossip.clone(),
                FullView::new(config.n_nodes),
                rng,
            ),
            config.recovery.clone(),
        )
    }
}

/// A running threaded cluster.
pub struct RuntimeCluster {
    handles: Vec<NodeHandle>,
    metrics: Arc<Mutex<MetricsCollector>>,
    trace: Option<Arc<Mutex<Recorder>>>,
    shutdown: Arc<AtomicBool>,
    epoch: Instant,
    /// Per-node metric registries (empty when telemetry is disabled).
    registries: Vec<Arc<Registry>>,
    /// Per-node exposition endpoints (empty unless `telemetry.serve`).
    servers: Vec<TelemetryServer>,
    /// UDP socket addresses by node (empty for the channel transport).
    node_addrs: Vec<SocketAddr>,
}

impl RuntimeCluster {
    /// Binds transports and spawns all node threads.
    ///
    /// # Errors
    ///
    /// Fails if UDP sockets cannot be bound.
    pub fn start(config: RuntimeClusterConfig) -> io::Result<Self> {
        assert!(config.n_nodes > 0, "cluster needs at least one node");
        assert!(
            config.n_senders <= config.n_nodes,
            "more senders than nodes"
        );
        assert!(
            (0.0..1.0).contains(&config.loss),
            "loss probability must be in [0, 1)"
        );
        let metrics = Arc::new(Mutex::new(MetricsCollector::new(
            config.n_nodes,
            config.metrics_bin,
        )));
        let shutdown = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let trace = config.trace.enabled.then(|| {
            Arc::new(Mutex::new(
                Recorder::new(config.trace).with_round(config.gossip.gossip_period),
            ))
        });
        let seeds = SeedSequence::new(config.seed);
        let per_sender = if config.n_senders == 0 {
            0.0
        } else {
            config.offered_rate / config.n_senders as f64
        };
        let payload = Payload::from(vec![0u8; config.payload_size]);

        // The telemetry plane: one registry per node so exposition and
        // scrape-side merging mirror a real per-process deployment.
        let registries: Vec<Arc<Registry>> = if config.telemetry.enabled {
            (0..config.n_nodes)
                .map(|_| Arc::new(Registry::new()))
                .collect()
        } else {
            Vec::new()
        };
        let servers: Vec<TelemetryServer> = if config.telemetry.enabled && config.telemetry.serve {
            registries
                .iter()
                .map(|r| TelemetryServer::serve(Arc::clone(r), (config.telemetry.bind, 0)))
                .collect::<io::Result<_>>()?
        } else {
            Vec::new()
        };

        let mut handles = Vec::with_capacity(config.n_nodes);
        let mut node_addrs = Vec::new();
        match config.transport {
            TransportKind::Udp => {
                let transports = UdpTransport::bind_cluster_on(config.bind_addr, config.n_nodes)?;
                if let Some(first) = transports.first() {
                    node_addrs = first.peer_addrs().to_vec();
                }
                for (i, t) in transports.into_iter().enumerate() {
                    handles.push(Self::spawn_one(
                        &config,
                        i,
                        t,
                        &metrics,
                        &trace,
                        epoch,
                        &shutdown,
                        &seeds,
                        per_sender,
                        &payload,
                        &registries,
                    ));
                }
            }
            TransportKind::Channel => {
                let transports = ChannelTransport::cluster(config.n_nodes);
                for (i, t) in transports.into_iter().enumerate() {
                    handles.push(Self::spawn_one(
                        &config,
                        i,
                        t,
                        &metrics,
                        &trace,
                        epoch,
                        &shutdown,
                        &seeds,
                        per_sender,
                        &payload,
                        &registries,
                    ));
                }
            }
        }
        Ok(RuntimeCluster {
            handles,
            metrics,
            trace,
            shutdown,
            epoch,
            registries,
            servers,
            node_addrs,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_one<T: Transport>(
        config: &RuntimeClusterConfig,
        i: usize,
        transport: T,
        metrics: &Arc<Mutex<MetricsCollector>>,
        trace: &Option<Arc<Mutex<Recorder>>>,
        epoch: Instant,
        shutdown: &Arc<AtomicBool>,
        seeds: &SeedSequence,
        per_sender: f64,
        payload: &Payload,
        registries: &[Arc<Registry>],
    ) -> NodeHandle {
        let id = NodeId::new(i as u32);
        let rng: DetRng = seeds.rng_for("runtime-node", i as u64);
        let protocol = build_protocol(config, id, rng);
        let is_sender = i < config.n_senders && per_sender > 0.0;
        if is_sender && config.adaptive {
            metrics
                .lock()
                .set_initial_rate(id, config.adaptation.initial_rate);
        }
        // Restart-with-state-loss factory: fresh RNG stream per rebuild so
        // a restarted node does not replay its pre-crash randomness.
        let rebuild_config = config.clone();
        let rebuild_seeds = *seeds;
        let rebuild_epoch = Arc::new(AtomicU64::new(1));
        let rebuild: Box<dyn Fn() -> Box<dyn FrameProtocol + Send> + Send> = Box::new(move || {
            let e = rebuild_epoch.fetch_add(1, Ordering::Relaxed);
            let rng: DetRng = rebuild_seeds.rng_for("runtime-restart", i as u64 + (e << 32));
            build_protocol(&rebuild_config, id, rng)
        });
        let (tx, rx) = unbounded();
        spawn_node(
            id,
            NodeRuntime {
                protocol,
                offered_rate: if is_sender { per_sender } else { 0.0 },
                payload: payload.clone(),
                max_backlog: 2,
                rebuild: Some(rebuild),
                probe: TraceProbe::new(config.trace, id),
                telemetry: registries
                    .get(i)
                    .map(|r| NodeTelemetry::new(r, id, epoch))
                    .unwrap_or_else(NodeTelemetry::disabled),
                loss: config.loss,
                loss_rng: seeds.rng_for("runtime-loss", i as u64),
                detector: config.detector.clone().map(|dc| {
                    let monitored = ring_monitors(id, config.n_nodes, dc.monitors);
                    PhiDetector::new(dc, monitored, TimeMs::from_millis(0))
                }),
                heartbeat_targets: config
                    .detector
                    .as_ref()
                    .filter(|dc| dc.heartbeat)
                    .map(|dc| ring_successors(id, config.n_nodes, dc.monitors))
                    .unwrap_or_default(),
                adversary: config.adversary.clone().map(ByteAdversary::new),
                adversary_rng: seeds.rng_for("runtime-adversary", i as u64),
                egress_capacity: config.egress_capacity,
                profile: config.profile.enabled,
            },
            transport,
            Arc::clone(metrics),
            trace.clone(),
            epoch,
            Arc::clone(shutdown),
            rx,
            tx,
        )
    }

    /// Number of node threads.
    pub fn n_nodes(&self) -> usize {
        self.handles.len()
    }

    /// The UDP socket address of every node (empty for the channel
    /// transport) — the ports the OS actually assigned.
    pub fn node_addrs(&self) -> &[SocketAddr] {
        &self.node_addrs
    }

    /// The per-node telemetry registries (empty when telemetry is
    /// disabled). Render or snapshot them directly for in-process reads.
    pub fn telemetry_registries(&self) -> &[Arc<Registry>] {
        &self.registries
    }

    /// The per-node telemetry exposition endpoints (empty unless the
    /// configuration asked for servers), indexed by node.
    pub fn telemetry_addrs(&self) -> Vec<SocketAddr> {
        self.servers
            .iter()
            .map(TelemetryServer::local_addr)
            .collect()
    }

    /// Wall-clock time since the cluster epoch, as protocol time.
    pub fn elapsed(&self) -> TimeMs {
        TimeMs::from_millis(self.epoch.elapsed().as_millis() as u64)
    }

    /// Offers one payload at `node`.
    pub fn offer(&self, node: NodeId, payload: Payload) -> bool {
        self.handles[node.index()].command(Command::Offer(payload))
    }

    /// Resizes the event buffer of one node.
    pub fn resize(&self, node: NodeId, capacity: usize) -> bool {
        self.handles[node.index()].command(Command::Resize(capacity))
    }

    /// Resizes a group of nodes.
    pub fn resize_group(&self, nodes: impl IntoIterator<Item = NodeId>, capacity: usize) {
        for n in nodes {
            self.resize(n, capacity);
        }
    }

    /// Crash-stops one node (state kept); returns `false` if it already
    /// exited.
    pub fn crash(&self, node: NodeId) -> bool {
        self.metrics
            .lock()
            .record_membership(node, self.elapsed(), false);
        self.handles[node.index()].command(Command::Crash)
    }

    /// Recovers a crashed node, state intact.
    pub fn recover(&self, node: NodeId) -> bool {
        self.metrics
            .lock()
            .record_membership(node, self.elapsed(), true);
        self.handles[node.index()].command(Command::Recover)
    }

    /// Restarts one node with state loss (fresh protocol state machine).
    pub fn restart(&self, node: NodeId) -> bool {
        self.metrics
            .lock()
            .record_membership(node, self.elapsed(), true);
        self.handles[node.index()].command(Command::Restart)
    }

    /// Gracefully removes one node: farewell frames, then silence.
    pub fn leave(&self, node: NodeId) -> bool {
        self.metrics
            .lock()
            .record_membership(node, self.elapsed(), false);
        self.handles[node.index()].command(Command::Leave)
    }

    /// Lets the cluster run for `d` of wall-clock time.
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// A snapshot of the collected metrics.
    pub fn metrics_snapshot(&self) -> MetricsCollector {
        self.metrics.lock().clone()
    }

    /// An aggregate trace summary (`None` unless tracing was enabled in
    /// the configuration). Timestamps are wall-clock milliseconds since
    /// the cluster epoch, so the summary is marked
    /// [`wall_clock`](TraceSummary::wall_clock) and its full `digest`
    /// varies run to run; compare
    /// [`stable_digest`](TraceSummary::stable_digest) (counters,
    /// histograms, tree statistics) across runs instead.
    pub fn trace_summary(&self, label: &str) -> Option<TraceSummary> {
        self.trace
            .as_ref()
            .map(|recorder| recorder.lock().summary(label).mark_wall_clock())
    }

    /// Stops all node threads and returns the final metrics.
    pub fn stop(self) -> MetricsCollector {
        self.shutdown.store(true, Ordering::Relaxed);
        for h in self.handles {
            let _ = h.join.join();
        }
        Arc::try_unwrap(self.metrics)
            .map(Mutex::into_inner)
            .unwrap_or_else(|arc| arc.lock().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_cluster_with_recovery_disseminates() {
        let mut config = RuntimeClusterConfig::quick(8, 5);
        config.offered_rate = 10.0;
        // Aggressive purging so the recovery layer has real gaps to repair
        // if any datagram is missed; mainly this exercises the frame codec
        // and reply path end to end.
        config.gossip.age_cap = 3;
        config.recovery = Some(RecoveryConfig::default());
        let cluster = RuntimeCluster::start(config).unwrap();
        cluster.run_for(Duration::from_millis(1200));
        let metrics = cluster.stop();
        let report = metrics.deliveries().atomicity(0.95, None);
        assert!(report.messages > 3, "only {} messages", report.messages);
        assert!(
            report.avg_receiver_fraction > 0.85,
            "fraction {}",
            report.avg_receiver_fraction
        );
    }

    #[test]
    fn channel_cluster_disseminates() {
        let mut config = RuntimeClusterConfig::quick(8, 3);
        config.offered_rate = 10.0;
        let cluster = RuntimeCluster::start(config).unwrap();
        cluster.run_for(Duration::from_millis(1200));
        let metrics = cluster.stop();
        let report = metrics.deliveries().atomicity(0.95, None);
        assert!(report.messages > 3, "only {} messages", report.messages);
        assert!(
            report.avg_receiver_fraction > 0.85,
            "fraction {}",
            report.avg_receiver_fraction
        );
    }

    #[test]
    fn adaptive_cluster_reports_rate_changes_under_pressure() {
        let mut config = RuntimeClusterConfig::quick(8, 5);
        config.adaptive = true;
        config.offered_rate = 200.0; // far beyond tiny-buffer capacity
        config.gossip.max_events = 8;
        config.adaptation.initial_rate = 200.0;
        let cluster = RuntimeCluster::start(config).unwrap();
        cluster.run_for(Duration::from_millis(1500));
        let metrics = cluster.stop();
        // Congestion must have forced the allowed rate down.
        let final_rate = metrics
            .allowed()
            .rate_at(NodeId::new(0), TimeMs::from_secs(3600));
        assert!(
            final_rate < 200.0,
            "adaptive sender should have throttled, rate {final_rate}"
        );
    }

    #[test]
    fn crash_recover_restart_lifecycle() {
        let mut config = RuntimeClusterConfig::quick(6, 21);
        config.offered_rate = 20.0;
        let cluster = RuntimeCluster::start(config).unwrap();
        cluster.run_for(Duration::from_millis(300));
        // Crash a receiver, let traffic flow past it, then restart it with
        // state loss.
        assert!(cluster.crash(NodeId::new(5)));
        cluster.run_for(Duration::from_millis(300));
        assert!(cluster.restart(NodeId::new(5)));
        cluster.run_for(Duration::from_millis(500));
        let metrics = cluster.stop();
        // The timeline recorded the outage and the catch-up tracker saw the
        // node deliver again after the restart.
        let tl = metrics.membership_timeline();
        assert!(tl.has_churn());
        let restarts = metrics.catch_up().records();
        assert_eq!(restarts.len(), 1);
        assert!(
            restarts[0].first_delivery.is_some(),
            "restarted node must deliver again"
        );
        let report = metrics.deliveries().atomicity(0.95, None);
        assert!(report.messages > 3);
    }

    #[test]
    fn leave_command_goes_silent() {
        let mut config = RuntimeClusterConfig::quick(4, 33);
        config.offered_rate = 10.0;
        let cluster = RuntimeCluster::start(config).unwrap();
        cluster.run_for(Duration::from_millis(200));
        assert!(cluster.leave(NodeId::new(3)));
        cluster.run_for(Duration::from_millis(400));
        let metrics = cluster.stop();
        // Node 3 is down in the recorded timeline from the leave on.
        assert!(!metrics
            .membership_timeline()
            .up_at(NodeId::new(3), TimeMs::from_secs(3600)));
    }

    #[test]
    fn traced_cluster_records_dissemination() {
        let mut config = RuntimeClusterConfig::quick(8, 11);
        config.offered_rate = 20.0;
        config.trace = TraceConfig::enabled();
        let cluster = RuntimeCluster::start(config).unwrap();
        cluster.run_for(Duration::from_millis(600));
        assert!(cluster.crash(NodeId::new(7)));
        cluster.run_for(Duration::from_millis(200));
        assert!(cluster.restart(NodeId::new(7)));
        cluster.run_for(Duration::from_millis(400));
        let summary = cluster.trace_summary("runtime").expect("tracing enabled");
        assert!(summary.wall_clock, "runtime traces are wall-clock-timed");
        assert!(summary.counts.publishes > 0, "senders publish");
        assert!(summary.counts.relays > 0, "rounds relay");
        assert!(summary.counts.delivers > 0, "receivers deliver");
        assert_eq!(summary.counts.crashes, 1);
        assert_eq!(summary.counts.restarts, 1);
        assert!(summary.occupancy.count() > 0, "rounds snapshot occupancy");
        assert!(summary.tree.events > 0, "trees observed events");
        let _ = cluster.stop();
    }

    #[test]
    fn untraced_cluster_has_no_summary() {
        let config = RuntimeClusterConfig::quick(2, 12);
        let cluster = RuntimeCluster::start(config).unwrap();
        cluster.run_for(Duration::from_millis(100));
        assert!(cluster.trace_summary("runtime").is_none());
        let _ = cluster.stop();
    }

    #[test]
    fn telemetry_cluster_records_and_serves() {
        use agb_telemetry::{names, scrape, Snapshot};

        let mut config = RuntimeClusterConfig::quick(4, 7);
        config.offered_rate = 20.0;
        config.payload_size = 32; // room for the latency stamp
        config.telemetry = TelemetryConfig::serving();
        let cluster = RuntimeCluster::start(config).unwrap();
        let addrs = cluster.telemetry_addrs();
        assert_eq!(addrs.len(), 4, "one endpoint per node");
        cluster.run_for(Duration::from_millis(800));

        // Scrape node 0 over TCP *while the cluster is under load*.
        let body = scrape(addrs[0], Duration::from_secs(2)).expect("mid-run scrape");
        assert!(body.contains("# TYPE agb_messages_sent_total counter"));
        assert!(body.contains("agb_rounds_total{node=\"0\"}"));

        // Merge every node's registry into the cluster-wide snapshot.
        let mut merged = Snapshot::default();
        for r in cluster.telemetry_registries() {
            assert!(merged.merge(&r.snapshot()));
        }
        assert!(
            merged.counter_sum(names::MESSAGES_SENT) > 0,
            "gossip flowed"
        );
        assert!(
            merged.counter_sum(names::DELIVERIES) > 0,
            "events delivered"
        );
        assert!(merged.counter_sum(names::ROUNDS) > 0, "rounds ran");
        let lat = merged
            .histogram_merged(names::DELIVERY_LATENCY_SECONDS)
            .expect("stamped payloads measured end-to-end latency");
        assert!(lat.count > 0, "latency samples recorded");
        assert!(
            lat.quantile(0.5).unwrap() < 16.0,
            "p50 within the bucket range"
        );
        let _ = cluster.stop();
    }

    #[test]
    fn profiled_cluster_records_loop_and_dwell_histograms() {
        use agb_telemetry::{names, Snapshot};

        let mut config = RuntimeClusterConfig::quick(4, 23);
        config.offered_rate = 20.0;
        config.telemetry = TelemetryConfig::recording();
        config.profile = ProfileConfig::enabled();
        let cluster = RuntimeCluster::start(config).unwrap();
        cluster.run_for(Duration::from_millis(600));
        let mut merged = Snapshot::default();
        for r in cluster.telemetry_registries() {
            assert!(merged.merge(&r.snapshot()));
        }
        let _ = cluster.stop();
        let iter = merged
            .histogram_merged(names::LOOP_ITERATION_SECONDS)
            .expect("loop-iteration histogram registered");
        assert!(iter.count > 0, "iterations recorded");
        let dwell = merged
            .histogram_merged(names::EGRESS_DWELL_SECONDS)
            .expect("egress-dwell histogram registered");
        assert!(dwell.count > 0, "dwell samples recorded");
        // The dwell preset resolves µs-scale samples: a healthy
        // channel-transport cluster flushes its egress queue within the
        // same loop iteration, far under one second at p50.
        assert!(dwell.quantile(0.5).unwrap() < 1.0, "µs-scale dwell p50");

        // Profile off (the default): the histograms stay empty even
        // with telemetry on.
        let mut config = RuntimeClusterConfig::quick(2, 24);
        config.telemetry = TelemetryConfig::recording();
        let cluster = RuntimeCluster::start(config).unwrap();
        cluster.run_for(Duration::from_millis(200));
        let mut merged = Snapshot::default();
        for r in cluster.telemetry_registries() {
            assert!(merged.merge(&r.snapshot()));
        }
        let _ = cluster.stop();
        let iter = merged
            .histogram_merged(names::LOOP_ITERATION_SECONDS)
            .expect("registered but unrecorded");
        assert_eq!(iter.count, 0, "profile handle off records nothing");
    }

    #[test]
    fn injected_loss_is_counted_and_recovery_repairs() {
        use agb_telemetry::{names, Snapshot};

        let mut config = RuntimeClusterConfig::quick(6, 9);
        config.offered_rate = 30.0;
        config.loss = 0.25;
        config.recovery = Some(RecoveryConfig::default());
        config.telemetry = TelemetryConfig::recording();
        let cluster = RuntimeCluster::start(config).unwrap();
        assert!(
            cluster.telemetry_addrs().is_empty(),
            "recording mode starts no servers"
        );
        cluster.run_for(Duration::from_millis(1_200));
        let mut merged = Snapshot::default();
        for r in cluster.telemetry_registries() {
            assert!(merged.merge(&r.snapshot()));
        }
        let _ = cluster.stop();
        assert!(
            merged.counter_sum(names::LOSS_INJECTED) > 0,
            "the loss harness dropped datagrams"
        );
        assert!(
            merged.counter_sum(names::DELIVERIES) > 0,
            "dissemination survived the loss"
        );
    }

    #[test]
    fn detector_evicts_a_crashed_peer() {
        let mut config = RuntimeClusterConfig::quick(6, 17);
        config.offered_rate = 10.0;
        config.trace = TraceConfig::enabled();
        config.detector = Some(DetectorConfig::default());
        let cluster = RuntimeCluster::start(config).unwrap();
        // Let the detectors learn the healthy inter-arrival rhythm first.
        cluster.run_for(Duration::from_millis(600));
        assert!(cluster.crash(NodeId::new(5)));
        // ~18 silent gossip periods: far past the evict-φ threshold.
        cluster.run_for(Duration::from_millis(900));
        let summary = cluster.trace_summary("detector").expect("tracing enabled");
        let _ = cluster.stop();
        assert!(
            summary.counts.heartbeats > 0,
            "heartbeat fallback keeps monitored links sampled"
        );
        assert!(
            summary.counts.suspects > 0,
            "the silent peer crosses the suspicion threshold"
        );
        assert!(
            summary.counts.detector_evicts > 0,
            "the silent peer is evicted through the protocol path"
        );
    }

    #[test]
    fn detector_has_no_false_positives_on_a_healthy_cluster() {
        let mut config = RuntimeClusterConfig::quick(6, 23);
        config.offered_rate = 10.0;
        config.trace = TraceConfig::enabled();
        config.detector = Some(DetectorConfig::default());
        let cluster = RuntimeCluster::start(config).unwrap();
        cluster.run_for(Duration::from_millis(1_200));
        let summary = cluster.trace_summary("healthy").expect("tracing enabled");
        let _ = cluster.stop();
        assert_eq!(
            summary.counts.detector_evicts, 0,
            "no evictions without a fault"
        );
    }

    #[test]
    fn byte_adversary_is_survived_and_counted() {
        use agb_telemetry::{names, Snapshot};

        let mut config = RuntimeClusterConfig::quick(6, 31);
        config.offered_rate = 30.0;
        config.recovery = Some(RecoveryConfig::default());
        config.telemetry = TelemetryConfig::recording();
        config.adversary = Some(AdversaryConfig {
            corrupt: 0.15,
            truncate: 0.05,
            duplicate: 0.10,
            reorder: 0.10,
            reorder_delay: DurationMs::from_millis(40),
        });
        let cluster = RuntimeCluster::start(config).unwrap();
        cluster.run_for(Duration::from_millis(1_500));
        let mut merged = Snapshot::default();
        for r in cluster.telemetry_registries() {
            assert!(merged.merge(&r.snapshot()));
        }
        let metrics = cluster.stop();
        // Destructive faults landed and were rejected at decode, never
        // misdelivered — and dissemination still finished.
        assert!(
            merged.counter_sum(names::DECODE_ERRORS) > 0,
            "corrupted datagrams were counted at the decode boundary"
        );
        let report = metrics.deliveries().atomicity(0.95, None);
        assert!(report.messages > 3, "only {} messages", report.messages);
        assert!(
            report.avg_receiver_fraction > 0.80,
            "fraction {}",
            report.avg_receiver_fraction
        );
    }

    #[test]
    fn resize_command_is_accepted() {
        let config = RuntimeClusterConfig::quick(2, 9);
        let cluster = RuntimeCluster::start(config).unwrap();
        assert!(cluster.resize(NodeId::new(0), 10));
        cluster.resize_group([NodeId::new(0), NodeId::new(1)], 20);
        cluster.run_for(Duration::from_millis(100));
        let _ = cluster.stop();
    }
}
