//! Binary wire codec for gossip messages.
//!
//! A small hand-rolled format (little-endian, length-prefixed) — the
//! messages have a dozen fields, which does not justify pulling a
//! serialization framework. The format is versioned with a magic byte so
//! incompatible peers fail loudly instead of mis-decoding.

use agb_core::{BuffAd, Event, GossipMessage};
use agb_membership::MembershipDigest;
use agb_types::{EventId, NodeId, Payload};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Codec version magic; bump on format changes.
const MAGIC: u8 = 0xA7;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the declared content.
    Truncated,
    /// The magic/version byte did not match.
    BadMagic(u8),
    /// A declared length is implausible for the remaining buffer.
    BadLength,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadMagic(m) => write!(f, "bad magic byte {m:#04x}"),
            WireError::BadLength => write!(f, "declared length exceeds buffer"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes a gossip message.
///
/// # Example
///
/// ```
/// use agb_core::GossipMessage;
/// use agb_runtime::wire::{decode, encode};
/// use agb_types::NodeId;
///
/// let msg = GossipMessage {
///     sender: NodeId::new(1),
///     sample_period: 9,
///     min_buffs: vec![],
///     events: vec![],
///     membership: Default::default(),
/// };
/// let bytes = encode(&msg);
/// assert_eq!(decode(&bytes).unwrap(), msg);
/// ```
pub fn encode(msg: &GossipMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + msg.wire_size());
    buf.put_u8(MAGIC);
    buf.put_u32_le(msg.sender.as_u32());
    buf.put_u64_le(msg.sample_period);
    buf.put_u16_le(msg.min_buffs.len() as u16);
    for ad in &msg.min_buffs {
        buf.put_u32_le(ad.node.as_u32());
        buf.put_u32_le(ad.capacity);
    }
    buf.put_u16_le(msg.membership.subs.len() as u16);
    for s in &msg.membership.subs {
        buf.put_u32_le(s.as_u32());
    }
    buf.put_u16_le(msg.membership.unsubs.len() as u16);
    for u in &msg.membership.unsubs {
        buf.put_u32_le(u.as_u32());
    }
    buf.put_u32_le(msg.events.len() as u32);
    for e in &msg.events {
        buf.put_u32_le(e.id().origin().as_u32());
        buf.put_u64_le(e.id().seq());
        buf.put_u32_le(e.age());
        buf.put_u32_le(e.payload().len() as u32);
        buf.put_slice(e.payload());
    }
    buf.freeze()
}

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

/// Deserializes a gossip message.
///
/// # Errors
///
/// Returns a [`WireError`] on truncated input, bad magic byte, or
/// implausible lengths.
pub fn decode(bytes: &[u8]) -> Result<GossipMessage, WireError> {
    let mut buf = bytes;
    need(&buf, 1)?;
    let magic = buf.get_u8();
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    need(&buf, 4 + 8 + 2)?;
    let sender = NodeId::new(buf.get_u32_le());
    let sample_period = buf.get_u64_le();
    let n_ads = buf.get_u16_le() as usize;
    if buf.remaining() < n_ads * 8 {
        return Err(WireError::BadLength);
    }
    let mut min_buffs = Vec::with_capacity(n_ads);
    for _ in 0..n_ads {
        let node = NodeId::new(buf.get_u32_le());
        let capacity = buf.get_u32_le();
        min_buffs.push(BuffAd { node, capacity });
    }
    need(&buf, 2)?;
    let n_subs = buf.get_u16_le() as usize;
    if buf.remaining() < n_subs * 4 {
        return Err(WireError::BadLength);
    }
    let subs = (0..n_subs).map(|_| NodeId::new(buf.get_u32_le())).collect();
    need(&buf, 2)?;
    let n_unsubs = buf.get_u16_le() as usize;
    if buf.remaining() < n_unsubs * 4 {
        return Err(WireError::BadLength);
    }
    let unsubs = (0..n_unsubs).map(|_| NodeId::new(buf.get_u32_le())).collect();
    need(&buf, 4)?;
    let n_events = buf.get_u32_le() as usize;
    // Each event needs at least 20 bytes: reject absurd counts early.
    if n_events > buf.remaining() / 20 + 1 {
        return Err(WireError::BadLength);
    }
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        need(&buf, 4 + 8 + 4 + 4)?;
        let origin = NodeId::new(buf.get_u32_le());
        let seq = buf.get_u64_le();
        let age = buf.get_u32_le();
        let plen = buf.get_u32_le() as usize;
        need(&buf, plen)?;
        let payload = Payload::copy_from_slice(&buf[..plen]);
        buf.advance(plen);
        events.push(Event::with_age(EventId::new(origin, seq), age, payload));
    }
    Ok(GossipMessage {
        sender,
        sample_period,
        min_buffs,
        events,
        membership: MembershipDigest { subs, unsubs },
    })
}

/// Splits a message into fragments no larger than `max_bytes` on the wire
/// by partitioning its event list. Header and membership information is
/// replicated in every fragment — semantically safe, since duplicate
/// suppression and min-merging are idempotent.
///
/// Fragments always carry at least one event, so a single oversized event
/// (payload near the datagram limit) still goes out alone.
pub fn split_for_datagram(msg: &GossipMessage, max_bytes: usize) -> Vec<Bytes> {
    let encoded = encode(msg);
    if encoded.len() <= max_bytes || msg.events.len() <= 1 {
        return vec![encoded];
    }
    let mut out = Vec::new();
    let mut chunk = GossipMessage {
        sender: msg.sender,
        sample_period: msg.sample_period,
        min_buffs: msg.min_buffs.clone(),
        events: Vec::new(),
        membership: msg.membership.clone(),
    };
    let overhead = {
        let empty = GossipMessage {
            events: Vec::new(),
            ..chunk.clone()
        };
        encode(&empty).len()
    };
    let mut used = overhead;
    for event in &msg.events {
        let cost = 20 + event.payload().len();
        if !chunk.events.is_empty() && used + cost > max_bytes {
            out.push(encode(&chunk));
            chunk.events.clear();
            used = overhead;
        }
        chunk.events.push(event.clone());
        used += cost;
    }
    if !chunk.events.is_empty() {
        out.push(encode(&chunk));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msg() -> GossipMessage {
        GossipMessage {
            sender: NodeId::new(3),
            sample_period: 42,
            min_buffs: vec![
                BuffAd {
                    node: NodeId::new(9),
                    capacity: 45,
                },
                BuffAd {
                    node: NodeId::new(2),
                    capacity: 60,
                },
            ],
            events: vec![
                Event::with_age(
                    EventId::new(NodeId::new(1), 7),
                    3,
                    Payload::from_static(b"payload-one"),
                ),
                Event::with_age(EventId::new(NodeId::new(2), 0), 0, Payload::new()),
            ],
            membership: MembershipDigest {
                subs: vec![NodeId::new(3), NodeId::new(4)],
                unsubs: vec![NodeId::new(5)],
            },
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let msg = sample_msg();
        let decoded = decode(&encode(&msg)).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn roundtrip_empty_message() {
        let msg = GossipMessage {
            sender: NodeId::new(0),
            sample_period: 0,
            min_buffs: vec![],
            events: vec![],
            membership: MembershipDigest::default(),
        };
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&sample_msg()).to_vec();
        bytes[0] = 0x00;
        assert_eq!(decode(&bytes), Err(WireError::BadMagic(0)));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode(&sample_msg());
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            assert!(r.is_err(), "decoding a {cut}-byte prefix must fail");
        }
    }

    #[test]
    fn rejects_absurd_event_count() {
        let msg = GossipMessage {
            sender: NodeId::new(0),
            sample_period: 0,
            min_buffs: vec![],
            events: vec![],
            membership: MembershipDigest::default(),
        };
        let mut bytes = encode(&msg).to_vec();
        // Patch the trailing event-count u32 to a huge value.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&bytes), Err(WireError::BadLength));
    }

    #[test]
    fn split_respects_size_and_preserves_events() {
        let mut msg = sample_msg();
        msg.events = (0..100)
            .map(|s| {
                Event::with_age(
                    EventId::new(NodeId::new(1), s),
                    1,
                    Payload::from_static(b"0123456789abcdef"),
                )
            })
            .collect();
        let frags = split_for_datagram(&msg, 512);
        assert!(frags.len() > 1);
        let mut recovered = Vec::new();
        for f in &frags {
            assert!(f.len() <= 512, "fragment of {} bytes", f.len());
            let m = decode(f).unwrap();
            assert_eq!(m.sender, msg.sender);
            assert_eq!(m.sample_period, msg.sample_period);
            assert_eq!(m.min_buffs, msg.min_buffs);
            recovered.extend(m.events);
        }
        assert_eq!(recovered, msg.events);
    }

    #[test]
    fn split_keeps_small_message_whole() {
        let msg = sample_msg();
        let frags = split_for_datagram(&msg, 64 * 1024);
        assert_eq!(frags.len(), 1);
    }
}
