//! Binary wire codec for gossip messages.
//!
//! A small hand-rolled format (little-endian, length-prefixed) — the
//! messages have a dozen fields, which does not justify pulling a
//! serialization framework. The format is versioned with a magic byte so
//! incompatible peers fail loudly instead of mis-decoding.

use agb_core::{
    BuffAd, Event, GossipFrame, GossipMessage, GraftRequest, IHaveDigest, Retransmission,
};
use agb_membership::{MembershipDigest, Unsubscription};
use agb_types::{EventId, NodeId, Payload};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Codec version magic; bump on format changes.
const MAGIC: u8 = 0xA7;

/// Frame-codec magic (recovery-capable framing); distinct from [`MAGIC`]
/// so plain-message peers fail loudly instead of mis-decoding.
const FRAME_MAGIC: u8 = 0xA8;

/// Frame tag: gossip data message (optionally with piggybacked digest).
const TAG_GOSSIP: u8 = 0;
/// Frame tag: graft (pull) request.
const TAG_GRAFT: u8 = 1;
/// Frame tag: retransmission reply.
const TAG_RETRANSMIT: u8 = 2;

/// Trailing frame-checksum width: a truncated FNV-1a over every byte
/// before it. UDP's 16-bit checksum (often offloaded away entirely) is
/// no defence against the byte-level adversary, and a length-guarded
/// parse alone can still mis-decode a bit-flipped frame into a
/// *different valid* frame. The trailer makes corruption detectable:
/// corrupt frames are counted and dropped, never misdelivered.
const CHECKSUM_LEN: usize = 4;

/// Checksum of a frame's pre-trailer bytes.
fn frame_checksum(bytes: &[u8]) -> u32 {
    agb_types::fnv1a(bytes) as u32
}

/// Appends the checksum trailer over everything already in `buf`.
fn seal_frame(buf: &mut BytesMut) {
    let sum = frame_checksum(buf);
    buf.put_u32_le(sum);
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the declared content.
    Truncated,
    /// The magic/version byte did not match.
    BadMagic(u8),
    /// A declared length is implausible for the remaining buffer.
    BadLength,
    /// The frame checksum trailer did not match — bytes were corrupted
    /// in flight.
    BadChecksum,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadMagic(m) => write!(f, "bad magic byte {m:#04x}"),
            WireError::BadLength => write!(f, "declared length exceeds buffer"),
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes a gossip message.
///
/// # Example
///
/// ```
/// use agb_core::GossipMessage;
/// use agb_runtime::wire::{decode, encode};
/// use agb_types::NodeId;
///
/// let msg = GossipMessage {
///     sender: NodeId::new(1),
///     sample_period: 9,
///     min_buffs: vec![],
///     events: Default::default(),
///     membership: Default::default(),
/// };
/// let bytes = encode(&msg);
/// assert_eq!(decode(&bytes).unwrap(), msg);
/// ```
pub fn encode(msg: &GossipMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + msg.wire_size());
    encode_to(msg, &mut buf);
    buf.freeze()
}

/// Serializes a gossip message by appending to a reusable buffer
/// (byte-identical to [`encode`], without the per-call allocation).
///
/// Pair with [`agb_types::BytePool`] to amortise encode buffers across
/// frames; see [`FrameEncoder`] for the pooled front-end.
pub fn encode_into(msg: &GossipMessage, out: &mut Vec<u8>) {
    encode_to(msg, out);
}

fn encode_to<B: BufMut>(msg: &GossipMessage, buf: &mut B) {
    buf.put_u8(MAGIC);
    buf.put_u32_le(msg.sender.as_u32());
    buf.put_u64_le(msg.sample_period);
    buf.put_u16_le(msg.min_buffs.len() as u16);
    for ad in &msg.min_buffs {
        buf.put_u32_le(ad.node.as_u32());
        buf.put_u32_le(ad.capacity);
    }
    buf.put_u16_le(msg.membership.subs.len() as u16);
    for s in &msg.membership.subs {
        buf.put_u32_le(s.as_u32());
    }
    buf.put_u16_le(msg.membership.unsubs.len() as u16);
    for u in &msg.membership.unsubs {
        buf.put_u32_le(u.node.as_u32());
        buf.put_u32_le(u.ttl);
    }
    put_events(buf, &msg.events);
}

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

/// Deserializes a gossip message.
///
/// # Errors
///
/// Returns a [`WireError`] on truncated input, bad magic byte, or
/// implausible lengths.
pub fn decode(bytes: &[u8]) -> Result<GossipMessage, WireError> {
    decode_with(bytes, &mut None)
}

/// Deserializes a gossip message, interning event payloads through the
/// given [`agb_types::PayloadInterner`] so repeated identical payloads
/// share one allocation (value-identical to [`decode`]).
///
/// # Errors
///
/// Same failure modes as [`decode`].
pub fn decode_interned(
    bytes: &[u8],
    interner: &mut agb_types::PayloadInterner,
) -> Result<GossipMessage, WireError> {
    decode_with(bytes, &mut Some(interner))
}

fn decode_with(
    bytes: &[u8],
    interner: &mut Option<&mut agb_types::PayloadInterner>,
) -> Result<GossipMessage, WireError> {
    let mut buf = bytes;
    need(&buf, 1)?;
    let magic = buf.get_u8();
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    need(&buf, 4 + 8 + 2)?;
    let sender = NodeId::new(buf.get_u32_le());
    let sample_period = buf.get_u64_le();
    let n_ads = buf.get_u16_le() as usize;
    if buf.remaining() < n_ads * 8 {
        return Err(WireError::BadLength);
    }
    let mut min_buffs = Vec::with_capacity(n_ads);
    for _ in 0..n_ads {
        let node = NodeId::new(buf.get_u32_le());
        let capacity = buf.get_u32_le();
        min_buffs.push(BuffAd { node, capacity });
    }
    need(&buf, 2)?;
    let n_subs = buf.get_u16_le() as usize;
    if buf.remaining() < n_subs * 4 {
        return Err(WireError::BadLength);
    }
    let subs = (0..n_subs).map(|_| NodeId::new(buf.get_u32_le())).collect();
    need(&buf, 2)?;
    let n_unsubs = buf.get_u16_le() as usize;
    if buf.remaining() < n_unsubs * 8 {
        return Err(WireError::BadLength);
    }
    let unsubs = (0..n_unsubs)
        .map(|_| {
            let node = NodeId::new(buf.get_u32_le());
            let ttl = buf.get_u32_le();
            Unsubscription { node, ttl }
        })
        .collect();
    let events = get_events_with(&mut buf, interner)?;
    Ok(GossipMessage {
        sender,
        sample_period,
        min_buffs,
        events: events.into(),
        membership: MembershipDigest { subs, unsubs },
    })
}

fn put_event_ids<B: BufMut>(buf: &mut B, ids: &[EventId]) {
    // RecoveryConfig::validate caps digest/graft sizes well below this;
    // silent u16 wrap-around would corrupt the whole frame.
    assert!(
        ids.len() <= usize::from(u16::MAX),
        "id list exceeds wire bound"
    );
    buf.put_u16_le(ids.len() as u16);
    for id in ids {
        buf.put_u32_le(id.origin().as_u32());
        buf.put_u64_le(id.seq());
    }
}

fn get_event_ids(buf: &mut &[u8]) -> Result<Vec<EventId>, WireError> {
    need(buf, 2)?;
    let n = buf.get_u16_le() as usize;
    if buf.remaining() < n * 12 {
        return Err(WireError::BadLength);
    }
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let origin = NodeId::new(buf.get_u32_le());
        let seq = buf.get_u64_le();
        ids.push(EventId::new(origin, seq));
    }
    Ok(ids)
}

fn put_events<B: BufMut>(buf: &mut B, events: &[Event]) {
    buf.put_u32_le(events.len() as u32);
    for e in events {
        buf.put_u32_le(e.id().origin().as_u32());
        buf.put_u64_le(e.id().seq());
        buf.put_u32_le(e.age());
        buf.put_u32_le(e.payload().len() as u32);
        buf.put_slice(e.payload());
    }
}

fn get_events_with(
    buf: &mut &[u8],
    interner: &mut Option<&mut agb_types::PayloadInterner>,
) -> Result<Vec<Event>, WireError> {
    need(buf, 4)?;
    let n_events = buf.get_u32_le() as usize;
    // Each event needs at least 20 bytes: reject absurd counts early.
    if n_events > buf.remaining() / 20 + 1 {
        return Err(WireError::BadLength);
    }
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        need(buf, 4 + 8 + 4 + 4)?;
        let origin = NodeId::new(buf.get_u32_le());
        let seq = buf.get_u64_le();
        let age = buf.get_u32_le();
        let plen = buf.get_u32_le() as usize;
        need(buf, plen)?;
        let payload = match interner.as_deref_mut() {
            Some(interner) => interner.intern(&buf[..plen]),
            None => Payload::copy_from_slice(&buf[..plen]),
        };
        buf.advance(plen);
        events.push(Event::with_age(EventId::new(origin, seq), age, payload));
    }
    Ok(events)
}

/// Serializes a recovery-capable frame ([`GossipFrame`]).
///
/// Gossip frames embed the [`encode`]d message body unchanged, prefixed by
/// the optional piggybacked digest; graft and retransmission frames are
/// the recovery layer's pull traffic.
///
/// # Example
///
/// ```
/// use agb_core::{GossipFrame, GraftRequest};
/// use agb_runtime::wire::{decode_frame, encode_frame};
/// use agb_types::{EventId, NodeId};
///
/// let frame = GossipFrame::Graft(GraftRequest {
///     sender: NodeId::new(2),
///     ids: vec![EventId::new(NodeId::new(1), 7)],
/// });
/// assert_eq!(decode_frame(&encode_frame(&frame)).unwrap(), frame);
/// ```
pub fn encode_frame(frame: &GossipFrame) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + CHECKSUM_LEN + frame.wire_size());
    encode_frame_to(frame, &mut buf);
    seal_frame(&mut buf);
    buf.freeze()
}

/// Serializes a recovery-capable frame by appending to a reusable buffer
/// (byte-identical to [`encode_frame`], without the per-call allocation).
pub fn encode_frame_into(frame: &GossipFrame, out: &mut Vec<u8>) {
    let start = out.len();
    encode_frame_to(frame, out);
    let sum = frame_checksum(&out[start..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

fn encode_frame_to<B: BufMut>(frame: &GossipFrame, buf: &mut B) {
    buf.put_u8(FRAME_MAGIC);
    match frame {
        GossipFrame::Gossip { msg, ihave } => {
            buf.put_u8(TAG_GOSSIP);
            match ihave {
                Some(digest) => {
                    buf.put_u8(1);
                    put_event_ids(buf, &digest.ids);
                }
                None => buf.put_u8(0),
            }
            encode_to(msg, buf);
        }
        GossipFrame::Graft(graft) => {
            buf.put_u8(TAG_GRAFT);
            buf.put_u32_le(graft.sender.as_u32());
            put_event_ids(buf, &graft.ids);
        }
        GossipFrame::Retransmit(retransmission) => {
            buf.put_u8(TAG_RETRANSMIT);
            buf.put_u32_le(retransmission.sender.as_u32());
            put_events(buf, &retransmission.events);
        }
    }
}

/// A pooled frame encoder: encodes every frame into a recycled scratch
/// buffer instead of growing a fresh `BytesMut` per frame.
///
/// Steady-state encoding performs exactly one allocation per frame (the
/// immutable [`Bytes`] handed to the transport, which must own its
/// storage) instead of the grow-realloc churn of the buffer-per-frame
/// path.
///
/// # Example
///
/// ```
/// use agb_core::GossipFrame;
/// use agb_runtime::wire::{decode_frame, encode_frame, FrameEncoder};
/// # use agb_core::GossipMessage;
/// # use agb_types::NodeId;
///
/// let frame = GossipFrame::plain(GossipMessage {
///     sender: NodeId::new(1),
///     sample_period: 0,
///     min_buffs: vec![],
///     events: Default::default(),
///     membership: Default::default(),
/// });
/// let mut enc = FrameEncoder::default();
/// // Pooled encoding is byte-identical to the legacy path.
/// assert_eq!(enc.encode(&frame), encode_frame(&frame));
/// ```
#[derive(Debug, Default)]
pub struct FrameEncoder {
    pool: agb_types::BytePool,
}

impl FrameEncoder {
    /// Creates an encoder retaining at most `max_pooled` idle buffers.
    pub fn new(max_pooled: usize) -> Self {
        FrameEncoder {
            pool: agb_types::BytePool::new(max_pooled),
        }
    }

    /// Encodes a frame through the pool; byte-identical to
    /// [`encode_frame`].
    pub fn encode(&mut self, frame: &GossipFrame) -> Bytes {
        let mut buf = self.pool.take();
        encode_frame_into(frame, &mut buf);
        let bytes = Bytes::copy_from_slice(&buf);
        self.pool.put(buf);
        bytes
    }

    /// Encodes a plain message through the pool; byte-identical to
    /// [`encode`].
    pub fn encode_message(&mut self, msg: &GossipMessage) -> Bytes {
        let mut buf = self.pool.take();
        encode_to(msg, &mut buf);
        let bytes = Bytes::copy_from_slice(&buf);
        self.pool.put(buf);
        bytes
    }

    /// Splits a frame into datagrams like [`split_frame_for_datagram`],
    /// encoding through the pool.
    ///
    /// The common case — the frame fits in one datagram — takes a pooled
    /// fast path with zero buffer churn. Oversized frames fall back to
    /// the legacy splitter; fragment boundaries can then differ from the
    /// fast path (never from the legacy function), but the decoded
    /// content and the `max_bytes` bound are identical either way.
    pub fn split_for_datagram(&mut self, frame: &GossipFrame, max_bytes: usize) -> Vec<Bytes> {
        // wire_size() is an approximation, so it only gates the trial
        // encode when the frame is clearly oversized — never the
        // correctness of the fit check itself.
        if frame.wire_size() <= 2 * max_bytes {
            let mut buf = self.pool.take();
            encode_frame_into(frame, &mut buf);
            if buf.len() <= max_bytes {
                let bytes = Bytes::copy_from_slice(&buf);
                self.pool.put(buf);
                return vec![bytes];
            }
            self.pool.put(buf);
        }
        split_frame_for_datagram(frame, max_bytes)
    }
}

/// Deserializes a recovery-capable frame.
///
/// # Errors
///
/// Returns a [`WireError`] on truncated input, bad magic or tag bytes, or
/// implausible lengths.
pub fn decode_frame(bytes: &[u8]) -> Result<GossipFrame, WireError> {
    decode_frame_with(bytes, &mut None)
}

/// Deserializes a recovery-capable frame, interning event payloads (see
/// [`decode_interned`]; value-identical to [`decode_frame`]).
///
/// # Errors
///
/// Same failure modes as [`decode_frame`].
pub fn decode_frame_interned(
    bytes: &[u8],
    interner: &mut agb_types::PayloadInterner,
) -> Result<GossipFrame, WireError> {
    decode_frame_with(bytes, &mut Some(interner))
}

fn decode_frame_with(
    bytes: &[u8],
    interner: &mut Option<&mut agb_types::PayloadInterner>,
) -> Result<GossipFrame, WireError> {
    need(&bytes, 1)?;
    if bytes[0] != FRAME_MAGIC {
        return Err(WireError::BadMagic(bytes[0]));
    }
    // Verify the checksum trailer before trusting a single declared
    // length: corrupted frames must fail here, not half-way through a
    // parse that might still happen to succeed with different content.
    if bytes.len() < 2 + CHECKSUM_LEN {
        return Err(WireError::Truncated);
    }
    let body_end = bytes.len() - CHECKSUM_LEN;
    let declared = u32::from_le_bytes(bytes[body_end..].try_into().expect("4-byte trailer"));
    if declared != frame_checksum(&bytes[..body_end]) {
        return Err(WireError::BadChecksum);
    }
    let mut buf = &bytes[1..body_end];
    let tag = buf.get_u8();
    match tag {
        TAG_GOSSIP => {
            need(&buf, 1)?;
            let ihave = match buf.get_u8() {
                0 => None,
                1 => Some(IHaveDigest {
                    ids: get_event_ids(&mut buf)?,
                }),
                other => return Err(WireError::BadMagic(other)),
            };
            let msg = decode_with(buf, interner)?;
            Ok(GossipFrame::Gossip { msg, ihave })
        }
        TAG_GRAFT => {
            need(&buf, 4)?;
            let sender = NodeId::new(buf.get_u32_le());
            let ids = get_event_ids(&mut buf)?;
            Ok(GossipFrame::Graft(GraftRequest { sender, ids }))
        }
        TAG_RETRANSMIT => {
            need(&buf, 4)?;
            let sender = NodeId::new(buf.get_u32_le());
            let events = get_events_with(&mut buf, interner)?;
            Ok(GossipFrame::Retransmit(Retransmission { sender, events }))
        }
        other => Err(WireError::BadMagic(other)),
    }
}

/// Frame envelope bytes around an embedded gossip message: magic + tag +
/// digest flag + checksum trailer.
const GOSSIP_FRAME_OVERHEAD: usize = 3 + CHECKSUM_LEN;

/// Splits a frame into datagrams no larger than `max_bytes` where
/// possible, partitioning event lists ([`split_for_datagram`] semantics).
/// The piggybacked digest travels with the first gossip fragment only —
/// its size is reserved out of that budget, so fragments respect
/// `max_bytes` even with large digests (an oversized digest falls back to
/// dedicated digest-only frames). Graft frames are already small and go
/// out whole.
pub fn split_frame_for_datagram(frame: &GossipFrame, max_bytes: usize) -> Vec<Bytes> {
    match frame {
        GossipFrame::Gossip { msg, ihave } => {
            let digest_size = ihave.as_ref().map_or(0, IHaveDigest::wire_size);
            // Piggyback only while the digest leaves at least half the
            // datagram for events; beyond that, ship it separately.
            let piggyback = digest_size > 0 && GOSSIP_FRAME_OVERHEAD + digest_size <= max_bytes / 2;
            let reserve = if piggyback {
                GOSSIP_FRAME_OVERHEAD + digest_size
            } else {
                GOSSIP_FRAME_OVERHEAD
            };
            let fragments = split_for_datagram(msg, max_bytes.saturating_sub(reserve));
            let mut out = Vec::with_capacity(fragments.len() + 1);
            for (i, fragment) in fragments.iter().enumerate() {
                let mut buf = BytesMut::with_capacity(8 + reserve + fragment.len());
                buf.put_u8(FRAME_MAGIC);
                buf.put_u8(TAG_GOSSIP);
                match ihave {
                    Some(digest) if piggyback && i == 0 => {
                        buf.put_u8(1);
                        put_event_ids(&mut buf, &digest.ids);
                    }
                    _ => buf.put_u8(0),
                }
                buf.put_slice(fragment);
                seal_frame(&mut buf);
                out.push(buf.freeze());
            }
            if let (Some(digest), false) = (ihave, piggyback) {
                if !digest.ids.is_empty() {
                    out.extend(split_digest_frames(msg.sender, digest, max_bytes));
                }
            }
            out
        }
        GossipFrame::Graft(_) => vec![encode_frame(frame)],
        GossipFrame::Retransmit(retransmission) => {
            let encoded = encode_frame(frame);
            if encoded.len() <= max_bytes || retransmission.events.len() <= 1 {
                return vec![encoded];
            }
            let overhead = 2 + 4 + 4 + CHECKSUM_LEN;
            let mut out = Vec::new();
            let mut chunk: Vec<Event> = Vec::new();
            let mut used = overhead;
            for event in &retransmission.events {
                let cost = 20 + event.payload().len();
                if !chunk.is_empty() && used + cost > max_bytes {
                    out.push(encode_frame(&GossipFrame::Retransmit(Retransmission {
                        sender: retransmission.sender,
                        events: std::mem::take(&mut chunk),
                    })));
                    used = overhead;
                }
                chunk.push(event.clone());
                used += cost;
            }
            if !chunk.is_empty() {
                out.push(encode_frame(&GossipFrame::Retransmit(Retransmission {
                    sender: retransmission.sender,
                    events: chunk,
                })));
            }
            out
        }
    }
}

/// Ships a digest too large to piggyback in dedicated event-less gossip
/// frames, each within `max_bytes` (chunking the id list as needed). The
/// embedded message carries the sender only — the adaptive header and
/// membership digest already rode the event fragments, and replicating
/// them here could push a frame past the bound.
fn split_digest_frames(sender: NodeId, digest: &IHaveDigest, max_bytes: usize) -> Vec<Bytes> {
    let header = GossipMessage {
        sender,
        sample_period: 0,
        min_buffs: Vec::new(),
        events: agb_core::EventList::new(),
        membership: MembershipDigest::default(),
    };
    let encoded_header = encode(&header);
    let base = GOSSIP_FRAME_OVERHEAD + encoded_header.len() + 2;
    let per_chunk = (max_bytes.saturating_sub(base) / 12).max(1);
    digest
        .ids
        .chunks(per_chunk)
        .map(|ids| {
            let mut buf = BytesMut::with_capacity(base + 12 * ids.len());
            buf.put_u8(FRAME_MAGIC);
            buf.put_u8(TAG_GOSSIP);
            buf.put_u8(1);
            put_event_ids(&mut buf, ids);
            buf.put_slice(&encoded_header);
            seal_frame(&mut buf);
            buf.freeze()
        })
        .collect()
}

/// Splits a message into fragments no larger than `max_bytes` on the wire
/// by partitioning its event list. Header and membership information is
/// replicated in every fragment — semantically safe, since duplicate
/// suppression and min-merging are idempotent.
///
/// Fragments always carry at least one event, so a single oversized event
/// (payload near the datagram limit) still goes out alone.
pub fn split_for_datagram(msg: &GossipMessage, max_bytes: usize) -> Vec<Bytes> {
    let encoded = encode(msg);
    if encoded.len() <= max_bytes || msg.events.len() <= 1 {
        return vec![encoded];
    }
    let mut out = Vec::new();
    let header = GossipMessage {
        sender: msg.sender,
        sample_period: msg.sample_period,
        min_buffs: msg.min_buffs.clone(),
        events: agb_core::EventList::new(),
        membership: msg.membership.clone(),
    };
    let overhead = encode(&header).len();
    let mut chunk_events: Vec<Event> = Vec::new();
    let flush = |events: &mut Vec<Event>, out: &mut Vec<Bytes>| {
        let chunk = GossipMessage {
            events: std::mem::take(events).into(),
            ..header.clone()
        };
        out.push(encode(&chunk));
    };
    let mut used = overhead;
    for event in &msg.events {
        let cost = 20 + event.payload().len();
        if !chunk_events.is_empty() && used + cost > max_bytes {
            flush(&mut chunk_events, &mut out);
            used = overhead;
        }
        chunk_events.push(event.clone());
        used += cost;
    }
    if !chunk_events.is_empty() {
        flush(&mut chunk_events, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msg() -> GossipMessage {
        GossipMessage {
            sender: NodeId::new(3),
            sample_period: 42,
            min_buffs: vec![
                BuffAd {
                    node: NodeId::new(9),
                    capacity: 45,
                },
                BuffAd {
                    node: NodeId::new(2),
                    capacity: 60,
                },
            ],
            events: vec![
                Event::with_age(
                    EventId::new(NodeId::new(1), 7),
                    3,
                    Payload::from_static(b"payload-one"),
                ),
                Event::with_age(EventId::new(NodeId::new(2), 0), 0, Payload::new()),
            ]
            .into(),
            membership: MembershipDigest {
                subs: vec![NodeId::new(3), NodeId::new(4)],
                unsubs: vec![Unsubscription {
                    node: NodeId::new(5),
                    ttl: 9,
                }],
            },
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let msg = sample_msg();
        let decoded = decode(&encode(&msg)).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn roundtrip_empty_message() {
        let msg = GossipMessage {
            sender: NodeId::new(0),
            sample_period: 0,
            min_buffs: vec![],
            events: Default::default(),
            membership: MembershipDigest::default(),
        };
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&sample_msg()).to_vec();
        bytes[0] = 0x00;
        assert_eq!(decode(&bytes), Err(WireError::BadMagic(0)));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode(&sample_msg());
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            assert!(r.is_err(), "decoding a {cut}-byte prefix must fail");
        }
    }

    #[test]
    fn rejects_absurd_event_count() {
        let msg = GossipMessage {
            sender: NodeId::new(0),
            sample_period: 0,
            min_buffs: vec![],
            events: Default::default(),
            membership: MembershipDigest::default(),
        };
        let mut bytes = encode(&msg).to_vec();
        // Patch the trailing event-count u32 to a huge value.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&bytes), Err(WireError::BadLength));
    }

    #[test]
    fn split_respects_size_and_preserves_events() {
        let mut msg = sample_msg();
        msg.events = (0..100)
            .map(|s| {
                Event::with_age(
                    EventId::new(NodeId::new(1), s),
                    1,
                    Payload::from_static(b"0123456789abcdef"),
                )
            })
            .collect();
        let frags = split_for_datagram(&msg, 512);
        assert!(frags.len() > 1);
        let mut recovered = Vec::new();
        for f in &frags {
            assert!(f.len() <= 512, "fragment of {} bytes", f.len());
            let m = decode(f).unwrap();
            assert_eq!(m.sender, msg.sender);
            assert_eq!(m.sample_period, msg.sample_period);
            assert_eq!(m.min_buffs, msg.min_buffs);
            recovered.extend(m.events);
        }
        assert_eq!(recovered, msg.events);
    }

    #[test]
    fn split_keeps_small_message_whole() {
        let msg = sample_msg();
        let frags = split_for_datagram(&msg, 64 * 1024);
        assert_eq!(frags.len(), 1);
    }

    fn sample_digest() -> IHaveDigest {
        IHaveDigest {
            ids: vec![
                EventId::new(NodeId::new(1), 7),
                EventId::new(NodeId::new(2), 0),
            ],
        }
    }

    #[test]
    fn frame_roundtrips_all_variants() {
        let frames = [
            GossipFrame::plain(sample_msg()),
            GossipFrame::Gossip {
                msg: sample_msg(),
                ihave: Some(sample_digest()),
            },
            GossipFrame::Graft(GraftRequest {
                sender: NodeId::new(9),
                ids: sample_digest().ids,
            }),
            GossipFrame::Retransmit(Retransmission {
                sender: NodeId::new(4),
                events: sample_msg().events.to_vec(),
            }),
        ];
        for frame in frames {
            assert_eq!(decode_frame(&encode_frame(&frame)).unwrap(), frame);
        }
    }

    #[test]
    fn frame_codec_rejects_plain_message_magic() {
        let bytes = encode(&sample_msg());
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::BadMagic(MAGIC))
        ));
        // And vice versa: frames are not plain messages.
        let frame_bytes = encode_frame(&GossipFrame::plain(sample_msg()));
        assert!(matches!(
            decode(&frame_bytes),
            Err(WireError::BadMagic(FRAME_MAGIC))
        ));
    }

    #[test]
    fn frame_rejects_truncation_at_every_length() {
        let bytes = encode_frame(&GossipFrame::Gossip {
            msg: sample_msg(),
            ihave: Some(sample_digest()),
        });
        for cut in 0..bytes.len() {
            assert!(
                decode_frame(&bytes[..cut]).is_err(),
                "decoding a {cut}-byte prefix must fail"
            );
        }
    }

    #[test]
    fn frame_rejects_bad_tag() {
        let mut buf = BytesMut::new();
        buf.put_u8(FRAME_MAGIC);
        buf.put_u8(9);
        seal_frame(&mut buf);
        assert_eq!(decode_frame(&buf), Err(WireError::BadMagic(9)));
        // Unsealed short garbage is truncation, not a parse attempt.
        assert_eq!(decode_frame(&[FRAME_MAGIC, 9]), Err(WireError::Truncated));
    }

    #[test]
    fn frame_rejects_every_single_bit_flip() {
        let bytes = encode_frame(&GossipFrame::Gossip {
            msg: sample_msg(),
            ihave: Some(sample_digest()),
        });
        for at in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.to_vec();
                corrupt[at] ^= 1 << bit;
                assert!(
                    decode_frame(&corrupt).is_err(),
                    "flipping byte {at} bit {bit} must not decode"
                );
            }
        }
    }

    #[test]
    fn frame_rejects_trailing_garbage() {
        let mut bytes = encode_frame(&GossipFrame::plain(sample_msg())).to_vec();
        bytes.push(0xFF);
        assert_eq!(decode_frame(&bytes), Err(WireError::BadChecksum));
    }

    #[test]
    fn gossip_frame_split_carries_digest_once() {
        let mut msg = sample_msg();
        msg.events = (0..100)
            .map(|s| {
                Event::with_age(
                    EventId::new(NodeId::new(1), s),
                    1,
                    Payload::from_static(b"0123456789abcdef"),
                )
            })
            .collect();
        let frame = GossipFrame::Gossip {
            msg: msg.clone(),
            ihave: Some(sample_digest()),
        };
        let frags = split_frame_for_datagram(&frame, 512);
        assert!(frags.len() > 1);
        let mut events = Vec::new();
        let mut digests = 0;
        for (i, f) in frags.iter().enumerate() {
            assert!(f.len() <= 512, "fragment of {} bytes", f.len());
            let GossipFrame::Gossip { msg: m, ihave } = decode_frame(f).unwrap() else {
                panic!("expected gossip fragment");
            };
            if ihave.is_some() {
                assert_eq!(i, 0, "digest only on the first fragment");
                digests += 1;
            }
            events.extend(m.events);
        }
        assert_eq!(digests, 1);
        assert_eq!(events, msg.events);
    }

    #[test]
    fn retransmit_split_preserves_events() {
        let events: Vec<Event> = (0..50)
            .map(|s| {
                Event::with_age(
                    EventId::new(NodeId::new(3), s),
                    2,
                    Payload::from_static(b"0123456789abcdef0123456789abcdef"),
                )
            })
            .collect();
        let frame = GossipFrame::Retransmit(Retransmission {
            sender: NodeId::new(3),
            events: events.clone(),
        });
        let frags = split_frame_for_datagram(&frame, 256);
        assert!(frags.len() > 1);
        let mut recovered = Vec::new();
        for f in &frags {
            assert!(f.len() <= 256, "fragment of {} bytes", f.len());
            let GossipFrame::Retransmit(r) = decode_frame(f).unwrap() else {
                panic!("expected retransmit fragment");
            };
            assert_eq!(r.sender, NodeId::new(3));
            recovered.extend(r.events);
        }
        assert_eq!(recovered, events);
    }

    #[test]
    fn oversized_digest_never_breaks_the_datagram_bound() {
        // A digest too big to piggyback (512 ids ≈ 6 KB vs a 512-byte
        // datagram) must ship in dedicated chunked frames, with every
        // fragment within the bound and no id lost.
        let mut msg = sample_msg();
        msg.events = (0..40)
            .map(|s| {
                Event::with_age(
                    EventId::new(NodeId::new(1), s),
                    1,
                    Payload::from_static(b"0123456789abcdef"),
                )
            })
            .collect();
        let digest = IHaveDigest {
            ids: (0..512).map(|s| EventId::new(NodeId::new(9), s)).collect(),
        };
        let frame = GossipFrame::Gossip {
            msg: msg.clone(),
            ihave: Some(digest.clone()),
        };
        let frags = split_frame_for_datagram(&frame, 512);
        let mut events = Vec::new();
        let mut ids = Vec::new();
        for f in &frags {
            assert!(
                f.len() <= 512,
                "fragment of {} bytes exceeds bound",
                f.len()
            );
            let GossipFrame::Gossip { msg: m, ihave } = decode_frame(f).unwrap() else {
                panic!("expected gossip fragment");
            };
            events.extend(m.events);
            if let Some(d) = ihave {
                ids.extend(d.ids);
            }
        }
        assert_eq!(events, msg.events);
        assert_eq!(ids, digest.ids);
    }

    #[test]
    fn piggybacked_digest_size_is_reserved_from_the_bound() {
        // With a digest that does piggyback, the first fragment must not
        // exceed max_bytes (the digest's bytes are reserved out of the
        // event budget).
        let mut msg = sample_msg();
        msg.events = (0..100)
            .map(|s| {
                Event::with_age(
                    EventId::new(NodeId::new(1), s),
                    1,
                    Payload::from_static(b"0123456789abcdef"),
                )
            })
            .collect();
        let frame = GossipFrame::Gossip {
            msg,
            ihave: Some(IHaveDigest {
                ids: (0..16).map(|s| EventId::new(NodeId::new(9), s)).collect(),
            }),
        };
        for f in split_frame_for_datagram(&frame, 512) {
            assert!(
                f.len() <= 512,
                "fragment of {} bytes exceeds bound",
                f.len()
            );
        }
    }

    #[test]
    fn small_frames_stay_whole() {
        let graft = GossipFrame::Graft(GraftRequest {
            sender: NodeId::new(1),
            ids: sample_digest().ids,
        });
        assert_eq!(split_frame_for_datagram(&graft, 16).len(), 1);
        let gossip = GossipFrame::plain(sample_msg());
        assert_eq!(split_frame_for_datagram(&gossip, 64 * 1024).len(), 1);
    }
}
