//! Property-based tests of the Maelstrom line protocol: arbitrary
//! messages survive the message ↔ text round trip (including string
//! escaping, nested payloads and raw frame bytes), and arbitrary input
//! never panics the parser.

use std::collections::BTreeMap;

use agb_maelstrom::{Body, Message, Payload};
use proptest::prelude::*;

/// Characters that stress the escaper: quotes, backslashes, control
/// characters, multi-byte UTF-8.
const PALETTE: &[char] = &[
    'a', 'b', 'z', '0', '9', ' ', '"', '\\', '\n', '\t', '\r', '\u{1}', '\u{1f}', '{', '}', ':',
    ',', 'é', '✓', '🦀',
];

fn arb_string() -> impl Strategy<Value = String> {
    collection::vec(0usize..PALETTE.len(), 0..10)
        .prop_map(|idxs| idxs.into_iter().map(|i| PALETTE[i]).collect())
}

fn arb_value() -> impl Strategy<Value = i64> {
    -(1i64 << 40)..(1i64 << 40)
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    (
        0u8..13,
        arb_value(),
        arb_string(),
        collection::vec(arb_string(), 0..4),
        collection::vec(any::<u8>(), 0..48),
        collection::vec(arb_value(), 0..6),
    )
        .prop_map(
            |(variant, value, text, names, bytes, values)| match variant {
                0 => Payload::Init {
                    node_id: text,
                    node_ids: names,
                },
                1 => Payload::InitOk,
                2 => {
                    // Emission iterates a BTreeMap, so a faithful round trip
                    // needs lexicographically sorted, deduplicated keys.
                    let map: BTreeMap<String, Vec<String>> =
                        names.into_iter().map(|n| (n, vec![text.clone()])).collect();
                    Payload::Topology {
                        topology: map.into_iter().collect(),
                    }
                }
                3 => Payload::TopologyOk,
                4 => Payload::Broadcast { message: value },
                5 => Payload::BroadcastOk,
                6 => Payload::Read,
                7 => Payload::ReadOk { messages: values },
                8 => Payload::ReadOkValue { value },
                9 => Payload::Add { delta: value },
                10 => Payload::Generate,
                11 => Payload::GenerateOk { id: text },
                _ => Payload::Gossip { frame: bytes },
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        arb_string(),
        arb_string(),
        option::of(0u64..1_000_000),
        option::of(0u64..1_000_000),
        arb_payload(),
    )
        .prop_map(|(src, dest, msg_id, in_reply_to, payload)| Message {
            src,
            dest,
            body: Body {
                msg_id,
                in_reply_to,
                payload,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_round_trips_through_the_line_protocol(msg in arb_message()) {
        let line = msg.to_line();
        prop_assert!(!line.contains('\n'), "line framing must hold: {line:?}");
        let back = Message::parse_line(&line).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn reparse_is_a_fixed_point(msg in arb_message()) {
        // line -> Message -> line must stabilize after one round.
        let line = msg.to_line();
        let line2 = Message::parse_line(&line).unwrap().to_line();
        prop_assert_eq!(line, line2);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in collection::vec(any::<u8>(), 0..160)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Message::parse_line(&text);
    }

    #[test]
    fn parser_never_panics_on_mutated_valid_lines(
        msg in arb_message(),
        cut in 0usize..200,
        flip in 0usize..200,
    ) {
        // Truncations and byte flips of well-formed lines must error or
        // parse, never panic.
        let line = msg.to_line();
        let mut bytes = line.into_bytes();
        if !bytes.is_empty() {
            let cut = cut % (bytes.len() + 1);
            bytes.truncate(cut);
            if !bytes.is_empty() {
                let at = flip % bytes.len();
                bytes[at] = bytes[at].wrapping_add(1);
            }
        }
        let _ = Message::parse_line(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn ticks_and_errors_round_trip(now in 0u64..1 << 40, code in 0u64..100, text in arb_string()) {
        for payload in [Payload::Tick { now }, Payload::Error { code, text }] {
            let msg = Message {
                src: "harness".into(),
                dest: "n0".into(),
                body: Body::bare(payload),
            };
            let back = Message::parse_line(&msg.to_line()).unwrap();
            prop_assert_eq!(back, msg);
        }
    }
}
