//! Fixed-seed determinism of the Maelstrom harness: the same seed must
//! produce the same digest — across repeated runs, across engine shard
//! counts (the harness rides the sharded simulation engine), and under
//! `AGB_THREADS` variation.

use agb_maelstrom::{run_workload, standard_suite_threads, HarnessConfig, WorkloadKind};
use agb_sim::{NetworkConfig, Partition};
use agb_types::{NodeId, TimeMs};

/// A scenario that exercises every determinism-sensitive path: loss,
/// a partition window, recovery traffic and a crash.
fn scenario(seed: u64, threads: usize) -> HarnessConfig {
    let mut c = HarnessConfig::new(WorkloadKind::Broadcast, 12, seed);
    c.network = NetworkConfig::lossy(0.15);
    c.network.partitions = vec![Partition {
        side_a: (0..4).map(NodeId::new).collect(),
        from: TimeMs::from_secs(8),
        until: TimeMs::from_secs(14),
    }];
    c.n_ops = 12;
    c.ops_from = TimeMs::from_secs(2);
    c.ops_until = TimeMs::from_secs(20);
    c.read_at = TimeMs::from_secs(40);
    c.crashes = vec![(TimeMs::from_secs(10), NodeId::new(11))];
    c.atomicity_threshold = 0.0; // determinism under test, not reliability
    c.threads = threads;
    // Force even tiny batches onto the worker path when threads > 1.
    c.parallel_threshold = Some(1);
    c
}

#[test]
fn same_seed_same_digest_across_runs() {
    let a = run_workload(&scenario(42, 1));
    let b = run_workload(&scenario(42, 1));
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.engine_checksum, b.engine_checksum);
    assert_eq!(a.sends, b.sends);
}

#[test]
fn sharded_engine_matches_single_thread() {
    let k1 = run_workload(&scenario(42, 1));
    for k in [2, 4] {
        let kn = run_workload(&scenario(42, k));
        assert_eq!(kn.digest, k1.digest, "digest diverged at K={k}");
        assert_eq!(
            kn.engine_checksum, k1.engine_checksum,
            "engine checksum diverged at K={k}"
        );
        assert_eq!(
            (kn.sends, kn.deliveries, kn.drops),
            (k1.sends, k1.deliveries, k1.drops)
        );
    }
}

#[test]
fn agb_threads_env_does_not_change_the_digest() {
    // `HarnessConfig::new` seeds its thread count from AGB_THREADS (via
    // `agb_sim::threads_from_env`); whatever the environment says, the
    // digest must not move.
    let baseline = run_workload(&scenario(7, 1));
    std::env::set_var("AGB_THREADS", "4");
    let threads = agb_sim::threads_from_env();
    std::env::remove_var("AGB_THREADS");
    assert_eq!(threads, 4, "env override must be honoured");
    let under_env = run_workload(&scenario(7, threads));
    assert_eq!(under_env.digest, baseline.digest);
}

#[test]
fn standard_quick_suite_digest_is_thread_invariant() {
    let k1 = standard_suite_threads(42, true, 1);
    let k2 = standard_suite_threads(42, true, 2);
    assert_eq!(k1.digest, k2.digest);
    assert!(k1.passed(), "quick suite must pass");
    assert_eq!(k1.reports.len(), k2.reports.len());
    for (a, b) in k1.reports.iter().zip(&k2.reports) {
        assert_eq!(
            a.digest,
            b.digest,
            "workload {} diverged",
            a.workload.name()
        );
    }
}

#[test]
fn different_seeds_produce_different_digests() {
    let a = run_workload(&scenario(1, 1));
    let b = run_workload(&scenario(2, 1));
    assert_ne!(a.digest, b.digest);
}
