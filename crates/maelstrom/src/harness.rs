//! The deterministic in-process Maelstrom harness and checker.
//!
//! Runs `N` [`MaelstromNode`]s *over the line protocol* — nodes exchange
//! nothing but serialized JSON lines — on the sharded deterministic
//! simulation engine (`agb-sim`), whose [`NetworkConfig`] supplies
//! seeded loss, latency distributions and partition windows. Client RPCs
//! (`init`, `broadcast`, `add`, `generate`, `read`) are injected
//! reliably (Maelstrom clients retry; the network model applies only to
//! inter-node gossip), scripted by a [`HarnessConfig`], and the final
//! state is checked against the workload's properties:
//!
//! * **broadcast** — validity (no value read that was never broadcast)
//!   and atomicity among correct nodes (every acknowledged value read
//!   back by ≥ the configured fraction of never-crashed nodes);
//! * **unique-ids** — every `generate_ok` id globally unique;
//! * **g-counter** — eventual convergence: every correct node reads the
//!   sum of all acknowledged deltas.
//!
//! Every run is a pure function of its seed — at any engine thread
//! count — and folds into a stable FNV digest ([`WorkloadReport::digest`],
//! [`MaelstromSummary::digest`]) that CI replays and compares.

use agb_core::{AdaptationConfig, GossipConfig};
use agb_membership::PartialViewConfig;
use agb_recovery::RecoveryConfig;
use agb_sim::{
    LatencyModel, NetworkConfig, Partition, SimCtx, SimNode, Simulation, SimulationBuilder, TimerId,
};
use agb_topology::RoutingConfig;
use agb_trace::TraceCounts;
use agb_types::{fnv1a, json::Json, DetRng, DurationMs, NodeId, SeedSequence, TimeMs};
use rand::RngExt;

use crate::node::{Flavor, MaelstromNode, NodeConfig, WorkloadKind};
use crate::protocol::{Body, Message, Payload};

const TICK: TimerId = TimerId(1);

/// Everything needed to run one scripted workload.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Group size.
    pub n_nodes: usize,
    /// Seed; the whole run (and its digest) is a pure function of it.
    pub seed: u64,
    /// Protocol stack under test.
    pub flavor: Flavor,
    /// Workload to script and check.
    pub workload: WorkloadKind,
    /// Inter-node network: latency, loss, partition windows.
    pub network: NetworkConfig,
    /// Gossip parameters shared by all nodes.
    pub gossip: GossipConfig,
    /// Adaptation parameters (adaptive flavors).
    pub adaptation: AdaptationConfig,
    /// Recovery parameters ([`Flavor::AdaptiveRecovery`]).
    pub recovery: RecoveryConfig,
    /// Partial-view hints (see [`NodeConfig::partial_view`]).
    pub partial_view: Option<PartialViewConfig>,
    /// Probabilistic-forwarding parameters ([`Flavor::Routing`]).
    pub routing: RoutingConfig,
    /// Locality-bias escape probability ([`NodeConfig::locality_escape`]).
    pub locality_escape: f64,
    /// Region label per dense node id. When set, nodes tally gossip
    /// frames crossing a region boundary and the checker adds the
    /// `cross_region_traffic` property.
    pub regions: Option<Vec<u32>>,
    /// Upper bound on the fraction of inter-node frames allowed to cross
    /// a region boundary (only checked when [`Self::regions`] is set).
    pub max_cross_fraction: f64,
    /// Client operations to script (broadcasts / adds / generates).
    pub n_ops: usize,
    /// First client operation time.
    pub ops_from: TimeMs,
    /// Last client operation time (exclusive).
    pub ops_until: TimeMs,
    /// When final `read`s are injected (and the run's horizon).
    pub read_at: TimeMs,
    /// Minimum per-value fraction of correct nodes that must read an
    /// acknowledged broadcast value back (the atomicity property).
    pub atomicity_threshold: f64,
    /// Scripted crashes: from `at` on, the node is silent and excluded
    /// from the correct set.
    pub crashes: Vec<(TimeMs, NodeId)>,
    /// Engine shard threads (`K`); results are identical at every `K`.
    pub threads: usize,
    /// Engine parallel threshold override (tests force tiny batches
    /// onto the worker path).
    pub parallel_threshold: Option<usize>,
}

impl HarnessConfig {
    /// Paper-default parameters: adaptive + recovery on a lossless LAN,
    /// 20 ops in `[5 s, 35 s)`, reads at 60 s.
    pub fn new(workload: WorkloadKind, n_nodes: usize, seed: u64) -> Self {
        HarnessConfig {
            n_nodes,
            seed,
            flavor: Flavor::AdaptiveRecovery,
            workload,
            network: NetworkConfig::default(),
            gossip: GossipConfig::default(),
            adaptation: AdaptationConfig::default(),
            recovery: RecoveryConfig::default(),
            partial_view: None,
            routing: RoutingConfig::default(),
            locality_escape: 0.1,
            regions: None,
            max_cross_fraction: 1.0,
            n_ops: 20,
            ops_from: TimeMs::from_secs(5),
            ops_until: TimeMs::from_secs(35),
            read_at: TimeMs::from_secs(60),
            atomicity_threshold: 0.99,
            crashes: Vec::new(),
            threads: agb_sim::threads_from_env(),
            parallel_threshold: None,
        }
    }
}

/// One checked property.
#[derive(Debug, Clone, PartialEq)]
pub struct Property {
    /// Property name (stable; folded into the digest).
    pub name: &'static str,
    /// Whether it held.
    pub ok: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// The checked outcome of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// The workload that ran.
    pub workload: WorkloadKind,
    /// The protocol stack under test.
    pub flavor: Flavor,
    /// Group size.
    pub n_nodes: usize,
    /// Nodes that never crashed.
    pub n_correct: usize,
    /// The seed.
    pub seed: u64,
    /// Scripted client operations.
    pub ops: usize,
    /// Operations acknowledged by their node.
    pub acked: usize,
    /// Broadcast: mean per-value fraction of correct nodes that read the
    /// value back. G-counter: fraction of correct nodes converged.
    /// Unique-ids: 1.0.
    pub avg_fraction: f64,
    /// Worst per-value fraction (broadcast) / same as avg otherwise.
    pub min_fraction: f64,
    /// The checked properties.
    pub properties: Vec<Property>,
    /// Messages handed to the simulated network.
    pub sends: u64,
    /// Messages delivered by it.
    pub deliveries: u64,
    /// Messages it dropped (loss + partitions).
    pub drops: u64,
    /// Lines rejected by the protocol layer (must be 0).
    pub proto_errors: u64,
    /// Trace-taxonomy tally summed over all nodes (publishes, relays,
    /// delivers, duplicates, drops, recovery round trips).
    pub trace: TraceCounts,
    /// The engine's order-sensitive determinism checksum.
    pub engine_checksum: u64,
    /// Stable FNV digest of every deterministic field above.
    pub digest: u64,
}

impl WorkloadReport {
    /// Whether every property held.
    pub fn passed(&self) -> bool {
        self.properties.iter().all(|p| p.ok)
    }

    /// Machine-readable form (schema `agb-maelstrom/v1`, one entry of
    /// the summary's `workloads` array).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.name())),
            ("flavor", Json::from(self.flavor.name())),
            ("n_nodes", Json::from(self.n_nodes)),
            ("n_correct", Json::from(self.n_correct)),
            ("seed", Json::from(self.seed)),
            ("ops", Json::from(self.ops)),
            ("acked", Json::from(self.acked)),
            ("avg_fraction", Json::Num(self.avg_fraction)),
            ("min_fraction", Json::Num(self.min_fraction)),
            (
                "properties",
                Json::Arr(
                    self.properties
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("name", Json::from(p.name)),
                                ("ok", Json::Bool(p.ok)),
                                ("detail", Json::Str(p.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("sends", Json::from(self.sends)),
            ("deliveries", Json::from(self.deliveries)),
            ("drops", Json::from(self.drops)),
            ("proto_errors", Json::from(self.proto_errors)),
            ("trace", self.trace.to_json()),
            (
                "engine_checksum",
                Json::Str(format!("{:#018x}", self.engine_checksum)),
            ),
            ("digest", Json::Str(format!("{:#018x}", self.digest))),
        ])
    }
}

/// The whole suite's outcome: one report per workload plus the folded
/// digest CI compares across runs.
#[derive(Debug, Clone)]
pub struct MaelstromSummary {
    /// The suite seed.
    pub seed: u64,
    /// One report per workload run, in run order.
    pub reports: Vec<WorkloadReport>,
    /// FNV fold of all report digests, in order.
    pub digest: u64,
}

impl MaelstromSummary {
    /// Whether every property of every workload held.
    pub fn passed(&self) -> bool {
        self.reports.iter().all(WorkloadReport::passed)
    }

    /// The machine-readable report (schema `agb-maelstrom/v1`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from("agb-maelstrom/v1")),
            ("seed", Json::from(self.seed)),
            ("passed", Json::Bool(self.passed())),
            (
                "workloads",
                Json::Arr(self.reports.iter().map(WorkloadReport::to_json).collect()),
            ),
            ("digest", Json::Str(format!("{:#018x}", self.digest))),
        ])
    }
}

/// One node hosted by the engine: a [`MaelstromNode`] plus the plumbing
/// that feeds it lines and routes what it emits.
struct HarnessNode {
    inner: MaelstromNode,
    me: String,
    roster: Vec<String>,
    period: DurationMs,
    /// Replies addressed to clients (collected by the checker).
    client_outbox: Vec<Message>,
    /// Lines that failed to parse at the harness boundary (folded into
    /// the `no_protocol_errors` property alongside the node's own
    /// counter — a drop must never be invisible to the checker).
    parse_errors: u64,
}

impl HarnessNode {
    /// Feeds one line to the node and routes its output: node-addressed
    /// messages onto the simulated network, client-addressed ones into
    /// the local outbox.
    fn feed(&mut self, line: &str, ctx: &mut SimCtx<'_, String>) {
        match Message::parse_line(line) {
            Ok(msg) => {
                let out = self.inner.handle(msg);
                self.route(out, ctx);
            }
            Err(_) => self.parse_errors += 1,
        }
    }

    fn route(&mut self, out: Vec<Message>, ctx: &mut SimCtx<'_, String>) {
        for msg in out {
            match self.roster.iter().position(|r| *r == msg.dest) {
                Some(idx) => ctx.send(NodeId::new(idx as u32), msg.to_line()),
                None => self.client_outbox.push(msg),
            }
        }
    }
}

impl SimNode for HarnessNode {
    type Msg = String;

    fn on_start(&mut self, ctx: &mut SimCtx<'_, String>) {
        // The Maelstrom handshake, over the wire format like everything
        // else: init with the full roster, then ring-topology hints.
        let init = Message {
            src: "c0".into(),
            dest: self.me.clone(),
            body: Body {
                msg_id: Some(0),
                in_reply_to: None,
                payload: Payload::Init {
                    node_id: self.me.clone(),
                    node_ids: self.roster.clone(),
                },
            },
        };
        self.feed(&init.to_line(), ctx);
        let n = self.roster.len();
        let topology = Message {
            src: "c0".into(),
            dest: self.me.clone(),
            body: Body {
                msg_id: Some(1),
                in_reply_to: None,
                payload: Payload::Topology {
                    topology: (0..n)
                        .map(|i| {
                            (
                                self.roster[i].clone(),
                                vec![
                                    self.roster[(i + n - 1) % n].clone(),
                                    self.roster[(i + 1) % n].clone(),
                                ],
                            )
                        })
                        .collect(),
                },
            },
        };
        self.feed(&topology.to_line(), ctx);
        ctx.set_periodic_timer(TICK, self.period, self.period);
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut SimCtx<'_, String>) {
        if timer == TICK {
            let tick = Message {
                src: "harness".into(),
                dest: self.me.clone(),
                body: Body::bare(Payload::Tick {
                    now: ctx.now().as_millis(),
                }),
            };
            self.feed(&tick.to_line(), ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, line: String, ctx: &mut SimCtx<'_, String>) {
        self.feed(&line, ctx);
    }
}

/// What one scripted client operation was.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Broadcast(i64),
    Add(i64),
    Generate,
}

/// Runs one scripted workload to completion and checks it.
///
/// # Panics
///
/// Panics on invalid configuration (zero nodes, crash of an unknown
/// node).
pub fn run_workload(config: &HarnessConfig) -> WorkloadReport {
    assert!(config.n_nodes > 0, "harness needs at least one node");
    for (_, node) in &config.crashes {
        assert!(
            node.index() < config.n_nodes,
            "crash of unknown node {node}"
        );
    }
    let seeds = SeedSequence::new(config.seed);
    let roster: Vec<String> = (0..config.n_nodes).map(|i| format!("n{i}")).collect();
    let node_config = NodeConfig {
        flavor: config.flavor,
        workload: config.workload,
        seed: config.seed,
        gossip: config.gossip.clone(),
        adaptation: config.adaptation.clone(),
        recovery: config.recovery.clone(),
        partial_view: config.partial_view,
        routing: config.routing,
        locality_escape: config.locality_escape,
        regions: config.regions.clone(),
    };
    let period = match config.flavor {
        Flavor::Routing => config.routing.gossip_period,
        _ => config.gossip.gossip_period,
    };
    let nodes: Vec<HarnessNode> = roster
        .iter()
        .map(|me| HarnessNode {
            inner: MaelstromNode::new(node_config.clone()),
            me: me.clone(),
            roster: roster.clone(),
            period,
            client_outbox: Vec::new(),
            parse_errors: 0,
        })
        .collect();

    let mut sim = SimulationBuilder::new(seeds.seed_for("maelstrom-sim", 0))
        .network(config.network.clone())
        .threads(config.threads.max(1))
        .build(nodes);
    if let Some(min_batch) = config.parallel_threshold {
        sim.set_parallel_threshold(min_batch);
    }

    // Scripted crashes (correct nodes = the complement).
    for &(at, node) in &config.crashes {
        sim.schedule_crash(at, node);
    }
    let crashed: Vec<NodeId> = config.crashes.iter().map(|&(_, n)| n).collect();
    let correct: Vec<NodeId> = (0..config.n_nodes)
        .map(|i| NodeId::new(i as u32))
        .filter(|n| !crashed.contains(n))
        .collect();

    // Client operations: round-robin over correct nodes, evenly spaced
    // over the ops window, injected reliably (no loss on client RPCs).
    let mut delta_rng: DetRng = seeds.rng_for("maelstrom-deltas", 0);
    let span = config.ops_until.since(config.ops_from).as_millis().max(1);
    let mut ops: Vec<(u64, NodeId, Op)> = Vec::with_capacity(config.n_ops);
    for i in 0..config.n_ops {
        let msg_id = 1_000_000 + i as u64;
        let target = correct[i % correct.len()];
        let op = match config.workload {
            WorkloadKind::Broadcast => Op::Broadcast(100 + i as i64),
            WorkloadKind::GCounter => Op::Add(delta_rng.random_range(1u64..=9) as i64),
            WorkloadKind::UniqueIds => Op::Generate,
        };
        let at =
            config.ops_from + DurationMs::from_millis(span * i as u64 / config.n_ops.max(1) as u64);
        let payload = match op {
            Op::Broadcast(v) => Payload::Broadcast { message: v },
            Op::Add(d) => Payload::Add { delta: d },
            Op::Generate => Payload::Generate,
        };
        let line = Message {
            src: "c1".into(),
            dest: roster[target.index()].clone(),
            body: Body {
                msg_id: Some(msg_id),
                in_reply_to: None,
                payload,
            },
        }
        .to_line();
        sim.schedule_node_action(at, target, move |n: &mut HarnessNode, ctx| {
            n.feed(&line, ctx);
        });
        ops.push((msg_id, target, op));
    }

    // Final reads from every correct node (unique-ids has no read op).
    if config.workload != WorkloadKind::UniqueIds {
        for &node in &correct {
            let line = Message {
                src: "c1".into(),
                dest: roster[node.index()].clone(),
                body: Body {
                    msg_id: Some(2_000_000 + u64::from(node.as_u32())),
                    in_reply_to: None,
                    payload: Payload::Read,
                },
            }
            .to_line();
            sim.schedule_node_action(config.read_at, node, move |n: &mut HarnessNode, ctx| {
                n.feed(&line, ctx);
            });
        }
    }

    sim.run_until_sharded(config.read_at + DurationMs::from_millis(10));

    check(config, &mut sim, &ops, &correct)
}

/// Evaluates the workload's properties over the collected client
/// replies and folds the digest.
fn check(
    config: &HarnessConfig,
    sim: &mut Simulation<HarnessNode>,
    ops: &[(u64, NodeId, Op)],
    correct: &[NodeId],
) -> WorkloadReport {
    let stats = sim.stats();
    let mut proto_errors = 0;
    let mut trace = TraceCounts::default();
    // Ack lookup: which scripted op msg_ids were answered, and with what.
    let mut acks: Vec<(u64, Payload)> = Vec::new();
    let mut reads: Vec<(NodeId, Payload)> = Vec::new();
    for i in 0..config.n_nodes {
        let id = NodeId::new(i as u32);
        let node = sim.node(id);
        proto_errors += node.inner.proto_errors() + node.parse_errors;
        trace.merge(node.inner.trace_counts());
        for msg in &node.client_outbox {
            match msg.body.in_reply_to {
                Some(re) if re >= 2_000_000 => reads.push((id, msg.body.payload.clone())),
                Some(re) if re >= 1_000_000 => acks.push((re, msg.body.payload.clone())),
                _ => {}
            }
        }
    }

    let acked_ops: Vec<&(u64, NodeId, Op)> = ops
        .iter()
        .filter(|(msg_id, _, op)| {
            acks.iter().any(|(re, p)| {
                re == msg_id
                    && matches!(
                        (op, p),
                        (Op::Broadcast(_), Payload::BroadcastOk)
                            | (Op::Add(_), Payload::AddOk)
                            | (Op::Generate, Payload::GenerateOk { .. })
                    )
            })
        })
        .collect();

    let mut properties = Vec::new();
    let mut avg_fraction = 1.0;
    let mut min_fraction = 1.0;
    let mut digest_buf: Vec<u8> = Vec::new();

    properties.push(Property {
        name: "all_ops_acked",
        ok: acked_ops.len() == ops.len(),
        detail: format!("{}/{} client ops acknowledged", acked_ops.len(), ops.len()),
    });

    match config.workload {
        WorkloadKind::Broadcast => {
            let offered: Vec<i64> = ops
                .iter()
                .filter_map(|(_, _, op)| match op {
                    Op::Broadcast(v) => Some(*v),
                    _ => None,
                })
                .collect();
            let acked: Vec<i64> = acked_ops
                .iter()
                .filter_map(|(_, _, op)| match op {
                    Op::Broadcast(v) => Some(*v),
                    _ => None,
                })
                .collect();
            let node_sets: Vec<(NodeId, Vec<i64>)> = correct
                .iter()
                .filter_map(|&n| {
                    reads.iter().find(|(id, _)| *id == n).and_then(|(_, p)| {
                        if let Payload::ReadOk { messages } = p {
                            Some((n, messages.clone()))
                        } else {
                            None
                        }
                    })
                })
                .collect();
            properties.push(Property {
                name: "all_correct_nodes_read",
                ok: node_sets.len() == correct.len(),
                detail: format!(
                    "{}/{} correct nodes replied to read",
                    node_sets.len(),
                    correct.len()
                ),
            });
            let invented: usize = node_sets
                .iter()
                .map(|(_, msgs)| msgs.iter().filter(|m| !offered.contains(m)).count())
                .sum();
            properties.push(Property {
                name: "validity",
                ok: invented == 0,
                detail: format!("{invented} read values were never broadcast"),
            });
            let mut sum = 0.0;
            let mut min = 1.0f64;
            for v in &acked {
                let holders = node_sets
                    .iter()
                    .filter(|(_, msgs)| msgs.contains(v))
                    .count();
                let frac = holders as f64 / correct.len().max(1) as f64;
                sum += frac;
                min = min.min(frac);
            }
            avg_fraction = if acked.is_empty() {
                1.0
            } else {
                sum / acked.len() as f64
            };
            min_fraction = if acked.is_empty() { 1.0 } else { min };
            properties.push(Property {
                name: "atomicity_among_correct",
                ok: avg_fraction >= config.atomicity_threshold,
                detail: format!(
                    "avg fraction {:.4} (min {:.4}) over {} values × {} correct nodes, threshold {:.2}",
                    avg_fraction,
                    min_fraction,
                    acked.len(),
                    correct.len(),
                    config.atomicity_threshold
                ),
            });
            for (n, msgs) in &node_sets {
                mix_u64(&mut digest_buf, u64::from(n.as_u32()));
                for m in msgs {
                    mix_u64(&mut digest_buf, *m as u64);
                }
            }
        }
        WorkloadKind::UniqueIds => {
            let mut ids: Vec<String> = acks
                .iter()
                .filter_map(|(_, p)| match p {
                    Payload::GenerateOk { id } => Some(id.clone()),
                    _ => None,
                })
                .collect();
            ids.sort();
            let before = ids.len();
            ids.dedup();
            properties.push(Property {
                name: "global_uniqueness",
                ok: ids.len() == before && before == ops.len(),
                detail: format!("{} ids minted, {} distinct", before, ids.len()),
            });
            for id in &ids {
                mix_str(&mut digest_buf, id);
            }
        }
        WorkloadKind::GCounter => {
            let total: i64 = acked_ops
                .iter()
                .filter_map(|(_, _, op)| match op {
                    Op::Add(d) => Some(*d),
                    _ => None,
                })
                .sum();
            let values: Vec<(NodeId, i64)> = correct
                .iter()
                .filter_map(|&n| {
                    reads.iter().find(|(id, _)| *id == n).and_then(|(_, p)| {
                        if let Payload::ReadOkValue { value } = p {
                            Some((n, *value))
                        } else {
                            None
                        }
                    })
                })
                .collect();
            properties.push(Property {
                name: "all_correct_nodes_read",
                ok: values.len() == correct.len(),
                detail: format!(
                    "{}/{} correct nodes replied to read",
                    values.len(),
                    correct.len()
                ),
            });
            let converged = values.iter().filter(|(_, v)| *v == total).count();
            avg_fraction = converged as f64 / correct.len().max(1) as f64;
            min_fraction = avg_fraction;
            properties.push(Property {
                name: "eventual_convergence",
                ok: converged == correct.len(),
                detail: format!(
                    "{converged}/{} correct nodes read the full sum {total}",
                    correct.len()
                ),
            });
            for (n, v) in &values {
                mix_u64(&mut digest_buf, u64::from(n.as_u32()));
                mix_u64(&mut digest_buf, *v as u64);
            }
        }
    }

    if config.regions.is_some() {
        // Region-labelled run: dissemination must actually bridge the
        // regions (a zero count with atomic delivery would mean the
        // counter is wired wrong), and the cross-region share of frames
        // must stay under the configured cap — the locality story.
        let crossings = trace.cross_partition_msgs;
        let frac = crossings as f64 / stats.sends.max(1) as f64;
        properties.push(Property {
            name: "cross_region_traffic",
            ok: crossings > 0 && frac <= config.max_cross_fraction,
            detail: format!(
                "{crossings}/{} inter-node frames crossed a region boundary \
                 ({:.1}%, cap {:.0}%)",
                stats.sends,
                frac * 100.0,
                config.max_cross_fraction * 100.0
            ),
        });
    }

    properties.push(Property {
        name: "no_protocol_errors",
        ok: proto_errors == 0,
        detail: format!("{proto_errors} malformed lines"),
    });

    // Fold the digest: scenario identity, checker outcome, engine
    // checksum, and the read-back state mixed above.
    mix_str(&mut digest_buf, config.workload.name());
    mix_str(&mut digest_buf, config.flavor.name());
    mix_u64(&mut digest_buf, config.n_nodes as u64);
    mix_u64(&mut digest_buf, correct.len() as u64);
    mix_u64(&mut digest_buf, config.seed);
    mix_u64(&mut digest_buf, ops.len() as u64);
    mix_u64(&mut digest_buf, acked_ops.len() as u64);
    mix_u64(&mut digest_buf, (avg_fraction * 1e9).round() as u64);
    mix_u64(&mut digest_buf, (min_fraction * 1e9).round() as u64);
    for p in &properties {
        mix_str(&mut digest_buf, p.name);
        mix_u64(&mut digest_buf, u64::from(p.ok));
    }
    mix_u64(&mut digest_buf, stats.sends);
    mix_u64(&mut digest_buf, stats.deliveries);
    mix_u64(&mut digest_buf, stats.drops);
    for (name, count) in trace.as_pairs() {
        mix_str(&mut digest_buf, name);
        mix_u64(&mut digest_buf, count);
    }
    mix_u64(&mut digest_buf, stats.checksum);
    let digest = fnv1a(&digest_buf);

    WorkloadReport {
        workload: config.workload,
        flavor: config.flavor,
        n_nodes: config.n_nodes,
        n_correct: correct.len(),
        seed: config.seed,
        ops: ops.len(),
        acked: acked_ops.len(),
        avg_fraction,
        min_fraction,
        properties,
        sends: stats.sends,
        deliveries: stats.deliveries,
        drops: stats.drops,
        proto_errors,
        trace,
        engine_checksum: stats.checksum,
        digest,
    }
}

fn mix_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn mix_str(buf: &mut Vec<u8>, s: &str) {
    mix_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// The standard workload suite behind `repro maelstrom`:
///
/// 1. **broadcast** — 25 nodes, 10% loss, one 12 s partition window,
///    adaptive + recovery;
/// 2. the same scenario on push-only **lpbcast** (comparison row);
/// 3. **broadcast/routing** — 20 nodes, probabilistic forwarding over
///    the ring topology hints, quadrant regions, cross-region traffic
///    checked;
/// 4. **unique-ids** — 12 nodes;
/// 5. **g-counter** — 15 nodes, 10% loss, adaptive + recovery.
pub fn standard_suite(seed: u64, quick: bool) -> MaelstromSummary {
    standard_suite_threads(seed, quick, agb_sim::threads_from_env())
}

/// [`standard_suite`] at an explicit engine thread count (the digest is
/// identical at every `K`).
pub fn standard_suite_threads(seed: u64, quick: bool, threads: usize) -> MaelstromSummary {
    let mut reports = Vec::new();

    // Broadcast under loss and a partition: the acceptance scenario.
    let mut broadcast = HarnessConfig::new(WorkloadKind::Broadcast, 25, seed);
    broadcast.network = NetworkConfig {
        latency: LatencyModel::default(),
        loss: 0.10,
        partitions: vec![Partition {
            side_a: (0..8).map(NodeId::new).collect(),
            from: TimeMs::from_secs(20),
            until: TimeMs::from_secs(32),
        }],
        link_faults: Vec::new(),
        adversaries: Vec::new(),
    };
    broadcast.n_ops = if quick { 24 } else { 48 };
    broadcast.ops_from = TimeMs::from_secs(5);
    broadcast.ops_until = TimeMs::from_secs(if quick { 40 } else { 50 });
    broadcast.read_at = TimeMs::from_secs(if quick { 70 } else { 85 });
    broadcast.threads = threads;
    reports.push(run_workload(&broadcast));

    // The same scenario on push-only lpbcast, as the comparison row: no
    // atomicity gate (threshold 0 — the point is to *show* the loss the
    // recovery layer wins back), every other property still checked.
    let mut baseline = broadcast.clone();
    baseline.flavor = Flavor::Lpbcast;
    baseline.atomicity_threshold = 0.0;
    reports.push(run_workload(&baseline));

    // Probabilistic forwarding over the harness's ring hints, with
    // quadrant region labels: the topology flavor's row — the same
    // broadcast checks plus bounded cross-region traffic.
    let routing_n = 20usize;
    let mut routing = HarnessConfig::new(WorkloadKind::Broadcast, routing_n, seed);
    routing.flavor = Flavor::Routing;
    routing.n_ops = if quick { 16 } else { 32 };
    routing.ops_from = TimeMs::from_secs(5);
    routing.ops_until = TimeMs::from_secs(if quick { 25 } else { 35 });
    routing.read_at = TimeMs::from_secs(if quick { 45 } else { 60 });
    routing.regions = Some((0..routing_n).map(|i| (i * 4 / routing_n) as u32).collect());
    routing.threads = threads;
    reports.push(run_workload(&routing));

    // Unique ids: pure RPC, no dissemination required.
    let mut unique = HarnessConfig::new(WorkloadKind::UniqueIds, 12, seed);
    unique.network = NetworkConfig::lossy(0.10);
    unique.n_ops = if quick { 48 } else { 96 };
    unique.ops_from = TimeMs::from_secs(2);
    unique.ops_until = TimeMs::from_secs(20);
    unique.read_at = TimeMs::from_secs(22);
    unique.threads = threads;
    reports.push(run_workload(&unique));

    // Grow-only counter: eventual convergence under loss.
    let mut counter = HarnessConfig::new(WorkloadKind::GCounter, 15, seed);
    counter.network = NetworkConfig::lossy(0.10);
    counter.n_ops = if quick { 20 } else { 40 };
    counter.ops_from = TimeMs::from_secs(5);
    counter.ops_until = TimeMs::from_secs(if quick { 30 } else { 40 });
    counter.read_at = TimeMs::from_secs(if quick { 55 } else { 70 });
    counter.threads = threads;
    reports.push(run_workload(&counter));

    let mut buf = Vec::with_capacity(reports.len() * 8);
    for r in &reports {
        mix_u64(&mut buf, r.digest);
    }
    let digest = fnv1a(&buf);
    MaelstromSummary {
        seed,
        reports,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(workload: WorkloadKind) -> HarnessConfig {
        let mut c = HarnessConfig::new(workload, 8, 11);
        c.n_ops = 8;
        c.ops_from = TimeMs::from_secs(2);
        c.ops_until = TimeMs::from_secs(10);
        c.read_at = TimeMs::from_secs(25);
        c.threads = 1;
        c
    }

    #[test]
    fn broadcast_on_a_clean_network_is_atomic() {
        let report = run_workload(&small(WorkloadKind::Broadcast));
        assert!(report.passed(), "properties: {:?}", report.properties);
        assert_eq!(report.acked, 8);
        assert_eq!(report.avg_fraction, 1.0);
        // The trace tally sees the same dissemination the checker does.
        assert_eq!(report.trace.publishes, 8, "one publish per client op");
        assert!(report.trace.relays > 0, "rounds relay events");
        assert!(report.trace.delivers > 0, "peers deliver");
    }

    #[test]
    fn unique_ids_are_unique() {
        let report = run_workload(&small(WorkloadKind::UniqueIds));
        assert!(report.passed(), "properties: {:?}", report.properties);
    }

    #[test]
    fn g_counter_converges() {
        let report = run_workload(&small(WorkloadKind::GCounter));
        assert!(report.passed(), "properties: {:?}", report.properties);
        assert_eq!(report.avg_fraction, 1.0);
    }

    #[test]
    fn routing_broadcast_is_atomic_and_crosses_regions() {
        let mut config = small(WorkloadKind::Broadcast);
        config.flavor = Flavor::Routing;
        config.regions = Some(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let report = run_workload(&config);
        assert!(report.passed(), "properties: {:?}", report.properties);
        assert!(
            report.trace.cross_partition_msgs > 0,
            "ring + escape hatch must bridge the two regions"
        );
        assert!(
            report
                .properties
                .iter()
                .any(|p| p.name == "cross_region_traffic" && p.ok),
            "properties: {:?}",
            report.properties
        );
    }

    #[test]
    fn same_seed_same_digest() {
        let a = run_workload(&small(WorkloadKind::Broadcast));
        let b = run_workload(&small(WorkloadKind::Broadcast));
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.engine_checksum, b.engine_checksum);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_workload(&small(WorkloadKind::Broadcast));
        let mut config = small(WorkloadKind::Broadcast);
        config.seed = 12;
        let b = run_workload(&config);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn crashed_node_is_excluded_from_the_correct_set() {
        let mut config = small(WorkloadKind::Broadcast);
        config.crashes = vec![(TimeMs::from_secs(4), NodeId::new(7))];
        let report = run_workload(&config);
        assert_eq!(report.n_correct, 7);
        assert!(
            report.passed(),
            "correct nodes must stay atomic: {:?}",
            report.properties
        );
    }

    #[test]
    fn report_json_has_the_schema_fields() {
        let report = run_workload(&small(WorkloadKind::GCounter));
        let summary = MaelstromSummary {
            seed: 11,
            digest: report.digest,
            reports: vec![report],
        };
        let json = summary.to_json();
        assert_eq!(
            json.get("schema").unwrap().as_str(),
            Some("agb-maelstrom/v1")
        );
        let text = json.pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("passed").unwrap().as_bool(), Some(true));
    }
}
