//! The Maelstrom JSON line protocol.
//!
//! Every message is one JSON document per line:
//!
//! ```json
//! {"src":"c1","dest":"n0","body":{"type":"broadcast","msg_id":7,"message":42}}
//! ```
//!
//! [`Message`]/[`Body`]/[`Payload`] model the envelope and the
//! type-tagged payloads of the workloads this subsystem speaks —
//! `init`, `topology`, `broadcast`, `read`, `add` (grow-only counter),
//! `generate` (unique ids) and their `*_ok` replies — plus two internal
//! payloads: `gossip`, carrying the hex-encoded
//! [`GossipFrame`](agb_core::GossipFrame) wire bytes of the underlying
//! broadcast protocol between nodes, and `tick`, the virtual-time pulse
//! that drives gossip-round timers.
//!
//! Everything is built on the dependency-free [`agb_types::json`] value
//! model (shared with `agb-perf`'s bench reports); there is no serde in
//! the workspace.

use std::fmt;

use agb_types::json::Json;

/// A protocol-level failure: malformed JSON, or a well-formed document
/// that does not match the Maelstrom message shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The line is not valid JSON.
    Json(String),
    /// The document does not have the expected shape; the payload names
    /// the offending field or type tag.
    Shape(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Json(e) => write!(f, "invalid JSON: {e}"),
            ProtoError::Shape(e) => write!(f, "bad message shape: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// One Maelstrom message: envelope plus body.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sender identifier (`"n3"`, `"c1"`, …).
    pub src: String,
    /// Destination identifier.
    pub dest: String,
    /// The body: ids plus type-tagged payload.
    pub body: Body,
}

/// A message body: optional `msg_id` / `in_reply_to` plus the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Body {
    /// Sender-unique message id, if any.
    pub msg_id: Option<u64>,
    /// The `msg_id` of the request this replies to, if any.
    pub in_reply_to: Option<u64>,
    /// The type-tagged payload.
    pub payload: Payload,
}

impl Body {
    /// A body carrying only a payload (no ids).
    pub fn bare(payload: Payload) -> Self {
        Body {
            msg_id: None,
            in_reply_to: None,
            payload,
        }
    }
}

/// Type-tagged Maelstrom payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Handshake: tells the node its id and the full roster.
    Init {
        /// This node's identifier.
        node_id: String,
        /// All node identifiers in the group.
        node_ids: Vec<String>,
    },
    /// Handshake acknowledgement.
    InitOk,
    /// Neighbourhood hints, one adjacency list per node (sorted by node
    /// for stable emission).
    Topology {
        /// `node -> neighbours`, sorted by node id.
        topology: Vec<(String, Vec<String>)>,
    },
    /// Topology acknowledgement.
    TopologyOk,
    /// Broadcast workload: disseminate `message` to every node.
    Broadcast {
        /// The value to disseminate.
        message: i64,
    },
    /// Broadcast acknowledgement.
    BroadcastOk,
    /// Read the node's current state (broadcast set or counter value).
    Read,
    /// Broadcast-workload read reply: all values seen so far.
    ReadOk {
        /// Every broadcast value this node has delivered.
        messages: Vec<i64>,
    },
    /// Counter-workload read reply: the current counter value.
    ReadOkValue {
        /// The grow-only counter's value at this node.
        value: i64,
    },
    /// Grow-only-counter workload: add `delta` to the counter.
    Add {
        /// The (non-negative) increment.
        delta: i64,
    },
    /// Add acknowledgement.
    AddOk,
    /// Unique-ids workload: mint a globally unique id.
    Generate,
    /// Unique-ids reply.
    GenerateOk {
        /// The minted id.
        id: String,
    },
    /// Internal node-to-node payload: one [`GossipFrame`] of the
    /// underlying broadcast protocol, as hex-encoded wire bytes
    /// (`agb_runtime::wire::encode_frame`).
    ///
    /// [`GossipFrame`]: agb_core::GossipFrame
    Gossip {
        /// The frame's wire bytes.
        frame: Vec<u8>,
    },
    /// Internal virtual-time pulse driving the node's gossip-round
    /// timer; `now` is milliseconds of virtual (harness) or elapsed
    /// wall-clock (binary) time.
    Tick {
        /// Current time in milliseconds.
        now: u64,
    },
    /// A Maelstrom error reply.
    Error {
        /// Maelstrom error code.
        code: u64,
        /// Human-readable description.
        text: String,
    },
}

impl Payload {
    /// The wire type tag of this payload.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Payload::Init { .. } => "init",
            Payload::InitOk => "init_ok",
            Payload::Topology { .. } => "topology",
            Payload::TopologyOk => "topology_ok",
            Payload::Broadcast { .. } => "broadcast",
            Payload::BroadcastOk => "broadcast_ok",
            Payload::Read => "read",
            Payload::ReadOk { .. } | Payload::ReadOkValue { .. } => "read_ok",
            Payload::Add { .. } => "add",
            Payload::AddOk => "add_ok",
            Payload::Generate => "generate",
            Payload::GenerateOk { .. } => "generate_ok",
            Payload::Gossip { .. } => "gossip",
            Payload::Tick { .. } => "tick",
            Payload::Error { .. } => "error",
        }
    }
}

impl Message {
    /// Serializes to the line-protocol representation (one compact JSON
    /// document, no newline).
    pub fn to_line(&self) -> String {
        self.to_json().compact()
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Json`] on malformed JSON, [`ProtoError::Shape`] on
    /// a document that is not a Maelstrom message.
    pub fn parse_line(line: &str) -> Result<Message, ProtoError> {
        let json = Json::parse(line.trim()).map_err(ProtoError::Json)?;
        Message::from_json(&json)
    }

    /// Converts to the JSON document model.
    pub fn to_json(&self) -> Json {
        let mut body = match &self.body.payload {
            Payload::Init { node_id, node_ids } => Json::obj([
                ("node_id", Json::Str(node_id.clone())),
                (
                    "node_ids",
                    Json::Arr(node_ids.iter().map(|s| Json::Str(s.clone())).collect()),
                ),
            ]),
            Payload::Topology { topology } => Json::obj([(
                "topology",
                Json::Obj(
                    topology
                        .iter()
                        .map(|(node, peers)| {
                            (
                                node.clone(),
                                Json::Arr(peers.iter().map(|p| Json::Str(p.clone())).collect()),
                            )
                        })
                        .collect(),
                ),
            )]),
            Payload::Broadcast { message } => Json::obj([("message", Json::from(*message))]),
            Payload::ReadOk { messages } => Json::obj([(
                "messages",
                Json::Arr(messages.iter().map(|&m| Json::from(m)).collect()),
            )]),
            Payload::ReadOkValue { value } => Json::obj([("value", Json::from(*value))]),
            Payload::Add { delta } => Json::obj([("delta", Json::from(*delta))]),
            Payload::GenerateOk { id } => Json::obj([("id", Json::Str(id.clone()))]),
            Payload::Gossip { frame } => Json::obj([("frame", Json::Str(hex_encode(frame)))]),
            Payload::Tick { now } => Json::obj([("now", Json::from(*now))]),
            Payload::Error { code, text } => Json::obj([
                ("code", Json::from(*code)),
                ("text", Json::Str(text.clone())),
            ]),
            Payload::InitOk
            | Payload::TopologyOk
            | Payload::BroadcastOk
            | Payload::Read
            | Payload::AddOk
            | Payload::Generate => Json::obj([]),
        };
        if let Json::Obj(map) = &mut body {
            map.insert(
                "type".to_string(),
                Json::Str(self.body.payload.type_tag().to_string()),
            );
            if let Some(id) = self.body.msg_id {
                map.insert("msg_id".to_string(), Json::from(id));
            }
            if let Some(re) = self.body.in_reply_to {
                map.insert("in_reply_to".to_string(), Json::from(re));
            }
        }
        Json::obj([
            ("src", Json::Str(self.src.clone())),
            ("dest", Json::Str(self.dest.clone())),
            ("body", body),
        ])
    }

    /// Reads a message back from the JSON document model.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Shape`] naming the missing/mistyped field.
    pub fn from_json(json: &Json) -> Result<Message, ProtoError> {
        let src = str_field(json, "src")?;
        let dest = str_field(json, "dest")?;
        let body = json
            .get("body")
            .ok_or_else(|| ProtoError::Shape("missing `body`".into()))?;
        let msg_id = opt_u64_field(body, "msg_id")?;
        let in_reply_to = opt_u64_field(body, "in_reply_to")?;
        let tag = str_field(body, "type")?;
        let payload = match tag.as_str() {
            "init" => Payload::Init {
                node_id: str_field(body, "node_id")?,
                node_ids: str_arr_field(body, "node_ids")?,
            },
            "init_ok" => Payload::InitOk,
            "topology" => {
                let topo = body
                    .get("topology")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| ProtoError::Shape("missing `topology` object".into()))?;
                let mut topology = Vec::with_capacity(topo.len());
                for (node, peers) in topo {
                    let peers = peers
                        .as_arr()
                        .ok_or_else(|| ProtoError::Shape(format!("topology[{node}] not a list")))?
                        .iter()
                        .map(|p| {
                            p.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| ProtoError::Shape("non-string neighbour".into()))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    topology.push((node.clone(), peers));
                }
                Payload::Topology { topology }
            }
            "topology_ok" => Payload::TopologyOk,
            "broadcast" => Payload::Broadcast {
                message: i64_field(body, "message")?,
            },
            "broadcast_ok" => Payload::BroadcastOk,
            "read" => Payload::Read,
            "read_ok" => {
                if let Some(messages) = body.get("messages") {
                    let messages = messages
                        .as_arr()
                        .ok_or_else(|| ProtoError::Shape("`messages` not a list".into()))?
                        .iter()
                        .map(|m| {
                            m.as_i64()
                                .ok_or_else(|| ProtoError::Shape("non-integer message".into()))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Payload::ReadOk { messages }
                } else {
                    Payload::ReadOkValue {
                        value: i64_field(body, "value")?,
                    }
                }
            }
            "add" => Payload::Add {
                delta: i64_field(body, "delta")?,
            },
            "add_ok" => Payload::AddOk,
            "generate" => Payload::Generate,
            "generate_ok" => Payload::GenerateOk {
                id: str_field(body, "id")?,
            },
            "gossip" => Payload::Gossip {
                frame: hex_decode(&str_field(body, "frame")?)
                    .ok_or_else(|| ProtoError::Shape("bad hex in `frame`".into()))?,
            },
            "tick" => Payload::Tick {
                now: body
                    .get("now")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ProtoError::Shape("missing integer `now`".into()))?,
            },
            "error" => Payload::Error {
                code: body
                    .get("code")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ProtoError::Shape("missing integer `code`".into()))?,
                text: str_field(body, "text")?,
            },
            other => return Err(ProtoError::Shape(format!("unknown type `{other}`"))),
        };
        Ok(Message {
            src,
            dest,
            body: Body {
                msg_id,
                in_reply_to,
                payload,
            },
        })
    }
}

fn str_field(json: &Json, key: &str) -> Result<String, ProtoError> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::Shape(format!("missing string `{key}`")))
}

fn i64_field(json: &Json, key: &str) -> Result<i64, ProtoError> {
    json.get(key)
        .and_then(Json::as_i64)
        .ok_or_else(|| ProtoError::Shape(format!("missing integer `{key}`")))
}

fn opt_u64_field(json: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtoError::Shape(format!("`{key}` not an integer"))),
    }
}

fn str_arr_field(json: &Json, key: &str) -> Result<Vec<String>, ProtoError> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError::Shape(format!("missing list `{key}`")))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| ProtoError::Shape(format!("non-string entry in `{key}`")))
        })
        .collect()
}

/// Lowercase hex encoding of raw frame bytes.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xF) as u32, 16).unwrap());
    }
    s
}

/// Inverse of [`hex_encode`]; `None` on odd length or non-hex digits.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    let b = s.as_bytes();
    if !b.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(payload: Payload) -> Message {
        Message {
            src: "c1".into(),
            dest: "n0".into(),
            body: Body {
                msg_id: Some(7),
                in_reply_to: None,
                payload,
            },
        }
    }

    #[test]
    fn init_round_trips_with_ids() {
        let m = msg(Payload::Init {
            node_id: "n0".into(),
            node_ids: vec!["n0".into(), "n1".into(), "n2".into()],
        });
        let line = m.to_line();
        assert!(line.contains(r#""type":"init""#), "{line}");
        assert_eq!(Message::parse_line(&line).unwrap(), m);
    }

    #[test]
    fn parses_a_maelstrom_style_broadcast_line() {
        let line =
            r#"{"src":"c1","dest":"n2","body":{"type":"broadcast","msg_id":3,"message":1000}}"#;
        let m = Message::parse_line(line).unwrap();
        assert_eq!(m.src, "c1");
        assert_eq!(m.dest, "n2");
        assert_eq!(m.body.msg_id, Some(3));
        assert_eq!(m.body.payload, Payload::Broadcast { message: 1000 });
    }

    #[test]
    fn read_ok_flavours_disambiguate_on_fields() {
        let broadcast = msg(Payload::ReadOk {
            messages: vec![3, -1, 9],
        });
        let counter = msg(Payload::ReadOkValue { value: 42 });
        assert_eq!(
            Message::parse_line(&broadcast.to_line()).unwrap(),
            broadcast
        );
        assert_eq!(Message::parse_line(&counter.to_line()).unwrap(), counter);
    }

    #[test]
    fn gossip_frames_ride_as_hex() {
        let m = msg(Payload::Gossip {
            frame: vec![0xA8, 0x00, 0xFF, 0x10],
        });
        let line = m.to_line();
        assert!(line.contains(r#""frame":"a800ff10""#), "{line}");
        assert_eq!(Message::parse_line(&line).unwrap(), m);
    }

    #[test]
    fn tick_and_error_round_trip() {
        let t = msg(Payload::Tick { now: 12_000 });
        assert_eq!(Message::parse_line(&t.to_line()).unwrap(), t);
        let e = msg(Payload::Error {
            code: 11,
            text: "temporarily \"unavailable\"\n".into(),
        });
        assert_eq!(Message::parse_line(&e.to_line()).unwrap(), e);
    }

    #[test]
    fn topology_round_trips_sorted() {
        let m = msg(Payload::Topology {
            topology: vec![
                ("n0".into(), vec!["n1".into()]),
                ("n1".into(), vec!["n0".into(), "n2".into()]),
                ("n2".into(), vec!["n1".into()]),
            ],
        });
        assert_eq!(Message::parse_line(&m.to_line()).unwrap(), m);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "not json",
            "{}",
            r#"{"src":"a","dest":"b"}"#,
            r#"{"src":"a","dest":"b","body":{"type":"warp"}}"#,
            r#"{"src":"a","dest":"b","body":{"type":"broadcast"}}"#,
            r#"{"src":"a","dest":"b","body":{"type":"gossip","frame":"xyz"}}"#,
            r#"{"src":"a","dest":"b","body":{"type":"broadcast","msg_id":1.5,"message":1}}"#,
        ] {
            assert!(Message::parse_line(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn hex_codec_round_trips() {
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&all)).unwrap(), all);
        assert_eq!(hex_decode("0"), None);
        assert_eq!(hex_decode("zz"), None);
        assert_eq!(hex_decode(""), Some(vec![]));
    }
}
