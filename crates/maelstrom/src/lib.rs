//! `agb-maelstrom` — the Maelstrom-style workload subsystem.
//!
//! The paper validates adaptive gossip only on its own broadcast
//! workload. This crate turns the reproduction into a system any
//! external checker can drive, by teaching it the Maelstrom line
//! protocol (one JSON document per line on stdin/stdout — the de-facto
//! standard harness interface for distributed-systems workloads) and
//! pitting lpbcast / adaptive / adaptive+recovery against standard
//! workloads under loss and partitions. Three layers:
//!
//! * [`protocol`] — [`Message`]/[`Body`]/[`Payload`]: `init`,
//!   `topology`, `broadcast`, `read`, `add` (grow-only counter),
//!   `generate` (unique ids) and their replies, plus the internal
//!   `gossip` payload (hex-encoded [`GossipFrame`] wire bytes) and the
//!   virtual-time `tick`. Built on the dependency-free
//!   [`agb_types::json`] model — no serde.
//! * [`node`] — [`MaelstromNode`]: a sans-IO adapter that bridges the
//!   line protocol onto any [`FrameProtocol`] (`init` → membership
//!   bootstrap, `topology` → optional partial-view hints, client RPCs →
//!   event injection, `tick` → gossip rounds). The same adapter runs
//!   under the in-process harness and — fed wall-clock ticks — as the
//!   real `maelstrom_node` binary under the Maelstrom jar.
//! * [`harness`] — [`run_workload`]/[`standard_suite`]: a deterministic
//!   in-process harness executing scripted workloads over the sharded
//!   simulation engine (seeded loss/latency/partition windows via
//!   [`NetworkConfig`]), checking broadcast validity + atomicity among
//!   correct nodes, unique-id global uniqueness and g-counter eventual
//!   convergence, and emitting a stable FNV digest plus a
//!   machine-readable JSON report (schema `agb-maelstrom/v1`). Wired
//!   into `repro maelstrom`.
//!
//! # Example
//!
//! ```
//! use agb_maelstrom::{HarnessConfig, WorkloadKind, run_workload};
//!
//! let mut config = HarnessConfig::new(WorkloadKind::Broadcast, 10, 42);
//! config.n_ops = 10;
//! let report = run_workload(&config);
//! assert!(report.passed(), "{:?}", report.properties);
//! assert_eq!(report.avg_fraction, 1.0); // clean network: fully atomic
//! ```
//!
//! [`FrameProtocol`]: agb_core::FrameProtocol
//! [`GossipFrame`]: agb_core::GossipFrame
//! [`NetworkConfig`]: agb_sim::NetworkConfig

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod node;
pub mod protocol;

pub use harness::{
    run_workload, standard_suite, standard_suite_threads, HarnessConfig, MaelstromSummary,
    Property, WorkloadReport,
};
pub use node::{Flavor, MaelstromNode, NodeConfig, WorkloadKind};
pub use protocol::{Body, Message, Payload, ProtoError};
