//! [`MaelstromNode`] — the adapter that puts a gossip broadcast protocol
//! behind the Maelstrom line protocol.
//!
//! The adapter is a *sans-IO state machine over text lines*: feed it one
//! parsed [`Message`] (or a raw line) and it returns the messages to
//! transmit. The `init` handshake bootstraps membership (the roster maps
//! onto dense [`NodeId`]s by sorted position), `topology` optionally
//! re-seeds a partial view from the neighbour hints, client RPCs
//! (`broadcast`, `add`, `generate`, `read`) bridge onto the wrapped
//! [`FrameProtocol`], and inter-node `gossip` payloads carry the
//! protocol's own [`GossipFrame`](agb_core::GossipFrame) wire bytes.
//! Timers are driven by the
//! virtual-time `tick` payload, so the same adapter runs under the
//! deterministic in-process harness and — fed wall-clock ticks — as a
//! real stdin/stdout binary under the Maelstrom jar.

use std::collections::BTreeSet;
use std::sync::Arc;

use agb_core::{
    AdaptationConfig, AdaptiveNode, FrameProtocol, GossipConfig, LpbcastNode, ProtocolEvent,
};
use agb_membership::{FullView, LocalitySampler, PartialView, PartialViewConfig};
use agb_recovery::{boxed_frame_protocol, RecoveryConfig};
use agb_runtime::wire::{decode_frame, encode_frame};
use agb_topology::{RoutingConfig, RoutingNode};
use agb_trace::{TraceConfig, TraceCounts, TraceProbe};
use agb_types::{DetRng, NodeId, Payload as AppPayload, SeedSequence, TimeMs};

use crate::protocol::{Body, Message, Payload, ProtoError};

/// Which protocol stack the node runs behind the line protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Baseline lpbcast, push-only.
    Lpbcast,
    /// The paper's adaptive protocol, push-only.
    Adaptive,
    /// Adaptive wrapped in the pull-based recovery layer.
    AdaptiveRecovery,
    /// GOSSIP3-style probabilistic forwarding (`agb-topology`); the
    /// `topology` message's neighbour hints become the overlay (degree +
    /// locality-biased sampling).
    Routing,
}

impl Flavor {
    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<Flavor> {
        match s {
            "lpbcast" => Some(Flavor::Lpbcast),
            "adaptive" => Some(Flavor::Adaptive),
            "adaptive-recovery" | "adaptive+recovery" => Some(Flavor::AdaptiveRecovery),
            "routing" | "topology-routing" => Some(Flavor::Routing),
            _ => None,
        }
    }

    /// Canonical flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            Flavor::Lpbcast => "lpbcast",
            Flavor::Adaptive => "adaptive",
            Flavor::AdaptiveRecovery => "adaptive-recovery",
            Flavor::Routing => "routing",
        }
    }

    fn recovery(self, config: &RecoveryConfig) -> Option<RecoveryConfig> {
        match self {
            Flavor::AdaptiveRecovery => Some(config.clone()),
            _ => None,
        }
    }
}

/// Which Maelstrom workload the node serves (decides the `read_ok`
/// shape; all three ride the same gossip dissemination underneath).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// `broadcast` / `read` → set of values.
    Broadcast,
    /// `add` / `read` → grow-only counter.
    GCounter,
    /// `generate` → globally unique ids.
    UniqueIds,
}

impl WorkloadKind {
    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<WorkloadKind> {
        match s {
            "broadcast" => Some(WorkloadKind::Broadcast),
            "g-counter" | "g_counter" | "counter" => Some(WorkloadKind::GCounter),
            "unique-ids" | "unique_ids" => Some(WorkloadKind::UniqueIds),
            _ => None,
        }
    }

    /// Canonical flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Broadcast => "broadcast",
            WorkloadKind::GCounter => "g-counter",
            WorkloadKind::UniqueIds => "unique-ids",
        }
    }
}

/// Everything a [`MaelstromNode`] needs before `init` arrives.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Protocol stack selection.
    pub flavor: Flavor,
    /// Which workload's `read_ok` shape to speak.
    pub workload: WorkloadKind,
    /// Seed for the node's deterministic RNG streams.
    pub seed: u64,
    /// Base gossip parameters.
    pub gossip: GossipConfig,
    /// Adaptation parameters (adaptive flavors).
    pub adaptation: AdaptationConfig,
    /// Recovery parameters ([`Flavor::AdaptiveRecovery`]).
    pub recovery: RecoveryConfig,
    /// `Some`: honour `topology` hints by re-seeding an lpbcast partial
    /// view from the neighbour list. `None`: keep the full view built at
    /// `init` (topology is acknowledged and recorded only —
    /// [`Flavor::Routing`] always honours the hints).
    pub partial_view: Option<PartialViewConfig>,
    /// Probabilistic-forwarding parameters ([`Flavor::Routing`]).
    pub routing: RoutingConfig,
    /// Uniform escape-hatch probability of the locality bias applied to
    /// [`Flavor::Routing`] once `topology` hints arrive.
    pub locality_escape: f64,
    /// Region label per dense node id (same roster order as `init`).
    /// When set, each node's trace probe counts gossip frames crossing a
    /// region boundary (`cross_partition_msgs`).
    pub regions: Option<Vec<u32>>,
}

impl NodeConfig {
    /// Defaults: full view, paper-default gossip/adaptation/recovery
    /// parameters.
    pub fn new(flavor: Flavor, workload: WorkloadKind, seed: u64) -> Self {
        NodeConfig {
            flavor,
            workload,
            seed,
            gossip: GossipConfig::default(),
            adaptation: AdaptationConfig::default(),
            recovery: RecoveryConfig::default(),
            partial_view: None,
            routing: RoutingConfig::default(),
            locality_escape: 0.1,
            regions: None,
        }
    }
}

/// Application payload tags (first byte of every event payload).
const TAG_BROADCAST: u8 = 0;
const TAG_ADD: u8 = 1;

fn app_payload(tag: u8, value: i64) -> AppPayload {
    let mut bytes = Vec::with_capacity(9);
    bytes.push(tag);
    bytes.extend_from_slice(&value.to_le_bytes());
    AppPayload::from(bytes)
}

fn decode_app(payload: &[u8]) -> Option<(u8, i64)> {
    if payload.len() != 9 {
        return None;
    }
    let mut v = [0u8; 8];
    v.copy_from_slice(&payload[1..]);
    Some((payload[0], i64::from_le_bytes(v)))
}

/// Sort key giving Maelstrom ids their numeric order (`n2` before
/// `n10`): length first, then lexicographic.
fn roster_key(id: &str) -> (usize, &str) {
    (id.len(), id)
}

/// The initialized part of the node.
struct Running {
    me: String,
    my_id: NodeId,
    /// Sorted roster; position = dense [`NodeId`].
    roster: Vec<String>,
    now: TimeMs,
    protocol: Box<dyn FrameProtocol + Send>,
    /// Maps protocol events and frames onto the trace taxonomy; the
    /// records are tallied into [`MaelstromNode::trace_counts`] and
    /// discarded (counts only — no ring buffer behind a line protocol).
    probe: TraceProbe,
    /// Broadcast-workload deliveries (sorted, deduplicated).
    seen: BTreeSet<i64>,
    /// Grow-only counter: sum of all delivered `add` deltas.
    counter: i64,
    /// Unique-id mint counter.
    generated: u64,
    /// Last received topology hints, sorted by node.
    topology: Vec<(String, Vec<String>)>,
}

impl Running {
    fn node_of(&self, id: &str) -> Option<NodeId> {
        self.roster
            .iter()
            .position(|r| r == id)
            .map(|i| NodeId::new(i as u32))
    }
}

/// A gossip broadcast node speaking the Maelstrom line protocol.
///
/// See the [module docs](self) for the bridging rules.
pub struct MaelstromNode {
    config: NodeConfig,
    next_msg_id: u64,
    state: Option<Running>,
    /// Lines that failed to parse or had an unusable shape.
    proto_errors: u64,
    /// Tallied trace taxonomy (publishes, relays, delivers, drops, …).
    trace: TraceCounts,
}

impl MaelstromNode {
    /// A node awaiting its `init`.
    pub fn new(config: NodeConfig) -> Self {
        MaelstromNode {
            config,
            next_msg_id: 0,
            state: None,
            proto_errors: 0,
            trace: TraceCounts::default(),
        }
    }

    /// Whether `init` has been processed.
    pub fn is_initialized(&self) -> bool {
        self.state.is_some()
    }

    /// This node's dense id, once initialized.
    pub fn node_index(&self) -> Option<NodeId> {
        self.state.as_ref().map(|r| r.my_id)
    }

    /// Broadcast values delivered so far (ascending).
    pub fn seen(&self) -> Vec<i64> {
        self.state
            .as_ref()
            .map(|r| r.seen.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Current grow-only counter value.
    pub fn counter_value(&self) -> i64 {
        self.state.as_ref().map_or(0, |r| r.counter)
    }

    /// Lines rejected by the protocol layer so far.
    pub fn proto_errors(&self) -> u64 {
        self.proto_errors
    }

    /// Trace-taxonomy tally of this node's protocol activity so far
    /// (publishes, relays, delivers, duplicates, drops, recovery round
    /// trips). Aggregated per workload by the harness checker.
    pub fn trace_counts(&self) -> &TraceCounts {
        &self.trace
    }

    /// Handles one raw protocol line; returns the lines to transmit.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtoError`] for unusable input (the caller decides
    /// whether to log or drop); the error is also counted in
    /// [`proto_errors`](Self::proto_errors).
    pub fn handle_line(&mut self, line: &str) -> Result<Vec<String>, ProtoError> {
        match Message::parse_line(line) {
            Ok(msg) => Ok(self.handle(msg).iter().map(Message::to_line).collect()),
            Err(e) => {
                self.proto_errors += 1;
                Err(e)
            }
        }
    }

    /// Synthesizes a virtual-time tick (the line-protocol `tick`
    /// payload) and handles it — the binary's wall-clock ticker and
    /// convenience for tests.
    pub fn tick(&mut self, now_ms: u64) -> Vec<Message> {
        let dest = self
            .state
            .as_ref()
            .map_or_else(|| "?".to_string(), |r| r.me.clone());
        self.handle(Message {
            src: "ticker".into(),
            dest,
            body: Body::bare(Payload::Tick { now: now_ms }),
        })
    }

    /// Handles one parsed message; returns the messages to transmit.
    pub fn handle(&mut self, msg: Message) -> Vec<Message> {
        let Message { src, body, .. } = msg;
        let Body {
            msg_id, payload, ..
        } = body;
        match payload {
            Payload::Init { node_id, node_ids } => {
                let mut roster = node_ids;
                roster.sort_by(|a, b| roster_key(a).cmp(&roster_key(b)));
                roster.dedup();
                let Some(my_id) = roster.iter().position(|r| *r == node_id) else {
                    // A node must be in its own roster; assuming a dense
                    // id here would alias another node's identity.
                    self.proto_errors += 1;
                    self.next_msg_id += 1;
                    return vec![Message {
                        src: node_id,
                        dest: src,
                        body: Body {
                            msg_id: Some(self.next_msg_id),
                            in_reply_to: msg_id,
                            payload: Payload::Error {
                                code: 12, // malformed-request
                                text: "node_id missing from node_ids".into(),
                            },
                        },
                    }];
                };
                let my_id = NodeId::new(my_id as u32);
                let protocol = make_protocol(&self.config, my_id, roster.len(), None);
                let mut probe = TraceProbe::new(TraceConfig::enabled(), my_id);
                if let Some(regions) = &self.config.regions {
                    probe.set_regions(Arc::from(regions.clone()));
                }
                self.state = Some(Running {
                    me: node_id,
                    my_id,
                    roster,
                    now: TimeMs::ZERO,
                    protocol,
                    probe,
                    seen: BTreeSet::new(),
                    counter: 0,
                    generated: 0,
                    topology: Vec::new(),
                });
                vec![self.reply(&src, msg_id, Payload::InitOk)]
            }
            Payload::Topology { topology } => {
                let contacts = self.apply_topology(topology);
                let honours_hints =
                    self.config.partial_view.is_some() || self.config.flavor == Flavor::Routing;
                if let (true, Some(contacts)) = (honours_hints, contacts) {
                    if let Some(r) = self.state.as_mut() {
                        // Re-seeding replaces the protocol wholesale, so
                        // it is only safe while the node is still fresh:
                        // rebuilding after traffic would drop buffered
                        // events and the delivery-dedup history (acked
                        // offers lost, later copies double-delivered).
                        let fresh = r.protocol.buffer_len() == 0
                            && r.protocol.pending_len() == 0
                            && r.seen.is_empty()
                            && r.counter == 0;
                        if fresh {
                            r.protocol = make_protocol(
                                &self.config,
                                r.my_id,
                                r.roster.len(),
                                Some(contacts),
                            );
                        }
                    }
                }
                vec![self.reply(&src, msg_id, Payload::TopologyOk)]
            }
            Payload::Broadcast { message } => {
                let mut out = Vec::new();
                if let Some(r) = self.state.as_mut() {
                    let now = r.now;
                    r.protocol.offer(app_payload(TAG_BROADCAST, message), now);
                    Self::pump(r, &mut self.trace, None);
                    out.push(self.reply(&src, msg_id, Payload::BroadcastOk));
                }
                out
            }
            Payload::Add { delta } => {
                let mut out = Vec::new();
                if let Some(r) = self.state.as_mut() {
                    let now = r.now;
                    r.protocol.offer(app_payload(TAG_ADD, delta), now);
                    Self::pump(r, &mut self.trace, None);
                    out.push(self.reply(&src, msg_id, Payload::AddOk));
                }
                out
            }
            Payload::Read => {
                let Some(r) = self.state.as_ref() else {
                    return Vec::new();
                };
                let payload = match self.config.workload {
                    WorkloadKind::GCounter => Payload::ReadOkValue { value: r.counter },
                    _ => Payload::ReadOk {
                        messages: r.seen.iter().copied().collect(),
                    },
                };
                vec![self.reply(&src, msg_id, payload)]
            }
            Payload::Generate => {
                let Some(r) = self.state.as_mut() else {
                    return Vec::new();
                };
                r.generated += 1;
                let id = format!("{}-{}", r.me, r.generated);
                vec![self.reply(&src, msg_id, Payload::GenerateOk { id })]
            }
            Payload::Gossip { frame } => {
                let Some(r) = self.state.as_mut() else {
                    return Vec::new();
                };
                let Ok(frame) = decode_frame(&frame) else {
                    self.proto_errors += 1;
                    return Vec::new();
                };
                let Some(from) = r.node_of(&src) else {
                    self.proto_errors += 1;
                    return Vec::new();
                };
                let now = r.now;
                r.probe.on_message(&frame);
                let replies = r.protocol.on_receive(from, frame, now);
                Self::pump(r, &mut self.trace, Some(from));
                self.frames_out(replies)
            }
            Payload::Tick { now } => {
                let Some(r) = self.state.as_mut() else {
                    return Vec::new();
                };
                r.now = r.now.max(TimeMs::from_millis(now));
                let now = r.now;
                let out = r.protocol.on_round(now);
                r.probe.on_round(
                    now,
                    &out,
                    r.protocol.buffer_len(),
                    r.protocol.buffer_capacity(),
                );
                Self::pump(r, &mut self.trace, None);
                self.frames_out(out)
            }
            // Acks and errors terminate at this node.
            Payload::InitOk
            | Payload::TopologyOk
            | Payload::BroadcastOk
            | Payload::ReadOk { .. }
            | Payload::ReadOkValue { .. }
            | Payload::AddOk
            | Payload::GenerateOk { .. }
            | Payload::Error { .. } => Vec::new(),
        }
    }

    /// Stores topology hints; returns this node's neighbours as dense
    /// ids when present.
    fn apply_topology(&mut self, mut topology: Vec<(String, Vec<String>)>) -> Option<Vec<NodeId>> {
        let r = self.state.as_mut()?;
        topology.sort_by(|a, b| roster_key(&a.0).cmp(&roster_key(&b.0)));
        r.topology = topology;
        let (_, neighbours) = r.topology.iter().find(|(node, _)| *node == r.me)?;
        let contacts: Vec<NodeId> = neighbours.iter().filter_map(|n| r.node_of(n)).collect();
        (!contacts.is_empty()).then_some(contacts)
    }

    /// Drains protocol events into application state and the trace
    /// tally. `from` marks the events as produced by a datagram from
    /// that peer, enabling the probe's duplicate detection.
    fn pump(r: &mut Running, counts: &mut TraceCounts, from: Option<NodeId>) {
        let events = r.protocol.drain_events();
        r.probe.on_events(&events);
        if let Some(from) = from {
            r.probe.on_received(r.now, from, &events);
        }
        for record in r.probe.drain_pending() {
            counts.observe(&record.kind);
        }
        for event in events {
            if let ProtocolEvent::Delivered { event, .. } = event {
                match decode_app(event.payload()) {
                    Some((TAG_BROADCAST, value)) => {
                        r.seen.insert(value);
                    }
                    Some((TAG_ADD, delta)) => {
                        r.counter += delta;
                    }
                    _ => {}
                }
            }
        }
    }

    fn reply(&mut self, to: &str, in_reply_to: Option<u64>, payload: Payload) -> Message {
        self.next_msg_id += 1;
        let me = self
            .state
            .as_ref()
            .map_or_else(String::new, |r| r.me.clone());
        Message {
            src: me,
            dest: to.to_string(),
            body: Body {
                msg_id: Some(self.next_msg_id),
                in_reply_to,
                payload,
            },
        }
    }

    /// Wraps outgoing protocol frames as `gossip` line messages.
    fn frames_out(&self, frames: Vec<(NodeId, agb_core::GossipFrame)>) -> Vec<Message> {
        let Some(r) = self.state.as_ref() else {
            return Vec::new();
        };
        let me = r.me.clone();
        frames
            .into_iter()
            .filter_map(|(to, frame)| {
                let dest = r.roster.get(to.index())?.clone();
                Some(Message {
                    src: me.clone(),
                    dest,
                    body: Body::bare(Payload::Gossip {
                        frame: encode_frame(&frame).to_vec(),
                    }),
                })
            })
            .collect()
    }
}

/// Builds the protocol state machine behind one Maelstrom node.
///
/// `hints` carries this node's neighbour contacts when a `topology`
/// message re-seeds the protocol; `None` builds the `init`-time view
/// (full, or bootstrap-sampled partial when [`NodeConfig::partial_view`]
/// is set). For [`Flavor::Routing`] the hints double as the overlay:
/// they set the rescue-rule degree and feed the locality-biased sampler.
fn make_protocol(
    config: &NodeConfig,
    id: NodeId,
    n: usize,
    hints: Option<Vec<NodeId>>,
) -> Box<dyn FrameProtocol + Send> {
    let seeds = SeedSequence::new(config.seed);
    let stream = u64::from(id.as_u32());
    let proto_rng: DetRng = seeds.rng_for("maelstrom-protocol", stream);
    let recovery = config.flavor.recovery(&config.recovery);
    let partial = config.partial_view.map(|pv| {
        let contacts = hints.clone().unwrap_or_else(|| {
            // Bootstrap a partial view from a deterministic contact
            // sample, as the harness join service would.
            use agb_membership::PeerSampler;
            let mut boot: DetRng = seeds.rng_for("maelstrom-bootstrap", stream);
            let full = FullView::new(n);
            full.sample(&mut boot, pv.max_view.min(8), id)
        });
        (pv, contacts)
    });
    match (config.flavor, partial) {
        (Flavor::Lpbcast, None) => boxed_frame_protocol(
            LpbcastNode::new(id, config.gossip.clone(), FullView::new(n), proto_rng),
            recovery,
        ),
        (Flavor::Lpbcast, Some((pv, contacts))) => {
            let mut boot: DetRng = seeds.rng_for("maelstrom-view", stream);
            let view = PartialView::with_initial_peers(id, pv, contacts, &mut boot);
            boxed_frame_protocol(
                LpbcastNode::new(id, config.gossip.clone(), view, proto_rng),
                recovery,
            )
        }
        (Flavor::Adaptive | Flavor::AdaptiveRecovery, None) => boxed_frame_protocol(
            AdaptiveNode::new(
                id,
                config.gossip.clone(),
                config.adaptation.clone(),
                FullView::new(n),
                proto_rng,
            ),
            recovery,
        ),
        (Flavor::Adaptive | Flavor::AdaptiveRecovery, Some((pv, contacts))) => {
            let mut boot: DetRng = seeds.rng_for("maelstrom-view", stream);
            let view = PartialView::with_initial_peers(id, pv, contacts, &mut boot);
            boxed_frame_protocol(
                AdaptiveNode::new(
                    id,
                    config.gossip.clone(),
                    config.adaptation.clone(),
                    view,
                    proto_rng,
                ),
                recovery,
            )
        }
        (Flavor::Routing, partial) => {
            // Before hints arrive the overlay is the whole group (degree
            // n-1, pure probabilistic relay); the hints shrink it. An
            // empty neighbour list makes the LocalitySampler delegate to
            // plain uniform draws.
            let neighbours = hints.unwrap_or_default();
            let degree = if neighbours.is_empty() {
                n.saturating_sub(1)
            } else {
                neighbours.len()
            };
            let escape = config.locality_escape;
            match partial {
                Some((pv, contacts)) => {
                    let mut boot: DetRng = seeds.rng_for("maelstrom-view", stream);
                    let view = LocalitySampler::new(
                        PartialView::with_initial_peers(id, pv, contacts, &mut boot),
                        neighbours,
                        escape,
                    );
                    boxed_frame_protocol(
                        RoutingNode::new(id, config.routing, view, degree, proto_rng),
                        recovery,
                    )
                }
                None => {
                    let view = LocalitySampler::new(FullView::new(n), neighbours, escape);
                    boxed_frame_protocol(
                        RoutingNode::new(id, config.routing, view, degree, proto_rng),
                        recovery,
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init_line(me: &str, n: usize) -> String {
        let ids: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
        Message {
            src: "c0".into(),
            dest: me.into(),
            body: Body {
                msg_id: Some(1),
                in_reply_to: None,
                payload: Payload::Init {
                    node_id: me.into(),
                    node_ids: ids,
                },
            },
        }
        .to_line()
    }

    fn client(me: &str, msg_id: u64, payload: Payload) -> Message {
        Message {
            src: "c0".into(),
            dest: me.into(),
            body: Body {
                msg_id: Some(msg_id),
                in_reply_to: None,
                payload,
            },
        }
    }

    fn node(flavor: Flavor, workload: WorkloadKind, me: &str, n: usize) -> MaelstromNode {
        let mut node = MaelstromNode::new(NodeConfig::new(flavor, workload, 7));
        let out = node.handle_line(&init_line(me, n)).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("init_ok"), "{}", out[0]);
        node
    }

    #[test]
    fn init_assigns_dense_ids_by_numeric_order() {
        // 12 nodes: "n10" must sort after "n9", not between "n1" and "n2".
        let n = node(Flavor::Lpbcast, WorkloadKind::Broadcast, "n10", 12);
        assert_eq!(n.node_index(), Some(NodeId::new(10)));
    }

    #[test]
    fn init_outside_the_roster_is_rejected() {
        // A node_id absent from node_ids must not alias dense id 0.
        let mut n =
            MaelstromNode::new(NodeConfig::new(Flavor::Lpbcast, WorkloadKind::Broadcast, 7));
        let out = n.handle(client(
            "n9",
            1,
            Payload::Init {
                node_id: "n9".into(),
                node_ids: vec!["n0".into(), "n1".into()],
            },
        ));
        assert!(matches!(
            out[0].body.payload,
            Payload::Error { code: 12, .. }
        ));
        assert!(!n.is_initialized());
        assert_eq!(n.proto_errors(), 1);
    }

    #[test]
    fn broadcast_self_delivers_and_reads_back() {
        let mut n = node(Flavor::Adaptive, WorkloadKind::Broadcast, "n0", 3);
        let out = n.handle(client("n0", 2, Payload::Broadcast { message: 77 }));
        assert!(matches!(out[0].body.payload, Payload::BroadcastOk));
        assert_eq!(out[0].body.in_reply_to, Some(2));
        let out = n.handle(client("n0", 3, Payload::Read));
        assert_eq!(out[0].body.payload, Payload::ReadOk { messages: vec![77] });
    }

    #[test]
    fn ticks_emit_gossip_that_a_peer_applies() {
        let mut a = node(Flavor::Adaptive, WorkloadKind::Broadcast, "n0", 2);
        let mut b = node(Flavor::Adaptive, WorkloadKind::Broadcast, "n1", 2);
        a.handle(client("n0", 2, Payload::Broadcast { message: 5 }));
        // First round at t=1s: n0 gossips its buffered event to n1.
        let out = a.tick(1_000);
        assert!(!out.is_empty(), "round must emit gossip");
        b.tick(1_000);
        for m in out {
            assert_eq!(m.dest, "n1");
            b.handle(m);
        }
        assert_eq!(b.seen(), vec![5]);
    }

    #[test]
    fn g_counter_sums_deltas_across_gossip() {
        let mut a = node(Flavor::Adaptive, WorkloadKind::GCounter, "n0", 2);
        let mut b = node(Flavor::Adaptive, WorkloadKind::GCounter, "n1", 2);
        a.handle(client("n0", 2, Payload::Add { delta: 3 }));
        b.handle(client("n1", 2, Payload::Add { delta: 4 }));
        for t in 1..=3u64 {
            for m in a.tick(t * 1_000) {
                b.handle(m);
            }
            for m in b.tick(t * 1_000) {
                a.handle(m);
            }
        }
        assert_eq!(a.counter_value(), 7);
        assert_eq!(b.counter_value(), 7);
        let out = a.handle(client("n0", 3, Payload::Read));
        assert_eq!(out[0].body.payload, Payload::ReadOkValue { value: 7 });
    }

    #[test]
    fn generate_mints_distinct_ids() {
        let mut n = node(Flavor::Lpbcast, WorkloadKind::UniqueIds, "n1", 3);
        let mut ids = std::collections::BTreeSet::new();
        for i in 0..10 {
            let out = n.handle(client("n1", 2 + i, Payload::Generate));
            let Payload::GenerateOk { id } = &out[0].body.payload else {
                panic!("expected generate_ok");
            };
            assert!(id.starts_with("n1-"));
            assert!(ids.insert(id.clone()), "duplicate {id}");
        }
    }

    #[test]
    fn topology_is_acknowledged_and_recorded() {
        let mut n = node(Flavor::Adaptive, WorkloadKind::Broadcast, "n0", 3);
        let out = n.handle(client(
            "n0",
            2,
            Payload::Topology {
                topology: vec![
                    ("n0".into(), vec!["n1".into()]),
                    ("n1".into(), vec!["n0".into(), "n2".into()]),
                    ("n2".into(), vec!["n1".into()]),
                ],
            },
        ));
        assert!(matches!(out[0].body.payload, Payload::TopologyOk));
    }

    #[test]
    fn messages_before_init_are_dropped() {
        let mut n =
            MaelstromNode::new(NodeConfig::new(Flavor::Lpbcast, WorkloadKind::Broadcast, 1));
        assert!(n
            .handle(client("n0", 1, Payload::Broadcast { message: 1 }))
            .is_empty());
        assert!(n.tick(1_000).is_empty());
    }

    #[test]
    fn routing_flavor_disseminates_over_topology_hints() {
        let mut a = node(Flavor::Routing, WorkloadKind::Broadcast, "n0", 2);
        let mut b = node(Flavor::Routing, WorkloadKind::Broadcast, "n1", 2);
        let hints = Payload::Topology {
            topology: vec![
                ("n0".into(), vec!["n1".into()]),
                ("n1".into(), vec!["n0".into()]),
            ],
        };
        a.handle(client("n0", 2, hints.clone()));
        b.handle(client("n1", 2, hints));
        a.handle(client("n0", 3, Payload::Broadcast { message: 9 }));
        let out = a.tick(1_000);
        assert!(!out.is_empty(), "routing round must emit gossip");
        b.tick(1_000);
        for m in out {
            assert_eq!(m.dest, "n1");
            b.handle(m);
        }
        assert_eq!(b.seen(), vec![9]);
    }

    #[test]
    fn routing_rebuild_keeps_the_fresh_guard() {
        // Hints arriving after traffic must not rebuild the protocol —
        // the delivered value would otherwise be double-deliverable.
        let mut n = node(Flavor::Routing, WorkloadKind::Broadcast, "n0", 2);
        n.handle(client("n0", 2, Payload::Broadcast { message: 4 }));
        assert_eq!(n.seen(), vec![4]);
        let out = n.handle(client(
            "n0",
            3,
            Payload::Topology {
                topology: vec![
                    ("n0".into(), vec!["n1".into()]),
                    ("n1".into(), vec!["n0".into()]),
                ],
            },
        ));
        assert!(matches!(out[0].body.payload, Payload::TopologyOk));
        assert_eq!(n.seen(), vec![4], "state must survive late hints");
    }

    #[test]
    fn region_map_tallies_cross_partition_frames() {
        let mut config = NodeConfig::new(Flavor::Lpbcast, WorkloadKind::Broadcast, 7);
        config.regions = Some(vec![0, 1]);
        let mut a = MaelstromNode::new(config);
        a.handle_line(&init_line("n0", 2)).unwrap();
        a.handle(client("n0", 2, Payload::Broadcast { message: 1 }));
        let out = a.tick(1_000);
        assert!(!out.is_empty());
        assert!(
            a.trace_counts().cross_partition_msgs > 0,
            "n0 -> n1 crosses the region boundary"
        );
    }

    #[test]
    fn bad_gossip_frame_counts_a_proto_error() {
        let mut n = node(Flavor::Adaptive, WorkloadKind::Broadcast, "n0", 2);
        n.handle(Message {
            src: "n1".into(),
            dest: "n0".into(),
            body: Body::bare(Payload::Gossip {
                frame: vec![0xDE, 0xAD],
            }),
        });
        assert_eq!(n.proto_errors(), 1);
    }
}
