//! Topology-aware probabilistic gossip routing.
//!
//! The flavors in `agb-core` flood: every node reships its whole event
//! buffer to `F` uniformly random peers every round, for `age_cap` rounds.
//! That is robust but expensive, and it ignores overlay structure entirely.
//! This crate adds the opposite point in the design space, adapted from
//! "Gossip-Based Ad Hoc Routing" (Haas, Halpern, Li): a [`RoutingNode`]
//! relays each event a bounded number of times, and only *probabilistically*
//! —
//!
//! * a rumor younger than [`sure_hops`](RoutingConfig::sure_hops) hops is
//!   always relayed (GOSSIP3's warm-up zone: kill a rumor early and it dies
//!   group-wide);
//! * a node with fewer than
//!   [`rescue_degree`](RoutingConfig::rescue_degree) overlay neighbours
//!   always relays (the low-degree rescue rule: sparse corners cannot
//!   afford to drop copies);
//! * everyone else relays with probability
//!   [`relay_probability`](RoutingConfig::relay_probability).
//!
//! The node is a plain [`GossipProtocol`](agb_core::GossipProtocol), so it
//! composes with everything the other flavors do: locality-biased samplers
//! from `agb-membership`, the pull-based recovery wrapper from
//! `agb-recovery` (through the blanket `FrameProtocol` impl), the
//! simulator, the trace probe, and the Maelstrom adapter.
//!
//! # Example
//!
//! ```
//! use agb_core::GossipProtocol;
//! use agb_membership::{FullView, LocalitySampler};
//! use agb_topology::{RoutingConfig, RoutingNode};
//! use agb_types::topology::Topology;
//! use agb_types::{DetRng, NodeId, Payload, TimeMs};
//! use rand::SeedableRng;
//!
//! let grid = Topology::grid(4, 4);
//! let me = NodeId::new(5);
//! let sampler = LocalitySampler::new(FullView::new(16), grid.neighbors(me).to_vec(), 0.1);
//! let mut node = RoutingNode::new(
//!     me,
//!     RoutingConfig::default(),
//!     sampler,
//!     grid.degree(me),
//!     DetRng::seed_from_u64(1),
//! );
//! node.offer(Payload::from_static(b"hello"), TimeMs::ZERO);
//! let out = node.on_round(TimeMs::from_secs(1));
//! assert!(!out.is_empty()); // the origin always relays its own rumor
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod routing;

pub use config::RoutingConfig;
pub use routing::RoutingNode;
