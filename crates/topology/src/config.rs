//! Tunables for the probabilistic forwarding flavor.

use agb_types::{ConfigError, ConfigResult, DurationMs};

/// Parameters of GOSSIP3-style probabilistic forwarding.
///
/// The defaults are the conservative corner of the Haas/Halpern/Li sweep
/// (`p = 0.65`, `k = 2`, four-neighbour rescue), which their evaluation
/// shows reaches practically all nodes while cutting messages sharply
/// versus flooding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingConfig {
    /// Relay probability `p` for rumors past the warm-up zone.
    pub relay_probability: f64,
    /// Rumors younger than this many hops are always relayed (`k`).
    pub sure_hops: u32,
    /// Nodes with fewer overlay neighbours than this always relay (the
    /// low-degree rescue rule; the paper uses 4).
    pub rescue_degree: usize,
    /// Targets sampled per relay round (`F`).
    pub fanout: usize,
    /// Rounds an accepted rumor stays in the relay buffer, i.e. how many
    /// times it is re-emitted before retiring.
    pub relay_rounds: u32,
    /// Relay-buffer capacity; overflow evicts the oldest rumors first.
    pub max_relay: usize,
    /// Size of the duplicate-suppression id window.
    pub max_event_ids: usize,
    /// Gossip round period `T`.
    pub gossip_period: DurationMs,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        RoutingConfig {
            relay_probability: 0.65,
            sure_hops: 2,
            rescue_degree: 4,
            fanout: 4,
            relay_rounds: 2,
            max_relay: 90,
            max_event_ids: 50_000,
            gossip_period: DurationMs::from_secs(1),
        }
    }
}

impl RoutingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> ConfigResult<()> {
        if !(0.0..=1.0).contains(&self.relay_probability) {
            return Err(ConfigError::new(
                "relay_probability",
                "must be within [0, 1]",
            ));
        }
        if self.fanout == 0 {
            return Err(ConfigError::new("fanout", "must be at least 1"));
        }
        if self.relay_rounds == 0 {
            return Err(ConfigError::new("relay_rounds", "must be at least 1"));
        }
        if self.max_relay == 0 {
            return Err(ConfigError::new("max_relay", "must be at least 1"));
        }
        if self.max_event_ids == 0 {
            return Err(ConfigError::new("max_event_ids", "must be at least 1"));
        }
        if self.gossip_period.as_millis() == 0 {
            return Err(ConfigError::new("gossip_period", "must be non-zero"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(RoutingConfig::default().validate().is_ok());
    }

    type Mutation = fn(&mut RoutingConfig);

    #[test]
    fn each_field_is_checked() {
        let cases: Vec<(Mutation, &str)> = vec![
            (|c| c.relay_probability = 1.5, "relay_probability"),
            (|c| c.relay_probability = -0.1, "relay_probability"),
            (|c| c.fanout = 0, "fanout"),
            (|c| c.relay_rounds = 0, "relay_rounds"),
            (|c| c.max_relay = 0, "max_relay"),
            (|c| c.max_event_ids = 0, "max_event_ids"),
            (
                |c| c.gossip_period = DurationMs::from_millis(0),
                "gossip_period",
            ),
        ];
        for (mutate, field) in cases {
            let mut c = RoutingConfig::default();
            mutate(&mut c);
            let err = c.validate().expect_err(field);
            assert_eq!(err.field(), field);
        }
    }
}
