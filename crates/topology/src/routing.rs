//! The probabilistic-forwarding state machine.

use std::collections::VecDeque;

use agb_core::{
    Event, EventIdBuffer, EventList, GossipMessage, GossipProtocol, OfferOutcome, ProtocolEvent,
    PurgeReason,
};
use agb_membership::GossipMembership;
use agb_types::{bernoulli, DetRng, DurationMs, EventId, NodeId, Payload, TimeMs};

use crate::config::RoutingConfig;

/// A rumor accepted for relay, with its remaining emission budget.
#[derive(Debug, Clone)]
struct RelaySlot {
    event: Event,
    remaining: u32,
}

/// GOSSIP3-style probabilistic forwarding as a gossip protocol node.
///
/// Unlike [`LpbcastNode`](agb_core::LpbcastNode), which reships its whole
/// buffer every round until the age cap, a `RoutingNode` makes a one-time
/// relay decision per rumor — always for young rumors and low-degree
/// nodes, a coin flip otherwise — and re-emits accepted rumors for only
/// [`relay_rounds`](RoutingConfig::relay_rounds) rounds. Every received
/// rumor is still *delivered* exactly once (duplicates are suppressed by a
/// bounded id window); the gamble is only about forwarding.
///
/// Generic over the membership service `S`, which is where topology bias
/// plugs in: wrap the view in a
/// [`LocalitySampler`](agb_membership::LocalitySampler) and relays go to
/// overlay neighbours instead of uniformly random peers.
#[derive(Debug)]
pub struct RoutingNode<S> {
    id: NodeId,
    config: RoutingConfig,
    membership: S,
    /// Overlay degree, fixed at construction — the rescue-rule input.
    degree: usize,
    rng: DetRng,
    relay: VecDeque<RelaySlot>,
    ids: EventIdBuffer,
    next_seq: u64,
    round: u64,
    out_events: Vec<ProtocolEvent>,
}

impl<S: GossipMembership> RoutingNode<S> {
    /// Creates a node with `degree` overlay neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation; construct configs through
    /// [`RoutingConfig::validate`] first when handling untrusted input.
    pub fn new(
        id: NodeId,
        config: RoutingConfig,
        membership: S,
        degree: usize,
        rng: DetRng,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid RoutingConfig: {e}"));
        RoutingNode {
            id,
            ids: EventIdBuffer::new(config.max_event_ids),
            config,
            membership,
            degree,
            rng,
            relay: VecDeque::new(),
            next_seq: 0,
            round: 0,
            out_events: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// The overlay degree used by the rescue rule.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Updates the overlay degree (the Maelstrom adapter re-learns
    /// neighbourhoods from topology messages).
    pub fn set_degree(&mut self, degree: usize) {
        self.degree = degree;
    }

    /// Gossip rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The membership service.
    pub fn membership(&self) -> &S {
        &self.membership
    }

    /// Mutable membership access.
    pub fn membership_mut(&mut self) -> &mut S {
        &mut self.membership
    }

    /// The forwarding gamble for a rumor received at `age` hops: `true` in
    /// the warm-up zone (`age < sure_hops`), `true` on low-degree nodes
    /// (`degree < rescue_degree`), otherwise Bernoulli(`relay_probability`).
    pub fn relay_decision(&mut self, age: u32) -> bool {
        if age < self.config.sure_hops {
            return true;
        }
        if self.degree < self.config.rescue_degree {
            return true;
        }
        bernoulli(&mut self.rng, self.config.relay_probability)
    }

    /// Broadcasts unconditionally: assigns the next sequence number,
    /// self-delivers, and queues the rumor for relay (the origin always
    /// forwards).
    pub fn broadcast_now(&mut self, payload: Payload, now: TimeMs) -> EventId {
        let id = EventId::new(self.id, self.next_seq);
        self.next_seq += 1;
        let event = Event::new(id, payload);
        self.ids.insert(id);
        self.out_events
            .push(ProtocolEvent::Admitted { id, at: now });
        self.out_events.push(ProtocolEvent::Delivered {
            event: event.clone(),
            from: self.id,
            at: now,
        });
        self.accept_for_relay(event, now);
        id
    }

    fn accept_for_relay(&mut self, event: Event, now: TimeMs) {
        self.relay.push_back(RelaySlot {
            event,
            remaining: self.config.relay_rounds,
        });
        self.enforce_capacity(self.config.max_relay, now);
    }

    /// Evicts the oldest rumors (highest age first, FIFO within equal ages)
    /// until the relay buffer fits `capacity`.
    fn enforce_capacity(&mut self, capacity: usize, now: TimeMs) {
        while self.relay.len() > capacity {
            let victim = self
                .relay
                .iter()
                .enumerate()
                .max_by_key(|(i, s)| (s.event.age(), *i))
                .map(|(i, _)| i)
                .expect("relay buffer non-empty");
            let slot = self.relay.remove(victim).expect("victim index valid");
            self.out_events.push(ProtocolEvent::Dropped {
                id: slot.event.id(),
                age: slot.event.age(),
                reason: PurgeReason::Overflow,
                at: now,
            });
        }
    }

    /// Ingests one gossip message (delivery plus the per-rumor relay
    /// gamble).
    pub fn receive(&mut self, from: NodeId, msg: GossipMessage, now: TimeMs) {
        self.membership
            .observe_gossip(from, &msg.membership, &mut self.rng);
        for event in msg.events.as_slice() {
            if !self.ids.insert(event.id()) {
                continue; // duplicate: already delivered
            }
            self.out_events.push(ProtocolEvent::Delivered {
                event: event.clone(),
                from,
                at: now,
            });
            if self.relay_decision(event.age()) {
                self.accept_for_relay(event.clone(), now);
            }
        }
    }

    /// Runs the periodic part: age increments, emission, and retirement of
    /// rumors whose relay budget ran out.
    pub fn run_round(&mut self, now: TimeMs) -> Vec<(NodeId, GossipMessage)> {
        self.round += 1;
        self.membership.on_round();
        for slot in &mut self.relay {
            slot.event.increment_age();
        }
        let out = self.emit();
        // Retire after emission: every accepted rumor is relayed at least
        // once.
        let mut retired = Vec::new();
        self.relay.retain_mut(|slot| {
            slot.remaining -= 1;
            if slot.remaining == 0 {
                retired.push((slot.event.id(), slot.event.age()));
                false
            } else {
                true
            }
        });
        for (id, age) in retired {
            self.out_events.push(ProtocolEvent::Dropped {
                id,
                age,
                reason: PurgeReason::AgeCap,
                at: now,
            });
        }
        out
    }

    fn emit(&mut self) -> Vec<(NodeId, GossipMessage)> {
        // One digest probes whether there is anything to say at all: a
        // routing node with an empty relay buffer and no membership news
        // stays silent — that silence is the flavor's whole overhead story.
        let digest = self.membership.make_digest(&mut self.rng);
        if self.relay.is_empty() && digest.is_empty() {
            return Vec::new();
        }
        let targets = self
            .membership
            .sample(&mut self.rng, self.config.fanout, self.id);
        if targets.is_empty() {
            return Vec::new();
        }
        let events: EventList = self
            .relay
            .iter()
            .map(|s| s.event.clone())
            .collect::<Vec<_>>()
            .into();
        targets
            .into_iter()
            .map(|t| {
                (
                    t,
                    GossipMessage {
                        sender: self.id,
                        sample_period: 0,
                        min_buffs: Vec::new(),
                        events: events.clone(),
                        // The digest is shared across the F copies (unlike
                        // lpbcast's per-target draws): relay traffic is
                        // already rare enough that re-sampling buys nothing.
                        membership: digest.clone(),
                    },
                )
            })
            .collect()
    }
}

impl<S: GossipMembership> GossipProtocol for RoutingNode<S> {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn offer(&mut self, payload: Payload, now: TimeMs) -> OfferOutcome {
        OfferOutcome::Admitted(self.broadcast_now(payload, now))
    }

    fn on_round(&mut self, now: TimeMs) -> Vec<(NodeId, GossipMessage)> {
        self.run_round(now)
    }

    fn on_receive(&mut self, from: NodeId, msg: GossipMessage, now: TimeMs) {
        self.receive(from, msg, now);
    }

    fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut self.out_events)
    }

    fn drain_events_into(&mut self, out: &mut Vec<ProtocolEvent>) {
        out.append(&mut self.out_events);
    }

    fn set_buffer_capacity(&mut self, capacity: usize, now: TimeMs) {
        self.config.max_relay = capacity.max(1);
        self.enforce_capacity(self.config.max_relay, now);
    }

    fn buffer_capacity(&self) -> usize {
        self.config.max_relay
    }

    fn buffer_len(&self) -> usize {
        self.relay.len()
    }

    fn allowed_rate(&self) -> Option<f64> {
        None
    }

    fn pending_len(&self) -> usize {
        0
    }

    fn gossip_period(&self) -> DurationMs {
        self.config.gossip_period
    }

    fn membership_view(&self) -> Vec<NodeId> {
        self.membership.view()
    }

    fn leave(&mut self, now: TimeMs) -> Vec<(NodeId, GossipMessage)> {
        let _ = now;
        let targets = self
            .membership
            .sample(&mut self.rng, self.config.fanout, self.id);
        if targets.is_empty() {
            return Vec::new();
        }
        // Flush whatever is still in flight and announce the departure.
        let events: EventList = self
            .relay
            .iter()
            .map(|s| s.event.clone())
            .collect::<Vec<_>>()
            .into();
        let farewell = self.membership.make_leave_digest();
        targets
            .into_iter()
            .map(|t| {
                (
                    t,
                    GossipMessage {
                        sender: self.id,
                        sample_period: 0,
                        min_buffs: Vec::new(),
                        events: events.clone(),
                        membership: farewell.clone(),
                    },
                )
            })
            .collect()
    }

    fn evict_peer(&mut self, node: NodeId) {
        self.membership.evict(node, &mut self.rng);
    }

    fn mem_breakdown(&self) -> Vec<(&'static str, agb_profile::MemUsage)> {
        use agb_profile::{MemReport, MemUsage};
        let payloads: u64 = self
            .relay
            .iter()
            .map(|s| s.event.payload().len() as u64)
            .sum();
        let relay_bytes = (self.relay.len() * std::mem::size_of::<RelaySlot>()) as u64 + payloads;
        vec![
            (
                "relay_buffer",
                MemUsage::new(relay_bytes, self.relay.len() as u64),
            ),
            ("event_ids", self.ids.mem_usage()),
            (
                "membership_view",
                MemUsage::new(
                    (self.membership.view_size() * std::mem::size_of::<NodeId>()) as u64,
                    self.membership.view_size() as u64,
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agb_membership::{FullView, LocalitySampler};
    use agb_types::topology::Topology;
    use rand::SeedableRng;

    fn node(id: u32, config: RoutingConfig, degree: usize) -> RoutingNode<FullView> {
        RoutingNode::new(
            NodeId::new(id),
            config,
            FullView::new(8),
            degree,
            DetRng::seed_from_u64(u64::from(id) + 500),
        )
    }

    fn msg_with(events: Vec<Event>) -> GossipMessage {
        GossipMessage {
            sender: NodeId::new(7),
            sample_period: 0,
            min_buffs: vec![],
            events: events.into(),
            membership: Default::default(),
        }
    }

    #[test]
    fn origin_relays_own_rumor_then_retires_it() {
        let mut cfg = RoutingConfig::default();
        cfg.relay_rounds = 2;
        let mut n = node(0, cfg, 8);
        n.broadcast_now(Payload::from_static(b"x"), TimeMs::ZERO);
        assert_eq!(n.buffer_len(), 1);
        let out = n.on_round(TimeMs::from_secs(1));
        assert_eq!(out.len(), 4, "fanout copies");
        assert_eq!(out[0].1.events.len(), 1);
        assert_eq!(out[0].1.events.as_slice()[0].age(), 1);
        // Second emission, then the budget is spent.
        assert_eq!(n.on_round(TimeMs::from_secs(2)).len(), 4);
        assert_eq!(n.buffer_len(), 0);
        let out = n.on_round(TimeMs::from_secs(3));
        assert!(out.is_empty(), "empty relay buffer stays silent");
        let drops = n
            .drain_events()
            .into_iter()
            .filter(|e| {
                matches!(
                    e,
                    ProtocolEvent::Dropped {
                        reason: PurgeReason::AgeCap,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(drops, 1);
    }

    #[test]
    fn young_rumors_always_relay() {
        let mut cfg = RoutingConfig::default();
        cfg.relay_probability = 0.0;
        cfg.sure_hops = 3;
        let mut n = node(1, cfg, 8);
        let e = Event::with_age(EventId::new(NodeId::new(2), 0), 2, Payload::new());
        n.receive(NodeId::new(2), msg_with(vec![e]), TimeMs::ZERO);
        assert_eq!(n.buffer_len(), 1, "age 2 < sure_hops 3 must relay");
        let old = Event::with_age(EventId::new(NodeId::new(2), 1), 3, Payload::new());
        n.receive(NodeId::new(2), msg_with(vec![old]), TimeMs::ZERO);
        assert_eq!(n.buffer_len(), 1, "age 3 with p=0 must not relay");
    }

    #[test]
    fn low_degree_nodes_always_relay() {
        let mut cfg = RoutingConfig::default();
        cfg.relay_probability = 0.0;
        cfg.sure_hops = 0;
        cfg.rescue_degree = 4;
        let mut sparse = node(1, cfg, 3);
        let e = Event::with_age(EventId::new(NodeId::new(2), 0), 9, Payload::new());
        sparse.receive(NodeId::new(2), msg_with(vec![e.clone()]), TimeMs::ZERO);
        assert_eq!(sparse.buffer_len(), 1, "degree 3 < 4 rescues the rumor");
        let mut dense = node(3, cfg, 4);
        dense.receive(NodeId::new(2), msg_with(vec![e]), TimeMs::ZERO);
        assert_eq!(dense.buffer_len(), 0, "degree 4 with p=0 drops it");
    }

    #[test]
    fn duplicates_deliver_once_and_never_relay_twice() {
        let mut n = node(1, RoutingConfig::default(), 8);
        let e = Event::with_age(EventId::new(NodeId::new(2), 0), 0, Payload::new());
        n.receive(NodeId::new(2), msg_with(vec![e.clone()]), TimeMs::ZERO);
        n.receive(NodeId::new(3), msg_with(vec![e]), TimeMs::ZERO);
        let delivered = n
            .drain_events()
            .into_iter()
            .filter(|ev| matches!(ev, ProtocolEvent::Delivered { .. }))
            .count();
        assert_eq!(delivered, 1);
        assert_eq!(n.buffer_len(), 1);
    }

    #[test]
    fn overflow_evicts_oldest_first() {
        let mut cfg = RoutingConfig::default();
        cfg.max_relay = 2;
        cfg.sure_hops = 10; // accept everything
        let mut n = node(1, cfg, 8);
        for (seq, age) in [(0u64, 5u32), (1, 1), (2, 0)] {
            let e = Event::with_age(EventId::new(NodeId::new(2), seq), age, Payload::new());
            n.receive(NodeId::new(2), msg_with(vec![e]), TimeMs::ZERO);
        }
        assert_eq!(n.buffer_len(), 2);
        let dropped: Vec<u32> = n
            .drain_events()
            .into_iter()
            .filter_map(|ev| match ev {
                ProtocolEvent::Dropped {
                    age,
                    reason: PurgeReason::Overflow,
                    ..
                } => Some(age),
                _ => None,
            })
            .collect();
        assert_eq!(dropped, vec![5], "highest age evicted");
    }

    #[test]
    fn composes_with_locality_sampler_and_stays_on_the_overlay() {
        let topo = Topology::grid(3, 3);
        let me = NodeId::new(4);
        let sampler = LocalitySampler::new(FullView::new(9), topo.neighbors(me).to_vec(), 0.0);
        let mut n = RoutingNode::new(
            me,
            RoutingConfig::default(),
            sampler,
            topo.degree(me),
            DetRng::seed_from_u64(3),
        );
        n.broadcast_now(Payload::new(), TimeMs::ZERO);
        for (to, _) in n.on_round(TimeMs::from_secs(1)) {
            assert!(topo.neighbors(me).contains(&to));
        }
    }

    #[test]
    fn composes_with_recovery_wrapper() {
        use agb_core::FrameProtocol;
        let mut n = node(0, RoutingConfig::default(), 8);
        n.broadcast_now(Payload::new(), TimeMs::ZERO);
        // Through the blanket impl the node speaks frames, which is all
        // the recovery wrapper needs.
        let frames = FrameProtocol::on_round(&mut n, TimeMs::from_secs(1));
        assert_eq!(frames.len(), 4);
    }

    #[test]
    fn set_buffer_capacity_purges_and_floors_at_one() {
        let mut cfg = RoutingConfig::default();
        cfg.sure_hops = 10;
        let mut n = node(1, cfg, 8);
        for seq in 0..5u64 {
            let e = Event::with_age(EventId::new(NodeId::new(2), seq), 0, Payload::new());
            n.receive(NodeId::new(2), msg_with(vec![e]), TimeMs::ZERO);
        }
        n.set_buffer_capacity(2, TimeMs::from_secs(1));
        assert_eq!(n.buffer_len(), 2);
        assert_eq!(n.buffer_capacity(), 2);
        n.set_buffer_capacity(0, TimeMs::from_secs(1));
        assert_eq!(n.buffer_capacity(), 1);
    }

    #[test]
    fn leave_flushes_relay_buffer() {
        let mut n = node(0, RoutingConfig::default(), 8);
        n.broadcast_now(Payload::new(), TimeMs::ZERO);
        let out = GossipProtocol::leave(&mut n, TimeMs::from_secs(1));
        assert_eq!(out.len(), 4);
        for (_, msg) in &out {
            assert_eq!(msg.events.len(), 1);
        }
    }

    #[test]
    fn accessors_and_trait_plumbing() {
        let mut n = node(0, RoutingConfig::default(), 5);
        assert_eq!(GossipProtocol::node_id(&n), NodeId::new(0));
        assert_eq!(n.degree(), 5);
        n.set_degree(2);
        assert_eq!(n.degree(), 2);
        assert_eq!(n.allowed_rate(), None);
        assert_eq!(n.pending_len(), 0);
        assert_eq!(n.gossip_period(), DurationMs::from_secs(1));
        assert_eq!(GossipProtocol::membership_view(&n).len(), 8);
        assert!(matches!(
            n.offer(Payload::new(), TimeMs::ZERO),
            OfferOutcome::Admitted(_)
        ));
        assert_eq!(n.round(), 0);
        assert_eq!(n.config().fanout, 4);
        assert_eq!(n.membership().members().len(), 8);
        n.membership_mut();
        GossipProtocol::evict_peer(&mut n, NodeId::new(3));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut n = RoutingNode::new(
                NodeId::new(0),
                RoutingConfig::default(),
                FullView::new(16),
                8,
                DetRng::seed_from_u64(seed),
            );
            let mut log = Vec::new();
            for s in 0..20u64 {
                let e = Event::with_age(
                    EventId::new(NodeId::new(1), s),
                    (s % 6) as u32,
                    Payload::new(),
                );
                n.receive(NodeId::new(1), msg_with(vec![e]), TimeMs::from_secs(s));
                for (to, msg) in n.on_round(TimeMs::from_secs(s + 1)) {
                    log.push((to, msg.events.len()));
                }
            }
            log
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
