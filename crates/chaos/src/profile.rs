//! Seed-driven schedule generation: a [`ChurnProfile`] describes the
//! *statistics* of the perturbation (churn rate, outage length, link
//! flapping, burst storms) and compiles, for a given seed, into one
//! concrete deterministic [`ChaosSchedule`].

use agb_types::{DetRng, DurationMs, NodeId, TimeMs};
use rand::{RngExt, SeedableRng};

use crate::schedule::ChaosSchedule;

/// Statistical description of a churn scenario.
///
/// `generate(seed)` is a pure function: the same profile and seed always
/// produce the same schedule, which is what makes whole chaos experiments
/// replayable from a single integer.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnProfile {
    /// Group size (victims are drawn from `0..n_nodes`).
    pub n_nodes: usize,
    /// Churn starts here (leave a warmup window before it).
    pub start: TimeMs,
    /// Churn ends here (leave a cooldown window after it).
    pub end: TimeMs,
    /// Crash events per minute of virtual time.
    pub crashes_per_min: f64,
    /// How long a crashed node stays down.
    pub outage: DurationMs,
    /// `true`: nodes come back with state loss (restart), re-entering via
    /// the membership protocol. `false`: state-intact recovery.
    pub restart_as_fresh: bool,
    /// Nodes never crashed (typically the senders, so offered load is
    /// constant across the sweep).
    pub protect: Vec<NodeId>,
    /// After each crash, this many random survivors evict the victim
    /// (an external failure-detector model); `0` disables eviction.
    pub detectors: usize,
    /// Detection delay between a crash and its evictions.
    pub detect_after: DurationMs,
    /// Number of link-flap episodes spread over the churn window.
    pub link_flaps: usize,
    /// Length of one link-flap episode.
    pub flap_duration: DurationMs,
    /// Latency inflation during a flap.
    pub flap_extra_latency: DurationMs,
    /// Loss spike during a flap.
    pub flap_extra_loss: f64,
    /// Number of sender burst storms over the churn window.
    pub bursts: usize,
    /// Messages per burst.
    pub burst_size: usize,
}

impl ChurnProfile {
    /// A crash/restart-only profile at the given rate, protecting the
    /// first `protect_first` nodes (the senders).
    pub fn crashes(
        n_nodes: usize,
        start: TimeMs,
        end: TimeMs,
        crashes_per_min: f64,
        outage: DurationMs,
        protect_first: usize,
    ) -> Self {
        ChurnProfile {
            n_nodes,
            start,
            end,
            crashes_per_min,
            outage,
            restart_as_fresh: true,
            protect: (0..protect_first as u32).map(NodeId::new).collect(),
            detectors: 0,
            detect_after: DurationMs::from_secs(2),
            link_flaps: 0,
            flap_duration: DurationMs::from_secs(5),
            flap_extra_latency: DurationMs::from_millis(50),
            flap_extra_loss: 0.2,
            bursts: 0,
            burst_size: 0,
        }
    }

    /// Compiles the profile into a concrete schedule.
    ///
    /// # Panics
    ///
    /// Panics if the profile is degenerate (no churn window, or no
    /// unprotected victim candidates while crashes are requested).
    pub fn generate(&self, seed: u64) -> ChaosSchedule {
        assert!(self.end > self.start, "churn window is empty");
        let window = self.end.since(self.start);
        let window_ms = window.as_millis().max(1);
        let mut rng = DetRng::seed_from_u64(seed ^ 0xC0A5_0F0D_BAD5_EED5);
        let mut schedule = ChaosSchedule::new();

        let crashes = (self.crashes_per_min * window_ms as f64 / 60_000.0).round() as usize;
        let victims: Vec<NodeId> = (0..self.n_nodes as u32)
            .map(NodeId::new)
            .filter(|n| !self.protect.contains(n))
            .collect();
        assert!(
            (crashes == 0 && self.link_flaps == 0) || !victims.is_empty(),
            "every node is protected but crashes/link flaps were requested"
        );
        // One victim can only be re-crashed after it came back: track the
        // time each node becomes available again.
        let mut busy_until: Vec<TimeMs> = vec![TimeMs::ZERO; self.n_nodes];
        let mut times: Vec<u64> = (0..crashes)
            .map(|_| rng.random_range(0..window_ms))
            .collect();
        times.sort_unstable();
        for t in times {
            let at = self.start + DurationMs::from_millis(t);
            // Pick the first available victim from a random starting point;
            // skip the crash if everyone is currently down (extreme rates).
            let start_idx = rng.random_range(0..victims.len());
            let victim = (0..victims.len())
                .map(|k| victims[(start_idx + k) % victims.len()])
                .find(|v| busy_until[v.index()] <= at);
            let Some(victim) = victim else { continue };
            let back_at = at + self.outage;
            busy_until[victim.index()] = back_at;
            schedule.crash(at, victim);
            if self.detectors > 0 {
                let detect_at = at + self.detect_after;
                if detect_at < back_at {
                    let mut chosen = 0usize;
                    let mut offset = rng.random_range(0..victims.len());
                    while chosen < self.detectors.min(victims.len() - 1) {
                        let detector = victims[offset % victims.len()];
                        offset += 1;
                        if detector != victim && busy_until[detector.index()] <= detect_at {
                            schedule.evict(detect_at, detector, victim);
                            chosen += 1;
                        }
                        if offset > 2 * victims.len() {
                            break;
                        }
                    }
                }
            }
            if self.restart_as_fresh {
                schedule.restart(back_at, victim);
            } else {
                schedule.recover(back_at, victim);
            }
        }

        for _ in 0..self.link_flaps {
            let t = rng.random_range(0..window_ms);
            let from = self.start + DurationMs::from_millis(t);
            let node = victims[rng.random_range(0..victims.len())];
            schedule.link_fault(
                from,
                from + self.flap_duration,
                vec![node],
                self.flap_extra_latency,
                self.flap_extra_loss,
            );
        }

        for _ in 0..self.bursts {
            let t = rng.random_range(0..window_ms);
            let node = NodeId::new(rng.random_range(0..self.n_nodes as u32));
            schedule.burst(
                self.start + DurationMs::from_millis(t),
                node,
                self.burst_size,
            );
        }

        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ChaosEvent;

    fn profile(rate: f64) -> ChurnProfile {
        ChurnProfile::crashes(
            20,
            TimeMs::from_secs(10),
            TimeMs::from_secs(70),
            rate,
            DurationMs::from_secs(10),
            3,
        )
    }

    #[test]
    fn same_seed_same_schedule() {
        let p = profile(8.0);
        assert_eq!(p.generate(7), p.generate(7));
        assert_ne!(p.generate(7), p.generate(8));
    }

    #[test]
    fn rate_controls_event_count() {
        // 60 s window at 6 crashes/min => ~6 crash+restart pairs.
        let s = profile(6.0).generate(3);
        let crashes = s
            .events()
            .iter()
            .filter(|e| matches!(e, ChaosEvent::Crash { .. }))
            .count();
        let restarts = s
            .events()
            .iter()
            .filter(|e| matches!(e, ChaosEvent::Restart { .. }))
            .count();
        assert_eq!(crashes, 6);
        assert_eq!(restarts, crashes);
        assert!(s.validate(20).is_ok());
    }

    #[test]
    fn protected_nodes_never_crash() {
        let s = profile(30.0).generate(11);
        for e in s.events() {
            if let ChaosEvent::Crash { node, .. } = e {
                assert!(node.index() >= 3, "protected node {node} crashed");
            }
        }
    }

    #[test]
    fn victims_are_not_recrashed_while_down() {
        let s = profile(40.0).generate(5);
        let mut down: Vec<(NodeId, TimeMs)> = Vec::new();
        for e in s.events() {
            match e {
                ChaosEvent::Crash { at, node } => {
                    assert!(
                        !down.iter().any(|&(n, until)| n == *node && *at < until),
                        "node {node} crashed while already down"
                    );
                    down.push((*node, *at + DurationMs::from_secs(10)));
                }
                ChaosEvent::Restart { .. } => {}
                _ => {}
            }
        }
    }

    #[test]
    fn detectors_emit_evictions_within_outage() {
        let mut p = profile(6.0);
        p.detectors = 2;
        p.detect_after = DurationMs::from_secs(3);
        let s = p.generate(9);
        let evictions = s
            .events()
            .iter()
            .filter(|e| matches!(e, ChaosEvent::Evict { .. }))
            .count();
        assert!(evictions > 0);
        assert!(s.validate(20).is_ok());
    }

    #[test]
    fn flaps_and_bursts_generate_events() {
        let mut p = profile(0.0);
        p.link_flaps = 3;
        p.bursts = 2;
        p.burst_size = 40;
        let s = p.generate(2);
        let flaps = s
            .events()
            .iter()
            .filter(|e| matches!(e, ChaosEvent::LinkFault { .. }))
            .count();
        let bursts = s
            .events()
            .iter()
            .filter(|e| matches!(e, ChaosEvent::Burst { .. }))
            .count();
        assert_eq!(flaps, 3);
        assert_eq!(bursts, 2);
        assert!(s.validate(20).is_ok());
    }
}
