//! Scripted churn and fault injection for gossip broadcast experiments.
//!
//! The paper's adaptive mechanism exists to keep gossip reliable in
//! *perturbed* environments, yet its evaluation (and this reproduction's
//! figure harnesses) runs against a fixed membership with at most
//! independent loss. This crate opens the scenario axis: a declarative,
//! seed-deterministic fault-injection engine in the spirit of the
//! robustness studies of the gossip literature (tuneable gossip under
//! adversarial conditions, flooding-vs-gossip resilience).
//!
//! * [`ChaosSchedule`] — the vocabulary: crashes, state-intact
//!   recoveries, restarts with state loss, protocol-level joins and
//!   graceful leaves, failure-detector evictions, partitions, per-link
//!   latency/loss episodes, sender burst storms;
//! * [`ChurnProfile`] — statistics-level scenario description compiled
//!   into one concrete schedule per seed;
//! * [`ChaosCluster`] — the simulator executor: compiles a schedule into
//!   engine actions on an [`agb_workload::GossipCluster`], probes
//!   membership views for convergence, and produces a [`ChaosSummary`]
//!   with a stable digest for determinism assertions;
//! * [`run_runtime_schedule`] — the threaded-runtime executor, replaying
//!   lifecycle commands against a live
//!   [`agb_runtime::RuntimeCluster`].
//!
//! Churned nodes re-enter through the membership protocol itself
//! (bootstrap contact + subscription gossip), not by construction; with
//! the recovery layer enabled they also pull the history they missed.
//!
//! # Example
//!
//! A 20-node partial-view group where one node crashes, loses its state,
//! and rejoins — measured among correct nodes:
//!
//! ```
//! use agb_chaos::{ChaosCluster, ChaosSchedule};
//! use agb_membership::PartialViewConfig;
//! use agb_types::{DurationMs, NodeId, TimeMs};
//! use agb_workload::{Algorithm, ClusterConfig, MembershipKind};
//!
//! let mut schedule = ChaosSchedule::new();
//! schedule
//!     .crash(TimeMs::from_secs(10), NodeId::new(7))
//!     .restart(TimeMs::from_secs(20), NodeId::new(7));
//!
//! let mut config = ClusterConfig::new(20, 42);
//! config.membership = MembershipKind::Partial(PartialViewConfig::default());
//! config.n_senders = 2;
//! config.offered_rate = 4.0;
//!
//! let mut chaos = ChaosCluster::new(config, &schedule);
//! chaos.run_until(TimeMs::from_secs(45));
//! let summary = chaos.summary(
//!     (TimeMs::from_secs(2), TimeMs::from_secs(35)),
//!     DurationMs::from_secs(10),
//! );
//! assert!(summary.correct.avg_receiver_fraction > 0.9);
//! // Same seed, same schedule => same digest (replayable chaos).
//! assert_ne!(summary.digest(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod profile;
mod runtime;
mod schedule;
mod sim;

pub use profile::ChurnProfile;
pub use runtime::{run_runtime_schedule, RuntimeChaosReport};
pub use schedule::{ChaosEvent, ChaosSchedule};
pub use sim::{ChaosCluster, ChaosSummary, ConvergenceRecord};
